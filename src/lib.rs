//! # mcfpga — a multi-context FPGA architecture workbench
//!
//! A from-scratch reproduction of *"Architecture of a Multi-Context FPGA
//! Using a Hybrid Multiple-Valued/Binary Context Switching Signal"*
//! (Nakatani, Hariyama, Kameyama — IPDPS Reconfigurable Architectures
//! Workshop, 2006), grown into a workbench a downstream user can build on:
//!
//! * [`mvl`] — multiple-valued logic: rail levels, threshold literals,
//!   window decomposition (Figs. 3–4);
//! * [`device`] — behavioural FGMOS / SRAM / pass-gate models with
//!   program-verify, endurance and retention;
//! * [`netlist`] — structural netlists + a switch-level simulator;
//! * [`css`] — binary, multiple-valued and hybrid MV/B context-switching
//!   signal generators (Figs. 7–8), plus the sweep-order optimizer that
//!   minimizes broadcast toggles against a transition-cost matrix;
//! * [`core`] — the three MC-switch architectures (Figs. 2, 5–6, 9–10) and
//!   their equivalence/redundancy/timing analyses;
//! * [`switchblock`] — crossbar switch blocks and the column-sharing
//!   theorem (Fig. 11, Table 2);
//! * [`fabric`] — an island-style multi-context FPGA with placement,
//!   routing, temporal partitioning, bitstreams and functional simulation
//!   (Fig. 1);
//! * [`cost`] — transistor/area/power models and report rendering
//!   (Tables 1–2 and the scaling sweeps);
//! * [`service`] — a multi-tenant batched execution runtime: tenants admit
//!   designs into context slots across fabric shards (round-robin or
//!   energy-aware placement), and their single-vector requests coalesce
//!   into 64-lane bit-parallel passes swept in toggle-optimized order;
//! * [`migrate`] — checkpoint/restore and live tenant migration: a
//!   versioned checkpoint wire format capturing a tenant at a
//!   context-switch boundary, powering `migrate_tenant` / `evacuate_shard`
//!   on the service;
//! * [`cluster`] — multi-node federation: a router placing tenants across
//!   N sharded services by load/energy score, a deterministic
//!   node-then-shard-then-lane merge of responses/faults/billing, and a
//!   virtual-clock rebalancer that drains, restarts and live-migrates
//!   around hot or faulted nodes;
//! * [`telemetry`] — deterministic observability: a metric registry with
//!   deterministic / wall-clock classes, a bounded ring of request
//!   lifecycle spans with cross-node trace reconstruction, and the
//!   cluster health snapshots the rebalancer consumes.
//!
//! See `docs/ARCHITECTURE.md` for the crate map and data flow, and
//! `docs/GLOSSARY.md` for the paper's vocabulary as used in the code.
//!
//! ## Quickstart
//!
//! ```
//! use mcfpga::prelude::*;
//!
//! // The paper's Fig. 3 function: conduct in contexts 1 and 3 only.
//! let f = CtxSet::from_ctxs(4, [1, 3]).unwrap();
//!
//! // The proposed switch: two FGMOSs, exclusively ON.
//! let mut sw = HybridMcSwitch::new(4).unwrap();
//! sw.configure(&f).unwrap();
//! assert!(!sw.is_on(0).unwrap());
//! assert!(sw.is_on(1).unwrap());
//! assert_eq!(sw.transistor_count(), 2); // Table 1's headline
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use mcfpga_cluster as cluster;
pub use mcfpga_core as core;
pub use mcfpga_cost as cost;
pub use mcfpga_css as css;
pub use mcfpga_device as device;
pub use mcfpga_fabric as fabric;
pub use mcfpga_migrate as migrate;
pub use mcfpga_mvl as mvl;
pub use mcfpga_netlist as netlist;
pub use mcfpga_service as service;
pub use mcfpga_switchblock as switchblock;
pub use mcfpga_telemetry as telemetry;

/// The most commonly used items in one import.
pub mod prelude {
    pub use mcfpga_cluster::{Cluster, NodeHealth, RebalancerPolicy, RouterPolicy};
    pub use mcfpga_core::{
        AnySwitch, ArchKind, HybridMcSwitch, McSwitch, MvFgfpMcSwitch, SramMcSwitch,
    };
    pub use mcfpga_css::{
        optimize_sweep, BinaryCss, CostMatrix, HybridCssGen, MvCss, OptimizeMode, Schedule,
    };
    pub use mcfpga_device::{Fgmos, FgmosMode, Programmer, TechParams};
    pub use mcfpga_fabric::{Fabric, FabricParams, LogicNetlist, MultiContextLut, TileCoord};
    pub use mcfpga_migrate::{MigrateError, TenantCheckpoint, FORMAT_VERSION};
    pub use mcfpga_mvl::{decompose_windows, CtxSet, Level, Radix, WindowLiteral};
    pub use mcfpga_netlist::{Netlist, SwitchSim};
    pub use mcfpga_service::{
        FrontendDriver, ParallelExecutor, PlacementPolicy, QosClass, ShardedService, StreamPolicy,
        TenantId,
    };
    pub use mcfpga_switchblock::{remap_to_designated_rows, RouteSet, SwitchBlock};
    pub use mcfpga_telemetry::{
        ClusterHealthSnapshot, MetricClass, Registry, SpanEvent, SpanKind, Telemetry,
    };
}
