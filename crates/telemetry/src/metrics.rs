//! Metrics registry: integer counters, gauges and log2-bucketed
//! histograms, split into determinism classes.
//!
//! Every metric is an integer (no floats anywhere near the deterministic
//! path). Counters can be *sharded*: one atomic cell per worker or per
//! shard, merged by summing cells **in cell order** — the same
//! shard-then-lane merge discipline the service layer uses everywhere
//! else, so a sharded counter's total is independent of which thread
//! bumped which cell when.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Determinism class of a metric.
///
/// The chaos-replay gates snapshot only [`MetricClass::Deterministic`]
/// metrics and require the snapshot to be bit-identical at every
/// `MCFPGA_THREADS` and lane width. Wall-clock metrics (timings,
/// scheduler accounting) are exported but excluded from those gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricClass {
    /// Cycle-, toggle- and count-based: must be bit-identical at any
    /// thread count and lane width.
    Deterministic,
    /// Wall-clock or scheduling dependent: may vary run to run.
    WallClock,
}

impl MetricClass {
    /// Stable lower-case label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            MetricClass::Deterministic => "deterministic",
            MetricClass::WallClock => "wall_clock",
        }
    }
}

impl std::fmt::Display for MetricClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A monotonically increasing integer counter, optionally sharded over
/// several cells (one per worker / per shard).
///
/// Handles are cheap to clone and share the underlying cells.
#[derive(Debug, Clone)]
pub struct Counter {
    cells: Arc<Vec<AtomicU64>>,
}

impl Counter {
    fn with_cells(cells: usize) -> Self {
        let n = cells.max(1);
        Counter {
            cells: Arc::new((0..n).map(|_| AtomicU64::new(0)).collect()),
        }
    }

    /// Add `n` to the first cell.
    pub fn add(&self, n: u64) {
        self.cells[0].fetch_add(n, Ordering::Relaxed);
    }

    /// Increment the first cell by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` to cell `cell % cells()` — the per-worker / per-shard
    /// entry point.
    pub fn add_to(&self, cell: usize, n: u64) {
        let idx = cell % self.cells.len();
        self.cells[idx].fetch_add(n, Ordering::Relaxed);
    }

    /// Total across all cells, summed in cell order.
    pub fn value(&self) -> u64 {
        self.cells.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Per-cell values in cell order (the per-worker histogram view).
    pub fn cells(&self) -> Vec<u64> {
        self.cells
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    fn reset(&self) {
        for c in self.cells.iter() {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// A signed integer gauge (set to the current value of something).
///
/// Handles are cheap to clone and share the underlying cell.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            cell: Arc::new(AtomicI64::new(0)),
        }
    }

    /// Overwrite the gauge with `v`.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative) to the gauge.
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket 0 holds zero, bucket `b` (1..=64)
/// holds values whose highest set bit is `b - 1`.
const HISTOGRAM_BUCKETS: usize = 65;

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// A log2-bucketed integer histogram.
///
/// Handles are cheap to clone and share the underlying buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Arc<Vec<AtomicU64>>,
    count: Arc<AtomicU64>,
    sum: Arc<AtomicU64>,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: Arc::new((0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect()),
            count: Arc::new(AtomicU64::new(0)),
            sum: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Non-empty buckets as `(bucket index, count)` in bucket order.
    pub fn bucket_counts(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect()
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug, Clone)]
struct Entry {
    name: String,
    class: MetricClass,
    metric: Metric,
}

/// One metric's value as captured by [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter total plus its per-cell breakdown.
    Counter {
        /// Sum over all cells.
        total: u64,
        /// Per-cell values in cell order.
        cells: Vec<u64>,
    },
    /// Gauge value.
    Gauge(i64),
    /// Histogram count, sum and non-empty `(bucket, count)` pairs.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observed values.
        sum: u64,
        /// Non-empty buckets in bucket order.
        buckets: Vec<(usize, u64)>,
    },
}

/// A point-in-time capture of registry contents, in registration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, class, value)` triples in registration order.
    pub entries: Vec<(String, MetricClass, MetricValue)>,
}

impl MetricsSnapshot {
    /// Render the snapshot as a compact JSON object keyed by metric
    /// name. Key order follows registration order.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, class, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{{\"class\":\"{class}\",");
            match value {
                MetricValue::Counter { total, cells } => {
                    let _ = write!(out, "\"type\":\"counter\",\"total\":{total}");
                    if cells.len() > 1 {
                        let _ = write!(out, ",\"cells\":{cells:?}");
                    }
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "\"type\":\"gauge\",\"value\":{v}");
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    let _ = write!(
                        out,
                        "\"type\":\"histogram\",\"count\":{count},\"sum\":{sum}"
                    );
                    let _ = write!(out, ",\"buckets\":{{");
                    for (j, (b, n)) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "\"{b}\":{n}");
                    }
                    out.push('}');
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// The metric registry: a named, ordered set of counters, gauges and
/// histograms with determinism-class tags.
///
/// Handles are cheap to clone and share the same underlying table, so a
/// registry can be threaded through subsystems that record into it
/// concurrently. Registering a name that already exists **replaces** the
/// metric in place with fresh zeroed cells while keeping its export
/// position — the semantics [`set_threads`-style
/// reconfiguration](https://en.wikipedia.org/wiki/Idempotence) relies on.
///
/// ```
/// use mcfpga_telemetry::{MetricClass, Registry};
///
/// let registry = Registry::new();
/// let admitted = registry.counter("frontend_admitted", MetricClass::Deterministic);
/// let per_shard = registry.counter_sharded("steps_applied", MetricClass::Deterministic, 4);
///
/// admitted.inc();
/// per_shard.add_to(0, 2);
/// per_shard.add_to(3, 1);
///
/// assert_eq!(registry.counter_value("frontend_admitted"), Some(1));
/// assert_eq!(registry.counter_value("steps_applied"), Some(3));
/// assert_eq!(registry.counter_cells("steps_applied"), Some(vec![2, 0, 0, 1]));
///
/// // The Prometheus-style page lists both, tagged with their class.
/// let page = registry.render_prometheus();
/// assert!(page.contains("frontend_admitted{class=\"deterministic\"} 1"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Vec<Entry>>>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(&self, name: &str, class: MetricClass, metric: Metric) {
        let mut table = self.inner.lock().expect("metric registry poisoned");
        if let Some(entry) = table.iter_mut().find(|e| e.name == name) {
            entry.class = class;
            entry.metric = metric;
        } else {
            table.push(Entry {
                name: name.to_string(),
                class,
                metric,
            });
        }
    }

    /// Register (or replace) a single-cell counter and return a handle.
    pub fn counter(&self, name: &str, class: MetricClass) -> Counter {
        let c = Counter::with_cells(1);
        self.register(name, class, Metric::Counter(c.clone()));
        c
    }

    /// Register (or replace) a counter sharded over `cells` cells.
    pub fn counter_sharded(&self, name: &str, class: MetricClass, cells: usize) -> Counter {
        let c = Counter::with_cells(cells);
        self.register(name, class, Metric::Counter(c.clone()));
        c
    }

    /// Register (or replace) a gauge and return a handle.
    pub fn gauge(&self, name: &str, class: MetricClass) -> Gauge {
        let g = Gauge::new();
        self.register(name, class, Metric::Gauge(g.clone()));
        g
    }

    /// Register (or replace) a log2 histogram and return a handle.
    pub fn histogram(&self, name: &str, class: MetricClass) -> Histogram {
        let h = Histogram::new();
        self.register(name, class, Metric::Histogram(h.clone()));
        h
    }

    /// Zero every cell of the counter registered under `name`, if any.
    pub fn reset_counter(&self, name: &str) {
        let table = self.inner.lock().expect("metric registry poisoned");
        if let Some(Entry {
            metric: Metric::Counter(c),
            ..
        }) = table.iter().find(|e| e.name == name)
        {
            c.reset();
        }
    }

    /// Current total of the counter registered under `name`.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let table = self.inner.lock().expect("metric registry poisoned");
        table.iter().find(|e| e.name == name).and_then(|e| {
            if let Metric::Counter(c) = &e.metric {
                Some(c.value())
            } else {
                None
            }
        })
    }

    /// Per-cell values of the counter registered under `name`.
    pub fn counter_cells(&self, name: &str) -> Option<Vec<u64>> {
        let table = self.inner.lock().expect("metric registry poisoned");
        table.iter().find(|e| e.name == name).and_then(|e| {
            if let Metric::Counter(c) = &e.metric {
                Some(c.cells())
            } else {
                None
            }
        })
    }

    /// Current value of the gauge registered under `name`.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        let table = self.inner.lock().expect("metric registry poisoned");
        table.iter().find(|e| e.name == name).and_then(|e| {
            if let Metric::Gauge(g) = &e.metric {
                Some(g.value())
            } else {
                None
            }
        })
    }

    /// `(count, sum)` of the histogram registered under `name`.
    pub fn histogram_stats(&self, name: &str) -> Option<(u64, u64)> {
        let table = self.inner.lock().expect("metric registry poisoned");
        table.iter().find(|e| e.name == name).and_then(|e| {
            if let Metric::Histogram(h) = &e.metric {
                Some((h.count(), h.sum()))
            } else {
                None
            }
        })
    }

    /// Capture current values, optionally restricted to one class.
    pub fn snapshot(&self, class: Option<MetricClass>) -> MetricsSnapshot {
        let table = self.inner.lock().expect("metric registry poisoned");
        let entries = table
            .iter()
            .filter(|e| class.is_none_or(|c| e.class == c))
            .map(|e| {
                let value = match &e.metric {
                    Metric::Counter(c) => MetricValue::Counter {
                        total: c.value(),
                        cells: c.cells(),
                    },
                    Metric::Gauge(g) => MetricValue::Gauge(g.value()),
                    Metric::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.bucket_counts(),
                    },
                };
                (e.name.clone(), e.class, value)
            })
            .collect();
        MetricsSnapshot { entries }
    }

    /// JSON snapshot of every metric (both classes).
    pub fn render_json(&self) -> String {
        self.snapshot(None).render_json()
    }

    /// JSON snapshot of deterministic-class metrics only — the string
    /// the chaos-replay gates compare bit-for-bit across thread and
    /// lane widths.
    pub fn deterministic_json(&self) -> String {
        self.snapshot(Some(MetricClass::Deterministic))
            .render_json()
    }

    /// Prometheus-style text exposition page. Counters and gauges
    /// render one sample each; sharded counters add per-cell samples;
    /// histograms render cumulative `_bucket` samples plus `_count` /
    /// `_sum`. Every sample carries a `class` label.
    pub fn render_prometheus(&self) -> String {
        let snap = self.snapshot(None);
        let mut out = String::new();
        for (name, class, value) in &snap.entries {
            match value {
                MetricValue::Counter { total, cells } => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name}{{class=\"{class}\"}} {total}");
                    if cells.len() > 1 {
                        for (i, v) in cells.iter().enumerate() {
                            let _ = writeln!(out, "{name}{{class=\"{class}\",cell=\"{i}\"}} {v}");
                        }
                    }
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name}{{class=\"{class}\"}} {v}");
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cumulative = 0u64;
                    for (b, n) in buckets {
                        cumulative += n;
                        // upper bound of log2 bucket b is 2^b - 1 (bucket 0 holds zero)
                        let le = if *b == 0 { 0u128 } else { (1u128 << b) - 1 };
                        let _ = writeln!(
                            out,
                            "{name}_bucket{{class=\"{class}\",le=\"{le}\"}} {cumulative}"
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{class=\"{class}\",le=\"+Inf\"}} {count}"
                    );
                    let _ = writeln!(out, "{name}_count{{class=\"{class}\"}} {count}");
                    let _ = writeln!(out, "{name}_sum{{class=\"{class}\"}} {sum}");
                }
            }
        }
        out
    }

    /// Names of all registered metrics, in registration order.
    pub fn names(&self) -> Vec<String> {
        let table = self.inner.lock().expect("metric registry poisoned");
        table.iter().map(|e| e.name.clone()).collect()
    }

    /// Map of name to class for all registered metrics.
    pub fn classes(&self) -> BTreeMap<String, MetricClass> {
        let table = self.inner.lock().expect("metric registry poisoned");
        table.iter().map(|e| (e.name.clone(), e.class)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_counter_sums_cells_in_order() {
        let r = Registry::new();
        let c = r.counter_sharded("work", MetricClass::Deterministic, 4);
        c.add_to(2, 5);
        c.add_to(0, 1);
        c.add_to(6, 7); // wraps to cell 2
        assert_eq!(c.cells(), vec![1, 0, 12, 0]);
        assert_eq!(c.value(), 13);
        assert_eq!(r.counter_cells("work"), Some(vec![1, 0, 12, 0]));
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Registry::new().histogram("lanes", MetricClass::Deterministic);
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(64);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 70);
        assert_eq!(h.bucket_counts(), vec![(0, 1), (1, 1), (2, 2), (7, 1)]);
    }

    #[test]
    fn reregistration_replaces_in_place_keeping_position() {
        let r = Registry::new();
        let a = r.counter("a", MetricClass::Deterministic);
        r.counter("b", MetricClass::Deterministic);
        a.add(9);
        // replacing "a" zeroes it but keeps it first in export order
        let a2 = r.counter("a", MetricClass::WallClock);
        a2.add(1);
        assert_eq!(r.names(), vec!["a", "b"]);
        assert_eq!(r.counter_value("a"), Some(1));
        // the old handle no longer feeds the registered metric
        a.add(100);
        assert_eq!(r.counter_value("a"), Some(1));
    }

    #[test]
    fn deterministic_json_excludes_wall_clock_metrics() {
        let r = Registry::new();
        r.counter("det", MetricClass::Deterministic).add(3);
        r.counter("wall", MetricClass::WallClock).add(8);
        let det = r.deterministic_json();
        assert!(det.contains("\"det\""));
        assert!(!det.contains("\"wall\""));
        let all = r.render_json();
        assert!(all.contains("\"det\"") && all.contains("\"wall\""));
    }

    #[test]
    fn prometheus_page_renders_all_metric_kinds() {
        let r = Registry::new();
        r.counter("hits", MetricClass::Deterministic).add(2);
        r.gauge("depth", MetricClass::Deterministic).set(-4);
        r.histogram("lat", MetricClass::WallClock).observe(5);
        let page = r.render_prometheus();
        assert!(page.contains("# TYPE hits counter"));
        assert!(page.contains("hits{class=\"deterministic\"} 2"));
        assert!(page.contains("depth{class=\"deterministic\"} -4"));
        assert!(page.contains("lat_bucket{class=\"wall_clock\",le=\"7\"} 1"));
        assert!(page.contains("lat_count{class=\"wall_clock\"} 1"));
        assert!(page.contains("lat_sum{class=\"wall_clock\"} 5"));
    }

    #[test]
    fn clone_shares_the_underlying_table() {
        let r = Registry::new();
        let c = r.counter("n", MetricClass::Deterministic);
        let r2 = r.clone();
        c.add(7);
        assert_eq!(r2.counter_value("n"), Some(7));
    }
}
