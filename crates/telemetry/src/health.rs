//! Fleet health snapshots: the published-telemetry view of per-node
//! load that the cluster rebalancer consumes instead of poking node
//! internals.

/// Gauge name under which each node publishes its pending-request
/// queue depth.
pub const QUEUE_DEPTH_METRIC: &str = "service_queue_depth";

/// Gauge name under which each node publishes its accumulated fault
/// tally since the last restart.
pub const FAULT_TALLY_METRIC: &str = "node_fault_tally";

/// Gauge name under which each node publishes its resident tenant
/// count.
pub const ACTIVE_TENANTS_METRIC: &str = "service_active_tenants";

/// One node's published health sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeHealthSample {
    /// Node index within the cluster.
    pub node: usize,
    /// Pending (queued, not yet drained) requests on the node.
    pub queued: u64,
    /// Faults recorded since the node last (re)started.
    pub fault_tally: u64,
    /// Tenants resident on the node.
    pub tenants: u64,
}

/// A point-in-time capture of every node's published health gauges,
/// stamped with the cluster's virtual clock.
///
/// Built purely from telemetry gauges — classification decisions made
/// from a snapshot are a pure function of published metrics. Each
/// in-flight request is counted by exactly one node at any instant, so
/// [`total_queued`](ClusterHealthSnapshot::total_queued) is conserved
/// across migrations and drains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterHealthSnapshot {
    /// Virtual-clock cycle at capture time.
    pub cycle: u64,
    /// One sample per node, in node order.
    pub nodes: Vec<NodeHealthSample>,
}

impl ClusterHealthSnapshot {
    /// Sample for node `i`, if the cluster has one.
    pub fn node(&self, i: usize) -> Option<&NodeHealthSample> {
        self.nodes.iter().find(|n| n.node == i)
    }

    /// Total queued requests across all nodes.
    pub fn total_queued(&self) -> u64 {
        self.nodes.iter().map(|n| n.queued).sum()
    }

    /// Total resident tenants across all nodes.
    pub fn total_tenants(&self) -> u64 {
        self.nodes.iter().map(|n| n.tenants).sum()
    }

    /// Render one line per node plus a totals line.
    pub fn render(&self) -> String {
        let mut out = format!("cycle={}\n", self.cycle);
        for n in &self.nodes {
            out.push_str(&format!(
                "node={} queued={} fault_tally={} tenants={}\n",
                n.node, n.queued, n.fault_tally, n.tenants
            ));
        }
        out.push_str(&format!(
            "total queued={} tenants={}\n",
            self.total_queued(),
            self.total_tenants()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_nodes() {
        let snap = ClusterHealthSnapshot {
            cycle: 12,
            nodes: vec![
                NodeHealthSample {
                    node: 0,
                    queued: 3,
                    fault_tally: 1,
                    tenants: 2,
                },
                NodeHealthSample {
                    node: 1,
                    queued: 5,
                    fault_tally: 0,
                    tenants: 1,
                },
            ],
        };
        assert_eq!(snap.total_queued(), 8);
        assert_eq!(snap.total_tenants(), 3);
        assert_eq!(snap.node(1).unwrap().queued, 5);
        assert!(snap.node(2).is_none());
        assert!(snap.render().contains("node=1 queued=5"));
    }
}
