//! # mcfpga-telemetry — deterministic observability
//!
//! A zero-dependency observability subsystem for the multi-context FPGA
//! stack, built around one hard constraint: **instrumentation must not
//! perturb determinism**. The service's responses, faults and billing
//! are bit-identical at any `MCFPGA_THREADS` and lane width, and the
//! telemetry layer extends that guarantee to its own deterministic
//! half:
//!
//! * **Metrics registry** ([`Registry`]) — integer counters, gauges and
//!   log2-bucketed histograms. Counters may be *sharded* (one cell per
//!   worker or shard) and merge by summing cells in cell order — the
//!   same shard-then-lane discipline used for every other merge in the
//!   stack. Each metric carries a [`MetricClass`]: `Deterministic`
//!   metrics (cycle/toggle/count based) must be bit-identical at any
//!   executor width and are compared byte-for-byte in the chaos-replay
//!   gates; `WallClock` metrics (timings, scheduler accounting) are
//!   exported but excluded from those gates. Exporters render a
//!   Prometheus-style text page and a JSON snapshot stamped into
//!   `BENCH_*.json` artifacts.
//! * **Request-lifecycle tracing** ([`TraceBuffer`]) — a bounded ring
//!   of typed [`SpanEvent`]s (admitted → queued → flushed → planned →
//!   evaluated → applied → demuxed, plus expiry / fault / migration
//!   hops) keyed by request id and stamped with the virtual clock.
//!   Overflow drops the oldest span and counts it in the
//!   `trace_dropped` metric; recording never panics or blocks. A
//!   `trace(key)` query reconstructs one request's timeline, and
//!   [`sort_timeline`] merges per-node buffers into one cross-node
//!   timeline.
//! * **Health snapshots** ([`ClusterHealthSnapshot`]) — per-node
//!   queue-depth / fault-tally / tenant gauges published under fixed
//!   names, so fleet-management decisions (Hot/Faulted classification)
//!   are a pure function of published telemetry.
//!
//! ```
//! use mcfpga_telemetry::{MetricClass, SpanKind, Telemetry};
//!
//! let telemetry = Telemetry::new();
//! let admitted = telemetry
//!     .registry()
//!     .counter("admitted", MetricClass::Deterministic);
//!
//! telemetry.set_cycle(3);
//! admitted.inc();
//! telemetry.span(SpanKind::Admitted, 42, 7); // request 42, slack 7
//! telemetry.span(SpanKind::Demuxed, 42, 0);
//!
//! let timeline = telemetry.trace(42);
//! assert_eq!(timeline.len(), 2);
//! assert_eq!(timeline[0].kind, SpanKind::Admitted);
//! assert_eq!(timeline[0].cycle, 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod health;
mod metrics;
mod trace;

pub use health::{
    ClusterHealthSnapshot, NodeHealthSample, ACTIVE_TENANTS_METRIC, FAULT_TALLY_METRIC,
    QUEUE_DEPTH_METRIC,
};
pub use metrics::{Counter, Gauge, Histogram, MetricClass, MetricValue, MetricsSnapshot, Registry};
pub use trace::{
    sort_timeline, tenant_key, ticket_key, SpanEvent, SpanKind, TraceBuffer, TENANT_KEY_BIT,
    TICKET_KEY_BIT,
};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default span ring capacity for a [`Telemetry::new`] instance.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Name of the deterministic counter tracking spans evicted by ring
/// overflow.
pub const TRACE_DROPPED_METRIC: &str = "trace_dropped";

/// One subsystem's telemetry handle: a metric [`Registry`], a span
/// [`TraceBuffer`] and a shared virtual-clock cell used to stamp spans.
///
/// Cloning shares all three — hand clones to sub-components freely.
#[derive(Debug, Clone)]
pub struct Telemetry {
    registry: Registry,
    trace: TraceBuffer,
    cycle: Arc<AtomicU64>,
}

impl Telemetry {
    /// Create a telemetry handle with the default span-ring capacity.
    pub fn new() -> Self {
        Telemetry::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Create a telemetry handle whose span ring holds at most
    /// `capacity` events. The `trace_dropped` counter is registered
    /// eagerly so it exports as zero even before any overflow.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        let registry = Registry::new();
        let dropped = registry.counter(TRACE_DROPPED_METRIC, MetricClass::Deterministic);
        Telemetry {
            trace: TraceBuffer::new(capacity, dropped),
            registry,
            cycle: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span ring buffer.
    pub fn trace_buffer(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Push the current virtual-clock cycle down into the handle; all
    /// subsequent [`span`](Telemetry::span) calls stamp this cycle.
    pub fn set_cycle(&self, cycle: u64) {
        self.cycle.store(cycle, Ordering::Relaxed);
    }

    /// The last pushed virtual-clock cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle.load(Ordering::Relaxed)
    }

    /// Record a span at the current cycle on node 0.
    pub fn span(&self, kind: SpanKind, key: u64, detail: i64) {
        self.trace.record(key, kind, self.cycle(), 0, detail);
    }

    /// Record a span with an explicit cycle stamp on node 0.
    pub fn span_at(&self, kind: SpanKind, key: u64, cycle: u64, detail: i64) {
        self.trace.record(key, kind, cycle, 0, detail);
    }

    /// All spans recorded for `key`, in canonical timeline order.
    pub fn trace(&self, key: u64) -> Vec<SpanEvent> {
        self.trace.trace(key)
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_stamp_the_pushed_cycle() {
        let t = Telemetry::new();
        t.span(SpanKind::Queued, 1, 0);
        t.set_cycle(9);
        t.span(SpanKind::Demuxed, 1, 0);
        let timeline = t.trace(1);
        assert_eq!(timeline[0].cycle, 0);
        assert_eq!(timeline[1].cycle, 9);
    }

    #[test]
    fn clone_shares_registry_trace_and_clock() {
        let t = Telemetry::new();
        let t2 = t.clone();
        t.set_cycle(4);
        t2.span(SpanKind::Admitted, 5, 0);
        assert_eq!(t.trace(5)[0].cycle, 4);
        let c = t.registry().counter("x", MetricClass::Deterministic);
        c.add(2);
        assert_eq!(t2.registry().counter_value("x"), Some(2));
    }

    #[test]
    fn trace_dropped_counter_registered_eagerly() {
        let t = Telemetry::with_trace_capacity(2);
        assert_eq!(t.registry().counter_value(TRACE_DROPPED_METRIC), Some(0));
        for i in 0..5 {
            t.span(SpanKind::Queued, i, 0);
        }
        assert_eq!(t.registry().counter_value(TRACE_DROPPED_METRIC), Some(3));
        assert_eq!(t.trace_buffer().dropped(), 3);
    }
}
