//! Request-lifecycle tracing: a bounded ring buffer of typed span
//! events keyed by request id, with a `trace(key)` query that
//! reconstructs one request's timeline.
//!
//! Spans are recorded only from the sequential phases of the drain
//! pipeline (plan / apply / demux run on the coordinating thread), so
//! the recording order — and therefore the whole buffer — is
//! bit-identical at any `MCFPGA_THREADS` and lane width. On overflow
//! the ring drops the **oldest** span and counts the drop in the
//! `trace_dropped` metric; it never panics and never blocks recording.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::Counter;

/// Key-space tag: the span is keyed by a front-end ticket, not a
/// request id (the request was refused or expired before one existed).
pub const TICKET_KEY_BIT: u64 = 1 << 63;

/// Key-space tag: the span is keyed by a tenant index (faults that
/// cannot be pinned to one request).
pub const TENANT_KEY_BIT: u64 = 1 << 62;

/// Build a span key from a front-end ticket value.
pub fn ticket_key(ticket: u64) -> u64 {
    ticket | TICKET_KEY_BIT
}

/// Build a span key from a tenant index.
pub fn tenant_key(tenant: usize) -> u64 {
    tenant as u64 | TENANT_KEY_BIT
}

/// The lifecycle stage a span event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Admitted by the QoS front-end (or routed by the cluster).
    Admitted,
    /// Queued into a context slot's lane batch.
    Queued,
    /// Re-homed to another node by a live migration.
    MigrationHop,
    /// Flushed from a stream queue into the service.
    Flushed,
    /// Covered by a planned sweep step.
    Planned,
    /// Evaluated by the (parallel, pure) evaluation phase.
    Evaluated,
    /// Merged back in the sequential apply phase.
    Applied,
    /// Demultiplexed into a per-request response.
    Demuxed,
    /// Expired in a stream queue past its deadline.
    Expired,
    /// Terminated by a fault.
    Fault,
}

impl SpanKind {
    /// Lifecycle rank used as the secondary timeline sort key, so that
    /// same-cycle events order admitted → … → demuxed.
    pub fn rank(self) -> u8 {
        match self {
            SpanKind::Admitted => 0,
            SpanKind::Queued => 1,
            SpanKind::MigrationHop => 2,
            SpanKind::Flushed => 3,
            SpanKind::Planned => 4,
            SpanKind::Evaluated => 5,
            SpanKind::Applied => 6,
            SpanKind::Demuxed => 7,
            SpanKind::Expired => 8,
            SpanKind::Fault => 9,
        }
    }

    /// Stable lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Admitted => "admitted",
            SpanKind::Queued => "queued",
            SpanKind::MigrationHop => "migration_hop",
            SpanKind::Flushed => "flushed",
            SpanKind::Planned => "planned",
            SpanKind::Evaluated => "evaluated",
            SpanKind::Applied => "applied",
            SpanKind::Demuxed => "demuxed",
            SpanKind::Expired => "expired",
            SpanKind::Fault => "fault",
        }
    }
}

impl std::fmt::Display for SpanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One recorded span event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Per-buffer record sequence number (assigned at record time).
    pub seq: u64,
    /// Request key: a raw request-id value, or a ticket / tenant key
    /// tagged with [`TICKET_KEY_BIT`] / [`TENANT_KEY_BIT`].
    pub key: u64,
    /// Lifecycle stage.
    pub kind: SpanKind,
    /// Virtual-clock cycle stamp.
    pub cycle: u64,
    /// Node that recorded the event (0 for single-node deployments).
    pub node: u32,
    /// Stage-specific detail: deadline slack for admissions, shard for
    /// planned steps, source node for migration hops, …
    pub detail: i64,
}

impl std::fmt::Display for SpanEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let key = if self.key & TICKET_KEY_BIT != 0 {
            format!("ticket:{}", self.key & !TICKET_KEY_BIT)
        } else if self.key & TENANT_KEY_BIT != 0 {
            format!("tenant:{}", self.key & !TENANT_KEY_BIT)
        } else {
            format!("req:{}", self.key)
        };
        write!(
            f,
            "cycle={} node={} {} {} detail={}",
            self.cycle, self.node, key, self.kind, self.detail
        )
    }
}

/// Sort a timeline in place by `(cycle, lifecycle rank, node, seq)` —
/// the canonical order for rendering one request's reconstructed trace.
pub fn sort_timeline(events: &mut [SpanEvent]) {
    events.sort_by_key(|e| (e.cycle, e.kind.rank(), e.node, e.seq));
}

#[derive(Debug)]
struct Inner {
    ring: VecDeque<SpanEvent>,
    seq: u64,
    dropped: u64,
    capacity: usize,
}

/// A bounded ring buffer of [`SpanEvent`]s.
///
/// Handles are cheap to clone and share the same ring. Recording into a
/// full ring evicts the oldest span and bumps both the internal drop
/// tally and the `trace_dropped` metric counter; it never panics and
/// never blocks.
///
/// A buffer with capacity 0 is **disabled**: [`record`](Self::record)
/// returns before taking the lock, nothing is retained, and nothing is
/// counted as dropped. Hot paths should consult
/// [`is_enabled`](Self::is_enabled) before even *formatting* span
/// details, so a disabled buffer costs one relaxed atomic load per
/// would-be span.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    inner: Arc<Mutex<Inner>>,
    enabled: Arc<AtomicBool>,
    dropped_metric: Counter,
}

impl TraceBuffer {
    /// Create a buffer holding at most `capacity` spans, reporting
    /// drops through `dropped_metric`. Capacity 0 disables tracing.
    pub fn new(capacity: usize, dropped_metric: Counter) -> Self {
        TraceBuffer {
            inner: Arc::new(Mutex::new(Inner {
                ring: VecDeque::with_capacity(capacity),
                seq: 0,
                dropped: 0,
                capacity,
            })),
            enabled: Arc::new(AtomicBool::new(capacity > 0)),
            dropped_metric,
        }
    }

    /// Whether recording is live (capacity > 0). One relaxed atomic
    /// load — cheap enough to gate span *construction* in hot loops.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Resize the ring in place, shared by every clone of this handle.
    /// Shrinking evicts the oldest spans *without* counting them as
    /// dropped (resizing is an operator action, not overflow); capacity
    /// 0 disables recording entirely.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.inner.lock().expect("trace buffer poisoned");
        inner.capacity = capacity;
        while inner.ring.len() > capacity {
            inner.ring.pop_front();
        }
        self.enabled.store(capacity > 0, Ordering::Relaxed);
    }

    /// Record one span event. A no-op (no lock, no drop tally) when the
    /// buffer is disabled.
    pub fn record(&self, key: u64, kind: SpanKind, cycle: u64, node: u32, detail: i64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("trace buffer poisoned");
        if inner.capacity == 0 {
            return;
        }
        if inner.ring.len() >= inner.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
            self.dropped_metric.inc();
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.ring.push_back(SpanEvent {
            seq,
            key,
            kind,
            cycle,
            node,
            detail,
        });
    }

    /// All spans recorded for `key`, in canonical timeline order.
    pub fn trace(&self, key: u64) -> Vec<SpanEvent> {
        let inner = self.inner.lock().expect("trace buffer poisoned");
        let mut events: Vec<SpanEvent> = inner
            .ring
            .iter()
            .filter(|e| e.key == key)
            .cloned()
            .collect();
        drop(inner);
        sort_timeline(&mut events);
        events
    }

    /// Every retained span, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        let inner = self.inner.lock().expect("trace buffer poisoned");
        inner.ring.iter().cloned().collect()
    }

    /// Number of spans evicted by overflow so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("trace buffer poisoned").dropped
    }

    /// Maximum number of retained spans.
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("trace buffer poisoned").capacity
    }

    /// Number of currently retained spans.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace buffer poisoned").ring.len()
    }

    /// Whether the buffer holds no spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the whole buffer as text: a drop-count header line
    /// followed by one line per retained span, oldest first.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("trace buffer poisoned");
        let mut out = format!(
            "spans={} dropped={} capacity={}\n",
            inner.ring.len(),
            inner.dropped,
            inner.capacity
        );
        for e in &inner.ring {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricClass, Registry};

    fn buffer(capacity: usize) -> (TraceBuffer, Registry) {
        let r = Registry::new();
        let dropped = r.counter("trace_dropped", MetricClass::Deterministic);
        (TraceBuffer::new(capacity, dropped), r)
    }

    #[test]
    fn overflow_drops_oldest_and_counts_without_panicking() {
        let (buf, registry) = buffer(4);
        for i in 0..10 {
            buf.record(i, SpanKind::Queued, i, 0, 0);
        }
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.dropped(), 6);
        assert_eq!(registry.counter_value("trace_dropped"), Some(6));
        // oldest six are gone, newest four retained in order
        let keys: Vec<u64> = buf.events().iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![6, 7, 8, 9]);
    }

    #[test]
    fn disabled_buffer_records_nothing_and_counts_no_drops() {
        let (buf, registry) = buffer(0);
        assert!(!buf.is_enabled());
        for i in 0..1000 {
            buf.record(i, SpanKind::Queued, i, 0, 0);
        }
        assert_eq!(buf.len(), 0);
        assert_eq!(buf.dropped(), 0);
        assert_eq!(registry.counter_value("trace_dropped"), Some(0));
    }

    #[test]
    fn set_capacity_resizes_shared_ring_without_counting_drops() {
        let (buf, registry) = buffer(8);
        let clone = buf.clone();
        for i in 0..8 {
            buf.record(i, SpanKind::Queued, i, 0, 0);
        }
        // shrink via the clone: oldest spans evicted, not "dropped"
        clone.set_capacity(3);
        assert_eq!(buf.capacity(), 3);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 0);
        assert_eq!(registry.counter_value("trace_dropped"), Some(0));
        let keys: Vec<u64> = buf.events().iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![5, 6, 7]);
        // shrink to zero disables recording on every clone
        clone.set_capacity(0);
        assert!(!buf.is_enabled());
        buf.record(99, SpanKind::Queued, 0, 0, 0);
        assert_eq!(buf.len(), 0);
        // re-enable and confirm recording resumes
        buf.set_capacity(2);
        assert!(clone.is_enabled());
        clone.record(1, SpanKind::Queued, 0, 0, 0);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn trace_filters_by_key_and_sorts_by_lifecycle() {
        let (buf, _r) = buffer(16);
        // record out of lifecycle order within one cycle
        buf.record(7, SpanKind::Demuxed, 5, 0, 0);
        buf.record(7, SpanKind::Applied, 5, 0, 0);
        buf.record(9, SpanKind::Queued, 5, 0, 0);
        buf.record(7, SpanKind::Queued, 2, 0, 3);
        let t = buf.trace(7);
        let kinds: Vec<SpanKind> = t.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![SpanKind::Queued, SpanKind::Applied, SpanKind::Demuxed]
        );
        assert!(t.iter().all(|e| e.key == 7));
    }

    #[test]
    fn key_spaces_do_not_collide_and_render_distinctly() {
        let (buf, _r) = buffer(8);
        buf.record(3, SpanKind::Queued, 0, 0, 0);
        buf.record(ticket_key(3), SpanKind::Expired, 0, 0, 0);
        buf.record(tenant_key(3), SpanKind::Fault, 0, 0, 0);
        assert_eq!(buf.trace(3).len(), 1);
        assert_eq!(buf.trace(ticket_key(3)).len(), 1);
        assert_eq!(buf.trace(tenant_key(3)).len(), 1);
        let rendered = buf.render();
        assert!(rendered.contains("req:3 queued"));
        assert!(rendered.contains("ticket:3 expired"));
        assert!(rendered.contains("tenant:3 fault"));
    }

    #[test]
    fn timeline_sort_breaks_cycle_ties_by_rank_then_node_then_seq() {
        let mut events = vec![
            SpanEvent {
                seq: 0,
                key: 1,
                kind: SpanKind::Demuxed,
                cycle: 4,
                node: 0,
                detail: 0,
            },
            SpanEvent {
                seq: 1,
                key: 1,
                kind: SpanKind::MigrationHop,
                cycle: 4,
                node: 1,
                detail: 0,
            },
            SpanEvent {
                seq: 2,
                key: 1,
                kind: SpanKind::Admitted,
                cycle: 1,
                node: 1,
                detail: 0,
            },
        ];
        sort_timeline(&mut events);
        let kinds: Vec<SpanKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SpanKind::Admitted,
                SpanKind::MigrationHop,
                SpanKind::Demuxed
            ]
        );
    }
}
