//! Cluster determinism: the same seeded workload replayed against **one
//! node** and against **three heterogeneous nodes** holding the same
//! global shard space produces bit-identical responses, fault logs and
//! billing tables — at executor widths 1 and 16.
//!
//! This is the cluster-level extension of the service's merge-key
//! guarantee: a node is bit-identical at any thread count, and the
//! cluster merges nodes in index order over a node-major global shard
//! space, so *how the shards are cut into nodes* must not be observable
//! either.

use mcfpga_cluster::{Cluster, ClusterFault, ClusterResponse, ClusterTenantId};
use mcfpga_device::TechParams;
use mcfpga_fabric::netlist_ir::generators;
use mcfpga_fabric::FabricParams;
use mcfpga_service::ShardedService;

const TENANTS: usize = 10;
const STEPS: usize = 60;

fn node(shards: usize) -> ShardedService {
    ShardedService::new(shards, FabricParams::default(), TechParams::default()).unwrap()
}

/// Everything externally observable about one replay run.
#[derive(Debug, PartialEq)]
struct Artifacts {
    responses: Vec<ClusterResponse>,
    faults: Vec<ClusterFault>,
    billing: String,
}

/// Tiny deterministic generator so the workload is identical per run.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Replays the canonical workload on a cluster whose nodes own `split`
/// shards each (node-major), at the given executor width.
fn run(split: &[usize], threads: usize) -> Artifacts {
    let mut cluster = Cluster::new(split.iter().map(|&s| node(s)).collect()).unwrap();
    cluster.set_threads(threads);

    let mut tenants: Vec<(ClusterTenantId, usize)> = Vec::new();
    for i in 0..TENANTS {
        // two designs so plane caches and slot costs are not uniform
        let (nl, arity) = if i % 3 == 0 {
            (generators::parity_tree(4).unwrap(), 4)
        } else {
            (generators::parity_tree(3).unwrap(), 3)
        };
        tenants.push((cluster.admit(&format!("t{i}"), &nl).unwrap(), arity));
    }

    let mut responses = Vec::new();
    let mut faults = Vec::new();
    let mut state = 0x5EED_CAFE_u64;
    for step in 0..STEPS {
        let (tenant, arity) = tenants[step % TENANTS];
        let bits = lcg(&mut state);
        let names: Vec<String> = (0..arity).map(|b| format!("x{b}")).collect();
        let inputs: Vec<(&str, bool)> = names
            .iter()
            .enumerate()
            .map(|(b, n)| (n.as_str(), bits >> b & 1 == 1))
            .collect();
        cluster.submit(tenant, &inputs).unwrap();

        match step {
            20 => responses.extend(cluster.drain().unwrap()),
            30 => {
                // poison one plane: the drain records a fault (the slot's
                // requests stay queued), then the repair lets them answer
                cluster.inject_plane_fault(tenants[3].0).unwrap();
                responses.extend(cluster.drain().unwrap());
                faults.extend(cluster.take_faults());
                cluster.repair_plane(tenants[3].0).unwrap();
            }
            45 => {
                // partial flush of two specific tenants
                let subset = [tenants[0].0, tenants[5].0];
                responses.extend(cluster.flush_tenants(&subset).unwrap());
            }
            _ => {}
        }
    }
    responses.extend(cluster.drain().unwrap());
    faults.extend(cluster.take_faults());
    Artifacts {
        responses,
        faults,
        billing: cluster.billing_report(),
    }
}

#[test]
fn one_node_and_three_nodes_are_bit_identical_at_any_width() {
    // 8 global shards cut as [8] and as [3, 3, 2]
    let reference = run(&[8], 1);

    // the workload answered every submitted request exactly once
    assert_eq!(reference.responses.len(), STEPS);
    let mut ids: Vec<u64> = reference
        .responses
        .iter()
        .map(|r| r.request.value())
        .collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), STEPS, "duplicate or lost request ids");
    assert!(
        !reference.faults.is_empty(),
        "the injected fault was recorded"
    );

    for (split, threads) in [
        (&[8usize][..], 16),
        (&[3usize, 3, 2][..], 1),
        (&[3usize, 3, 2][..], 16),
    ] {
        let other = run(split, threads);
        assert_eq!(
            reference, other,
            "split {split:?} at {threads} threads diverged from 1×[8] at 1 thread"
        );
    }
}
