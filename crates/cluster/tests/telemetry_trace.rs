//! Cluster telemetry scenarios: cross-node request-lifecycle trace
//! reconstruction through a live migration, and health snapshots as a
//! pure function of published gauges — including the mid-drain /
//! mid-migration invariant that an in-flight request is counted by
//! exactly one node at any instant.

use mcfpga_cluster::{Cluster, ClusterTenantId, RebalancerPolicy};
use mcfpga_device::TechParams;
use mcfpga_fabric::netlist_ir::generators;
use mcfpga_fabric::FabricParams;
use mcfpga_service::ShardedService;
use mcfpga_telemetry::SpanKind;

fn node(shards: usize) -> ShardedService {
    ShardedService::new(shards, FabricParams::default(), TechParams::default()).unwrap()
}

fn submit3(c: &mut Cluster, t: ClusterTenantId, bits: u64) -> mcfpga_cluster::ClusterRequestId {
    c.submit(
        t,
        &[
            ("x0", bits & 1 == 1),
            ("x1", bits >> 1 & 1 == 1),
            ("x2", bits >> 2 & 1 == 1),
        ],
    )
    .unwrap()
}

/// The acceptance scenario: a request admitted on node 0, carried to
/// node 1 by a live tenant migration while still queued, then drained —
/// `trace` must reconstruct the complete admitted→demuxed timeline,
/// including the cross-node `MigrationHop`, with every span keyed to the
/// cluster request id and stamped with the node that recorded it.
#[test]
fn trace_reconstructs_cross_node_timeline_through_migration() {
    let mut c = Cluster::new(vec![node(2), node(2)]).unwrap();
    let parity = generators::parity_tree(3).unwrap();
    let t = c.admit("mover", &parity).unwrap();
    assert_eq!(c.tenant_node(t).unwrap(), 0);

    c.advance(5);
    let rid = submit3(&mut c, t, 0b101);
    c.advance(2); // clock 7
    c.migrate_tenant(t, 1).unwrap();
    assert_eq!(c.tenant_node(t).unwrap(), 1);
    c.advance(2); // clock 9
    let responses = c.drain().unwrap();
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].request, rid);
    assert!(!responses[0].outputs[0].1, "parity(1,0,1) is even");

    let timeline = c.trace(rid);
    let kinds: Vec<SpanKind> = timeline.iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![
            SpanKind::Admitted,
            SpanKind::Queued,
            SpanKind::MigrationHop,
            SpanKind::Planned,
            SpanKind::Evaluated,
            SpanKind::Applied,
            SpanKind::Demuxed,
        ],
        "full timeline:\n{}",
        timeline
            .iter()
            .map(|e| format!("  {e}\n"))
            .collect::<String>()
    );
    // every span answers to the cluster request id, stamped with the
    // node that recorded it: admission on node 0, everything after the
    // hop on node 1
    assert!(timeline.iter().all(|e| e.key == rid.value()));
    let nodes: Vec<u32> = timeline.iter().map(|e| e.node).collect();
    assert_eq!(nodes, vec![0, 0, 1, 1, 1, 1, 1]);
    // the hop names its source, and the virtual-clock stamps hold
    let hop = &timeline[2];
    assert_eq!(hop.detail, 0, "hop records the source node");
    assert_eq!(hop.cycle, 7);
    assert_eq!(timeline[0].cycle, 5, "admission stamped at submit time");
    assert_eq!(timeline[6].cycle, 9, "demux stamped at drain time");
}

/// A request that never migrates still traces end to end on its single
/// node.
#[test]
fn trace_of_local_request_covers_full_lifecycle() {
    let mut c = Cluster::new(vec![node(2)]).unwrap();
    let parity = generators::parity_tree(3).unwrap();
    let t = c.admit("stay", &parity).unwrap();
    let rid = submit3(&mut c, t, 0b111);
    c.drain().unwrap();

    let kinds: Vec<SpanKind> = c.trace(rid).iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![
            SpanKind::Admitted,
            SpanKind::Queued,
            SpanKind::Planned,
            SpanKind::Evaluated,
            SpanKind::Applied,
            SpanKind::Demuxed,
        ]
    );
    assert!(c.trace(rid).iter().all(|e| e.node == 0));
}

/// The mid-drain regression pin: a health snapshot taken while requests
/// are in flight — including *mid-migration*, when a tenant's queue has
/// just been re-homed — counts every queued request on exactly one node.
/// The total is conserved from submit through migration and reaches
/// zero after the drain.
#[test]
fn health_snapshot_never_double_counts_inflight_requests() {
    let mut c = Cluster::new(vec![node(2), node(2)]).unwrap();
    let parity = generators::parity_tree(3).unwrap();
    let movers: Vec<ClusterTenantId> = (0..2)
        .map(|i| c.admit(&format!("t{i}"), &parity).unwrap())
        .collect();
    for (i, &t) in movers.iter().enumerate() {
        for j in 0..3 {
            submit3(&mut c, t, (i + j) as u64);
        }
    }
    let before = c.health_snapshot();
    assert_eq!(before.total_queued(), 6);
    assert_eq!(before.total_tenants(), 2);

    // move a loaded tenant across nodes: its queue travels with it, and
    // the snapshot total must not count those requests on both nodes
    let src = c.tenant_node(movers[0]).unwrap();
    let dst = 1 - src;
    let src_queued_before = c.health_snapshot().node(src).unwrap().queued;
    c.migrate_tenant(movers[0], dst).unwrap();
    let mid = c.health_snapshot();
    assert_eq!(
        mid.total_queued(),
        6,
        "migration double-counted or dropped in-flight requests:\n{}",
        mid.render()
    );
    assert!(
        mid.node(src).unwrap().queued < src_queued_before,
        "the moved tenant's requests left the source's gauge"
    );

    let answered = c.drain().unwrap();
    assert_eq!(answered.len(), 6);
    let after = c.health_snapshot();
    assert_eq!(after.total_queued(), 0, "drained fleet publishes empty");
    assert_eq!(after.total_tenants(), 2);
}

/// Fault tallies surface through the snapshot (the same numbers the
/// rebalancer classifies from), and a node restart zeroes the published
/// gauge along with the node.
#[test]
fn snapshot_fault_tally_follows_faults_and_restart() {
    let mut c = Cluster::new(vec![node(2), node(2)]).unwrap();
    c.enable_rebalancer(RebalancerPolicy {
        check_period: 1,
        hot_pending: 1000,
        fault_threshold: 100, // never trips: we only watch the gauge
    });
    let parity = generators::parity_tree(3).unwrap();
    let t = c.admit("flaky", &parity).unwrap();
    let home = c.tenant_node(t).unwrap();

    submit3(&mut c, t, 1);
    c.inject_plane_fault(t).unwrap();
    c.drain().unwrap_or_default();
    c.advance(1);
    c.pump().unwrap(); // collects faults into the published gauge
    let snap = c.health_snapshot();
    assert!(
        snap.node(home).unwrap().fault_tally >= 1,
        "fault not published:\n{}",
        snap.render()
    );

    c.repair_plane(t).unwrap();
    c.drain().unwrap();
    c.take_faults();
    c.drain_node(home).unwrap();
    c.restart_node(home).unwrap();
    assert_eq!(
        c.health_snapshot().node(home).unwrap().fault_tally,
        0,
        "restart re-registers the fault gauge zeroed"
    );
}
