//! Cluster operational scenarios: node drain, rolling restart,
//! thundering-herd re-admission, rebalancer interventions, heterogeneous
//! 8×8 → 10×10 migration, and a seeded chaos replay — all asserting the
//! cluster's core conservation law: **every admitted request is answered
//! exactly once**, wherever its tenant happens to run by then.

use mcfpga_cluster::{
    Cluster, ClusterError, ClusterRequestId, ClusterTenantId, NodeHealth, RebalanceAction,
    RebalancerPolicy,
};
use mcfpga_device::TechParams;
use mcfpga_fabric::netlist_ir::generators;
use mcfpga_fabric::FabricParams;
use mcfpga_service::ShardedService;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

fn node(shards: usize) -> ShardedService {
    ShardedService::new(shards, FabricParams::default(), TechParams::default()).unwrap()
}

fn cluster3() -> Cluster {
    Cluster::new(vec![node(2), node(2), node(2)]).unwrap()
}

/// Submits `parity_tree(3)` inputs encoding the low 3 bits of `bits`.
fn submit3(c: &mut Cluster, t: ClusterTenantId, bits: u64) -> ClusterRequestId {
    c.submit(
        t,
        &[
            ("x0", bits & 1 == 1),
            ("x1", bits >> 1 & 1 == 1),
            ("x2", bits >> 2 & 1 == 1),
        ],
    )
    .unwrap()
}

#[test]
fn node_drain_moves_tenants_and_preserves_inflight_requests() {
    let mut c = cluster3();
    let parity = generators::parity_tree(3).unwrap();
    let tenants: Vec<ClusterTenantId> = (0..6)
        .map(|i| c.admit(&format!("t{i}"), &parity).unwrap())
        .collect();
    // two in-flight requests per tenant, none drained yet
    let mut issued = HashSet::new();
    for (i, &t) in tenants.iter().enumerate() {
        issued.insert(submit3(&mut c, t, i as u64));
        issued.insert(submit3(&mut c, t, (i + 3) as u64));
    }

    let moved = c.drain_node(1).unwrap();
    assert!(!moved.is_empty(), "node 1 held tenants before the drain");
    assert_eq!(c.node_health(1).unwrap(), NodeHealth::Drained);
    assert!(c.tenants_on(1).unwrap().is_empty());

    // the queued requests travelled with their tenants: all answered,
    // each exactly once, under the ids the submitter was given
    let responses = c.drain().unwrap();
    let answered: HashSet<ClusterRequestId> = responses.iter().map(|r| r.request).collect();
    assert_eq!(
        responses.len(),
        issued.len(),
        "a request was lost or duplicated"
    );
    assert_eq!(answered, issued);

    // a drained node is out of the admission rotation
    let late = c.admit("late", &parity).unwrap();
    assert_ne!(c.tenant_node(late).unwrap(), 1);
}

#[test]
fn rolling_restart_keeps_the_cluster_serving() {
    let mut c = cluster3();
    let parity = generators::parity_tree(3).unwrap();
    let tenants: Vec<ClusterTenantId> = (0..6)
        .map(|i| c.admit(&format!("t{i}"), &parity).unwrap())
        .collect();

    let mut issued = HashSet::new();
    let mut answered: HashSet<ClusterRequestId> = HashSet::new();
    for restart in 0..c.node_count() {
        // a wave of traffic lands while one node is cycled
        for (i, &t) in tenants.iter().enumerate() {
            issued.insert(submit3(&mut c, t, (restart + i) as u64));
        }
        c.drain_node(restart).unwrap();
        c.restart_node(restart).unwrap();
        assert_eq!(c.node_health(restart).unwrap(), NodeHealth::Healthy);
        for r in c.drain().unwrap() {
            assert!(
                answered.insert(r.request),
                "duplicate answer for {}",
                r.request
            );
        }
    }

    assert_eq!(answered, issued, "every request answered exactly once");
    for i in 0..c.node_count() {
        assert_eq!(c.node_health(i).unwrap(), NodeHealth::Healthy);
    }
    // the fleet still takes traffic end to end
    let t0 = tenants[0];
    submit3(&mut c, t0, 0b111);
    let last = c.drain().unwrap();
    assert_eq!(last.len(), 1);
    assert!(last[0].outputs[0].1, "parity(1,1,1) is odd");
}

#[test]
fn thundering_herd_readmits_across_the_restarted_node() {
    let mut c = Cluster::new(vec![node(2), node(2)]).unwrap();
    let parity = generators::parity_tree(3).unwrap();
    let old: Vec<ClusterTenantId> = (0..4)
        .map(|i| c.admit(&format!("old{i}"), &parity).unwrap())
        .collect();

    c.drain_node(0).unwrap();
    c.restart_node(0).unwrap();

    // the herd: many admissions the moment the node returns
    let herd: Vec<ClusterTenantId> = (0..8)
        .map(|i| c.admit(&format!("new{i}"), &parity).unwrap())
        .collect();
    let on0 = c.tenants_on(0).unwrap().len();
    let on1 = c.tenants_on(1).unwrap().len();
    assert!(on0 > 0, "the restarted node rejoined the rotation");
    assert!(on1 > 0, "the herd did not stampede onto one node");
    assert_eq!(on0 + on1, old.len() + herd.len());

    // everyone — survivors and herd — serves correctly
    let mut issued = HashSet::new();
    for (i, &t) in old.iter().chain(herd.iter()).enumerate() {
        issued.insert(submit3(&mut c, t, i as u64));
    }
    let responses = c.drain().unwrap();
    let answered: HashSet<ClusterRequestId> = responses.iter().map(|r| r.request).collect();
    assert_eq!(answered, issued);
}

#[test]
fn rebalancer_sheds_hot_node_and_evacuates_faulted_node() {
    let mut c = cluster3();
    c.enable_rebalancer(RebalancerPolicy {
        check_period: 10,
        hot_pending: 4,
        fault_threshold: 2,
    });
    let parity = generators::parity_tree(3).unwrap();

    // corner all four tenants onto node 0 by taking the others out of
    // rotation during admission
    c.set_node_health(1, NodeHealth::Draining).unwrap();
    c.set_node_health(2, NodeHealth::Draining).unwrap();
    let tenants: Vec<ClusterTenantId> = (0..4)
        .map(|i| c.admit(&format!("t{i}"), &parity).unwrap())
        .collect();
    assert_eq!(c.tenants_on(0).unwrap().len(), 4);
    c.set_node_health(1, NodeHealth::Healthy).unwrap();
    c.set_node_health(2, NodeHealth::Healthy).unwrap();

    // 6 queued requests ≥ hot_pending=4: the next check marks node 0 hot,
    // sheds half its tenants (their queues travel), and sees it recover
    let mut issued = HashSet::new();
    for (i, &t) in tenants.iter().take(3).enumerate() {
        issued.insert(submit3(&mut c, t, i as u64));
        issued.insert(submit3(&mut c, t, (i + 4) as u64));
    }
    c.advance(10);
    let actions = c.pump().unwrap();
    assert!(actions.contains(&RebalanceAction::MarkedHot { node: 0 }));
    assert!(actions
        .iter()
        .any(|a| matches!(a, RebalanceAction::Migrated { from: 0, .. })));
    assert!(actions.contains(&RebalanceAction::Recovered { node: 0 }));
    assert_eq!(c.tenants_on(0).unwrap().len(), 2);

    let responses = c.drain().unwrap();
    let mut answered: HashSet<ClusterRequestId> = responses.iter().map(|r| r.request).collect();
    assert_eq!(answered, issued, "shed queues still answered exactly once");

    // now fault a node past the threshold: two poisoned sweeps
    let victim = *c
        .tenants_on(1)
        .unwrap()
        .first()
        .expect("node 1 got a shed tenant");
    let vnode = c.tenant_node(victim).unwrap();
    assert_eq!(vnode, 1);
    for round in 0..2u64 {
        c.inject_plane_fault(victim).unwrap();
        issued.insert(submit3(&mut c, victim, round));
        let r = c.drain().unwrap();
        assert!(
            r.iter().all(|resp| resp.tenant != victim),
            "poisoned slot answered"
        );
    }
    c.advance(10);
    let actions = c.pump().unwrap();
    assert!(actions.contains(&RebalanceAction::MarkedFaulted { node: vnode }));
    assert!(
        c.tenants_on(vnode).unwrap().is_empty(),
        "faulted node evacuated"
    );
    assert_eq!(c.node_health(vnode).unwrap(), NodeHealth::Faulted);

    // the evacuation reinstalled the true plane from the cache: the
    // stranded requests answer from the new home
    let responses = c.drain().unwrap();
    for r in &responses {
        assert!(
            answered.insert(r.request),
            "duplicate answer for {}",
            r.request
        );
    }
    assert_eq!(
        answered, issued,
        "every admitted request answered exactly once"
    );

    // only a restart brings the faulted node back
    c.restart_node(vnode).unwrap();
    assert_eq!(c.node_health(vnode).unwrap(), NodeHealth::Healthy);
}

#[test]
fn tenant_migrates_from_8x8_node_onto_10x10_node_bit_for_bit() {
    let small = FabricParams {
        width: 8,
        height: 8,
        ..FabricParams::default()
    };
    let big = FabricParams {
        width: 10,
        height: 10,
        ..FabricParams::default()
    };
    let mut c = Cluster::new(vec![
        ShardedService::new(2, small, TechParams::default()).unwrap(),
        ShardedService::new(2, big, TechParams::default()).unwrap(),
    ])
    .unwrap();
    let parity = generators::parity_tree(3).unwrap();
    // round-robin puts both on the 8×8 node (global shards 0 and 1)
    let mover = c.admit("mover", &parity).unwrap();
    let twin = c.admit("twin", &parity).unwrap();
    assert_eq!(c.tenant_node(mover).unwrap(), 0);
    assert_eq!(c.tenant_node(twin).unwrap(), 0);

    let vectors: &[u64] = &[0b000, 0b110, 0b101, 0b011, 0b111, 0b001];
    let mut mover_outs = Vec::new();
    let mut twin_outs = Vec::new();
    let collect =
        |c: &mut Cluster, mover_outs: &mut Vec<Vec<bool>>, twin_outs: &mut Vec<Vec<bool>>| {
            for r in c.drain().unwrap() {
                let outs: Vec<bool> = r.outputs.iter().map(|(_, v)| *v).collect();
                if r.tenant == mover {
                    mover_outs.push(outs);
                } else {
                    twin_outs.push(outs);
                }
            }
        };

    // phase 1: both serve from the 8×8 node
    for &bits in &vectors[..2] {
        submit3(&mut c, mover, bits);
        submit3(&mut c, twin, bits);
    }
    collect(&mut c, &mut mover_outs, &mut twin_outs);

    // phase 2: queue one request each, then migrate the mover onto the
    // 10×10 node with its request still pending — pad-and-remap
    submit3(&mut c, mover, vectors[2]);
    submit3(&mut c, twin, vectors[2]);
    c.migrate_tenant(mover, 1).unwrap();
    assert_eq!(c.tenant_node(mover).unwrap(), 1);
    collect(&mut c, &mut mover_outs, &mut twin_outs);

    // phase 3: steady state on the larger geometry
    for &bits in &vectors[3..] {
        submit3(&mut c, mover, bits);
        submit3(&mut c, twin, bits);
    }
    collect(&mut c, &mut mover_outs, &mut twin_outs);

    assert_eq!(mover_outs.len(), vectors.len());
    assert_eq!(
        mover_outs, twin_outs,
        "migrated tenant diverged from its never-migrated twin"
    );
    assert_eq!(c.usage(mover).unwrap().migrations, 1);
    assert_eq!(c.usage(twin).unwrap().migrations, 0);
}

/// Seeded chaos: random submits, drains, fault injections, repairs,
/// directed migrations, rebalancer ticks and node drain/restart cycles.
/// Whatever the interleaving, the conservation law holds and a replay at
/// a different executor width produces bit-identical responses.
#[test]
fn seeded_cluster_chaos_replay() {
    let first = chaos_run(0xC1A0_5EED, 1);
    let second = chaos_run(0xC1A0_5EED, 8);
    assert_eq!(
        first, second,
        "chaos replay diverged between 1 and 8 executor threads"
    );
}

fn chaos_run(seed: u64, threads: usize) -> Vec<(u64, usize, Vec<bool>)> {
    let mut c = cluster3();
    c.set_threads(threads);
    c.enable_rebalancer(RebalancerPolicy {
        check_period: 16,
        hot_pending: 24,
        fault_threshold: 4,
    });
    let parity = generators::parity_tree(3).unwrap();
    let tenants: Vec<ClusterTenantId> = (0..8)
        .map(|i| c.admit(&format!("t{i}"), &parity).unwrap())
        .collect();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut issued: HashSet<ClusterRequestId> = HashSet::new();
    let mut answered: HashSet<ClusterRequestId> = HashSet::new();
    let mut poisoned: HashSet<ClusterTenantId> = HashSet::new();
    let mut log: Vec<(u64, usize, Vec<bool>)> = Vec::new();
    let absorb = |responses: Vec<mcfpga_cluster::ClusterResponse>,
                  answered: &mut HashSet<ClusterRequestId>,
                  log: &mut Vec<(u64, usize, Vec<bool>)>| {
        for r in responses {
            assert!(
                answered.insert(r.request),
                "duplicate answer for {}",
                r.request
            );
            log.push((
                r.request.value(),
                r.tenant.index(),
                r.outputs.iter().map(|(_, v)| *v).collect(),
            ));
        }
    };

    for _ in 0..400 {
        match rng.random_range(0..100u32) {
            0..=49 => {
                let t = tenants[rng.random_range(0..tenants.len())];
                let bits = rng.random_range(0..8u64);
                match c.submit(
                    t,
                    &[
                        ("x0", bits & 1 == 1),
                        ("x1", bits >> 1 & 1 == 1),
                        ("x2", bits >> 2 & 1 == 1),
                    ],
                ) {
                    Ok(id) => {
                        assert!(issued.insert(id), "request id reused");
                    }
                    // a faulted node refuses traffic — legitimate
                    Err(ClusterError::NodeUnavailable { .. }) => {}
                    Err(e) => panic!("submit failed: {e}"),
                }
            }
            50..=64 => absorb(c.drain().unwrap(), &mut answered, &mut log),
            65..=71 => {
                let t = tenants[rng.random_range(0..tenants.len())];
                if c.inject_plane_fault(t).is_ok() {
                    poisoned.insert(t);
                }
            }
            72..=79 => {
                for &t in poisoned.iter() {
                    c.repair_plane(t).unwrap();
                }
                poisoned.clear();
            }
            80..=87 => {
                let t = tenants[rng.random_range(0..tenants.len())];
                let dst = rng.random_range(0..c.node_count());
                let from = c.tenant_node(t).unwrap();
                match c.migrate_tenant(t, dst) {
                    // a real move re-installs the true plane: it heals
                    Ok(()) if from != dst => {
                        poisoned.remove(&t);
                    }
                    Ok(()) => {}
                    Err(ClusterError::CapacityExhausted) => {}
                    Err(e) => panic!("migrate failed: {e}"),
                }
            }
            88..=93 => {
                c.advance(rng.random_range(1..32u64));
                for action in c.pump().unwrap() {
                    // an evacuation restores from the cache → heals
                    if let RebalanceAction::Migrated { tenant, .. } = action {
                        poisoned.remove(&tenant);
                    }
                }
            }
            _ => {
                let victim = rng.random_range(0..c.node_count());
                match c.drain_node(victim) {
                    Ok(moved) => {
                        for t in moved {
                            poisoned.remove(&t);
                        }
                        c.restart_node(victim).unwrap();
                    }
                    // no healthy destination with capacity: put the node
                    // back into rotation and move on
                    Err(ClusterError::CapacityExhausted) => {
                        c.set_node_health(victim, NodeHealth::Healthy).unwrap();
                    }
                    Err(e) => panic!("drain_node failed: {e}"),
                }
            }
        }
    }

    // settle: heal everything, recover faulted nodes, flush the fleet
    for &t in poisoned.iter() {
        c.repair_plane(t).unwrap();
    }
    for i in 0..c.node_count() {
        if c.node_health(i).unwrap() == NodeHealth::Faulted {
            match c.drain_node(i) {
                Ok(_) => c.restart_node(i).unwrap(),
                Err(ClusterError::CapacityExhausted) => {
                    c.set_node_health(i, NodeHealth::Healthy).unwrap();
                }
                Err(e) => panic!("recovery drain failed: {e}"),
            }
        }
    }
    absorb(c.drain().unwrap(), &mut answered, &mut log);

    assert_eq!(
        answered, issued,
        "conservation violated: answered set != issued set"
    );
    log
}
