//! The cluster façade: member nodes, the router, the deterministic
//! node-then-shard-then-lane merge, live migration, and the virtual-clock
//! rebalancer pump.

use crate::rebalancer::{RebalanceAction, RebalancerPolicy};
use crate::ClusterError;
use mcfpga_cost::attribution::{render_billing, TenantUsage};
use mcfpga_device::TechParams;
use mcfpga_fabric::{FabricParams, LogicNetlist};
use mcfpga_service::{
    best_slot_scored, netlist_fingerprint, Response, ServiceError, ShardedService, TenantId,
};
use mcfpga_telemetry::{
    sort_timeline, tenant_key, ClusterHealthSnapshot, Counter, Gauge, MetricClass,
    NodeHealthSample, SpanEvent, SpanKind, Telemetry, ACTIVE_TENANTS_METRIC, FAULT_TALLY_METRIC,
    QUEUE_DEPTH_METRIC,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Requests submitted through the cluster façade
/// ([`MetricClass::Deterministic`]).
pub const CLUSTER_REQUESTS_METRIC: &str = "cluster_requests_submitted";
/// Responses merged out of member nodes ([`MetricClass::Deterministic`]).
pub const CLUSTER_RESPONSES_METRIC: &str = "cluster_responses_merged";
/// Live tenant migrations completed ([`MetricClass::Deterministic`]).
pub const CLUSTER_MIGRATIONS_METRIC: &str = "cluster_migrations";
/// Faults merged into the cluster log ([`MetricClass::Deterministic`]).
pub const CLUSTER_FAULTS_METRIC: &str = "cluster_faults_total";
/// Interventions taken by the rebalancer pump
/// ([`MetricClass::Deterministic`]).
pub const CLUSTER_REBALANCE_ACTIONS_METRIC: &str = "cluster_rebalance_actions";

/// The cluster façade's own metric handles, registered on the cluster
/// [`Telemetry`] (distinct from each member node's registry).
#[derive(Debug, Clone)]
struct ClusterMetrics {
    requests: Counter,
    responses: Counter,
    migrations: Counter,
    faults: Counter,
    rebalance_actions: Counter,
}

impl ClusterMetrics {
    fn register(telemetry: &Telemetry) -> Self {
        let r = telemetry.registry();
        let det = MetricClass::Deterministic;
        ClusterMetrics {
            requests: r.counter(CLUSTER_REQUESTS_METRIC, det),
            responses: r.counter(CLUSTER_RESPONSES_METRIC, det),
            migrations: r.counter(CLUSTER_MIGRATIONS_METRIC, det),
            faults: r.counter(CLUSTER_FAULTS_METRIC, det),
            rebalance_actions: r.counter(CLUSTER_REBALANCE_ACTIONS_METRIC, det),
        }
    }
}

/// Cluster-global tenant handle, minted in admission order starting at 0.
///
/// Stable across live migration: the handle keeps working wherever the
/// tenant currently runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterTenantId(pub(crate) usize);

impl ClusterTenantId {
    /// The dense index of this tenant (cluster admission order).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ClusterTenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cten#{}", self.0)
    }
}

/// Cluster-global request handle, minted in submission order starting
/// at 0. Survives migration: a request queued on the source node is
/// answered under the same cluster id from the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterRequestId(pub(crate) u64);

impl ClusterRequestId {
    /// The raw sequence number (cluster submission order).
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for ClusterRequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "creq#{}", self.0)
    }
}

/// One answered request, with node-local ids already translated to
/// cluster ids — bit-identical for a given workload at any node count
/// and any executor width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterResponse {
    /// The cluster id the answered submission returned.
    pub request: ClusterRequestId,
    /// The tenant the request belonged to.
    pub tenant: ClusterTenantId,
    /// `(output name, value)` pairs, netlist output order.
    pub outputs: Vec<(Arc<str>, bool)>,
}

/// One slot-execution fault, translated to cluster coordinates.
///
/// `shard` is the **global** shard index (node-major: node 0's shards
/// first), so fault logs — like responses — compare bit-for-bit across
/// different node counts holding the same global shard space.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterFault {
    /// The tenant whose slot faulted.
    pub tenant: ClusterTenantId,
    /// Global shard index of the faulted slot.
    pub shard: usize,
    /// Context slot within the shard.
    pub ctx: usize,
    /// The underlying execution error.
    pub error: ServiceError,
}

/// Lifecycle state of a member node, as seen by the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeHealth {
    /// Admitting and serving.
    Healthy,
    /// Serving but shedding load: no new admissions, rebalancer migrates
    /// tenants away until queue depth recovers.
    Hot,
    /// Being emptied: no new admissions, existing tenants still serve
    /// while they are migrated off.
    Draining,
    /// Empty and out of rotation (a completed drain).
    Drained,
    /// Exceeded the fault threshold: refuses submissions, rebalancer
    /// evacuates its tenants; only [`Cluster::restart_node`] recovers it.
    Faulted,
}

impl NodeHealth {
    /// May the router place **new** tenants here?
    #[must_use]
    pub fn admits(self) -> bool {
        matches!(self, NodeHealth::Healthy)
    }

    /// May resident tenants still accept submissions?
    #[must_use]
    pub fn serves(self) -> bool {
        !matches!(self, NodeHealth::Faulted)
    }
}

impl std::fmt::Display for NodeHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            NodeHealth::Healthy => "healthy",
            NodeHealth::Hot => "hot",
            NodeHealth::Draining => "draining",
            NodeHealth::Drained => "drained",
            NodeHealth::Faulted => "faulted",
        };
        f.write_str(s)
    }
}

/// How the cluster router picks a node (and slot) for a new tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RouterPolicy {
    /// One cursor over the **global shard space** (node-major), probed
    /// exactly like a single `N·S`-shard service's round-robin registry —
    /// the policy under which a cluster is bit-identical to fewer, larger
    /// nodes.
    #[default]
    RoundRobin,
    /// Every admitting node reports its best free slot's
    /// [`SlotScore`](mcfpga_service::SlotScore); the smallest
    /// `(marginal sweep cost, affinity miss, load)` key wins, node index
    /// as the final tiebreak.
    EnergyAware,
}

/// One member node: the service plus the router's view of it.
struct Node {
    svc: ShardedService,
    health: NodeHealth,
    /// First global shard index owned by this node (node-major blocks).
    shard_base: usize,
    shards: usize,
    params: FabricParams,
    tech: TechParams,
    /// Cumulative slot faults since the last restart, *published* on the
    /// node's own telemetry registry under [`FAULT_TALLY_METRIC`] — the
    /// rebalancer reads it back through a [`ClusterHealthSnapshot`]
    /// rather than poking cluster-private state.
    fault_gauge: Gauge,
}

impl Node {
    /// Registers the node's published fault gauge on its service
    /// registry (fresh and zeroed — used at construction and restart).
    fn register_fault_gauge(svc: &ShardedService) -> Gauge {
        svc.telemetry()
            .registry()
            .gauge(FAULT_TALLY_METRIC, MetricClass::Deterministic)
    }
}

/// Everything the cluster must remember about an admitted tenant to
/// route, re-route and — when the source node is gone — re-provision it.
struct RouteEntry {
    name: String,
    /// The admission netlist, kept so a destination whose plane cache
    /// misses the digest can recompile instead of dead-ending.
    netlist: LogicNetlist,
    /// Geometry of the node the tenant was *admitted* on — the geometry
    /// its configuration digest was computed over.
    admit_params: FabricParams,
    node: usize,
    local: TenantId,
}

/// A federation of [`ShardedService`] nodes behind one deterministic
/// façade: router, merge, migration, rebalancing. See the
/// [crate docs](crate) for the model.
pub struct Cluster {
    nodes: Vec<Node>,
    policy: RouterPolicy,
    routes: Vec<RouteEntry>,
    /// `(node, node-local tenant)` → cluster tenant.
    tenant_map: HashMap<(usize, TenantId), ClusterTenantId>,
    /// `(node, node-local raw request id)` → cluster request. Entries are
    /// consumed when the response is merged and re-pointed when a
    /// migration carries the pending request to another node.
    request_map: HashMap<(usize, u64), ClusterRequestId>,
    next_request: u64,
    /// Round-robin cursor over the global shard space.
    cursor: usize,
    /// Netlist fingerprint → context index of a previous admission
    /// (cross-node plane-affinity hint for energy-aware routing).
    affinity: HashMap<u64, usize>,
    /// Virtual clock, advanced by the caller; drives the rebalancer.
    clock: u64,
    last_check: u64,
    rebalancer: Option<RebalancerPolicy>,
    fault_log: Vec<ClusterFault>,
    threads: Option<usize>,
    /// The cluster's own telemetry: façade-level metrics plus the span
    /// ring holding `Admitted`/`MigrationHop`/`Fault` hops keyed by
    /// cluster request/tenant ids.
    telemetry: Telemetry,
    metrics: ClusterMetrics,
    /// Cluster request → every `(node, node-local raw id)` incarnation it
    /// has had, oldest first. Unlike `request_map` (consumed at merge),
    /// hops are kept so [`trace`](Self::trace) can stitch the full
    /// cross-node timeline after the response is long gone.
    trace_map: HashMap<u64, Vec<(usize, u64)>>,
}

impl Cluster {
    /// Federates `nodes` (at least one) under the default
    /// [`RouterPolicy::RoundRobin`]. Node order is load-bearing: it fixes
    /// the global shard space (node 0's shards first) and therefore the
    /// merge order of every response, fault and billing row.
    pub fn new(nodes: Vec<ShardedService>) -> Result<Self, ClusterError> {
        if nodes.is_empty() {
            return Err(ClusterError::NoNodes);
        }
        let mut base = 0;
        let nodes = nodes
            .into_iter()
            .map(|svc| {
                let shards = svc.shard_count();
                let node = Node {
                    health: NodeHealth::Healthy,
                    shard_base: base,
                    shards,
                    params: *svc.params(),
                    tech: svc.tech().clone(),
                    fault_gauge: Node::register_fault_gauge(&svc),
                    svc,
                };
                base += shards;
                node
            })
            .collect();
        let telemetry = Telemetry::new();
        let metrics = ClusterMetrics::register(&telemetry);
        Ok(Cluster {
            nodes,
            policy: RouterPolicy::default(),
            routes: Vec::new(),
            tenant_map: HashMap::new(),
            request_map: HashMap::new(),
            next_request: 0,
            cursor: 0,
            affinity: HashMap::new(),
            clock: 0,
            last_check: 0,
            rebalancer: None,
            fault_log: Vec::new(),
            threads: None,
            telemetry,
            metrics,
            trace_map: HashMap::new(),
        })
    }

    /// Number of member nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total shards across all nodes — the size of the global shard space.
    #[must_use]
    pub fn total_shards(&self) -> usize {
        self.nodes.last().map_or(0, |n| n.shard_base + n.shards)
    }

    /// Read-only view of one member node's service.
    pub fn node(&self, node: usize) -> Result<&ShardedService, ClusterError> {
        self.check_node(node)?;
        Ok(&self.nodes[node].svc)
    }

    /// Current health of one member node.
    pub fn node_health(&self, node: usize) -> Result<NodeHealth, ClusterError> {
        self.check_node(node)?;
        Ok(self.nodes[node].health)
    }

    /// Operator override of a node's health state (the rebalancer and
    /// [`drain_node`](Self::drain_node)/[`restart_node`](Self::restart_node)
    /// manage it autonomously otherwise).
    pub fn set_node_health(&mut self, node: usize, health: NodeHealth) -> Result<(), ClusterError> {
        self.check_node(node)?;
        self.nodes[node].health = health;
        Ok(())
    }

    /// The active router policy.
    #[must_use]
    pub fn router_policy(&self) -> RouterPolicy {
        self.policy
    }

    /// Switches the router policy for subsequent admissions.
    pub fn set_router_policy(&mut self, policy: RouterPolicy) {
        self.policy = policy;
    }

    /// Sets every node's executor width (and re-applies it to nodes
    /// rebuilt by [`restart_node`](Self::restart_node)). Output is
    /// bit-identical at any width; this only trades wall-clock for cores.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = Some(threads);
        for node in &mut self.nodes {
            node.svc.set_threads(threads);
        }
    }

    /// Requests queued but unexecuted across all nodes.
    #[must_use]
    pub fn pending_requests(&self) -> usize {
        self.nodes.iter().map(|n| n.svc.pending_requests()).sum()
    }

    /// Cluster tenants currently resident on `node`, id order.
    pub fn tenants_on(&self, node: usize) -> Result<Vec<ClusterTenantId>, ClusterError> {
        self.check_node(node)?;
        Ok(self
            .routes
            .iter()
            .enumerate()
            .filter(|(_, r)| r.node == node)
            .map(|(i, _)| ClusterTenantId(i))
            .collect())
    }

    /// The node a tenant currently runs on.
    pub fn tenant_node(&self, tenant: ClusterTenantId) -> Result<usize, ClusterError> {
        Ok(self.route(tenant)?.node)
    }

    // ------------------------------------------------------------------
    // Routing and admission
    // ------------------------------------------------------------------

    /// Admits `netlist` onto the cluster under the active
    /// [`RouterPolicy`], returning a cluster-global tenant id. The chosen
    /// node admits at the exact scored slot
    /// ([`ShardedService::admit_placed`]), so the result is bit-for-bit
    /// what that node's own policy admission would have produced.
    pub fn admit(
        &mut self,
        name: &str,
        netlist: &LogicNetlist,
    ) -> Result<ClusterTenantId, ClusterError> {
        let (node_idx, shard) = self.place(netlist)?;
        let placement = self.nodes[node_idx].svc.registry().reserve_on(shard)?;
        let local = self.nodes[node_idx]
            .svc
            .admit_placed(name, netlist, placement)?;
        self.affinity
            .insert(netlist_fingerprint(netlist), placement.ctx);
        self.cursor = (self.nodes[node_idx].shard_base + placement.shard + 1) % self.total_shards();
        let id = ClusterTenantId(self.routes.len());
        self.routes.push(RouteEntry {
            name: name.to_string(),
            netlist: netlist.clone(),
            admit_params: self.nodes[node_idx].params,
            node: node_idx,
            local,
        });
        self.tenant_map.insert((node_idx, local), id);
        Ok(id)
    }

    /// Picks `(node, local shard)` for a new tenant under the active
    /// policy, considering only nodes whose health
    /// [`admits`](NodeHealth::admits).
    fn place(&self, netlist: &LogicNetlist) -> Result<(usize, usize), ClusterError> {
        match self.policy {
            RouterPolicy::RoundRobin => {
                let total = self.total_shards();
                for probe in 0..total {
                    let g = (self.cursor + probe) % total;
                    let (node, shard) = self.node_of_global(g);
                    if !self.nodes[node].health.admits() {
                        continue;
                    }
                    if self.nodes[node].svc.registry().reserve_on(shard).is_ok() {
                        return Ok((node, shard));
                    }
                }
                Err(ClusterError::CapacityExhausted)
            }
            RouterPolicy::EnergyAware => {
                let hint = self.affinity.get(&netlist_fingerprint(netlist)).copied();
                let mut best: Option<((usize, bool, usize), usize, usize)> = None;
                for (i, node) in self.nodes.iter().enumerate() {
                    if !node.health.admits() {
                        continue;
                    }
                    let score = best_slot_scored(
                        node.svc.registry(),
                        node.svc.cost_matrix(),
                        hint,
                        |_| true,
                    )?;
                    if let Some(score) = score {
                        let key = score.key();
                        let better = match &best {
                            None => true,
                            // strict <: equal keys fall to the lower node
                            Some((bk, _, _)) => key < *bk,
                        };
                        if better {
                            best = Some((key, i, score.slot.shard));
                        }
                    }
                }
                best.map(|(_, node, shard)| (node, shard))
                    .ok_or(ClusterError::CapacityExhausted)
            }
        }
    }

    /// Maps a global shard index to `(node, node-local shard)`.
    fn node_of_global(&self, g: usize) -> (usize, usize) {
        debug_assert!(g < self.total_shards());
        for (i, node) in self.nodes.iter().enumerate() {
            if g < node.shard_base + node.shards {
                return (i, g - node.shard_base);
            }
        }
        unreachable!("global shard {g} beyond the shard space")
    }

    // ------------------------------------------------------------------
    // Submission, merge, faults, billing
    // ------------------------------------------------------------------

    /// Submits one input vector to `tenant`, wherever it currently runs,
    /// returning a cluster-global request id. Refused with
    /// [`ClusterError::NodeUnavailable`] when the tenant's node is
    /// [`Faulted`](NodeHealth::Faulted).
    pub fn submit(
        &mut self,
        tenant: ClusterTenantId,
        inputs: &[(&str, bool)],
    ) -> Result<ClusterRequestId, ClusterError> {
        let (node, local) = {
            let route = self.route(tenant)?;
            (route.node, route.local)
        };
        if !self.nodes[node].health.serves() {
            return Err(ClusterError::NodeUnavailable {
                node,
                health: self.nodes[node].health,
            });
        }
        let rid = self.nodes[node].svc.submit(local, inputs)?;
        let id = ClusterRequestId(self.next_request);
        self.next_request += 1;
        self.request_map.insert((node, rid.value()), id);
        self.trace_map
            .entry(id.value())
            .or_default()
            .push((node, rid.value()));
        self.metrics.requests.inc();
        // the admission hop at the cluster level carries *where* the
        // request landed; node-local hops are stitched in by `trace`
        self.telemetry.trace_buffer().record(
            id.value(),
            SpanKind::Admitted,
            self.clock,
            node as u32,
            rid.value() as i64,
        );
        Ok(id)
    }

    /// Flushes every node and merges the answered requests in **node,
    /// then shard, then lane order** — each node's own output is already
    /// deterministic in (shard, sweep-position, lane), so iterating nodes
    /// in index order makes the merged stream bit-identical at any node
    /// count over the same global shard space.
    pub fn drain(&mut self) -> Result<Vec<ClusterResponse>, ClusterError> {
        let mut merged = Vec::new();
        for node in 0..self.nodes.len() {
            let responses = self.nodes[node].svc.drain()?;
            for r in responses {
                merged.push(self.map_response(node, r)?);
            }
        }
        Ok(merged)
    }

    /// Flushes only the listed tenants' slots (grouped per node, node
    /// order), merging like [`drain`](Self::drain).
    pub fn flush_tenants(
        &mut self,
        tenants: &[ClusterTenantId],
    ) -> Result<Vec<ClusterResponse>, ClusterError> {
        let mut per_node: Vec<Vec<TenantId>> = vec![Vec::new(); self.nodes.len()];
        for &t in tenants {
            let route = self.route(t)?;
            per_node[route.node].push(route.local);
        }
        let mut merged = Vec::new();
        for (node, locals) in per_node.into_iter().enumerate() {
            if locals.is_empty() {
                continue;
            }
            let responses = self.nodes[node].svc.flush_tenants(&locals)?;
            for r in responses {
                merged.push(self.map_response(node, r)?);
            }
        }
        Ok(merged)
    }

    /// Translates one node response to cluster ids, consuming the request
    /// mapping (each admitted request is answered exactly once).
    fn map_response(&mut self, node: usize, r: Response) -> Result<ClusterResponse, ClusterError> {
        let request = self
            .request_map
            .remove(&(node, r.request.value()))
            .ok_or_else(|| {
                ClusterError::Service(ServiceError::BadConfig(format!(
                    "node {node} answered {} which the cluster never submitted",
                    r.request
                )))
            })?;
        let tenant = *self
            .tenant_map
            .get(&(node, r.tenant))
            .ok_or_else(|| ClusterError::UnknownTenant(r.tenant.index()))?;
        self.metrics.responses.inc();
        Ok(ClusterResponse {
            request,
            tenant,
            outputs: r.outputs,
        })
    }

    /// Removes and returns every fault recorded since the last call,
    /// merged in node order and translated to cluster coordinates
    /// (tenant id, **global** shard index) — bit-identical at any node
    /// count, like responses.
    pub fn take_faults(&mut self) -> Vec<ClusterFault> {
        self.collect_faults();
        std::mem::take(&mut self.fault_log)
    }

    /// Drains every node's fault buffer into the cluster log, tallying
    /// per-node counts for the rebalancer.
    fn collect_faults(&mut self) {
        for node in 0..self.nodes.len() {
            let base = self.nodes[node].shard_base;
            for f in self.nodes[node].svc.take_faults() {
                self.nodes[node].fault_gauge.add(1);
                self.metrics.faults.inc();
                if let Some(&tenant) = self.tenant_map.get(&(node, f.tenant)) {
                    self.telemetry.trace_buffer().record(
                        tenant_key(tenant.index()),
                        SpanKind::Fault,
                        self.clock,
                        node as u32,
                        (base + f.shard) as i64,
                    );
                    self.fault_log.push(ClusterFault {
                        tenant,
                        shard: base + f.shard,
                        ctx: f.ctx,
                        error: f.error,
                    });
                }
            }
        }
    }

    /// Accumulated usage counters for one tenant (they follow the tenant
    /// across migrations).
    pub fn usage(&self, tenant: ClusterTenantId) -> Result<TenantUsage, ClusterError> {
        let route = self.route(tenant)?;
        Ok(self.nodes[route.node].svc.usage(route.local)?)
    }

    /// The cluster billing table: one row per tenant in **cluster
    /// admission order**, rendered with node 0's technology parameters —
    /// so the table, like responses and faults, is bit-identical at any
    /// node count.
    #[must_use]
    pub fn billing_report(&self) -> String {
        let rows: Vec<(String, TenantUsage)> = self
            .routes
            .iter()
            .map(|r| {
                // a route always points at a live tenant; default only
                // guards the window inside a migration
                let usage = self.nodes[r.node].svc.usage(r.local).unwrap_or_default();
                (r.name.clone(), usage)
            })
            .collect();
        render_billing(&rows, &self.nodes[0].tech)
    }

    // ------------------------------------------------------------------
    // Chaos hooks (cluster-id passthroughs)
    // ------------------------------------------------------------------

    /// Corrupts the tenant's installed plane (testing hook; see
    /// [`ShardedService::inject_plane_fault`]).
    pub fn inject_plane_fault(&mut self, tenant: ClusterTenantId) -> Result<(), ClusterError> {
        let (node, local) = {
            let r = self.route(tenant)?;
            (r.node, r.local)
        };
        Ok(self.nodes[node].svc.inject_plane_fault(local)?)
    }

    /// Re-installs the tenant's true compiled plane from the owning
    /// node's cache (see [`ShardedService::repair_plane`]).
    pub fn repair_plane(&mut self, tenant: ClusterTenantId) -> Result<(), ClusterError> {
        let (node, local) = {
            let r = self.route(tenant)?;
            (r.node, r.local)
        };
        Ok(self.nodes[node].svc.repair_plane(local)?)
    }

    // ------------------------------------------------------------------
    // Migration and node lifecycle
    // ------------------------------------------------------------------

    /// Live-migrates `tenant` to `dst_node`: checkpoint at the source,
    /// make the compiled plane available at the destination (cache hit,
    /// plane shipment from the source, or — when the source's cache is
    /// gone — recompilation from the admission netlist), restore into the
    /// destination's cheapest slot, re-point every pending request to its
    /// original cluster id, then retire the source copy. A no-op when the
    /// tenant already runs on `dst_node`.
    ///
    /// Works across heterogeneous geometries: a tenant admitted on an
    /// 8×8 node restores onto a 10×10 node bit-for-bit (pad-and-remap).
    pub fn migrate_tenant(
        &mut self,
        tenant: ClusterTenantId,
        dst_node: usize,
    ) -> Result<(), ClusterError> {
        self.check_node(dst_node)?;
        let (src_node, src_local) = {
            let r = self.route(tenant)?;
            (r.node, r.local)
        };
        if src_node == dst_node {
            return Ok(());
        }
        let ckpt = self.nodes[src_node].svc.checkpoint_tenant(src_local)?;

        // plane re-provisioning: ship it, or recompile it at the
        // destination from the admission netlist — never dead-end on a
        // cold cache
        if !self.nodes[dst_node].svc.cache().contains(ckpt.digest) {
            match self.nodes[src_node].svc.export_plane(ckpt.digest) {
                Some(plane) => self.nodes[dst_node].svc.import_plane(ckpt.digest, plane),
                None => {
                    let (netlist, admit_params) = {
                        let r = self.route(tenant)?;
                        (r.netlist.clone(), r.admit_params)
                    };
                    self.nodes[dst_node].svc.provision_plane(
                        ckpt.digest,
                        &netlist,
                        admit_params,
                    )?;
                }
            }
        }

        let dst = &self.nodes[dst_node].svc;
        let slot = best_slot_scored(dst.registry(), dst.cost_matrix(), Some(ckpt.ctx), |_| true)?
            .ok_or(ClusterError::CapacityExhausted)?;
        let (new_local, fresh) = self.nodes[dst_node]
            .svc
            .restore_tenant(&ckpt, slot.slot.shard)?;

        // the checkpoint's pending requests (source-local ids, lane
        // order) were re-queued under fresh destination-local ids (same
        // order): re-point each one at its original cluster id
        for (&old_raw, new_rid) in ckpt.pending.requests.iter().zip(&fresh) {
            if let Some(cid) = self.request_map.remove(&(src_node, old_raw)) {
                self.request_map.insert((dst_node, new_rid.value()), cid);
                self.trace_map
                    .entry(cid.value())
                    .or_default()
                    .push((dst_node, new_rid.value()));
                // the hop every in-flight request takes when its tenant
                // moves: recorded on the *destination*, detail = source
                self.telemetry.trace_buffer().record(
                    cid.value(),
                    SpanKind::MigrationHop,
                    self.clock,
                    dst_node as u32,
                    src_node as i64,
                );
            }
        }
        self.metrics.migrations.inc();
        self.telemetry.trace_buffer().record(
            tenant_key(tenant.index()),
            SpanKind::MigrationHop,
            self.clock,
            dst_node as u32,
            src_node as i64,
        );

        self.nodes[src_node].svc.retire_tenant(src_local)?;
        self.tenant_map.remove(&(src_node, src_local));
        self.tenant_map.insert((dst_node, new_local), tenant);
        let route = &mut self.routes[tenant.0];
        route.node = dst_node;
        route.local = new_local;
        Ok(())
    }

    /// Empties `node`: marks it [`Draining`](NodeHealth::Draining),
    /// migrates every resident tenant to the least-loaded healthy node
    /// (re-picked per tenant as capacity shifts), then marks it
    /// [`Drained`](NodeHealth::Drained). Returns the moved tenants in id
    /// order. In-flight requests ride along and are still answered
    /// exactly once.
    pub fn drain_node(&mut self, node: usize) -> Result<Vec<ClusterTenantId>, ClusterError> {
        self.check_node(node)?;
        self.nodes[node].health = NodeHealth::Draining;
        let movers = self.tenants_on(node)?;
        for &tenant in &movers {
            let dst = self.pick_destination(node)?;
            self.migrate_tenant(tenant, dst)?;
        }
        self.nodes[node].health = NodeHealth::Drained;
        Ok(movers)
    }

    /// The least-loaded admitting node with free capacity, excluding
    /// `exclude`; ties fall to the lowest node index.
    fn pick_destination(&self, exclude: usize) -> Result<usize, ClusterError> {
        let mut best: Option<(usize, usize)> = None;
        for (i, node) in self.nodes.iter().enumerate() {
            if i == exclude || !node.health.admits() {
                continue;
            }
            if node.svc.registry().free_slots().is_empty() {
                continue;
            }
            let load = node.svc.registry().len();
            if best.is_none_or(|(bl, _)| load < bl) {
                best = Some((load, i));
            }
        }
        best.map(|(_, i)| i).ok_or(ClusterError::CapacityExhausted)
    }

    /// Replaces an **empty** node's service with a freshly constructed
    /// one (same shard count, geometry and technology), resets its fault
    /// tally and marks it [`Healthy`](NodeHealth::Healthy) — the recovery
    /// path for a [`Faulted`](NodeHealth::Faulted) node after
    /// [`drain_node`](Self::drain_node), and the building block of a
    /// rolling restart. Refused with [`ClusterError::NodeBusy`] while
    /// tenants are still resident.
    pub fn restart_node(&mut self, node: usize) -> Result<(), ClusterError> {
        self.check_node(node)?;
        let resident = self.tenants_on(node)?.len();
        if resident > 0 {
            return Err(ClusterError::NodeBusy {
                node,
                tenants: resident,
            });
        }
        let n = &mut self.nodes[node];
        n.svc = ShardedService::new(n.shards, n.params, n.tech.clone())?;
        if let Some(threads) = self.threads {
            n.svc.set_threads(threads);
        }
        n.svc.telemetry().set_cycle(self.clock);
        n.health = NodeHealth::Healthy;
        // the fresh service brings a fresh registry: re-register the
        // published fault gauge there, zeroed
        n.fault_gauge = Node::register_fault_gauge(&n.svc);
        // any undrained response mappings for the old incarnation are
        // gone, and so are its trace hops — the new service's telemetry
        // knows nothing about old raw request ids
        self.request_map.retain(|&(owner, _), _| owner != node);
        for hops in self.trace_map.values_mut() {
            hops.retain(|&(owner, _)| owner != node);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Virtual clock + rebalancer pump
    // ------------------------------------------------------------------

    /// The cluster's virtual clock (cycles).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Advances the virtual clock — the same externally-driven clock
    /// pattern as [`FrontendDriver`](mcfpga_service::FrontendDriver).
    /// The clock is pushed down into the cluster's own telemetry and
    /// every node's, so spans recorded anywhere in the fleet share one
    /// timeline.
    pub fn advance(&mut self, cycles: u64) {
        self.clock = self.clock.saturating_add(cycles);
        self.telemetry.set_cycle(self.clock);
        for node in &self.nodes {
            node.svc.telemetry().set_cycle(self.clock);
        }
    }

    /// Arms the rebalancer daemon; [`pump`](Self::pump) does nothing
    /// until a policy is set.
    pub fn enable_rebalancer(&mut self, policy: RebalancerPolicy) {
        self.rebalancer = Some(policy);
    }

    /// A point-in-time capture of every node's published health gauges
    /// — queue depth, fault tally, resident tenants — stamped with the
    /// cluster's virtual clock. Built **purely from telemetry**: the
    /// same numbers a metrics scrape of each node would see, so the
    /// rebalancer's Hot/Faulted decisions are a pure function of
    /// published telemetry. Each in-flight request is counted by exactly
    /// one node at any instant (queue gauges are re-published at every
    /// queue mutation, including mid-migration re-queues), so
    /// [`total_queued`](ClusterHealthSnapshot::total_queued) never
    /// double-counts work in flight.
    #[must_use]
    pub fn health_snapshot(&self) -> ClusterHealthSnapshot {
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let r = n.svc.telemetry().registry();
                NodeHealthSample {
                    node: i,
                    queued: r.gauge_value(QUEUE_DEPTH_METRIC).unwrap_or(0).max(0) as u64,
                    fault_tally: n.fault_gauge.value().max(0) as u64,
                    tenants: r.gauge_value(ACTIVE_TENANTS_METRIC).unwrap_or(0).max(0) as u64,
                }
            })
            .collect();
        ClusterHealthSnapshot {
            cycle: self.clock,
            nodes,
        }
    }

    /// One rebalancer tick. No-op until `check_period` cycles have
    /// elapsed since the last check; then it drains fault buffers, takes
    /// a [`health_snapshot`](Self::health_snapshot), re-marks node
    /// health from the snapshot alone (fault tally ⇒
    /// [`Faulted`](NodeHealth::Faulted), queue depth ⇒
    /// [`Hot`](NodeHealth::Hot)), migrates tenants off faulted/draining
    /// nodes entirely and hot nodes by halves, and reports what it did.
    /// Call it from the same loop that [`advance`](Self::advance)s the
    /// clock.
    pub fn pump(&mut self) -> Result<Vec<RebalanceAction>, ClusterError> {
        let Some(policy) = self.rebalancer else {
            return Ok(Vec::new());
        };
        if self.clock.saturating_sub(self.last_check) < policy.check_period {
            return Ok(Vec::new());
        }
        self.last_check = self.clock;
        self.collect_faults();
        let mut actions = Vec::new();

        // mark from the published snapshot: fault tallies dominate
        // queue depth
        let snapshot = self.health_snapshot();
        for i in 0..self.nodes.len() {
            let sample = snapshot.nodes[i];
            let node = &mut self.nodes[i];
            match node.health {
                NodeHealth::Healthy | NodeHealth::Hot => {
                    if sample.fault_tally as usize >= policy.fault_threshold {
                        node.health = NodeHealth::Faulted;
                        actions.push(RebalanceAction::MarkedFaulted { node: i });
                    } else if node.health == NodeHealth::Healthy
                        && sample.queued as usize >= policy.hot_pending
                    {
                        node.health = NodeHealth::Hot;
                        actions.push(RebalanceAction::MarkedHot { node: i });
                    }
                }
                _ => {}
            }
        }

        // shed: faulted and draining nodes empty out, hot nodes move half
        for i in 0..self.nodes.len() {
            let health = self.nodes[i].health;
            let resident = self.tenants_on(i)?;
            let movers: &[ClusterTenantId] = match health {
                NodeHealth::Faulted | NodeHealth::Draining => &resident,
                NodeHealth::Hot => &resident[..resident.len().div_ceil(2)],
                _ => continue,
            };
            for &tenant in movers {
                let Ok(dst) = self.pick_destination(i) else {
                    // nowhere to put the rest: stop shedding this node
                    break;
                };
                self.migrate_tenant(tenant, dst)?;
                actions.push(RebalanceAction::Migrated {
                    tenant,
                    from: i,
                    to: dst,
                });
            }
            // pending work travelled with the migrated tenants; re-read
            // the published gauges to see whether the node recovered
            let sample = self.health_snapshot().nodes[i];
            match self.nodes[i].health {
                NodeHealth::Hot if (sample.queued as usize) < policy.hot_pending => {
                    self.nodes[i].health = NodeHealth::Healthy;
                    actions.push(RebalanceAction::Recovered { node: i });
                }
                NodeHealth::Draining if sample.tenants == 0 => {
                    self.nodes[i].health = NodeHealth::Drained;
                }
                _ => {}
            }
        }
        self.metrics.rebalance_actions.add(actions.len() as u64);
        Ok(actions)
    }

    // ------------------------------------------------------------------
    // Telemetry
    // ------------------------------------------------------------------

    /// The cluster façade's own telemetry: `cluster_*` metrics plus the
    /// span ring of cluster-level hops. Each member node keeps its own
    /// full registry, reachable via [`node`](Self::node) and
    /// [`ShardedService::telemetry`].
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Reconstructs `request`'s complete cross-node timeline: the
    /// cluster-level `Admitted` and `MigrationHop` spans, merged with
    /// every node-local span the request produced under each of its
    /// node-local incarnations — re-keyed to the cluster id and stamped
    /// with the owning node — in virtual-clock order
    /// ([`sort_timeline`]). Spans survive node restarts only as far as
    /// each node's telemetry does: a restarted node's old incarnation
    /// contributes nothing.
    #[must_use]
    pub fn trace(&self, request: ClusterRequestId) -> Vec<SpanEvent> {
        let mut events: Vec<SpanEvent> = self
            .telemetry
            .trace_buffer()
            .trace(request.value())
            .into_iter()
            .collect();
        if let Some(hops) = self.trace_map.get(&request.value()) {
            for &(node, raw) in hops {
                for mut ev in self.nodes[node].svc.telemetry().trace(raw) {
                    ev.key = request.value();
                    ev.node = node as u32;
                    events.push(ev);
                }
            }
        }
        sort_timeline(&mut events);
        events
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn check_node(&self, node: usize) -> Result<(), ClusterError> {
        if node >= self.nodes.len() {
            return Err(ClusterError::NoSuchNode {
                node,
                nodes: self.nodes.len(),
            });
        }
        Ok(())
    }

    fn route(&self, tenant: ClusterTenantId) -> Result<&RouteEntry, ClusterError> {
        self.routes
            .get(tenant.0)
            .ok_or(ClusterError::UnknownTenant(tenant.0))
    }
}

// the cluster owns plain services plus maps of Send + Sync types
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Cluster>();
};
