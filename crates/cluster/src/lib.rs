//! # mcfpga-cluster — multi-node federation of sharded fabric services
//!
//! One [`ShardedService`](mcfpga_service::ShardedService) already
//! multiplexes many tenants onto one multi-context fabric. This crate
//! federates **N such nodes** behind a single façade, the [`Cluster`]:
//!
//! * **Routing.** Admissions go through the cluster's router, which
//!   reuses the exact slot-scoring a single node uses
//!   ([`best_slot_scored`](mcfpga_service::best_slot_scored)) and extends
//!   it across nodes. Under [`RouterPolicy::RoundRobin`] the cluster
//!   keeps one cursor over the **global shard space** — node 0's shards
//!   first, then node 1's, and so on (node-major) — and probes it exactly
//!   the way a single `N·S`-shard service's registry would. Under
//!   [`RouterPolicy::EnergyAware`] every healthy node reports its best
//!   free slot's `(marginal sweep cost, affinity miss, load)` score and
//!   the smallest score wins, node index as the final tiebreak.
//! * **Deterministic merge.** The cluster mints its own tenant ids
//!   (admission order) and request ids (submission order), and merges
//!   node outputs — responses, fault records, billing rows — in **node,
//!   then shard, then lane order**. A workload replayed against one node
//!   or against three nodes holding the same global shards produces
//!   bit-identical [`ClusterResponse`]s, [`ClusterFault`]s and billing
//!   tables, at any executor width (each node is itself bit-identical at
//!   any `MCFPGA_THREADS`).
//! * **Rebalancing.** An optional [`RebalancerPolicy`] drives a daemon
//!   off the same virtual clock pattern as the QoS front-end
//!   ([`advance`](Cluster::advance) / [`pump`](Cluster::pump)): it
//!   reads each node's **published telemetry gauges** through a
//!   [`ClusterHealthSnapshot`] ([`Cluster::health_snapshot`]), marks
//!   nodes [`Hot`](NodeHealth::Hot) or [`Faulted`](NodeHealth::Faulted)
//!   as a pure function of that snapshot, and live-migrates tenants to
//!   healthy nodes — checkpoint, plane transfer, restore — preserving
//!   every in-flight request id.
//! * **Observability.** The façade keeps its own
//!   [`Telemetry`](mcfpga_telemetry::Telemetry): deterministic
//!   `cluster_*` counters, plus cluster-level `Admitted`,
//!   `MigrationHop` and `Fault` spans keyed by [`ClusterRequestId`] /
//!   [`ClusterTenantId`]. [`Cluster::trace`] stitches those together
//!   with every node-local span a request produced under each of its
//!   node-local incarnations, yielding the complete cross-node
//!   admitted→…→demuxed timeline in virtual-clock order.
//!
//! Tenant moves never lose planes: checkpoints carry a configuration
//! *digest*, and if the destination's cache misses it the cluster first
//! ships the compiled plane from the source
//! ([`export_plane`](mcfpga_service::ShardedService::export_plane) /
//! [`import_plane`](mcfpga_service::ShardedService::import_plane)), and
//! when the source is gone (restarted node) it **recompiles at the
//! destination** from the admission netlist kept in the route table
//! ([`provision_plane`](mcfpga_service::ShardedService::provision_plane)).
//! Nodes may be heterogeneous: a tenant admitted on an 8×8 node restores
//! onto a 10×10 node bit-for-bit via pad-and-remap
//! ([`rebase_onto`](mcfpga_fabric::CompiledFabric::rebase_onto)).
//!
//! ```
//! use mcfpga_cluster::Cluster;
//! use mcfpga_device::TechParams;
//! use mcfpga_fabric::netlist_ir::generators;
//! use mcfpga_fabric::FabricParams;
//! use mcfpga_service::ShardedService;
//!
//! let node = |shards| ShardedService::new(shards, FabricParams::default(), TechParams::default());
//! let mut cluster = Cluster::new(vec![node(2)?, node(2)?])?;
//!
//! let parity = cluster.admit("parity", &generators::parity_tree(3)?)?;
//! cluster.submit(parity, &[("x0", true), ("x1", true), ("x2", false)])?;
//! let responses = cluster.drain()?;
//! assert_eq!(responses.len(), 1);
//! assert!(!responses[0].outputs[0].1); // parity(1,1,0) = 0
//!
//! // live-migrate the tenant to the other node: same answers afterwards
//! let home = cluster.tenant_node(parity)?;
//! cluster.migrate_tenant(parity, 1 - home)?;
//! cluster.submit(parity, &[("x0", true), ("x1", false), ("x2", false)])?;
//! assert!(cluster.drain()?[0].outputs[0].1); // parity(1,0,0) = 1
//! # Ok::<(), mcfpga_cluster::ClusterError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod federation;
mod rebalancer;

pub use federation::{
    Cluster, ClusterFault, ClusterRequestId, ClusterResponse, ClusterTenantId, NodeHealth,
    RouterPolicy, CLUSTER_FAULTS_METRIC, CLUSTER_MIGRATIONS_METRIC,
    CLUSTER_REBALANCE_ACTIONS_METRIC, CLUSTER_REQUESTS_METRIC, CLUSTER_RESPONSES_METRIC,
};
pub use rebalancer::{RebalanceAction, RebalancerPolicy};

// the fleet-health view the rebalancer consumes lives in
// `mcfpga_telemetry`; re-exported because `Cluster::health_snapshot`
// is its producer
pub use mcfpga_telemetry::{ClusterHealthSnapshot, NodeHealthSample};

use mcfpga_service::ServiceError;

/// Errors from cluster-level routing, migration and node management.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A cluster needs at least one node.
    NoNodes,
    /// Referenced a node index the cluster does not have.
    NoSuchNode {
        /// The requested node.
        node: usize,
        /// Number of nodes in the cluster.
        nodes: usize,
    },
    /// Referenced a cluster tenant id that was never issued.
    UnknownTenant(usize),
    /// The tenant's node refuses traffic in its current health state.
    NodeUnavailable {
        /// The refusing node.
        node: usize,
        /// Its health at refusal time.
        health: NodeHealth,
    },
    /// No healthy node has a free context slot left.
    CapacityExhausted,
    /// A node operation (restart) requires the node to be empty first.
    NodeBusy {
        /// The busy node.
        node: usize,
        /// Tenants still resident on it.
        tenants: usize,
    },
    /// Error surfaced by a member node's service layer.
    Service(ServiceError),
}

impl From<ServiceError> for ClusterError {
    fn from(e: ServiceError) -> Self {
        ClusterError::Service(e)
    }
}

impl From<mcfpga_fabric::FabricError> for ClusterError {
    fn from(e: mcfpga_fabric::FabricError) -> Self {
        ClusterError::Service(ServiceError::Fabric(e))
    }
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NoNodes => write!(f, "a cluster needs at least one node"),
            ClusterError::NoSuchNode { node, nodes } => {
                write!(f, "node {node} out of range (cluster has {nodes})")
            }
            ClusterError::UnknownTenant(id) => write!(f, "unknown cluster tenant id {id}"),
            ClusterError::NodeUnavailable { node, health } => {
                write!(f, "node {node} is {health} and refuses traffic")
            }
            ClusterError::CapacityExhausted => {
                write!(f, "no healthy node has a free context slot")
            }
            ClusterError::NodeBusy { node, tenants } => {
                write!(
                    f,
                    "node {node} still hosts {tenants} tenant(s); drain it first"
                )
            }
            ClusterError::Service(e) => write!(f, "node service: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}
