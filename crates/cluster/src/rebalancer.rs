//! Rebalancer policy knobs and the action log its pump emits.
//!
//! The daemon itself lives on [`Cluster`](crate::Cluster)
//! ([`pump`](crate::Cluster::pump)), driven by the cluster's virtual
//! clock: callers interleave [`advance`](crate::Cluster::advance) and
//! `pump` exactly like the QoS front-end's
//! [`FrontendDriver::pump`](mcfpga_service::FrontendDriver::pump) loop.

use crate::federation::ClusterTenantId;

/// When and how aggressively [`Cluster::pump`](crate::Cluster::pump)
/// intervenes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalancerPolicy {
    /// Virtual-clock cycles between health checks (a pump call before
    /// the period has elapsed does nothing).
    pub check_period: u64,
    /// A node whose queued-request count reaches this marks
    /// [`Hot`](crate::NodeHealth::Hot) and sheds half its tenants.
    pub hot_pending: usize,
    /// A node whose cumulative fault tally reaches this marks
    /// [`Faulted`](crate::NodeHealth::Faulted) and is evacuated; only
    /// [`restart_node`](crate::Cluster::restart_node) recovers it.
    pub fault_threshold: usize,
}

impl Default for RebalancerPolicy {
    fn default() -> Self {
        RebalancerPolicy {
            check_period: 64,
            hot_pending: 64,
            fault_threshold: 3,
        }
    }
}

/// One intervention taken by a
/// [`Cluster::pump`](crate::Cluster::pump) tick, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceAction {
    /// Queue depth crossed [`RebalancerPolicy::hot_pending`].
    MarkedHot {
        /// The overloaded node.
        node: usize,
    },
    /// Fault tally crossed [`RebalancerPolicy::fault_threshold`].
    MarkedFaulted {
        /// The failing node.
        node: usize,
    },
    /// A tenant was live-migrated off a hot/faulted/draining node.
    Migrated {
        /// The moved tenant.
        tenant: ClusterTenantId,
        /// Source node.
        from: usize,
        /// Destination node.
        to: usize,
    },
    /// A previously hot node's queue recovered; it readmits.
    Recovered {
        /// The recovered node.
        node: usize,
    },
}
