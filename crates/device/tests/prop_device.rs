//! Property tests for the device models.

use mcfpga_device::{Fgmos, FgmosMode, Programmer, TechParams, TreeMux};
use mcfpga_mvl::{Level, Radix};
use proptest::prelude::*;

proptest! {
    /// Ideal programming realises the literal exactly, for every mode,
    /// threshold and rail level.
    #[test]
    fn ideal_programming_matches_literal(t in 0u8..5, v in 0u8..5, up in any::<bool>()) {
        let params = TechParams::default();
        let mode = if up { FgmosMode::UpLiteral } else { FgmosMode::DownLiteral };
        let mut d = Fgmos::new(mode);
        d.program_ideal(Level::new(t), Radix::FIVE, &params).unwrap();
        let want = if up { v >= t } else { v <= t };
        prop_assert_eq!(d.conducts(Level::new(v), &params).unwrap(), want);
    }

    /// Noisy programming converges and behaves identically to ideal.
    #[test]
    fn noisy_equals_ideal(seed in 0u64..2000, t in 0u8..5, up in any::<bool>()) {
        let params = TechParams::default();
        let mode = if up { FgmosMode::UpLiteral } else { FgmosMode::DownLiteral };
        let mut ideal = Fgmos::new(mode);
        ideal.program_ideal(Level::new(t), Radix::FIVE, &params).unwrap();
        let mut noisy = Fgmos::new(mode);
        let mut prog = Programmer::new(seed, params.clone());
        prog.program_literal(&mut noisy, Level::new(t), Radix::FIVE).unwrap();
        for v in 0..5u8 {
            prop_assert_eq!(
                noisy.conducts(Level::new(v), &params).unwrap(),
                ideal.conducts(Level::new(v), &params).unwrap(),
                "t={} v={} up={}", t, v, up
            );
        }
    }

    /// Drift strictly smaller than the programmed margin never changes any
    /// conduction decision.
    #[test]
    fn drift_within_margin_is_invisible(
        seed in 0u64..500,
        t in 0u8..5,
        frac in -0.99f64..0.99,
    ) {
        let params = TechParams::default();
        let mut d = Fgmos::new(FgmosMode::UpLiteral);
        let mut prog = Programmer::new(seed, params.clone());
        prog.program_literal(&mut d, Level::new(t), Radix::FIVE).unwrap();
        let before: Vec<bool> = (0..5)
            .map(|v| d.conducts(Level::new(v), &params).unwrap())
            .collect();
        let margin = d.drift_margin_volts(Radix::FIVE, &params).unwrap();
        d.drift_threshold(frac * margin * 0.999);
        let after: Vec<bool> = (0..5)
            .map(|v| d.conducts(Level::new(v), &params).unwrap())
            .collect();
        prop_assert_eq!(before, after);
    }

    /// Tree mux equals direct indexing for every power-of-two width.
    #[test]
    fn tree_mux_routes_correctly(log_n in 1u32..7, sel_seed in any::<u64>()) {
        let n = 1usize << log_n;
        let m = TreeMux::new(n).unwrap();
        let inputs: Vec<usize> = (0..n).collect();
        let sel = (sel_seed as usize) % n;
        prop_assert_eq!(m.select_via_tree(&inputs, sel).unwrap(), sel);
        prop_assert_eq!(m.transistor_count(), 2 * (n - 1));
    }

    /// Endurance pulses accumulate monotonically over reprogramming.
    #[test]
    fn endurance_monotone(seed in 0u64..200, cycles in 1usize..8) {
        let params = TechParams::default();
        let mut prog = Programmer::new(seed, params);
        let mut d = Fgmos::new(FgmosMode::UpLiteral);
        let mut last = 0;
        for i in 0..cycles {
            let t = Level::new((i % 5) as u8);
            prog.program_literal(&mut d, t, Radix::FIVE).unwrap();
            prop_assert!(d.total_pulses() > last);
            last = d.total_pulses();
        }
    }
}
