//! # mcfpga-device — behavioural device models
//!
//! The electrical substrate of the reproduction: floating-gate MOS functional
//! pass gates (FGFPs), SRAM cells, plain pass transistors and pass-transistor
//! multiplexers, plus the charge-programming story (program/verify, endurance,
//! retention drift).
//!
//! ## Substitution note (see DESIGN.md §2)
//!
//! The paper evaluates its architecture analytically over real FGMOS devices.
//! We model each device *behaviourally*: a device exposes exactly the
//! functional contract the architecture relies on — "conducts iff the gate
//! level is on the programmed side of a programmable threshold" — with an
//! analog threshold underneath (volts, `f64`) so that programming noise,
//! margin erosion and retention drift are representable. SPICE-level I/V
//! curves would add nothing to the paper's claims, which are about transistor
//! *counts* and switching *logic*.
//!
//! Transistor-count ground truth (used by `mcfpga-cost` and the Table 1/2
//! reproductions):
//!
//! | device                      | transistors |
//! |-----------------------------|-------------|
//! | FGMOS functional pass gate  | 1           |
//! | 6T SRAM cell                | 6           |
//! | nMOS/pMOS pass transistor   | 1           |
//! | transmission gate           | 2           |
//! | N:1 pass-transistor tree MUX| 2·(N−1)     |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod fgmos;
pub mod mux;
pub mod params;
pub mod pass_gate;
pub mod program;
pub mod sram;

pub use error::DeviceError;
pub use fgmos::{Fgmos, FgmosMode};
pub use mux::TreeMux;
pub use params::TechParams;
pub use pass_gate::{PassKind, PassTransistor, TransmissionGate};
pub use program::{ProgramOutcome, Programmer};
pub use sram::SramCell;
