//! Charge-injection program/verify for FGFP thresholds.
//!
//! "The threshold value of an up-literal or a down-literal is programmed by
//! injecting a controlled amount of electrons into the floating gate" (§2).
//! We model that as an iterative **program/verify** loop: each pulse moves
//! the effective threshold by `program_pulse_v` toward the target, plus
//! Gaussian injection noise; after each pulse the threshold is read back and
//! the loop stops once it is within `program_tolerance_v` of the target.
//! Devices accumulate lifetime pulses against an endurance budget.

use crate::error::DeviceError;
use crate::fgmos::{Fgmos, FgmosMode};
use crate::params::TechParams;
use mcfpga_mvl::{Level, Radix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Statistics from one program/verify run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramOutcome {
    /// Pulses applied in this run.
    pub pulses: u32,
    /// Final threshold voltage.
    pub final_vth_v: f64,
    /// Final |error| from the target voltage.
    pub error_v: f64,
}

/// Programming controller: owns the RNG so runs are reproducible.
#[derive(Debug)]
pub struct Programmer {
    rng: StdRng,
    params: TechParams,
}

impl Programmer {
    /// Creates a programmer with a deterministic seed.
    #[must_use]
    pub fn new(seed: u64, params: TechParams) -> Self {
        Programmer {
            rng: StdRng::seed_from_u64(seed),
            params,
        }
    }

    /// Technology parameters in use.
    #[must_use]
    pub fn params(&self) -> &TechParams {
        &self.params
    }

    /// Programs `device` so it realises literal bound `t` on `radix`.
    ///
    /// Starts from the device's current threshold (erase is just programming
    /// toward the other rail in this behavioural model) and pulses until the
    /// margin-sited target is reached within tolerance.
    pub fn program_literal(
        &mut self,
        device: &mut Fgmos,
        t: Level,
        radix: Radix,
    ) -> Result<ProgramOutcome, DeviceError> {
        if t.value() >= radix.levels() {
            return Err(DeviceError::BadThresholdLevel {
                level: t.value(),
                radix: radix.levels(),
            });
        }
        let target_v = match device.mode() {
            FgmosMode::UpLiteral => self.params.up_threshold_volts(t),
            FgmosMode::DownLiteral => self.params.down_threshold_volts(t),
        };
        self.drive_to(device, target_v, Some(t))
    }

    /// Parks the device (never conducts).
    pub fn park(
        &mut self,
        device: &mut Fgmos,
        radix: Radix,
    ) -> Result<ProgramOutcome, DeviceError> {
        let target_v = match device.mode() {
            FgmosMode::UpLiteral => self.params.park_high_volts(radix),
            FgmosMode::DownLiteral => self.params.park_low_volts(),
        };
        self.drive_to(device, target_v, None)
    }

    fn drive_to(
        &mut self,
        device: &mut Fgmos,
        target_v: f64,
        bound: Option<Level>,
    ) -> Result<ProgramOutcome, DeviceError> {
        if device.total_pulses() >= u64::from(self.params.endurance_pulses) * 100 {
            return Err(DeviceError::WornOut {
                total_pulses: device.total_pulses(),
            });
        }
        // Start from current threshold, or mid-rail for a fresh device.
        let mut vth = device.threshold_volts().unwrap_or(0.0);
        let mut pulses = 0u32;
        let tol = self.params.program_tolerance_v;
        while (vth - target_v).abs() > tol {
            if pulses >= self.params.endurance_pulses {
                device.absorb_pulses(pulses);
                device.set_threshold_volts(vth, None);
                return Err(DeviceError::ProgramFailed {
                    target_v,
                    reached_v: vth,
                    pulses,
                });
            }
            let err = target_v - vth;
            // Controlled injection: step toward target, never overshooting by
            // more than the noise floor.
            let step = err.abs().min(self.params.program_pulse_v) * err.signum();
            let noise: f64 = self.rng.random_range(-3.0..3.0) * self.params.program_noise_v / 3.0;
            vth += step + noise;
            pulses += 1;
        }
        device.absorb_pulses(pulses.max(1));
        device.set_threshold_volts(vth, bound);
        Ok(ProgramOutcome {
            pulses,
            final_vth_v: vth,
            error_v: (vth - target_v).abs(),
        })
    }

    /// Applies retention drift to a device for `hours` of storage: a random
    /// walk with std-dev scaled from
    /// [`TechParams::retention_sigma_v_per_kh`].
    pub fn age(&mut self, device: &mut Fgmos, hours: f64) {
        let sigma = self.params.retention_sigma_v_per_kh * (hours / 1000.0).sqrt();
        if sigma <= 0.0 {
            return;
        }
        // Sum of 12 uniforms ≈ Gaussian (Irwin–Hall), avoids pulling in a
        // distributions crate.
        let mut acc = 0.0;
        for _ in 0..12 {
            acc += self.rng.random_range(0.0..1.0);
        }
        let gauss = acc - 6.0;
        device.drift_threshold(gauss * sigma);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: Radix = Radix::FIVE;

    #[test]
    fn program_converges_within_tolerance() {
        let mut prog = Programmer::new(7, TechParams::default());
        let mut d = Fgmos::new(FgmosMode::UpLiteral);
        let out = prog.program_literal(&mut d, Level::new(3), R).unwrap();
        assert!(out.error_v <= prog.params().program_tolerance_v);
        // behavioural check: conducts exactly for levels >= 3
        for v in 0..5u8 {
            assert_eq!(
                d.conducts(Level::new(v), prog.params()).unwrap(),
                v >= 3,
                "v={v}"
            );
        }
    }

    #[test]
    fn program_is_deterministic_per_seed() {
        let run = |seed| {
            let mut prog = Programmer::new(seed, TechParams::default());
            let mut d = Fgmos::new(FgmosMode::DownLiteral);
            prog.program_literal(&mut d, Level::new(1), R).unwrap();
            d.threshold_volts().unwrap()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn reprogramming_moves_between_bounds() {
        let mut prog = Programmer::new(1, TechParams::default());
        let mut d = Fgmos::new(FgmosMode::UpLiteral);
        prog.program_literal(&mut d, Level::new(1), R).unwrap();
        assert!(d.conducts(Level::new(1), prog.params()).unwrap());
        prog.program_literal(&mut d, Level::new(4), R).unwrap();
        assert!(!d.conducts(Level::new(3), prog.params()).unwrap());
        assert!(d.conducts(Level::new(4), prog.params()).unwrap());
        assert!(d.total_pulses() > 0);
    }

    #[test]
    fn parked_devices_never_conduct_after_noisy_program() {
        let mut prog = Programmer::new(3, TechParams::default());
        for mode in [FgmosMode::UpLiteral, FgmosMode::DownLiteral] {
            let mut d = Fgmos::new(mode);
            prog.park(&mut d, R).unwrap();
            for v in 0..5u8 {
                assert!(!d.conducts(Level::new(v), prog.params()).unwrap());
            }
        }
    }

    #[test]
    fn program_fails_when_pulse_budget_too_small() {
        let params = TechParams {
            endurance_pulses: 2,
            ..TechParams::default()
        };
        let mut prog = Programmer::new(5, params);
        let mut d = Fgmos::new(FgmosMode::UpLiteral);
        let err = prog.program_literal(&mut d, Level::new(4), R).unwrap_err();
        assert!(matches!(err, DeviceError::ProgramFailed { .. }));
    }

    #[test]
    fn aging_is_gentle_at_default_retention() {
        let mut prog = Programmer::new(11, TechParams::default());
        let mut d = Fgmos::new(FgmosMode::UpLiteral);
        prog.program_literal(&mut d, Level::new(2), R).unwrap();
        // ten years of storage
        prog.age(&mut d, 10.0 * 365.0 * 24.0);
        // literal must still hold: drift sigma ~ 0.01 V << 0.45 V residual margin
        for v in 0..5u8 {
            assert_eq!(d.conducts(Level::new(v), prog.params()).unwrap(), v >= 2);
        }
    }

    #[test]
    fn heavy_drift_detectable_via_margin() {
        let mut prog = Programmer::new(13, TechParams::default());
        let mut d = Fgmos::new(FgmosMode::UpLiteral);
        prog.program_literal(&mut d, Level::new(2), R).unwrap();
        let before = d.drift_margin_volts(R, prog.params()).unwrap();
        d.drift_threshold(0.4);
        let after = d.drift_margin_volts(R, prog.params()).unwrap();
        assert!(after < before);
    }
}
