//! Pass-transistor tree multiplexers.
//!
//! The SRAM MC-switch selects one of `N` stored configuration bits with an
//! `N:1` MUX driven by the binary context-switching signal. A binary tree of
//! 2:1 pass-transistor stages uses `N − 1` 2:1 muxes = `2·(N − 1)`
//! transistors (complementary select pairs per stage); with `N = 4` that is
//! the 6 transistors that, with 4×6T SRAM and the routed pass transistor,
//! reproduce Table 1's 31.

use crate::error::DeviceError;

/// An `N:1` pass-transistor tree multiplexer (`N` a power of two ≥ 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeMux {
    inputs: usize,
}

impl TreeMux {
    /// Creates an `inputs:1` tree mux.
    pub fn new(inputs: usize) -> Result<Self, DeviceError> {
        if inputs < 2 || !inputs.is_power_of_two() {
            return Err(DeviceError::BadMuxWidth(inputs));
        }
        Ok(TreeMux { inputs })
    }

    /// Number of inputs.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of select bits (`log2 N`).
    #[must_use]
    pub fn select_bits(&self) -> usize {
        self.inputs.trailing_zeros() as usize
    }

    /// Transistor count: `2·(N − 1)`.
    #[must_use]
    pub fn transistor_count(&self) -> usize {
        2 * (self.inputs - 1)
    }

    /// Steers input `select` to the output.
    pub fn select<T: Copy>(&self, inputs: &[T], select: usize) -> Result<T, DeviceError> {
        if inputs.len() != self.inputs {
            return Err(DeviceError::BadSelect {
                select,
                inputs: inputs.len(),
            });
        }
        if select >= self.inputs {
            return Err(DeviceError::BadSelect {
                select,
                inputs: self.inputs,
            });
        }
        Ok(inputs[select])
    }

    /// Evaluates the mux the way the tree actually routes: stage `k` of the
    /// tree is steered by select bit `k` (LSB first). Provided so tests can
    /// confirm the tree construction equals direct indexing.
    pub fn select_via_tree<T: Copy>(&self, inputs: &[T], select: usize) -> Result<T, DeviceError> {
        if inputs.len() != self.inputs || select >= self.inputs {
            return Err(DeviceError::BadSelect {
                select,
                inputs: inputs.len(),
            });
        }
        let mut layer: Vec<T> = inputs.to_vec();
        let mut bit = 0;
        while layer.len() > 1 {
            let pick = (select >> bit) & 1;
            layer = layer.chunks_exact(2).map(|pair| pair[pick]).collect();
            bit += 1;
        }
        Ok(layer[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_widths() {
        assert!(TreeMux::new(0).is_err());
        assert!(TreeMux::new(1).is_err());
        assert!(TreeMux::new(3).is_err());
        assert!(TreeMux::new(2).is_ok());
        assert!(TreeMux::new(8).is_ok());
    }

    #[test]
    fn transistor_counts() {
        assert_eq!(TreeMux::new(2).unwrap().transistor_count(), 2);
        assert_eq!(TreeMux::new(4).unwrap().transistor_count(), 6);
        assert_eq!(TreeMux::new(8).unwrap().transistor_count(), 14);
    }

    #[test]
    fn select_bits() {
        assert_eq!(TreeMux::new(4).unwrap().select_bits(), 2);
        assert_eq!(TreeMux::new(16).unwrap().select_bits(), 4);
    }

    #[test]
    fn direct_select() {
        let m = TreeMux::new(4).unwrap();
        let ins = [10, 20, 30, 40];
        for (i, v) in ins.iter().enumerate() {
            assert_eq!(m.select(&ins, i).unwrap(), *v);
        }
        assert!(m.select(&ins, 4).is_err());
        assert!(m.select(&[1, 2], 0).is_err());
    }

    #[test]
    fn tree_routing_equals_direct_indexing() {
        for n in [2usize, 4, 8, 16] {
            let m = TreeMux::new(n).unwrap();
            let ins: Vec<usize> = (0..n).collect();
            for s in 0..n {
                assert_eq!(m.select_via_tree(&ins, s).unwrap(), s, "n={n} s={s}");
                assert_eq!(
                    m.select_via_tree(&ins, s).unwrap(),
                    m.select(&ins, s).unwrap()
                );
            }
        }
    }
}
