//! Plain (non-floating-gate) pass transistors and transmission gates.
//!
//! These appear in the SRAM-based MC-switch (the routed-signal pass
//! transistor and the CSS-selected configuration MUX) and in the MV-FGFP
//! switch's context-doubling MUX (Fig. 6).

use mcfpga_mvl::Level;

/// Channel polarity of a pass transistor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassKind {
    /// n-channel: conducts when the gate is logic high.
    Nmos,
    /// p-channel: conducts when the gate is logic low.
    Pmos,
}

/// A single pass transistor (1 transistor in the cost model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassTransistor {
    kind: PassKind,
}

impl PassTransistor {
    /// Creates a pass transistor.
    #[must_use]
    pub fn new(kind: PassKind) -> Self {
        PassTransistor { kind }
    }

    /// Channel polarity.
    #[must_use]
    pub fn kind(&self) -> PassKind {
        self.kind
    }

    /// Conducts for a binary gate drive?
    #[must_use]
    pub fn conducts(&self, gate: bool) -> bool {
        match self.kind {
            PassKind::Nmos => gate,
            PassKind::Pmos => !gate,
        }
    }

    /// Transistor count (1).
    #[must_use]
    pub const fn transistor_count(&self) -> usize {
        1
    }

    /// nMOS pass transistors degrade a passed high level by roughly a
    /// threshold; model the degraded output level given an input level.
    /// pMOS degrades lows symmetrically. Only used by analog-fidelity checks.
    #[must_use]
    pub fn degrade(&self, input: Level) -> Level {
        match self.kind {
            PassKind::Nmos => input, // quantised model: full swing restored downstream
            PassKind::Pmos => input,
        }
    }
}

/// A CMOS transmission gate (nMOS + pMOS in parallel, 2 transistors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransmissionGate;

impl TransmissionGate {
    /// Creates a transmission gate.
    #[must_use]
    pub fn new() -> Self {
        TransmissionGate
    }

    /// Conducts when the (true-polarity) enable is high.
    #[must_use]
    pub fn conducts(&self, enable: bool) -> bool {
        enable
    }

    /// Transistor count (2).
    #[must_use]
    pub const fn transistor_count(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nmos_conducts_on_high() {
        let t = PassTransistor::new(PassKind::Nmos);
        assert!(t.conducts(true));
        assert!(!t.conducts(false));
        assert_eq!(t.transistor_count(), 1);
    }

    #[test]
    fn pmos_conducts_on_low() {
        let t = PassTransistor::new(PassKind::Pmos);
        assert!(!t.conducts(true));
        assert!(t.conducts(false));
    }

    #[test]
    fn transmission_gate() {
        let tg = TransmissionGate::new();
        assert!(tg.conducts(true));
        assert!(!tg.conducts(false));
        assert_eq!(tg.transistor_count(), 2);
    }
}
