//! The floating-gate MOS functional pass gate (FGFP).
//!
//! One FGMOS merges *storage* (charge trapped on the floating gate sets an
//! effective threshold voltage) and *switching* (the channel passes the
//! routed signal when the control-gate voltage is on the conducting side of
//! that threshold). Ref \[2\] of the paper shows a single FGFP realises an
//! up-literal or a down-literal over a multiple-valued control signal; two in
//! series realise a window literal by wired-AND.
//!
//! Model: the stored state is the effective threshold `vth_v` (volts). An
//! up-mode device conducts iff `Vg ≥ vth_v`; a down-mode device (depletion /
//! complementary arrangement per ref \[2\]) conducts iff `Vg ≤ vth_v`. The
//! quantised programming API sites thresholds half a level step away from the
//! nearest code so that retention drift must exceed the margin before
//! behaviour changes.

use crate::error::DeviceError;
use crate::params::TechParams;
use mcfpga_mvl::{Level, Radix};

/// Conduction polarity of an FGFP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FgmosMode {
    /// Conducts when the control-gate level is **at or above** the threshold
    /// (monotone increasing step — the paper's up-literal, Fig. 4(a)).
    UpLiteral,
    /// Conducts when the control-gate level is **at or below** the threshold
    /// (monotone decreasing step — down-literal, Fig. 4(b)).
    DownLiteral,
}

/// Behavioural floating-gate MOS functional pass gate.
///
/// Always exactly **one transistor** in the cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct Fgmos {
    mode: FgmosMode,
    /// Effective threshold voltage; `None` until first programmed.
    vth_v: Option<f64>,
    /// Literal bound the threshold was most recently programmed to encode
    /// (`None` for parked/never configurations).
    programmed_bound: Option<Level>,
    /// Cumulative programming pulses absorbed over the device lifetime.
    total_pulses: u64,
}

impl Fgmos {
    /// Creates an unprogrammed device.
    #[must_use]
    pub fn new(mode: FgmosMode) -> Self {
        Fgmos {
            mode,
            vth_v: None,
            programmed_bound: None,
            total_pulses: 0,
        }
    }

    /// Device polarity.
    #[must_use]
    pub fn mode(&self) -> FgmosMode {
        self.mode
    }

    /// The effective threshold voltage, if programmed.
    #[must_use]
    pub fn threshold_volts(&self) -> Option<f64> {
        self.vth_v
    }

    /// Literal bound the device was programmed for (`None` = parked or
    /// unprogrammed).
    #[must_use]
    pub fn programmed_bound(&self) -> Option<Level> {
        self.programmed_bound
    }

    /// Lifetime programming pulses (endurance accounting).
    #[must_use]
    pub fn total_pulses(&self) -> u64 {
        self.total_pulses
    }

    /// Transistor count of the device: 1, by construction. Exists so cost
    /// roll-ups never hard-code the magic constant.
    #[must_use]
    pub const fn transistor_count(&self) -> usize {
        1
    }

    /// Ideal (noise-free) programming: place the threshold exactly at the
    /// margin-sited voltage for literal bound `t`.
    ///
    /// Real charge-injection programming goes through
    /// [`Programmer`](crate::program::Programmer); this entry point exists
    /// for architectural simulations that do not model injection noise.
    pub fn program_ideal(
        &mut self,
        t: Level,
        radix: Radix,
        params: &TechParams,
    ) -> Result<(), DeviceError> {
        if t.value() >= radix.levels() {
            return Err(DeviceError::BadThresholdLevel {
                level: t.value(),
                radix: radix.levels(),
            });
        }
        let v = match self.mode {
            FgmosMode::UpLiteral => params.up_threshold_volts(t),
            FgmosMode::DownLiteral => params.down_threshold_volts(t),
        };
        self.vth_v = Some(v);
        self.programmed_bound = Some(t);
        Ok(())
    }

    /// Parks the device so it never conducts on the rail (used for unused
    /// branches — the MV-switch redundancy case).
    pub fn park(&mut self, radix: Radix, params: &TechParams) {
        let v = match self.mode {
            FgmosMode::UpLiteral => params.park_high_volts(radix),
            FgmosMode::DownLiteral => params.park_low_volts(),
        };
        self.vth_v = Some(v);
        self.programmed_bound = None;
    }

    /// Sets the raw threshold voltage (programming backend; see
    /// [`Programmer`](crate::program::Programmer)).
    pub(crate) fn set_threshold_volts(&mut self, v: f64, bound: Option<Level>) {
        self.vth_v = Some(v);
        self.programmed_bound = bound;
    }

    /// Adds to the lifetime pulse counter.
    pub(crate) fn absorb_pulses(&mut self, pulses: u32) {
        self.total_pulses += u64::from(pulses);
    }

    /// Perturbs the stored threshold (retention drift / disturb modelling).
    pub fn drift_threshold(&mut self, delta_v: f64) {
        if let Some(v) = self.vth_v.as_mut() {
            *v += delta_v;
        }
    }

    /// Does the channel conduct for a control-gate voltage `vg_v`?
    pub fn conducts_volts(&self, vg_v: f64) -> Result<bool, DeviceError> {
        let vth = self.vth_v.ok_or(DeviceError::Unprogrammed)?;
        Ok(match self.mode {
            FgmosMode::UpLiteral => vg_v >= vth,
            FgmosMode::DownLiteral => vg_v <= vth,
        })
    }

    /// Does the channel conduct for a quantised control-gate level?
    pub fn conducts(&self, g: Level, params: &TechParams) -> Result<bool, DeviceError> {
        self.conducts_volts(params.level_volts(g))
    }

    /// Remaining margin (volts) before drift flips behaviour at the nearest
    /// rail level. `None` if unprogrammed.
    ///
    /// The margin is the smallest distance from the threshold to any rail
    /// level voltage; once drift consumes it, some level's conduction
    /// decision changes.
    #[must_use]
    pub fn drift_margin_volts(&self, radix: Radix, params: &TechParams) -> Option<f64> {
        let vth = self.vth_v?;
        let m = radix
            .all_levels()
            .map(|l| (params.level_volts(l) - vth).abs())
            .fold(f64::INFINITY, f64::min);
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: Radix = Radix::FIVE;

    fn p() -> TechParams {
        TechParams::default()
    }

    #[test]
    fn unprogrammed_device_errors() {
        let d = Fgmos::new(FgmosMode::UpLiteral);
        assert_eq!(
            d.conducts(Level::new(2), &p()),
            Err(DeviceError::Unprogrammed)
        );
        assert_eq!(d.threshold_volts(), None);
    }

    #[test]
    fn up_literal_conduction_table() {
        let mut d = Fgmos::new(FgmosMode::UpLiteral);
        d.program_ideal(Level::new(2), R, &p()).unwrap();
        let got: Vec<bool> = (0..5)
            .map(|v| d.conducts(Level::new(v), &p()).unwrap())
            .collect();
        assert_eq!(got, [false, false, true, true, true]);
        assert_eq!(d.programmed_bound(), Some(Level::new(2)));
    }

    #[test]
    fn down_literal_conduction_table() {
        let mut d = Fgmos::new(FgmosMode::DownLiteral);
        d.program_ideal(Level::new(2), R, &p()).unwrap();
        let got: Vec<bool> = (0..5)
            .map(|v| d.conducts(Level::new(v), &p()).unwrap())
            .collect();
        assert_eq!(got, [true, true, true, false, false]);
    }

    #[test]
    fn matches_mvl_literals_for_all_bounds() {
        use mcfpga_mvl::literal::{DownLiteral, Literal, UpLiteral};
        for t in 0..5u8 {
            let mut up = Fgmos::new(FgmosMode::UpLiteral);
            up.program_ideal(Level::new(t), R, &p()).unwrap();
            let mut down = Fgmos::new(FgmosMode::DownLiteral);
            down.program_ideal(Level::new(t), R, &p()).unwrap();
            let ul = UpLiteral::new(Level::new(t));
            let dl = DownLiteral::new(Level::new(t));
            for v in 0..5u8 {
                let l = Level::new(v);
                assert_eq!(up.conducts(l, &p()).unwrap(), ul.eval(l), "up t={t} v={v}");
                assert_eq!(
                    down.conducts(l, &p()).unwrap(),
                    dl.eval(l),
                    "down t={t} v={v}"
                );
            }
        }
    }

    #[test]
    fn parked_devices_never_conduct() {
        for mode in [FgmosMode::UpLiteral, FgmosMode::DownLiteral] {
            let mut d = Fgmos::new(mode);
            d.park(R, &p());
            for v in 0..5u8 {
                assert!(!d.conducts(Level::new(v), &p()).unwrap(), "{mode:?} v={v}");
            }
            assert_eq!(d.programmed_bound(), None);
        }
    }

    #[test]
    fn rejects_off_rail_bounds() {
        let mut d = Fgmos::new(FgmosMode::UpLiteral);
        assert_eq!(
            d.program_ideal(Level::new(5), R, &p()),
            Err(DeviceError::BadThresholdLevel { level: 5, radix: 5 })
        );
    }

    #[test]
    fn drift_within_margin_is_harmless() {
        let mut d = Fgmos::new(FgmosMode::UpLiteral);
        d.program_ideal(Level::new(2), R, &p()).unwrap();
        let margin = d.drift_margin_volts(R, &p()).unwrap();
        assert!((margin - 0.5).abs() < 1e-12);
        d.drift_threshold(0.3); // stays within the 0.5 V half-step margin
        let got: Vec<bool> = (0..5)
            .map(|v| d.conducts(Level::new(v), &p()).unwrap())
            .collect();
        assert_eq!(got, [false, false, true, true, true]);
    }

    #[test]
    fn drift_past_margin_flips_a_level() {
        let mut d = Fgmos::new(FgmosMode::UpLiteral);
        d.program_ideal(Level::new(2), R, &p()).unwrap();
        d.drift_threshold(0.6); // vth 1.5 → 2.1: level 2 no longer conducts
        assert!(!d.conducts(Level::new(2), &p()).unwrap());
        assert!(d.conducts(Level::new(3), &p()).unwrap());
    }

    #[test]
    fn single_transistor() {
        assert_eq!(Fgmos::new(FgmosMode::UpLiteral).transistor_count(), 1);
    }
}
