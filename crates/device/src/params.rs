//! Technology parameters shared by the behavioural device models.

use mcfpga_mvl::{Level, Radix};

/// Technology/operating parameters for the behavioural models.
///
/// Voltages follow the paper's drawing convention: one volt per rail level
/// (`Vs ∈ {1,2,3,4}` volts on the five-valued rail), with level 0 at 0 V.
#[derive(Debug, Clone, PartialEq)]
pub struct TechParams {
    /// Volts per MV rail level.
    pub level_step_v: f64,
    /// Supply voltage (drives SRAM cells and binary gates).
    pub vdd_v: f64,
    /// Half-step noise margin used when siting FGMOS thresholds between
    /// levels: a threshold for literal bound `T` is placed at
    /// `(T − 0.5)·step` (up) or `(T + 0.5)·step` (down).
    pub margin_v: f64,
    /// Std-dev of a single programming pulse's charge-induced threshold move
    /// (volts). Models injection noise.
    pub program_noise_v: f64,
    /// Threshold shift per programming pulse (volts), before noise.
    pub program_pulse_v: f64,
    /// Acceptable |actual − target| threshold error after program/verify.
    pub program_tolerance_v: f64,
    /// Maximum program/verify pulses before a device is declared worn out.
    pub endurance_pulses: u32,
    /// Retention drift rate: std-dev of threshold random walk per 1000 h
    /// (volts). FGMOS charge leaks very slowly; default keeps literals valid
    /// for decades within the half-step margin.
    pub retention_sigma_v_per_kh: f64,
    /// SRAM cell static leakage (watts per cell, order-of-magnitude model).
    pub sram_leak_w: f64,
    /// FGMOS static leakage (watts per device). Non-volatile storage needs no
    /// supply — the paper's §4 claim — so this is essentially zero.
    pub fgmos_leak_w: f64,
    /// Energy to (re)program one FGMOS threshold (joules) — charge injection
    /// is expensive but happens only at configuration time.
    pub fgmos_program_energy_j: f64,
    /// Dynamic energy per context-switch toggle of one broadcast wire (J).
    pub css_toggle_energy_j: f64,
}

impl Default for TechParams {
    fn default() -> Self {
        TechParams {
            level_step_v: 1.0,
            vdd_v: 5.0,
            margin_v: 0.5,
            program_noise_v: 0.02,
            program_pulse_v: 0.1,
            program_tolerance_v: 0.05,
            endurance_pulses: 10_000,
            retention_sigma_v_per_kh: 0.001,
            sram_leak_w: 1e-9,
            fgmos_leak_w: 1e-15,
            fgmos_program_energy_j: 1e-9,
            css_toggle_energy_j: 1e-12,
        }
    }
}

impl TechParams {
    /// Voltage of a rail level under this technology.
    #[must_use]
    pub fn level_volts(&self, l: Level) -> f64 {
        f64::from(l.value()) * self.level_step_v
    }

    /// The highest rail voltage for a given radix.
    #[must_use]
    pub fn top_volts(&self, radix: Radix) -> f64 {
        self.level_volts(radix.top())
    }

    /// Ideal threshold voltage siting for an **up**-literal bound `t`:
    /// halfway below the lowest conducting level.
    #[must_use]
    pub fn up_threshold_volts(&self, t: Level) -> f64 {
        self.level_volts(t) - self.margin_v
    }

    /// Ideal threshold voltage siting for a **down**-literal bound `t`:
    /// halfway above the highest conducting level.
    #[must_use]
    pub fn down_threshold_volts(&self, t: Level) -> f64 {
        self.level_volts(t) + self.margin_v
    }

    /// A threshold parked beyond the rail so the device never conducts
    /// (up-literal variant).
    #[must_use]
    pub fn park_high_volts(&self, radix: Radix) -> f64 {
        self.top_volts(radix) + 2.0 * self.level_step_v
    }

    /// A threshold parked below ground so a down-literal device never
    /// conducts.
    #[must_use]
    pub fn park_low_volts(&self) -> f64 {
        -2.0 * self.level_step_v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_volts_follow_paper_convention() {
        let p = TechParams::default();
        assert_eq!(p.level_volts(Level::new(0)), 0.0);
        assert_eq!(p.level_volts(Level::new(4)), 4.0);
        assert_eq!(p.top_volts(Radix::FIVE), 4.0);
    }

    #[test]
    fn threshold_siting_keeps_half_step_margin() {
        let p = TechParams::default();
        // up-literal at T=2 conducts for levels 2,3,4: threshold at 1.5 V
        assert_eq!(p.up_threshold_volts(Level::new(2)), 1.5);
        // down-literal at T=2 conducts for levels 0,1,2: threshold at 2.5 V
        assert_eq!(p.down_threshold_volts(Level::new(2)), 2.5);
    }

    #[test]
    fn parked_thresholds_are_outside_the_rail() {
        let p = TechParams::default();
        assert!(p.park_high_volts(Radix::FIVE) > p.top_volts(Radix::FIVE));
        assert!(p.park_low_volts() < 0.0);
    }

    #[test]
    fn fgmos_leakage_is_negligible_vs_sram() {
        // §4: "no supply voltage is required to keep the storage".
        let p = TechParams::default();
        assert!(p.fgmos_leak_w < p.sram_leak_w * 1e-3);
    }
}
