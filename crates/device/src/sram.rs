//! The 6T SRAM configuration cell.
//!
//! The conventional MC-switch (paper Fig. 2) keeps one SRAM bit per context;
//! each cell costs six transistors and leaks statically as long as the
//! supply is up — the overhead the FGFP approach removes.

use crate::params::TechParams;

/// A six-transistor SRAM cell storing one configuration bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SramCell {
    value: bool,
    powered: bool,
}

impl SramCell {
    /// A powered cell holding 0.
    #[must_use]
    pub fn new() -> Self {
        SramCell {
            value: false,
            powered: true,
        }
    }

    /// Writes the cell. Writes to an unpowered cell are lost (reads return 0).
    pub fn write(&mut self, v: bool) {
        if self.powered {
            self.value = v;
        }
    }

    /// Reads the cell. An unpowered cell has lost its state.
    #[must_use]
    pub fn read(&self) -> bool {
        self.powered && self.value
    }

    /// Cuts the supply: volatile storage is destroyed. This is the §4
    /// contrast with FGFPs ("no supply voltage is required to keep the
    /// storage").
    pub fn power_down(&mut self) {
        self.powered = false;
        self.value = false;
    }

    /// Restores the supply; contents are undefined-as-zero after power-up.
    pub fn power_up(&mut self) {
        self.powered = true;
    }

    /// Is the supply up?
    #[must_use]
    pub fn is_powered(&self) -> bool {
        self.powered
    }

    /// Transistor count (6).
    #[must_use]
    pub const fn transistor_count(&self) -> usize {
        6
    }

    /// Static leakage of this cell (0 when powered down).
    #[must_use]
    pub fn static_power_w(&self, params: &TechParams) -> f64 {
        if self.powered {
            params.sram_leak_w
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut c = SramCell::new();
        assert!(!c.read());
        c.write(true);
        assert!(c.read());
        c.write(false);
        assert!(!c.read());
        assert_eq!(c.transistor_count(), 6);
    }

    #[test]
    fn power_loss_destroys_state() {
        let mut c = SramCell::new();
        c.write(true);
        c.power_down();
        assert!(!c.read());
        c.power_up();
        assert!(!c.read(), "state must not survive a power cycle");
        // and writes while unpowered are lost
        let mut d = SramCell::new();
        d.power_down();
        d.write(true);
        d.power_up();
        assert!(!d.read());
    }

    #[test]
    fn leaks_only_while_powered() {
        let p = TechParams::default();
        let mut c = SramCell::new();
        assert!(c.static_power_w(&p) > 0.0);
        c.power_down();
        assert_eq!(c.static_power_w(&p), 0.0);
    }
}
