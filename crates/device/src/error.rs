//! Device-layer errors.

/// Errors produced by device models.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// Program/verify did not converge within the endurance budget.
    ProgramFailed {
        /// Target threshold (volts).
        target_v: f64,
        /// Threshold reached when the budget ran out (volts).
        reached_v: f64,
        /// Pulses spent.
        pulses: u32,
    },
    /// The device has exceeded its endurance budget and can no longer be
    /// reprogrammed.
    WornOut {
        /// Total pulses the device has absorbed.
        total_pulses: u64,
    },
    /// An operation needed a programmed device but found an unprogrammed one.
    Unprogrammed,
    /// A literal bound was outside the rail.
    BadThresholdLevel {
        /// Offending level value.
        level: u8,
        /// Rail radix.
        radix: u8,
    },
    /// Mux select word out of range for its input count.
    BadSelect {
        /// Select value supplied.
        select: usize,
        /// Number of mux inputs.
        inputs: usize,
    },
    /// A mux was built with an unsupported input count (must be a power of
    /// two ≥ 2 for the tree construction).
    BadMuxWidth(usize),
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::ProgramFailed {
                target_v,
                reached_v,
                pulses,
            } => write!(
                f,
                "program/verify failed: target {target_v} V, reached {reached_v} V after {pulses} pulses"
            ),
            DeviceError::WornOut { total_pulses } => {
                write!(f, "device worn out after {total_pulses} pulses")
            }
            DeviceError::Unprogrammed => write!(f, "device is unprogrammed"),
            DeviceError::BadThresholdLevel { level, radix } => {
                write!(f, "threshold level {level} outside radix-{radix} rail")
            }
            DeviceError::BadSelect { select, inputs } => {
                write!(f, "mux select {select} out of range for {inputs} inputs")
            }
            DeviceError::BadMuxWidth(n) => write!(f, "unsupported mux width {n}"),
        }
    }
}

impl std::error::Error for DeviceError {}
