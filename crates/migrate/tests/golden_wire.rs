//! Golden-file pin of checkpoint wire format v2.
//!
//! The hex blob below is the canonical encoding of a fixed checkpoint. If
//! this test fails, the wire format changed: bump
//! [`mcfpga_migrate::FORMAT_VERSION`], regenerate the blob, and keep the
//! old-version rejection test honest — never silently re-pin.

use mcfpga_cost::attribution::TenantUsage;
use mcfpga_fabric::compiled::{LaneChunk, LANE_WORDS};
use mcfpga_fabric::{FabricParams, RegisterFile};
use mcfpga_migrate::{MigrateError, PendingBatch, TenantCheckpoint, FORMAT_VERSION};

/// Canonical v2 encoding of [`golden_checkpoint`].
const GOLDEN_HEX: &str = "4d434b50000200000006676f6c64656e0123456789abcdef00000004000000040000000200000004000000040000000\
20000000202000000010000000300000002000000020000000278300000000000000001000000000000000000000000\
00000000000000000000000000000002783100000000000000020000000000000000000000000000000000000000000\
00000000000020000000000000028000000000000002900000001000000057265673a3700000000deadbeef00000000\
00000000000000000000000000000000000000550000000000000082000000000000000300000000000000050000000\
0000000080000000000000001000000000000000200000000000000030000000000000004";

/// A chunk whose word 0 is `w` — how v1's single-word values appear after
/// the v2 widening.
fn chunk(w: u64) -> LaneChunk {
    let mut c = [0u64; LANE_WORDS];
    c[0] = w;
    c
}

fn golden_checkpoint() -> TenantCheckpoint {
    TenantCheckpoint {
        name: "golden".into(),
        digest: 0x0123_4567_89AB_CDEF,
        params: FabricParams::default(),
        ctx: 1,
        css_position: 3,
        pending: PendingBatch {
            lanes: 2,
            inputs: vec![("x0".into(), chunk(0b01)), ("x1".into(), chunk(0b10))],
            requests: vec![40, 41],
        },
        // a nonzero upper word pins the full 4-word chunk encoding, not
        // just the word-0 compatibility slice
        regs: [("reg:7".to_string(), [0xDEAD_BEEF, 0, 0, 0x55] as LaneChunk)]
            .into_iter()
            .collect::<RegisterFile>(),
        usage: TenantUsage {
            requests: 130,
            passes: 3,
            css_toggles: 5,
            css_toggles_baseline: 8,
            migrations: 1,
            migration_bytes: 2,
            migration_downtime_cycles: 3,
            migration_css_toggles: 4,
        },
    }
}

fn golden_bytes() -> Vec<u8> {
    (0..GOLDEN_HEX.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&GOLDEN_HEX[i..i + 2], 16).unwrap())
        .collect()
}

#[test]
fn v2_encoding_is_pinned() {
    assert_eq!(
        golden_checkpoint().to_bytes(),
        golden_bytes(),
        "wire format drifted from the v2 golden blob — bump FORMAT_VERSION"
    );
}

#[test]
fn v2_golden_blob_decodes_to_the_fixture() {
    let decoded = TenantCheckpoint::from_bytes(&golden_bytes()).unwrap();
    assert_eq!(decoded, golden_checkpoint());
}

/// A checkpoint stamped with a *future* format version fails loudly with
/// the typed error, so an old build can never misread a new checkpoint.
#[test]
fn future_version_is_rejected_not_misread() {
    let mut blob = golden_bytes();
    for future in [FORMAT_VERSION + 1, FORMAT_VERSION + 7, u16::MAX] {
        blob[4..6].copy_from_slice(&future.to_be_bytes());
        assert_eq!(
            TenantCheckpoint::from_bytes(&blob),
            Err(MigrateError::VersionMismatch {
                found: future,
                supported: FORMAT_VERSION,
            }),
            "version {future}"
        );
    }
    // version 0 (pre-release garbage) equally refuses
    blob[4..6].copy_from_slice(&0u16.to_be_bytes());
    assert!(matches!(
        TenantCheckpoint::from_bytes(&blob),
        Err(MigrateError::VersionMismatch { found: 0, .. })
    ));
}

/// Every single-byte truncation of the golden blob is a typed failure —
/// never a panic, never a partial decode.
#[test]
fn every_truncation_fails_typed() {
    let blob = golden_bytes();
    for cut in 0..blob.len() {
        let err = TenantCheckpoint::from_bytes(&blob[..cut]).unwrap_err();
        assert!(
            matches!(
                err,
                MigrateError::Truncated { .. }
                    | MigrateError::BadMagic
                    | MigrateError::VersionMismatch { .. }
            ),
            "cut at {cut}: {err}"
        );
    }
}
