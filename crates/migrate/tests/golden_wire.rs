//! Golden-file pin of checkpoint wire format v1.
//!
//! The hex blob below is the canonical encoding of a fixed checkpoint. If
//! this test fails, the wire format changed: bump
//! [`mcfpga_migrate::FORMAT_VERSION`], regenerate the blob, and keep the
//! old-version rejection test honest — never silently re-pin.

use mcfpga_cost::attribution::TenantUsage;
use mcfpga_fabric::{FabricParams, RegisterFile};
use mcfpga_migrate::{MigrateError, PendingBatch, TenantCheckpoint, FORMAT_VERSION};

/// Canonical v1 encoding of [`golden_checkpoint`].
const GOLDEN_HEX: &str = "4d434b50000100000006676f6c64656e0123456789abcdef000000040000000\
4000000020000000400000004000000020000000202000000010000000300000002000000020000000278300000000\
0000000010000000278310000000000000002000000020000000000000028000000000000002900000001000000057\
265673a3700000000deadbeef0000000000000082000000000000000300000000000000050000000000000008000000\
0000000001000000000000000200000000000000030000000000000004";

fn golden_checkpoint() -> TenantCheckpoint {
    TenantCheckpoint {
        name: "golden".into(),
        digest: 0x0123_4567_89AB_CDEF,
        params: FabricParams::default(),
        ctx: 1,
        css_position: 3,
        pending: PendingBatch {
            lanes: 2,
            inputs: vec![("x0".into(), 0b01), ("x1".into(), 0b10)],
            requests: vec![40, 41],
        },
        regs: [("reg:7".to_string(), 0xDEAD_BEEFu64)]
            .into_iter()
            .collect::<RegisterFile>(),
        usage: TenantUsage {
            requests: 130,
            passes: 3,
            css_toggles: 5,
            css_toggles_baseline: 8,
            migrations: 1,
            migration_bytes: 2,
            migration_downtime_cycles: 3,
            migration_css_toggles: 4,
        },
    }
}

fn golden_bytes() -> Vec<u8> {
    (0..GOLDEN_HEX.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&GOLDEN_HEX[i..i + 2], 16).unwrap())
        .collect()
}

#[test]
fn v1_encoding_is_pinned() {
    assert_eq!(
        golden_checkpoint().to_bytes(),
        golden_bytes(),
        "wire format drifted from the v1 golden blob — bump FORMAT_VERSION"
    );
}

#[test]
fn v1_golden_blob_decodes_to_the_fixture() {
    let decoded = TenantCheckpoint::from_bytes(&golden_bytes()).unwrap();
    assert_eq!(decoded, golden_checkpoint());
}

/// A checkpoint stamped with a *future* format version fails loudly with
/// the typed error, so an old build can never misread a new checkpoint.
#[test]
fn future_version_is_rejected_not_misread() {
    let mut blob = golden_bytes();
    for future in [FORMAT_VERSION + 1, FORMAT_VERSION + 7, u16::MAX] {
        blob[4..6].copy_from_slice(&future.to_be_bytes());
        assert_eq!(
            TenantCheckpoint::from_bytes(&blob),
            Err(MigrateError::VersionMismatch {
                found: future,
                supported: FORMAT_VERSION,
            }),
            "version {future}"
        );
    }
    // version 0 (pre-release garbage) equally refuses
    blob[4..6].copy_from_slice(&0u16.to_be_bytes());
    assert!(matches!(
        TenantCheckpoint::from_bytes(&blob),
        Err(MigrateError::VersionMismatch { found: 0, .. })
    ));
}

/// Every single-byte truncation of the golden blob is a typed failure —
/// never a panic, never a partial decode.
#[test]
fn every_truncation_fails_typed() {
    let blob = golden_bytes();
    for cut in 0..blob.len() {
        let err = TenantCheckpoint::from_bytes(&blob[..cut]).unwrap_err();
        assert!(
            matches!(
                err,
                MigrateError::Truncated { .. }
                    | MigrateError::BadMagic
                    | MigrateError::VersionMismatch { .. }
            ),
            "cut at {cut}: {err}"
        );
    }
}
