//! Migration equivalence, property-tested on random compiled fabrics:
//! checkpoint → serialize → deserialize → restore on a fresh shard must
//! produce **bit-for-bit identical responses** to a never-migrated twin
//! of the same tenant, across all 64 lanes — with and without stream-
//! register state, with and without a forced plane rebase.

use mcfpga_device::TechParams;
use mcfpga_fabric::compiled::LANES;
use mcfpga_fabric::netlist_ir::{LogicNetlist, Node, NodeId};
use mcfpga_fabric::FabricParams;
use mcfpga_service::{Response, ShardedService, TenantCheckpoint, TenantId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const INPUTS: usize = 4;

/// Random DAG: `INPUTS` primary inputs named `i0..`, `luts` LUT nodes with
/// 1–3 fanins drawn from earlier nodes, 2 primary outputs. When `stream`,
/// the last LUT additionally reads and writes a `reg:acc` stream register,
/// so the design carries state across pass boundaries.
fn random_dag(seed: u64, luts: usize, stream: bool) -> LogicNetlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = LogicNetlist::new();
    let mut pool: Vec<NodeId> = (0..INPUTS)
        .map(|i| nl.add_input(&format!("i{i}")))
        .collect();
    let acc = stream.then(|| nl.add_input("reg:acc"));
    for j in 0..luts {
        let f = 1 + rng.random_range(0..3usize.min(pool.len()));
        let mut fanin = Vec::with_capacity(f);
        for _ in 0..f {
            fanin.push(pool[rng.random_range(0..pool.len())]);
        }
        fanin.dedup();
        let rows = 1u64 << fanin.len();
        let table = rng.random_range(0..(1u64 << rows.min(63)));
        let id = nl.add_lut(&format!("l{j}"), &fanin, table).unwrap();
        pool.push(id);
    }
    nl.add_output("o1", pool[pool.len() - 1]).unwrap();
    nl.add_output("o2", pool[pool.len() - 2]).unwrap();
    if let Some(acc) = acc {
        let last = pool[pool.len() - 1];
        let mix = nl.add_lut("mix", &[last, acc], 0b0110).unwrap();
        nl.add_output("o3", mix).unwrap();
        nl.add_output("reg:acc", mix).unwrap();
    }
    nl
}

fn service() -> ShardedService {
    ShardedService::new(
        3,
        FabricParams {
            width: 5,
            height: 5,
            channel_width: 4,
            ..FabricParams::default()
        },
        TechParams::default(),
    )
    .unwrap()
}

fn input_names(nl: &LogicNetlist) -> Vec<String> {
    nl.input_ids()
        .into_iter()
        .filter_map(|id| match nl.node(id) {
            Node::Input { name } if !name.starts_with("reg:") => Some(name.clone()),
            _ => None,
        })
        .collect()
}

/// Submits the same `count` random vectors to every tenant in `tenants`,
/// in interleaved order.
fn submit_identical(
    svc: &mut ShardedService,
    tenants: &[TenantId],
    names: &[String],
    rng: &mut StdRng,
    count: usize,
) {
    for _ in 0..count {
        let vector: Vec<(String, bool)> = names
            .iter()
            .map(|n| (n.clone(), rng.random_range(0..2u32) == 1))
            .collect();
        let refs: Vec<(&str, bool)> = vector.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        for &t in tenants {
            svc.submit(t, &refs).unwrap();
        }
    }
}

/// One tenant's responses, in request order, outputs sorted by name.
fn responses_of(all: &[Response], tenant: TenantId) -> Vec<Vec<(String, bool)>> {
    let mut mine: Vec<_> = all.iter().filter(|r| r.tenant == tenant).collect();
    mine.sort_by_key(|r| r.request);
    mine.iter()
        .map(|r| {
            let mut outs: Vec<(String, bool)> =
                r.outputs.iter().map(|(n, v)| (n.to_string(), *v)).collect();
            outs.sort();
            outs
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline equivalence: full-lane batches on random fabrics,
    /// restored from serialized bytes, answer exactly like the twin.
    #[test]
    fn restored_tenant_matches_never_migrated_twin(
        seed in 0u64..5000,
        luts in 4usize..9,
        stream in any::<bool>(),
        force_rebase in any::<bool>(),
        warm_passes in 0usize..3,
    ) {
        let nl = random_dag(seed, luts, stream);
        let mut svc = service();
        let Ok(twin) = svc.admit("twin", &nl) else {
            // unroutable on this geometry — not a migration case
            return Err(TestCaseError::Reject);
        };
        let source = svc.admit("source", &nl).unwrap(); // shard 1, same digest
        if force_rebase {
            // occupy shard 2's slot 0 so the restore must rebase the plane
            let filler = random_dag(seed.wrapping_add(99), 4, false);
            prop_assume!(svc.admit("filler", &filler).is_ok());
        }

        let names = input_names(&nl);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        // warm the stream registers with identical drained passes
        for _ in 0..warm_passes {
            submit_identical(&mut svc, &[twin, source], &names, &mut rng, 1);
            svc.drain().unwrap();
        }

        // 63 lanes pending at the boundary — under the 256-lane default
        // width nothing auto-flushes, and the count keeps every lane in
        // chunk word 0, so the checkpoint also restores onto a 64-wide
        // destination unchanged
        submit_identical(&mut svc, &[twin, source], &names, &mut rng, LANES - 1);

        // checkpoint → wire bytes → parse → restore on the fresh shard
        let ckpt = svc.checkpoint_tenant(source).unwrap();
        prop_assert_eq!(ckpt.pending.lanes, LANES - 1);
        let wire = ckpt.to_bytes();
        prop_assert_eq!(wire.len(), ckpt.encoded_len());
        let parsed = TenantCheckpoint::from_bytes(&wire).unwrap();
        prop_assert_eq!(&parsed, &ckpt);
        let (restored, fresh) = svc.restore_tenant(&parsed, 2).unwrap();
        prop_assert_eq!(fresh.len(), LANES - 1);
        if force_rebase {
            let slot = svc.registry().tenant(restored).unwrap().placement;
            prop_assert!(slot.ctx != parsed.ctx, "filler must have forced a rebase");
        }

        // a 64th request on top of the restored 63, so the destination's
        // next pass carries a full chunk word of genuinely mixed lanes
        submit_identical(&mut svc, &[twin, source, restored], &names, &mut rng, 1);

        let all = svc.drain().unwrap();
        let want = responses_of(&all, twin);
        let got = responses_of(&all, restored);
        prop_assert_eq!(want.len(), LANES);
        prop_assert_eq!(&got, &want, "restored tenant diverged from its twin");
        // the source also still answers identically (checkpoint is a copy)
        prop_assert_eq!(&responses_of(&all, source), &want);

        // continued streams stay in lockstep after the restore
        if stream {
            submit_identical(&mut svc, &[twin, restored], &names, &mut rng, 1);
            let next = svc.drain().unwrap();
            prop_assert_eq!(
                responses_of(&next, restored),
                responses_of(&next, twin),
                "stream state diverged after restore"
            );
        }
    }
}
