//! # mcfpga-migrate — checkpoint/restore and live tenant migration
//!
//! The paper's fabric switches logic planes in nanoseconds, but a *service*
//! built on it (`mcfpga-service`) also has to move **tenants** — off a
//! faulted plane, off a hot shard, or onto another service instance
//! entirely. Following Wicaksana et al.'s context-switch method for
//! heterogeneous reconfigurable systems, the movable unit here is a
//! checkpoint taken at a **context-switch boundary**: between two fabric
//! passes every piece of a tenant's execution state is explicit —
//!
//! * the **configuration digest** of its routed context plane (the
//!   destination reuses the compiled plane through the service's plane
//!   cache instead of shipping bitstreams),
//! * the **temporal register file** ([`mcfpga_fabric::RegisterFile`]) —
//!   stream state carried across pass boundaries,
//! * the **pending lane batch** — submitted-but-unexecuted requests, as
//!   the exact union lane words they were queued with,
//! * the **CSS sweep position** the source shard's broadcast sat on,
//! * and the tenant's accumulated usage counters, so billing follows it.
//!
//! A restored tenant is bit-for-bit indistinguishable from one that never
//! moved: the compiled plane is context-independent (it can be *rebased*
//! onto whatever slot the destination has free —
//! [`mcfpga_fabric::CompiledFabric::rebase_context`]), the lane words
//! re-enter the queue unchanged, and the register file resumes exactly
//! where the last pass left it. Only the *energy* differs, and that
//! difference is billed: `mcfpga_cost::attribution` carries bytes moved,
//! downtime cycles and the destination's broadcast-realignment toggles per
//! tenant.
//!
//! [`TenantCheckpoint`] serializes through a small versioned wire format
//! ([`FORMAT_VERSION`], golden-file pinned); deserializing a checkpoint
//! written by an unknown future format fails loudly with
//! [`MigrateError::VersionMismatch`] instead of corrupting state. The
//! in-memory types additionally derive the workspace's (stand-in) `serde`
//! markers, so swapping in real serde needs no source changes.
//!
//! The live operations themselves — `checkpoint_tenant`, `restore_tenant`,
//! `migrate_tenant`, `evacuate_shard` — live on
//! `mcfpga_service::ShardedService`, which depends on this crate for the
//! checkpoint model and error vocabulary.
//!
//! ```
//! use mcfpga_migrate::{PendingBatch, TenantCheckpoint, FORMAT_VERSION};
//!
//! let ckpt = TenantCheckpoint {
//!     name: "parity".into(),
//!     digest: 0xD1_6E57,
//!     params: mcfpga_fabric::FabricParams::default(),
//!     ctx: 1,
//!     css_position: 3,
//!     pending: PendingBatch::default(),
//!     regs: mcfpga_fabric::RegisterFile::new(),
//!     usage: mcfpga_cost::attribution::TenantUsage::default(),
//! };
//! let wire = ckpt.to_bytes();
//! let back = TenantCheckpoint::from_bytes(&wire)?;
//! assert_eq!(back, ckpt);
//! assert_eq!(ckpt.encoded_len(), wire.len());
//! # Ok::<(), mcfpga_migrate::MigrateError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod wire;

pub use checkpoint::{PendingBatch, TenantCheckpoint};

/// Version stamped into every serialized checkpoint. Bump on any layout
/// change; decoders reject other versions with
/// [`MigrateError::VersionMismatch`]. Version 2 widened every pending
/// input and stream register from one lane word to a 4-word
/// [`LaneChunk`](mcfpga_fabric::compiled::LaneChunk) (256 lanes).
pub const FORMAT_VERSION: u16 = 2;

/// Errors from checkpoint serialization and migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrateError {
    /// The buffer does not begin with the checkpoint magic.
    BadMagic,
    /// The checkpoint was written by a different format version.
    VersionMismatch {
        /// Version found in the buffer.
        found: u16,
        /// The only version this decoder reads.
        supported: u16,
    },
    /// The buffer ended before the structure it declares.
    Truncated {
        /// Bytes the next field needs.
        needed: usize,
        /// Bytes left in the buffer.
        remaining: usize,
    },
    /// The buffer decodes to an impossible structure (bad UTF-8, lane
    /// count beyond the batch width, …).
    Corrupt(String),
    /// A checkpoint's fabric geometry does not match the restoring
    /// service's.
    GeometryMismatch {
        /// The restoring service's geometry.
        expected: String,
        /// The checkpoint's geometry.
        found: String,
    },
    /// The destination holds no compiled plane for the checkpoint's
    /// configuration digest (checkpoints ship digests, not bitstreams —
    /// the plane must already be cached, e.g. by a prior admission of the
    /// same netlist).
    PlaneUnavailable {
        /// The missing configuration digest.
        digest: u64,
    },
    /// The destination shard has no free context slot.
    NoFreeSlot {
        /// The requested destination shard.
        shard: usize,
    },
    /// A plane re-provisioning attempt routed and compiled the supplied
    /// source netlist, but no context produced the checkpoint's
    /// configuration digest — the netlist is not the design that was
    /// checkpointed.
    NetlistDigestMismatch {
        /// The digest the checkpoint demands.
        digest: u64,
    },
    /// An evacuation could not place every tenant elsewhere; nothing was
    /// moved.
    EvacuationBlocked {
        /// Tenants resident on the shard being evacuated.
        tenants: usize,
        /// Free slots available off that shard.
        free_elsewhere: usize,
    },
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            MigrateError::VersionMismatch { found, supported } => write!(
                f,
                "checkpoint format version {found} unsupported (this build reads {supported})"
            ),
            MigrateError::Truncated { needed, remaining } => write!(
                f,
                "checkpoint truncated: next field needs {needed} bytes, {remaining} remain"
            ),
            MigrateError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            MigrateError::GeometryMismatch { expected, found } => write!(
                f,
                "checkpoint geometry {found} does not match service geometry {expected}"
            ),
            MigrateError::PlaneUnavailable { digest } => write!(
                f,
                "no compiled plane cached for digest {digest:#018x} (checkpoints ship digests, \
                 not bitstreams)"
            ),
            MigrateError::NetlistDigestMismatch { digest } => write!(
                f,
                "supplied netlist does not reproduce checkpoint digest {digest:#018x} in any \
                 context — refusing to provision a different design"
            ),
            MigrateError::NoFreeSlot { shard } => {
                write!(f, "destination shard {shard} has no free context slot")
            }
            MigrateError::EvacuationBlocked {
                tenants,
                free_elsewhere,
            } => write!(
                f,
                "cannot evacuate: {tenants} tenants but only {free_elsewhere} free slots \
                 elsewhere; nothing was moved"
            ),
        }
    }
}

impl std::error::Error for MigrateError {}
