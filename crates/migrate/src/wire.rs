//! Primitive readers/writers of the checkpoint wire format.
//!
//! Big-endian, length-prefixed. Writing builds on the workspace's `bytes`
//! buffer; reading is a zero-copy cursor over the caller's slice — no
//! duplication of the checkpoint before the first field is parsed. Every
//! read is bounds-checked up front, so a truncated or hostile buffer
//! (including absurd length prefixes) surfaces as a typed
//! [`MigrateError`] instead of a panic or an over-allocation: a claimed
//! length is validated against the bytes actually present *before*
//! anything is copied, which is also why encode and decode accept exactly
//! the same domain — any string that fits in a buffer decodes from it.

use crate::MigrateError;
use bytes::{BufMut, BytesMut};

/// A bounds-checked, zero-copy read cursor over a checkpoint buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a byte buffer (borrowed; nothing is copied).
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { buf: bytes }
    }

    /// Bytes left unread.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn need(&self, n: usize) -> Result<(), MigrateError> {
        if self.buf.len() < n {
            return Err(MigrateError::Truncated {
                needed: n,
                remaining: self.buf.len(),
            });
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], MigrateError> {
        self.need(n)?;
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, MigrateError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian u16.
    pub fn u16(&mut self) -> Result<u16, MigrateError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, MigrateError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a big-endian u64.
    pub fn u64(&mut self) -> Result<u64, MigrateError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u32` length prefix destined to count `unit`-byte records,
    /// verifying the buffer can actually hold that many.
    pub fn count(&mut self, unit: usize) -> Result<usize, MigrateError> {
        let n = self.u32()? as usize;
        self.need(n.saturating_mul(unit))?;
        Ok(n)
    }

    /// Reads `n` raw bytes (borrowed from the input).
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], MigrateError> {
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string. The length prefix is checked
    /// against the bytes actually remaining before anything is touched, so
    /// a hostile prefix costs nothing.
    pub fn string(&mut self) -> Result<String, MigrateError> {
        let len = self.u32()? as usize;
        let raw = self.bytes(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| MigrateError::Corrupt("string is not UTF-8".into()))
    }

    /// The decode is only valid when it consumed the whole buffer.
    pub fn finish(self) -> Result<(), MigrateError> {
        if !self.buf.is_empty() {
            return Err(MigrateError::Corrupt(format!(
                "{} trailing bytes after the checkpoint",
                self.buf.len()
            )));
        }
        Ok(())
    }
}

/// A write cursor building a checkpoint buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Writer::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a big-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.put_u16(v);
    }

    /// Appends a big-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Appends a big-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.put_u64(v);
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }

    /// The finished buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<u8> {
        self.buf.freeze().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_and_bounds_check() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(0x0102);
        w.u32(0xDEAD_BEEF);
        w.u64(42);
        w.string("héllo");
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0x0102);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.string().unwrap(), "héllo");
        r.finish().unwrap();

        // truncation is a typed error, not a panic
        let mut short = Reader::new(&buf[..2]);
        short.u8().unwrap();
        assert_eq!(
            short.u16(),
            Err(MigrateError::Truncated {
                needed: 2,
                remaining: 1
            })
        );
    }

    #[test]
    fn hostile_lengths_are_rejected() {
        // a string claiming 4 GiB: refused by the bounds check before any
        // allocation (there is no artificial length cap — anything the
        // writer can produce, the reader accepts)
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let buf = w.into_vec();
        assert!(matches!(
            Reader::new(&buf).string(),
            Err(MigrateError::Truncated { .. })
        ));
        // a record count the buffer cannot possibly hold
        let mut w = Writer::new();
        w.u32(1_000_000);
        let buf = w.into_vec();
        assert!(matches!(
            Reader::new(&buf).count(8),
            Err(MigrateError::Truncated { .. })
        ));
        // trailing garbage fails the finish check
        let mut w = Writer::new();
        w.u8(1);
        w.u8(2);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        r.u8().unwrap();
        assert!(matches!(r.finish(), Err(MigrateError::Corrupt(_))));
    }

    #[test]
    fn encode_decode_domains_match_even_for_huge_strings() {
        // the reader accepts exactly what the writer emits: a tenant named
        // with 100k characters round-trips instead of encoding to bytes
        // that can never decode
        let big = "n".repeat(100_000);
        let mut w = Writer::new();
        w.string(&big);
        let buf = w.into_vec();
        assert_eq!(Reader::new(&buf).string().unwrap(), big);
    }

    #[test]
    fn invalid_utf8_is_corrupt() {
        let mut w = Writer::new();
        w.u32(2);
        w.bytes(&[0xFF, 0xFE]);
        let buf = w.into_vec();
        assert!(matches!(
            Reader::new(&buf).string(),
            Err(MigrateError::Corrupt(_))
        ));
    }
}
