//! The tenant checkpoint model and its versioned wire codec.

use crate::wire::{Reader, Writer};
use crate::{MigrateError, FORMAT_VERSION};
use mcfpga_core::ArchKind;
use mcfpga_cost::attribution::TenantUsage;
use mcfpga_fabric::compiled::{LaneChunk, LANE_WORDS, MAX_LANES};
use mcfpga_fabric::{FabricParams, RegisterFile};
use serde::{Deserialize, Serialize};

/// First bytes of every checkpoint buffer.
pub const MAGIC: [u8; 4] = *b"MCKP";

/// A tenant's submitted-but-unexecuted requests, exactly as they sit in
/// the slot's lane batch: the union input names with their lane chunks
/// (lane `l` = request `l`'s value) plus the original request ids, lane
/// order. Restoring re-queues the chunks unchanged, so the batch evaluates
/// bit-for-bit as it would have at the source; the ids are an audit trail
/// (a restore issues *fresh* ids — see the service docs — so a stale
/// checkpoint can never resurrect requests that were answered or
/// discarded after it was taken).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingBatch {
    /// Occupied lanes (queued requests).
    pub lanes: usize,
    /// Union input names and their lane chunks, union order.
    pub inputs: Vec<(String, LaneChunk)>,
    /// Source-side request ids, lane order (`lanes` entries).
    pub requests: Vec<u64>,
}

/// Everything needed to resume a tenant on another shard or service.
///
/// Taken at a context-switch boundary (between fabric passes), where the
/// tenant's whole execution state is explicit; see the
/// [crate docs](crate) for the field-by-field rationale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantCheckpoint {
    /// Human-readable tenant name.
    pub name: String,
    /// Configuration digest of the tenant's routed context plane — the
    /// plane-cache key the destination resolves instead of receiving a
    /// bitstream.
    pub digest: u64,
    /// Fabric geometry the plane was compiled for; restore refuses a
    /// differently-shaped service.
    pub params: FabricParams,
    /// Context slot the tenant occupied at checkpoint time (the restore
    /// affinity hint: landing on the same index reuses the cached plane
    /// without rebasing).
    pub ctx: usize,
    /// Where the source shard's CSS broadcast sat at the boundary.
    pub css_position: usize,
    /// Queued, unexecuted requests.
    pub pending: PendingBatch,
    /// Stream state carried across pass boundaries
    /// (`reg:*`-named lane words).
    pub regs: RegisterFile,
    /// Accumulated usage counters — billing follows the tenant.
    pub usage: TenantUsage,
}

fn arch_code(arch: ArchKind) -> u8 {
    match arch {
        ArchKind::Sram => 0,
        ArchKind::MvFgfp => 1,
        ArchKind::Hybrid => 2,
    }
}

fn arch_from(code: u8) -> Result<ArchKind, MigrateError> {
    match code {
        0 => Ok(ArchKind::Sram),
        1 => Ok(ArchKind::MvFgfp),
        2 => Ok(ArchKind::Hybrid),
        other => Err(MigrateError::Corrupt(format!(
            "unknown architecture code {other}"
        ))),
    }
}

impl TenantCheckpoint {
    /// Serializes through the versioned wire format. Deterministic: equal
    /// checkpoints produce equal bytes (every collection in the model is
    /// insertion-ordered, never hashed).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&MAGIC);
        w.u16(FORMAT_VERSION);
        w.string(&self.name);
        w.u64(self.digest);
        let p = &self.params;
        for dim in [
            p.width,
            p.height,
            p.channel_width,
            p.lut_k,
            p.contexts,
            p.io_in,
            p.io_out,
        ] {
            w.u32(dim as u32);
        }
        w.u8(arch_code(p.arch));
        w.u32(self.ctx as u32);
        w.u32(self.css_position as u32);
        w.u32(self.pending.lanes as u32);
        w.u32(self.pending.inputs.len() as u32);
        for (name, chunk) in &self.pending.inputs {
            w.string(name);
            for word in chunk {
                w.u64(*word);
            }
        }
        w.u32(self.pending.requests.len() as u32);
        for id in &self.pending.requests {
            w.u64(*id);
        }
        w.u32(self.regs.len() as u32);
        for (name, chunk) in self.regs.entries() {
            w.string(name);
            for word in chunk {
                w.u64(*word);
            }
        }
        let u = &self.usage;
        for counter in [
            u.requests,
            u.passes,
            u.css_toggles,
            u.css_toggles_baseline,
            u.migrations,
            u.migration_bytes,
            u.migration_downtime_cycles,
            u.migration_css_toggles,
        ] {
            w.u64(counter as u64);
        }
        w.into_vec()
    }

    /// Wire size of this checkpoint — the "bytes moved" a migration bills.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        let strings: usize = std::iter::once(self.name.len())
            .chain(self.pending.inputs.iter().map(|(n, _)| n.len()))
            .chain(self.regs.entries().iter().map(|(n, _)| n.len()))
            .map(|len| 4 + len)
            .sum();
        // magic + version + digest + 7 dims + arch + (ctx, css position,
        // lane count, 3 record counts) + the 8-counter usage block,
        // then the variable-length records (each input/register carries
        // LANE_WORDS lane words)
        let fixed = 4 + 2 + 8 + 7 * 4 + 1 + 6 * 4 + 8 * 8;
        fixed
            + strings
            + 8 * LANE_WORDS * (self.pending.inputs.len() + self.regs.len())
            + 8 * self.pending.requests.len()
    }

    /// Decodes a checkpoint, rejecting unknown versions, truncation,
    /// trailing bytes and structurally impossible payloads.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, MigrateError> {
        let mut r = Reader::new(bytes);
        if r.bytes(4).map_err(|_| MigrateError::BadMagic)? != MAGIC {
            return Err(MigrateError::BadMagic);
        }
        let found = r.u16()?;
        if found != FORMAT_VERSION {
            return Err(MigrateError::VersionMismatch {
                found,
                supported: FORMAT_VERSION,
            });
        }
        let name = r.string()?;
        let digest = r.u64()?;
        let mut dims = [0usize; 7];
        for d in &mut dims {
            *d = r.u32()? as usize;
        }
        let arch = arch_from(r.u8()?)?;
        let params = FabricParams {
            width: dims[0],
            height: dims[1],
            channel_width: dims[2],
            lut_k: dims[3],
            contexts: dims[4],
            io_in: dims[5],
            io_out: dims[6],
            arch,
        };
        let ctx = r.u32()? as usize;
        let css_position = r.u32()? as usize;
        if ctx >= params.contexts || css_position >= params.contexts {
            return Err(MigrateError::Corrupt(format!(
                "slot {ctx} / css position {css_position} outside {} contexts",
                params.contexts
            )));
        }
        let lanes = r.u32()? as usize;
        if lanes > MAX_LANES {
            return Err(MigrateError::Corrupt(format!(
                "{lanes} pending lanes exceed the {MAX_LANES}-lane batch width"
            )));
        }
        let n_inputs = r.count(4 + 8 * LANE_WORDS)?;
        // bits above the occupied lanes are unreachable from the encoder
        // (the queue keeps them zero) and would corrupt later-submitted
        // requests after a restore, so they are structural corruption —
        // checked word by word, since lanes span LANE_WORDS words
        let mut inputs = Vec::with_capacity(n_inputs);
        for _ in 0..n_inputs {
            let name = r.string()?;
            let mut chunk = [0u64; LANE_WORDS];
            for (w, word) in chunk.iter_mut().enumerate() {
                *word = r.u64()?;
                let occupied_here = lanes.saturating_sub(w * 64).min(64);
                let unoccupied = if occupied_here == 64 {
                    0
                } else {
                    !0u64 << occupied_here
                };
                if *word & unoccupied != 0 {
                    return Err(MigrateError::Corrupt(format!(
                        "input '{name}' has lane bits set beyond the {lanes} pending lanes"
                    )));
                }
            }
            inputs.push((name, chunk));
        }
        let n_requests = r.count(8)?;
        if n_requests != lanes {
            return Err(MigrateError::Corrupt(format!(
                "{n_requests} request ids for {lanes} pending lanes"
            )));
        }
        let mut requests = Vec::with_capacity(n_requests);
        for _ in 0..n_requests {
            requests.push(r.u64()?);
        }
        let n_regs = r.count(4 + 8 * LANE_WORDS)?;
        let mut regs = RegisterFile::new();
        for _ in 0..n_regs {
            let name = r.string()?;
            let mut chunk = [0u64; LANE_WORDS];
            for word in &mut chunk {
                *word = r.u64()?;
            }
            regs.set_chunk(&name, chunk);
        }
        let mut counters = [0usize; 8];
        for c in &mut counters {
            *c = r.u64()? as usize;
        }
        r.finish()?;
        Ok(TenantCheckpoint {
            name,
            digest,
            params,
            ctx,
            css_position,
            pending: PendingBatch {
                lanes,
                inputs,
                requests,
            },
            regs,
            usage: TenantUsage {
                requests: counters[0],
                passes: counters[1],
                css_toggles: counters[2],
                css_toggles_baseline: counters[3],
                migrations: counters[4],
                migration_bytes: counters[5],
                migration_downtime_cycles: counters[6],
                migration_css_toggles: counters[7],
            },
        })
    }
}

// Checkpoints cross engine (and thread) boundaries by design.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TenantCheckpoint>();
    assert_send_sync::<PendingBatch>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TenantCheckpoint {
        TenantCheckpoint {
            name: "acc".into(),
            digest: 0x0123_4567_89AB_CDEF,
            params: FabricParams::default(),
            ctx: 2,
            css_position: 1,
            pending: PendingBatch {
                lanes: 2,
                inputs: vec![("x".into(), [0b01, 0, 0, 0]), ("y".into(), [0b10, 0, 0, 0])],
                requests: vec![17, 18],
            },
            regs: [("reg:3".to_string(), [0xFFu64, 0xA5, 0, 1])]
                .into_iter()
                .collect(),
            usage: TenantUsage {
                requests: 9,
                passes: 2,
                css_toggles: 4,
                css_toggles_baseline: 6,
                ..TenantUsage::default()
            },
        }
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let ckpt = sample();
        let wire = ckpt.to_bytes();
        assert_eq!(wire.len(), ckpt.encoded_len());
        assert_eq!(TenantCheckpoint::from_bytes(&wire).unwrap(), ckpt);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(sample().to_bytes(), sample().to_bytes());
    }

    #[test]
    fn unknown_version_fails_loudly() {
        let mut wire = sample().to_bytes();
        wire[4..6].copy_from_slice(&(FORMAT_VERSION + 1).to_be_bytes());
        assert_eq!(
            TenantCheckpoint::from_bytes(&wire),
            Err(MigrateError::VersionMismatch {
                found: FORMAT_VERSION + 1,
                supported: FORMAT_VERSION,
            })
        );
    }

    #[test]
    fn bad_magic_and_truncation_are_typed() {
        let wire = sample().to_bytes();
        let mut scribbled = wire.clone();
        scribbled[0] = b'X';
        assert_eq!(
            TenantCheckpoint::from_bytes(&scribbled),
            Err(MigrateError::BadMagic)
        );
        for cut in [0, 3, 5, wire.len() / 2, wire.len() - 1] {
            let err = TenantCheckpoint::from_bytes(&wire[..cut]).unwrap_err();
            assert!(
                matches!(err, MigrateError::Truncated { .. } | MigrateError::BadMagic),
                "cut at {cut}: {err}"
            );
        }
        let mut padded = wire;
        padded.push(0);
        assert!(matches!(
            TenantCheckpoint::from_bytes(&padded),
            Err(MigrateError::Corrupt(_))
        ));
    }

    #[test]
    fn impossible_structures_are_corrupt() {
        // lane count beyond the batch width
        let mut ckpt = sample();
        ckpt.pending.lanes = MAX_LANES + 1;
        ckpt.pending.requests = vec![0; MAX_LANES + 1];
        assert!(matches!(
            TenantCheckpoint::from_bytes(&ckpt.to_bytes()),
            Err(MigrateError::Corrupt(_))
        ));
        // request-id count disagreeing with the lane count
        let mut ckpt = sample();
        ckpt.pending.requests.pop();
        assert!(matches!(
            TenantCheckpoint::from_bytes(&ckpt.to_bytes()),
            Err(MigrateError::Corrupt(_))
        ));
        // slot outside the declared context count
        let mut ckpt = sample();
        ckpt.ctx = ckpt.params.contexts;
        assert!(matches!(
            TenantCheckpoint::from_bytes(&ckpt.to_bytes()),
            Err(MigrateError::Corrupt(_))
        ));
        // lane bits beyond the declared lane count (the queue can never
        // produce them; restored they would leak into later requests)
        let mut ckpt = sample();
        ckpt.pending.inputs[0].1 = [0b101, 0, 0, 0]; // bit 2, but lanes == 2
        assert!(matches!(
            TenantCheckpoint::from_bytes(&ckpt.to_bytes()),
            Err(MigrateError::Corrupt(_))
        ));
        // same, but the stray bit in a high word (lane 65 of a 2-lane batch)
        let mut ckpt = sample();
        ckpt.pending.inputs[0].1 = [0b01, 0b10, 0, 0];
        assert!(matches!(
            TenantCheckpoint::from_bytes(&ckpt.to_bytes()),
            Err(MigrateError::Corrupt(_))
        ));
        // a full 256-lane batch may use every bit of every word
        let mut ckpt = sample();
        ckpt.pending.lanes = MAX_LANES;
        ckpt.pending.requests = (0..MAX_LANES as u64).collect();
        ckpt.pending.inputs[0].1 = [u64::MAX; LANE_WORDS];
        assert!(TenantCheckpoint::from_bytes(&ckpt.to_bytes()).is_ok());
        // 65 occupied lanes: word-1 bit 0 legal, bit 1 corrupt
        let mut ckpt = sample();
        ckpt.pending.lanes = 65;
        ckpt.pending.requests = (0..65).collect();
        ckpt.pending.inputs[0].1 = [u64::MAX, 0b1, 0, 0];
        ckpt.pending.inputs[1].1 = [0, 0, 0, 0];
        assert!(TenantCheckpoint::from_bytes(&ckpt.to_bytes()).is_ok());
        ckpt.pending.inputs[0].1 = [u64::MAX, 0b10, 0, 0];
        assert!(matches!(
            TenantCheckpoint::from_bytes(&ckpt.to_bytes()),
            Err(MigrateError::Corrupt(_))
        ));
    }
}
