//! The designated-row remapping theorem (paper §3, Fig. 11).
//!
//! "We can map the possibly-ON cross-point switch on a column to the same
//! MC-switch on the column for any context."
//!
//! A crossbar has full input flexibility: which *row* a net enters on is a
//! free choice compensated upstream. So for each column pick one
//! **designated row** (an injective map `col → row`; the diagonal for a
//! square block) and re-route every context's use of that column through it.
//! After remapping:
//!
//! * each column has exactly **one** possibly-ON cross-point across all
//!   contexts → its line-select network can be a single shared instance
//!   (`C` transistors per column, the `K·C` term of Table 2);
//! * the per-context input permutation `π_ctx : old row → designated row`
//!   is returned so the upstream stage can compensate.
//!
//! When rows are physically fixed (no upstream freedom), sharing is only
//! possible for columns that already use a single row; [`column_row_usage`]
//! reports per-column row sets, and [`select_networks_needed`] computes how
//! many select-network instances a fixed-row column requires (one per
//! distinct row — the fallback ablation measured in the benches).

use crate::routing::RouteSet;
use crate::SbError;

/// Result of remapping a route set to designated rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemapOutcome {
    /// The remapped routes (column `c` always driven from `designated[c]`).
    pub routes: RouteSet,
    /// `designated[col]` = the single row that may drive `col`.
    pub designated: Vec<usize>,
    /// Per context: `input_perm[ctx][old_row] = Some(new_row)` for every row
    /// that was re-assigned (identity entries omitted as `None`).
    pub input_perm: Vec<Vec<Option<usize>>>,
}

/// Remaps routes so every column uses a single designated row.
///
/// Requires `rows ≥ cols` (each column needs its own row). For a square
/// block the designated map is the diagonal `col → col`.
#[allow(clippy::needless_range_loop)] // ctx/col index three parallel structures
pub fn remap_to_designated_rows(routes: &RouteSet) -> Result<RemapOutcome, SbError> {
    let (rows, cols, contexts) = (routes.rows(), routes.cols(), routes.contexts());
    if rows < cols {
        return Err(SbError::BadDimensions { rows, cols });
    }
    routes.validate()?;
    let designated: Vec<usize> = (0..cols).collect();
    let mut new_routes = RouteSet::empty(rows, cols, contexts)?;
    let mut input_perm = vec![vec![None; rows]; contexts];
    for ctx in 0..contexts {
        for col in 0..cols {
            if let Some(old_row) = routes.route(ctx, col) {
                let new_row = designated[col];
                new_routes.connect(ctx, new_row, col)?;
                input_perm[ctx][old_row] = Some(new_row);
            }
        }
    }
    Ok(RemapOutcome {
        routes: new_routes,
        designated,
        input_perm,
    })
}

/// The dual remap: every **row** keeps a single designated **column**.
///
/// Needs output-side flexibility (the upstream/downstream network absorbs a
/// per-context *output* permutation) and `cols ≥ rows`. Together with
/// [`remap_to_designated_rows`] this gives the full symmetry of the paper's
/// "a single cross-point switch on each column and row is ON at most".
#[allow(clippy::needless_range_loop)] // ctx/col index three parallel structures
pub fn remap_to_designated_cols(routes: &RouteSet) -> Result<RemapOutcome, SbError> {
    let (rows, cols, contexts) = (routes.rows(), routes.cols(), routes.contexts());
    if cols < rows {
        return Err(SbError::BadDimensions { rows, cols });
    }
    routes.validate()?;
    let designated: Vec<usize> = (0..rows).collect(); // row r → column r
    let mut new_routes = RouteSet::empty(rows, cols, contexts)?;
    let mut output_perm = vec![vec![None; cols]; contexts];
    for ctx in 0..contexts {
        for col in 0..cols {
            if let Some(row) = routes.route(ctx, col) {
                let new_col = designated[row];
                new_routes.connect(ctx, row, new_col)?;
                output_perm[ctx][col] = Some(new_col);
            }
        }
    }
    Ok(RemapOutcome {
        routes: new_routes,
        designated,
        input_perm: output_perm,
    })
}

/// Per-row sets of columns used across all contexts (sorted, deduplicated)
/// — the dual of [`column_row_usage`].
#[must_use]
pub fn row_col_usage(routes: &RouteSet) -> Vec<Vec<usize>> {
    let mut usage: Vec<Vec<usize>> = vec![Vec::new(); routes.rows()];
    for ctx in 0..routes.contexts() {
        for col in 0..routes.cols() {
            if let Some(row) = routes.route(ctx, col) {
                if !usage[row].contains(&col) {
                    usage[row].push(col);
                }
            }
        }
    }
    for slot in &mut usage {
        slot.sort_unstable();
    }
    usage
}

/// Per-column sets of rows used across all contexts (sorted, deduplicated).
#[must_use]
pub fn column_row_usage(routes: &RouteSet) -> Vec<Vec<usize>> {
    let mut usage: Vec<Vec<usize>> = vec![Vec::new(); routes.cols()];
    for ctx in 0..routes.contexts() {
        for (col, slot) in usage.iter_mut().enumerate() {
            if let Some(row) = routes.route(ctx, col) {
                if !slot.contains(&row) {
                    slot.push(row);
                }
            }
        }
    }
    for slot in &mut usage {
        slot.sort_unstable();
    }
    usage
}

/// With physically fixed rows, the number of select-network instances each
/// column needs equals the number of distinct rows it uses (min 1 — the
/// network exists even if idle). Returns `(per_column, total)`.
#[must_use]
pub fn select_networks_needed(routes: &RouteSet) -> (Vec<usize>, usize) {
    let per: Vec<usize> = column_row_usage(routes)
        .iter()
        .map(|rows| rows.len().max(1))
        .collect();
    let total = per.iter().sum();
    (per, total)
}

/// Checks that a remap outcome preserves *connectivity semantics*: in every
/// context, column `c` is routed after the remap iff it was before. (Which
/// row feeds it is exactly the freedom the theorem exploits.)
#[must_use]
pub fn remap_preserves_column_connectivity(before: &RouteSet, out: &RemapOutcome) -> bool {
    if before.contexts() != out.routes.contexts() || before.cols() != out.routes.cols() {
        return false;
    }
    for ctx in 0..before.contexts() {
        for col in 0..before.cols() {
            let was = before.route(ctx, col).is_some();
            let now = out.routes.route(ctx, col);
            if was != now.is_some() {
                return false;
            }
            if let Some(r) = now {
                if r != out.designated[col] {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remap_gives_single_row_per_column() {
        let routes = RouteSet::random_permutations(10, 4, 99).unwrap();
        let out = remap_to_designated_rows(&routes).unwrap();
        out.routes.validate().unwrap();
        let usage = column_row_usage(&out.routes);
        for (col, rows) in usage.iter().enumerate() {
            assert!(rows.len() <= 1, "col {col} uses rows {rows:?}");
            if let Some(&r) = rows.first() {
                assert_eq!(r, out.designated[col]);
            }
        }
        assert!(remap_preserves_column_connectivity(&routes, &out));
    }

    #[test]
    fn remap_partial_routes() {
        let routes = RouteSet::random_partial(8, 8, 4, 0.6, 5).unwrap();
        let out = remap_to_designated_rows(&routes).unwrap();
        assert!(remap_preserves_column_connectivity(&routes, &out));
        // select networks after remap: exactly one per column
        let (_, total) = select_networks_needed(&out.routes);
        assert_eq!(total, 8);
    }

    #[test]
    fn fixed_rows_need_more_select_networks() {
        // random permutations across 4 contexts touch ~4 rows per column
        let routes = RouteSet::random_permutations(10, 4, 7).unwrap();
        let (_, total_fixed) = select_networks_needed(&routes);
        let out = remap_to_designated_rows(&routes).unwrap();
        let (_, total_mapped) = select_networks_needed(&out.routes);
        assert!(total_fixed > total_mapped);
        assert_eq!(total_mapped, 10, "N networks for an N×N SB — the claim");
    }

    #[test]
    fn input_perm_recorded() {
        let mut routes = RouteSet::empty(3, 3, 1).unwrap();
        routes.connect(0, 2, 0).unwrap(); // col 0 from row 2
        let out = remap_to_designated_rows(&routes).unwrap();
        assert_eq!(out.input_perm[0][2], Some(0), "row 2 now enters as row 0");
        assert_eq!(out.routes.route(0, 0), Some(0));
    }

    #[test]
    fn wide_blocks_rejected() {
        let routes = RouteSet::empty(3, 5, 2).unwrap();
        assert!(remap_to_designated_rows(&routes).is_err());
    }

    #[test]
    fn dual_remap_gives_single_column_per_row() {
        let routes = RouteSet::random_permutations(8, 4, 55).unwrap();
        let out = remap_to_designated_cols(&routes).unwrap();
        out.routes.validate().unwrap();
        for (row, cols) in row_col_usage(&out.routes).iter().enumerate() {
            assert!(cols.len() <= 1, "row {row} drives columns {cols:?}");
            if let Some(&c) = cols.first() {
                assert_eq!(c, out.designated[row]);
            }
        }
        // per-context routed row set preserved (rows keep their nets)
        for ctx in 0..4 {
            let before: Vec<Option<usize>> = (0..8)
                .map(|r| (0..8).find(|&c| routes.is_on(ctx, r, c)))
                .collect();
            let after: Vec<Option<usize>> = (0..8)
                .map(|r| (0..8).find(|&c| out.routes.is_on(ctx, r, c)))
                .collect();
            for r in 0..8 {
                assert_eq!(before[r].is_some(), after[r].is_some(), "ctx {ctx} row {r}");
            }
        }
    }

    #[test]
    fn dual_remap_rejects_tall_blocks() {
        let routes = RouteSet::empty(5, 3, 2).unwrap();
        assert!(remap_to_designated_cols(&routes).is_err());
    }
}
