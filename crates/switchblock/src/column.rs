//! Netlist-level verification of a shared-select column (Fig. 11).
//!
//! Builds one crossbar column as silicon: `K` hybrid MC-switches between
//! their row wires and the shared column wire, all watching the **same**
//! per-column broadcast lines (the column's shared select network outputs).
//! After designated-row remapping only one switch in the column is ever
//! programmed ON; the others are parked. The switch-level simulator then
//! confirms that, in every context, the column wire connects to exactly the
//! designated row (or floats).

use crate::SbError;
use mcfpga_core::{HybridMcSwitch, McSwitch};
use mcfpga_css::HybridCssGen;
use mcfpga_device::{Fgmos, FgmosMode, TechParams};
use mcfpga_mvl::CtxSet;
use mcfpga_netlist::{ControlKind, DeviceKind, NetId, Netlist, SwitchSim};

/// A column model: `K` rows, one of them designated, sharing CSS lines.
#[derive(Debug)]
pub struct SharedColumn {
    contexts: usize,
    rows: usize,
    designated: usize,
    netlist: Netlist,
    row_nets: Vec<NetId>,
    col_net: NetId,
}

impl SharedColumn {
    /// Builds the column. `on_set` is the designated switch's function; all
    /// other rows are parked.
    pub fn build(rows: usize, designated: usize, on_set: &CtxSet) -> Result<Self, SbError> {
        if rows == 0 || designated >= rows {
            return Err(SbError::BadDimensions { rows, cols: 1 });
        }
        let contexts = on_set.contexts();
        let mut model = HybridMcSwitch::new(contexts)?;
        model.configure(on_set)?;
        let gen = HybridCssGen::new(contexts).map_err(mcfpga_core::CoreError::Css)?;
        let params = TechParams::default();

        // The designated switch's own netlist tells us which lines it needs;
        // the column replicates its control names as the shared lines.
        let designated_nl = model.build_netlist()?;

        let mut nl = Netlist::new();
        let col_net = nl.add_net("col");
        let mut row_nets = Vec::with_capacity(rows);
        // shared lines: every line any hybrid switch might watch
        for line in gen.lines() {
            let name = line.name(gen.blocks());
            nl.add_control(&name, ControlKind::Mv);
        }
        for row in 0..rows {
            let rn = nl.add_net(&format!("row{row}"));
            row_nets.push(rn);
            if row == designated {
                // replicate the configured switch's devices between rn and col
                clone_switch_devices(&designated_nl, &mut nl, rn, col_net)?;
            } else {
                // parked switch: C/2 parked FGMOS on arbitrary shared lines
                for unit in 0..contexts / 2 {
                    let mut d = Fgmos::new(FgmosMode::UpLiteral);
                    d.park(gen.radix(), &params);
                    let ctrl = mcfpga_netlist::ControlId::from_index(unit % nl.control_count());
                    nl.add_device(DeviceKind::Fgmos(d), rn, col_net, ctrl, None)
                        .map_err(mcfpga_core::CoreError::Netlist)?;
                }
            }
        }
        Ok(SharedColumn {
            contexts,
            rows,
            designated,
            netlist: nl,
            row_nets,
            col_net,
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The underlying netlist (for counting and inspection).
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Simulates every context; returns, per context, which row (if any) the
    /// column wire connects to. Errors on multi-row connection.
    pub fn simulate(&self) -> Result<Vec<Option<usize>>, SbError> {
        let gen = HybridCssGen::new(self.contexts).map_err(mcfpga_core::CoreError::Css)?;
        let mut sim = SwitchSim::new(&self.netlist, TechParams::default());
        let mut result = Vec::with_capacity(self.contexts);
        for ctx in 0..self.contexts {
            for line in gen.lines() {
                let name = line.name(gen.blocks());
                sim.bind_mv_named(&name, gen.line_value_at(line, ctx).unwrap())
                    .map_err(mcfpga_core::CoreError::Netlist)?;
            }
            sim.evaluate().map_err(mcfpga_core::CoreError::Netlist)?;
            let mut connected_row = None;
            for (row, &rn) in self.row_nets.iter().enumerate() {
                if sim.connected(rn, self.col_net) {
                    if connected_row.is_some() {
                        return Err(SbError::RowConflict { ctx, row });
                    }
                    connected_row = Some(row);
                }
            }
            result.push(connected_row);
        }
        Ok(result)
    }

    /// The designated row.
    #[must_use]
    pub fn designated(&self) -> usize {
        self.designated
    }
}

/// Copies the FGMOS devices of a single-switch netlist into `dst` between
/// `a` and `b`, mapping control names across.
fn clone_switch_devices(
    src: &Netlist,
    dst: &mut Netlist,
    a: NetId,
    b: NetId,
) -> Result<(), SbError> {
    for (d, _, _, gate) in src.devices() {
        let fg = src.fgmos(d).map_err(mcfpga_core::CoreError::Netlist)?;
        let name = src
            .control_name(gate)
            .map_err(mcfpga_core::CoreError::Netlist)?;
        let ctrl = dst
            .find_control(name)
            .unwrap_or_else(|| dst.add_control(name, ControlKind::Mv));
        dst.add_device(DeviceKind::Fgmos(fg.clone()), a, b, ctrl, None)
            .map_err(mcfpga_core::CoreError::Netlist)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn designated_row_connects_exactly_when_configured() {
        let on = CtxSet::from_ctxs(4, [0, 3]).unwrap();
        let col = SharedColumn::build(3, 1, &on).unwrap();
        let sim = col.simulate().unwrap();
        assert_eq!(sim, vec![Some(1), None, None, Some(1)]);
    }

    #[test]
    fn parked_rows_never_connect() {
        let on = CtxSet::full(4).unwrap();
        let col = SharedColumn::build(5, 4, &on).unwrap();
        let sim = col.simulate().unwrap();
        assert!(sim.iter().all(|r| *r == Some(4)));
    }

    #[test]
    fn empty_function_floats() {
        let on = CtxSet::empty(4).unwrap();
        let col = SharedColumn::build(4, 0, &on).unwrap();
        assert!(col.simulate().unwrap().iter().all(Option::is_none));
    }

    #[test]
    fn eight_context_column() {
        let on = CtxSet::from_ctxs(8, [1, 4, 6]).unwrap();
        let col = SharedColumn::build(3, 2, &on).unwrap();
        let sim = col.simulate().unwrap();
        for (ctx, r) in sim.iter().enumerate() {
            assert_eq!(*r, if on.get(ctx) { Some(2) } else { None }, "ctx {ctx}");
        }
    }

    #[test]
    fn bad_dimensions() {
        let on = CtxSet::empty(4).unwrap();
        assert!(SharedColumn::build(0, 0, &on).is_err());
        assert!(SharedColumn::build(3, 3, &on).is_err());
    }
}
