//! The configurable multi-context switch block.

use crate::routing::RouteSet;
use crate::SbError;
use mcfpga_core::{AnySwitch, ArchKind, HybridMcSwitch, McSwitch};
use mcfpga_mvl::CtxSet;

/// A `rows × cols` crossbar of multi-context switches of one architecture.
#[derive(Debug, Clone)]
pub struct SwitchBlock {
    arch: ArchKind,
    rows: usize,
    cols: usize,
    contexts: usize,
    /// Row-major: `switches[row * cols + col]`.
    switches: Vec<AnySwitch>,
    routes: Option<RouteSet>,
}

impl SwitchBlock {
    /// Builds an unconfigured switch block.
    pub fn new(arch: ArchKind, rows: usize, cols: usize, contexts: usize) -> Result<Self, SbError> {
        if rows == 0 || cols == 0 || rows > 1024 || cols > 1024 {
            return Err(SbError::BadDimensions { rows, cols });
        }
        let mut switches = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            switches.push(AnySwitch::build(arch, contexts)?);
        }
        Ok(SwitchBlock {
            arch,
            rows,
            cols,
            contexts,
            switches,
            routes: None,
        })
    }

    /// Architecture of the cross-points.
    #[must_use]
    pub fn arch(&self) -> ArchKind {
        self.arch
    }

    /// Rows (input wires).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns (output wires).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Contexts.
    #[must_use]
    pub fn contexts(&self) -> usize {
        self.contexts
    }

    /// The currently loaded routes, if configured.
    #[must_use]
    pub fn routes(&self) -> Option<&RouteSet> {
        self.routes.as_ref()
    }

    /// Programs every cross-point from a route set.
    pub fn configure(&mut self, routes: &RouteSet) -> Result<(), SbError> {
        if routes.contexts() != self.contexts {
            return Err(SbError::ContextMismatch {
                routes: routes.contexts(),
                block: self.contexts,
            });
        }
        if routes.rows() != self.rows || routes.cols() != self.cols {
            return Err(SbError::BadDimensions {
                rows: routes.rows(),
                cols: routes.cols(),
            });
        }
        routes.validate()?;
        for row in 0..self.rows {
            for col in 0..self.cols {
                let mut on_set =
                    CtxSet::empty(self.contexts).map_err(|_| SbError::ContextMismatch {
                        routes: routes.contexts(),
                        block: self.contexts,
                    })?;
                for ctx in 0..self.contexts {
                    if routes.is_on(ctx, row, col) {
                        on_set.insert(ctx).expect("ctx in domain");
                    }
                }
                self.switches[row * self.cols + col].configure(&on_set)?;
            }
        }
        self.routes = Some(routes.clone());
        Ok(())
    }

    /// Programs the block from raw per-context column→row assignments,
    /// enforcing only **column uniqueness** (one driver per output wire).
    ///
    /// Fabric routing legitimately fans one row out to several columns; the
    /// strict partial-permutation form ([`SwitchBlock::configure`]) is the
    /// paper's Fig. 11 setting, needed for the designated-row sharing
    /// optimisation, not for electrical correctness.
    pub fn configure_assignments(&mut self, assign: &[Vec<Option<usize>>]) -> Result<(), SbError> {
        if assign.len() != self.contexts {
            return Err(SbError::ContextMismatch {
                routes: assign.len(),
                block: self.contexts,
            });
        }
        for (ctx, per_col) in assign.iter().enumerate() {
            if per_col.len() != self.cols {
                return Err(SbError::RouteOutOfRange {
                    ctx,
                    col: per_col.len(),
                });
            }
            if let Some(&Some(row)) = per_col
                .iter()
                .find(|r| matches!(r, Some(r) if *r >= self.rows))
            {
                return Err(SbError::RowConflict { ctx, row });
            }
        }
        for row in 0..self.rows {
            for col in 0..self.cols {
                let mut on_set =
                    CtxSet::empty(self.contexts).map_err(|_| SbError::ContextMismatch {
                        routes: assign.len(),
                        block: self.contexts,
                    })?;
                for (ctx, per_col) in assign.iter().enumerate() {
                    if per_col[col] == Some(row) {
                        on_set.insert(ctx).expect("ctx in domain");
                    }
                }
                self.switches[row * self.cols + col].configure(&on_set)?;
            }
        }
        self.routes = None;
        Ok(())
    }

    /// Does cross-point `(row, col)` conduct in `ctx`? (asks the switch,
    /// not the route table — this is the configured silicon speaking).
    pub fn is_on(&self, ctx: usize, row: usize, col: usize) -> Result<bool, SbError> {
        Ok(self.switches[row * self.cols + col].is_on(ctx)?)
    }

    /// Verifies that the configured cross-points realise exactly the loaded
    /// routes, and that the per-context partial-permutation invariant holds
    /// in silicon (≤ 1 ON per row and per column).
    #[allow(clippy::needless_range_loop)] // row/col indices address two structures
    pub fn verify_against_routes(&self) -> Result<(), SbError> {
        let routes = self.routes.as_ref().ok_or(SbError::ContextMismatch {
            routes: 0,
            block: self.contexts,
        })?;
        for ctx in 0..self.contexts {
            let mut col_on = vec![0usize; self.cols];
            let mut row_on = vec![0usize; self.rows];
            for row in 0..self.rows {
                for col in 0..self.cols {
                    let on = self.is_on(ctx, row, col)?;
                    assert_eq!(
                        on,
                        routes.is_on(ctx, row, col),
                        "mismatch at ctx {ctx} ({row},{col})"
                    );
                    if on {
                        col_on[col] += 1;
                        row_on[row] += 1;
                    }
                }
            }
            if let Some(row) = row_on.iter().position(|&n| n > 1) {
                return Err(SbError::RowConflict { ctx, row });
            }
            if col_on.iter().any(|&n| n > 1) {
                return Err(SbError::RowConflict {
                    ctx,
                    row: usize::MAX,
                });
            }
        }
        Ok(())
    }

    /// Physical transistor count of the whole block, including the
    /// column-shared select networks for the hybrid architecture (Table 2
    /// accounting — see [`crate::count::sb_transistors`]).
    #[must_use]
    pub fn transistor_count(&self) -> usize {
        let per_switch: usize = self.switches.iter().map(McSwitch::transistor_count).sum();
        match self.arch {
            ArchKind::Hybrid => {
                per_switch + self.cols * HybridMcSwitch::select_transistors_for(self.contexts)
            }
            _ => per_switch,
        }
    }

    /// Follows a signal: the set of columns driven by `row` in `ctx`.
    pub fn columns_driven_by(&self, ctx: usize, row: usize) -> Result<Vec<usize>, SbError> {
        let mut cols = Vec::new();
        for col in 0..self.cols {
            if self.is_on(ctx, row, col)? {
                cols.push(col);
            }
        }
        Ok(cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_counts_all_architectures() {
        // 10×10, 4 contexts — the paper's Table 2.
        let expect = [
            (ArchKind::Sram, 3100),
            (ArchKind::MvFgfp, 400),
            (ArchKind::Hybrid, 240),
        ];
        for (arch, count) in expect {
            let sb = SwitchBlock::new(arch, 10, 10, 4).unwrap();
            assert_eq!(sb.transistor_count(), count, "{arch:?}");
        }
    }

    #[test]
    fn configure_and_verify_hybrid_3x3() {
        // Fig. 11's "for simplicity, 3 columns and 3 rows".
        let mut sb = SwitchBlock::new(ArchKind::Hybrid, 3, 3, 4).unwrap();
        let routes = RouteSet::random_permutations(3, 4, 11).unwrap();
        sb.configure(&routes).unwrap();
        sb.verify_against_routes().unwrap();
    }

    #[test]
    fn configure_and_verify_all_archs_10x10() {
        let routes = RouteSet::random_permutations(10, 4, 23).unwrap();
        for arch in ArchKind::all() {
            let mut sb = SwitchBlock::new(arch, 10, 10, 4).unwrap();
            sb.configure(&routes).unwrap();
            sb.verify_against_routes().unwrap();
        }
    }

    #[test]
    fn partial_routes_leave_crosspoints_off() {
        let mut sb = SwitchBlock::new(ArchKind::Hybrid, 4, 4, 4).unwrap();
        let mut routes = RouteSet::empty(4, 4, 4).unwrap();
        routes.connect(0, 1, 2).unwrap();
        sb.configure(&routes).unwrap();
        assert!(sb.is_on(0, 1, 2).unwrap());
        assert!(!sb.is_on(0, 0, 0).unwrap());
        assert!(!sb.is_on(1, 1, 2).unwrap());
        assert_eq!(sb.columns_driven_by(0, 1).unwrap(), vec![2]);
        assert!(sb.columns_driven_by(1, 1).unwrap().is_empty());
    }

    #[test]
    fn context_mismatch_rejected() {
        let mut sb = SwitchBlock::new(ArchKind::Hybrid, 3, 3, 4).unwrap();
        let routes = RouteSet::random_permutations(3, 8, 1).unwrap();
        assert!(matches!(
            sb.configure(&routes),
            Err(SbError::ContextMismatch { .. })
        ));
    }

    #[test]
    fn rectangular_blocks_supported() {
        let mut sb = SwitchBlock::new(ArchKind::Hybrid, 6, 3, 4).unwrap();
        let routes = RouteSet::random_partial(6, 3, 4, 0.8, 5).unwrap();
        sb.configure(&routes).unwrap();
        sb.verify_against_routes().unwrap();
    }
}
