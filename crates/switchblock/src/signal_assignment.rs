//! Select-network assignment when rows are physically fixed.
//!
//! Without input flexibility, a column that is driven from `r` distinct rows
//! across contexts needs its switches split into groups, one shared select
//! network per group, such that within a group at most one row is
//! "possibly ON" — i.e. one network per distinct row. Across the block,
//! however, networks can be *shared between columns* as long as the rows
//! they serve never need different line selections in the same context.
//!
//! We model the sharing problem as graph colouring: vertices are
//! `(column, row)` usage pairs; two vertices conflict when they belong to
//! the same column (a column's switches listen to exactly one network per
//! row-group) — this yields the per-column lower bound — and the greedy
//! colouring then reports how many networks a whole block needs, which the
//! benches compare against the designated-row remap (always `K`).

use crate::mapping::column_row_usage;
use crate::routing::RouteSet;

/// One select-network group: the `(column, row)` pairs it serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkGroup {
    /// Members served by this network.
    pub members: Vec<(usize, usize)>,
}

/// Greedy assignment of `(column, row)` usage pairs to select networks.
///
/// Pairs from the same column always conflict; pairs from different columns
/// can share. Returns the groups (their count is the network requirement).
#[must_use]
pub fn assign_networks(routes: &RouteSet) -> Vec<NetworkGroup> {
    let usage = column_row_usage(routes);
    // vertices ordered column-major
    let mut groups: Vec<NetworkGroup> = Vec::new();
    for (col, rows) in usage.iter().enumerate() {
        for &row in rows {
            // first group with no member from this column
            match groups
                .iter_mut()
                .find(|g| g.members.iter().all(|(c, _)| *c != col))
            {
                Some(g) => g.members.push((col, row)),
                None => groups.push(NetworkGroup {
                    members: vec![(col, row)],
                }),
            }
        }
    }
    groups
}

/// Number of select networks the greedy assignment uses.
#[must_use]
pub fn networks_required(routes: &RouteSet) -> usize {
    assign_networks(routes).len()
}

/// Validates an assignment: every used `(column, row)` pair appears in
/// exactly one group, and no group holds two pairs of one column.
#[must_use]
pub fn assignment_is_valid(routes: &RouteSet, groups: &[NetworkGroup]) -> bool {
    let usage = column_row_usage(routes);
    let mut need: Vec<(usize, usize)> = Vec::new();
    for (col, rows) in usage.iter().enumerate() {
        for &row in rows {
            need.push((col, row));
        }
    }
    let mut seen: Vec<(usize, usize)> = Vec::new();
    for g in groups {
        let mut cols = Vec::new();
        for &(c, r) in &g.members {
            if cols.contains(&c) {
                return false; // two members of one column share a network
            }
            cols.push(c);
            seen.push((c, r));
        }
    }
    seen.sort_unstable();
    need.sort_unstable();
    seen == need
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::remap_to_designated_rows;

    #[test]
    fn greedy_matches_max_column_usage() {
        let routes = RouteSet::random_permutations(10, 4, 5).unwrap();
        let groups = assign_networks(&routes);
        assert!(assignment_is_valid(&routes, &groups));
        let max_per_col = column_row_usage(&routes)
            .iter()
            .map(Vec::len)
            .max()
            .unwrap();
        // greedy sharing collapses the requirement to the per-column maximum
        assert_eq!(groups.len(), max_per_col);
    }

    #[test]
    fn remapped_routes_need_one_network_total_groupwise() {
        let routes = RouteSet::random_permutations(8, 4, 9).unwrap();
        let out = remap_to_designated_rows(&routes).unwrap();
        let groups = assign_networks(&out.routes);
        assert!(assignment_is_valid(&out.routes, &groups));
        // every column uses exactly one row → one shared group serves all
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members.len(), 8);
    }

    #[test]
    fn empty_routes_need_no_networks() {
        let routes = RouteSet::empty(5, 5, 4).unwrap();
        assert_eq!(networks_required(&routes), 0);
    }

    #[test]
    fn sharing_beats_per_column_totals() {
        let routes = RouteSet::random_permutations(10, 4, 77).unwrap();
        let (_, per_column_total) = crate::mapping::select_networks_needed(&routes);
        // cross-column sharing is at least as good as one-network-per-
        // column-per-row
        assert!(networks_required(&routes) <= per_column_total);
    }
}
