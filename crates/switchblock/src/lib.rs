//! # mcfpga-switchblock — the multi-context switch block (paper Fig. 11)
//!
//! A switch block (SB) is a crossbar: `rows × cols` cross-points, each a
//! multi-context switch. Per context, a valid route is a **partial
//! permutation** — at most one ON cross-point per row and per column.
//!
//! The paper's observation: because of that constraint, "we can map the
//! possibly-ON cross-point switch on a column to the same MC-switch on the
//! column for any context. As a result, N independent control signals are
//! sufficient for an N×N MC-SB." Concretely, a crossbar has full input
//! flexibility, so the router may re-assign each net's *row* so that every
//! column uses one **designated row** across all contexts; the column's
//! line-select network (`C` transistors for `C` contexts) is then shared by
//! the whole column. That is the Table 2 accounting:
//!
//! ```text
//! SRAM:     K² · (8C − 1)             (10×10, C=4 → 3100)
//! MV-FGFP:  K² · (3C/2 − 2)           (10×10, C=4 →  400)
//! proposed: K² · C/2  +  K · C        (10×10, C=4 →  240)
//! ```
//!
//! Modules: [`routing`] (partial permutations, validation, generators),
//! [`crossbar`] (the configurable SB itself), [`mapping`] (the
//! designated-row remapping theorem as an algorithm, plus conflict
//! analysis when rows are fixed), [`mod@column`] (netlist-level shared-column
//! verification), [`count`] (Table 2 closed forms).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod column;
pub mod count;
pub mod crossbar;
pub mod mapping;
pub mod routing;
pub mod signal_assignment;

pub use count::sb_transistors;
pub use crossbar::SwitchBlock;
pub use mapping::{column_row_usage, remap_to_designated_rows, RemapOutcome};
pub use routing::RouteSet;

/// Errors from switch-block construction and routing.
#[derive(Debug, Clone, PartialEq)]
pub enum SbError {
    /// Dimension was zero or absurdly large.
    BadDimensions {
        /// Rows requested.
        rows: usize,
        /// Columns requested.
        cols: usize,
    },
    /// Route referenced an out-of-range row/column/context.
    RouteOutOfRange {
        /// Context of the offending entry.
        ctx: usize,
        /// Column of the offending entry.
        col: usize,
    },
    /// Two columns claimed the same row in one context.
    RowConflict {
        /// Context where the conflict occurs.
        ctx: usize,
        /// The row claimed twice.
        row: usize,
    },
    /// Route set's context count does not match the switch block.
    ContextMismatch {
        /// Contexts in the route set.
        routes: usize,
        /// Contexts in the switch block.
        block: usize,
    },
    /// Underlying switch error.
    Core(mcfpga_core::CoreError),
}

impl From<mcfpga_core::CoreError> for SbError {
    fn from(e: mcfpga_core::CoreError) -> Self {
        SbError::Core(e)
    }
}

impl std::fmt::Display for SbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SbError::BadDimensions { rows, cols } => {
                write!(f, "bad switch block dimensions {rows}×{cols}")
            }
            SbError::RouteOutOfRange { ctx, col } => {
                write!(f, "route out of range at ctx {ctx}, col {col}")
            }
            SbError::RowConflict { ctx, row } => {
                write!(f, "row {row} claimed twice in ctx {ctx}")
            }
            SbError::ContextMismatch { routes, block } => {
                write!(f, "route contexts {routes} != block contexts {block}")
            }
            SbError::Core(e) => write!(f, "switch: {e}"),
        }
    }
}

impl std::error::Error for SbError {}
