//! Closed-form Table 2 transistor counts and sweeps.

use mcfpga_core::{ArchKind, HybridMcSwitch, MvFgfpMcSwitch, SramMcSwitch};

/// Transistor count of a `k × k` switch block with `contexts` contexts.
///
/// * SRAM: `k² · (8C − 1)`
/// * MV-FGFP: `k² · (3C/2 − 2)`
/// * Hybrid: `k² · C/2 + k · C` (per-column shared select network)
#[must_use]
pub fn sb_transistors(arch: ArchKind, k: usize, contexts: usize) -> usize {
    match arch {
        ArchKind::Sram => k * k * SramMcSwitch::transistor_count_for(contexts),
        ArchKind::MvFgfp => k * k * MvFgfpMcSwitch::transistor_count_for(contexts),
        ArchKind::Hybrid => {
            k * k * HybridMcSwitch::transistor_count_for(contexts)
                + k * HybridMcSwitch::select_transistors_for(contexts)
        }
    }
}

/// One row of the Table 2 reproduction: label, count, and the ratio to the
/// SRAM baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Architecture label (paper wording).
    pub label: &'static str,
    /// Transistor count.
    pub transistors: usize,
    /// Fraction of the SRAM-based count.
    pub vs_sram: f64,
}

/// Regenerates Table 2 for a `k × k` block with `contexts` contexts.
#[must_use]
pub fn table2(k: usize, contexts: usize) -> Vec<Table2Row> {
    let sram = sb_transistors(ArchKind::Sram, k, contexts);
    ArchKind::all()
        .into_iter()
        .map(|arch| {
            let t = sb_transistors(arch, k, contexts);
            Table2Row {
                label: arch.label(),
                transistors: t,
                vs_sram: t as f64 / sram as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table2_values() {
        assert_eq!(sb_transistors(ArchKind::Sram, 10, 4), 3100);
        assert_eq!(sb_transistors(ArchKind::MvFgfp, 10, 4), 400);
        assert_eq!(sb_transistors(ArchKind::Hybrid, 10, 4), 240);
    }

    #[test]
    fn paper_ratios() {
        // "reduced to 8% and 60% of that of the SRAM-based one and the
        // FGFP-based one using only MV-CSS"
        let rows = table2(10, 4);
        let hybrid = &rows[2];
        assert!((hybrid.vs_sram - 0.0774).abs() < 0.005, "~8% of SRAM");
        let vs_mv = hybrid.transistors as f64 / rows[1].transistors as f64;
        assert!((vs_mv - 0.6).abs() < 1e-9, "60% of MV-FGFP");
    }

    #[test]
    fn closed_form_matches_built_blocks() {
        use crate::crossbar::SwitchBlock;
        for arch in ArchKind::all() {
            for (k, c) in [(3usize, 4usize), (5, 4), (4, 8)] {
                let sb = SwitchBlock::new(arch, k, k, c).unwrap();
                assert_eq!(
                    sb.transistor_count(),
                    sb_transistors(arch, k, c),
                    "{arch:?} k={k} c={c}"
                );
            }
        }
    }

    #[test]
    fn hybrid_advantage_grows_with_block_size() {
        // the K·C select term amortises: bigger blocks → closer to C/2 per switch
        let r10 = table2(10, 4)[2].vs_sram;
        let r40 = table2(40, 4)[2].vs_sram;
        assert!(r40 < r10);
    }
}
