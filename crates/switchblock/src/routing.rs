//! Per-context crossbar routes as partial permutations.
//!
//! The route of one context maps each **column** (output wire) to at most
//! one **row** (input wire); validity additionally demands no row is claimed
//! by two columns — "For a context, a single cross-point switch on each
//! column and row is ON at most" (§3).

use crate::SbError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Routes for every context of a switch block.
///
/// `assign[ctx][col] = Some(row)` means column `col` is driven from row
/// `row` in context `ctx`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteSet {
    rows: usize,
    cols: usize,
    assign: Vec<Vec<Option<usize>>>,
}

impl RouteSet {
    /// Creates an empty route set (`contexts × cols`, nothing routed).
    pub fn empty(rows: usize, cols: usize, contexts: usize) -> Result<Self, SbError> {
        if rows == 0 || cols == 0 || rows > 1024 || cols > 1024 {
            return Err(SbError::BadDimensions { rows, cols });
        }
        Ok(RouteSet {
            rows,
            cols,
            assign: vec![vec![None; cols]; contexts],
        })
    }

    /// Builds a route set from explicit per-context assignments, validating
    /// the partial-permutation property.
    pub fn from_assignments(
        rows: usize,
        cols: usize,
        assign: Vec<Vec<Option<usize>>>,
    ) -> Result<Self, SbError> {
        let mut rs = Self::empty(rows, cols, assign.len())?;
        for (ctx, per_col) in assign.iter().enumerate() {
            if per_col.len() != cols {
                return Err(SbError::RouteOutOfRange {
                    ctx,
                    col: per_col.len(),
                });
            }
            for (col, &row) in per_col.iter().enumerate() {
                if let Some(r) = row {
                    rs.connect(ctx, r, col)?;
                }
            }
        }
        Ok(rs)
    }

    /// Number of rows (input wires).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (output wires).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of contexts.
    #[must_use]
    pub fn contexts(&self) -> usize {
        self.assign.len()
    }

    /// Routes column `col` from row `row` in context `ctx`.
    pub fn connect(&mut self, ctx: usize, row: usize, col: usize) -> Result<(), SbError> {
        if ctx >= self.contexts() || col >= self.cols || row >= self.rows {
            return Err(SbError::RouteOutOfRange { ctx, col });
        }
        // row uniqueness within the context
        for (c, &r) in self.assign[ctx].iter().enumerate() {
            if c != col && r == Some(row) {
                return Err(SbError::RowConflict { ctx, row });
            }
        }
        self.assign[ctx][col] = Some(row);
        Ok(())
    }

    /// Clears a column's route in one context.
    pub fn disconnect(&mut self, ctx: usize, col: usize) -> Result<(), SbError> {
        if ctx >= self.contexts() || col >= self.cols {
            return Err(SbError::RouteOutOfRange { ctx, col });
        }
        self.assign[ctx][col] = None;
        Ok(())
    }

    /// The row driving `col` in `ctx`, if any.
    #[must_use]
    pub fn route(&self, ctx: usize, col: usize) -> Option<usize> {
        self.assign[ctx][col]
    }

    /// Is cross-point `(row, col)` ON in `ctx`?
    #[must_use]
    pub fn is_on(&self, ctx: usize, row: usize, col: usize) -> bool {
        self.assign[ctx][col] == Some(row)
    }

    /// Total routed (ctx, col) pairs.
    #[must_use]
    pub fn routed_count(&self) -> usize {
        self.assign
            .iter()
            .map(|per_col| per_col.iter().filter(|r| r.is_some()).count())
            .sum()
    }

    /// Validates the partial-permutation property for every context.
    pub fn validate(&self) -> Result<(), SbError> {
        for (ctx, per_col) in self.assign.iter().enumerate() {
            let mut used = vec![false; self.rows];
            for &r in per_col {
                if let Some(r) = r {
                    if r >= self.rows {
                        return Err(SbError::RouteOutOfRange { ctx, col: 0 });
                    }
                    if used[r] {
                        return Err(SbError::RowConflict { ctx, row: r });
                    }
                    used[r] = true;
                }
            }
        }
        Ok(())
    }

    /// Random full permutations per context (seeded) — a worst-case-density
    /// workload for a square crossbar.
    pub fn random_permutations(n: usize, contexts: usize, seed: u64) -> Result<Self, SbError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rs = Self::empty(n, n, contexts)?;
        for ctx in 0..contexts {
            let mut rows: Vec<usize> = (0..n).collect();
            rows.shuffle(&mut rng);
            for (col, &row) in rows.iter().enumerate() {
                rs.assign[ctx][col] = Some(row);
            }
        }
        Ok(rs)
    }

    /// Random partial permutations with the given column fill probability.
    pub fn random_partial(
        rows: usize,
        cols: usize,
        contexts: usize,
        fill: f64,
        seed: u64,
    ) -> Result<Self, SbError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rs = Self::empty(rows, cols, contexts)?;
        for ctx in 0..contexts {
            let mut avail: Vec<usize> = (0..rows).collect();
            avail.shuffle(&mut rng);
            for col in 0..cols {
                if avail.is_empty() {
                    break;
                }
                if rng.random_range(0.0..1.0) < fill {
                    rs.assign[ctx][col] = avail.pop();
                }
            }
        }
        Ok(rs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_and_validate() {
        let mut rs = RouteSet::empty(3, 3, 2).unwrap();
        rs.connect(0, 0, 1).unwrap();
        rs.connect(0, 1, 2).unwrap();
        rs.connect(1, 2, 0).unwrap();
        assert!(rs.validate().is_ok());
        assert_eq!(rs.route(0, 1), Some(0));
        assert!(rs.is_on(0, 0, 1));
        assert!(!rs.is_on(0, 1, 1));
        assert_eq!(rs.routed_count(), 3);
    }

    #[test]
    fn row_conflict_rejected() {
        let mut rs = RouteSet::empty(3, 3, 1).unwrap();
        rs.connect(0, 2, 0).unwrap();
        assert_eq!(
            rs.connect(0, 2, 1),
            Err(SbError::RowConflict { ctx: 0, row: 2 })
        );
    }

    #[test]
    fn reassigning_a_column_is_allowed() {
        let mut rs = RouteSet::empty(3, 3, 1).unwrap();
        rs.connect(0, 0, 0).unwrap();
        rs.connect(0, 1, 0).unwrap(); // same column, new row
        assert_eq!(rs.route(0, 0), Some(1));
        rs.disconnect(0, 0).unwrap();
        assert_eq!(rs.route(0, 0), None);
    }

    #[test]
    fn random_permutations_are_valid_and_full() {
        let rs = RouteSet::random_permutations(10, 4, 7).unwrap();
        rs.validate().unwrap();
        assert_eq!(rs.routed_count(), 40);
        assert_eq!(rs, RouteSet::random_permutations(10, 4, 7).unwrap());
    }

    #[test]
    fn random_partial_is_valid() {
        let rs = RouteSet::random_partial(8, 12, 4, 0.5, 3).unwrap();
        rs.validate().unwrap();
        assert!(rs.routed_count() <= 8 * 4);
    }

    #[test]
    fn from_assignments_validates() {
        let ok = RouteSet::from_assignments(2, 2, vec![vec![Some(0), Some(1)]]);
        assert!(ok.is_ok());
        let bad = RouteSet::from_assignments(2, 2, vec![vec![Some(0), Some(0)]]);
        assert!(matches!(bad, Err(SbError::RowConflict { .. })));
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(RouteSet::empty(0, 3, 1).is_err());
        assert!(RouteSet::empty(3, 0, 1).is_err());
    }
}
