//! Property tests for switch blocks and the sharing theorems.

use mcfpga_core::ArchKind;
use mcfpga_switchblock::mapping::{
    remap_to_designated_cols, row_col_usage, select_networks_needed,
};
use mcfpga_switchblock::{
    column_row_usage, remap_to_designated_rows, sb_transistors, RouteSet, SwitchBlock,
};
use proptest::prelude::*;

proptest! {
    /// Any valid partial route set configures and verifies on every
    /// architecture.
    #[test]
    fn any_valid_routes_configure(
        seed in any::<u64>(),
        fill in 0.0f64..1.0,
        arch_idx in 0usize..3,
    ) {
        let routes = RouteSet::random_partial(5, 5, 4, fill, seed).unwrap();
        let arch = ArchKind::all()[arch_idx];
        let mut sb = SwitchBlock::new(arch, 5, 5, 4).unwrap();
        sb.configure(&routes).unwrap();
        sb.verify_against_routes().unwrap();
    }

    /// Row remap then column remap (on a square block) leaves exactly one
    /// possibly-ON cross-point per row AND per column — the diagonal.
    #[test]
    fn double_remap_reaches_diagonal(seed in any::<u64>(), n in 2usize..12) {
        let routes = RouteSet::random_permutations(n, 4, seed).unwrap();
        let rows_done = remap_to_designated_rows(&routes).unwrap();
        let both = remap_to_designated_cols(&rows_done.routes).unwrap();
        both.routes.validate().unwrap();
        for (col, rows) in column_row_usage(&both.routes).iter().enumerate() {
            prop_assert!(rows.len() <= 1);
            if let Some(&r) = rows.first() {
                prop_assert_eq!(r, col, "diagonal");
            }
        }
        for (row, cols) in row_col_usage(&both.routes).iter().enumerate() {
            prop_assert!(cols.len() <= 1);
            if let Some(&c) = cols.first() {
                prop_assert_eq!(c, row, "diagonal");
            }
        }
    }

    /// Remapping never increases the select-network requirement.
    #[test]
    fn remap_never_hurts(seed in any::<u64>(), fill in 0.1f64..1.0) {
        let routes = RouteSet::random_partial(8, 8, 4, fill, seed).unwrap();
        let (_, before) = select_networks_needed(&routes);
        let out = remap_to_designated_rows(&routes).unwrap();
        let (_, after) = select_networks_needed(&out.routes);
        prop_assert!(after <= before);
        prop_assert_eq!(after, 8);
    }

    /// Table-2 closed forms dominate correctly: hybrid < MV < SRAM for all
    /// k ≥ 3 and supported context counts.
    #[test]
    fn count_ordering(k in 3usize..64, c_idx in 0usize..5) {
        let c = [4usize, 8, 16, 32, 64][c_idx];
        let s = sb_transistors(ArchKind::Sram, k, c);
        let m = sb_transistors(ArchKind::MvFgfp, k, c);
        let h = sb_transistors(ArchKind::Hybrid, k, c);
        prop_assert!(h < m, "k={} c={}", k, c);
        prop_assert!(m < s, "k={} c={}", k, c);
    }

    /// The silicon never conducts a cross-point the route table does not
    /// claim (no phantom connections) — checked by exhaustive readback.
    #[test]
    fn no_phantom_crosspoints(seed in any::<u64>()) {
        let routes = RouteSet::random_partial(4, 4, 4, 0.7, seed).unwrap();
        let mut sb = SwitchBlock::new(ArchKind::Hybrid, 4, 4, 4).unwrap();
        sb.configure(&routes).unwrap();
        for ctx in 0..4 {
            for row in 0..4 {
                for col in 0..4 {
                    prop_assert_eq!(
                        sb.is_on(ctx, row, col).unwrap(),
                        routes.is_on(ctx, row, col)
                    );
                }
            }
        }
    }
}
