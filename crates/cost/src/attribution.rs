//! Per-tenant cost attribution for shared-fabric execution.
//!
//! A multi-tenant batch service runs many tenants' requests through one
//! fabric; this module turns each tenant's raw usage counters (passes,
//! vectors, CSS broadcast toggles) into a bill with physical units, so the
//! shared fabric's energy is attributed to the tenant whose context switch
//! caused it rather than smeared across everyone.
//!
//! Alongside the toggles actually charged, each tenant carries the
//! *baseline* toggles the naive ascending sweep order would have charged
//! for the same switches — the counterfactual the schedule optimizer
//! (`mcfpga_css::optimize`) is billed against. The difference surfaces on
//! the bill as `css_energy_saved_j`, so a tenant can see what the
//! optimizer's reordering was worth to them specifically.
//!
//! ```
//! use mcfpga_cost::attribution::{bill, TenantUsage};
//! use mcfpga_device::TechParams;
//!
//! let usage = TenantUsage {
//!     requests: 130,
//!     passes: 3,
//!     css_toggles: 5,
//!     css_toggles_baseline: 8, // the naive order would have cost 8
//!     ..TenantUsage::default()
//! };
//! let b = bill(&usage, &TechParams::default());
//! assert!(b.dynamic_energy_j > 0.0);
//! assert!(b.css_energy_saved_j > 0.0, "the optimizer saved 3 toggles");
//! assert!((b.vectors_per_pass - 130.0 / 3.0).abs() < 1e-12);
//! ```

use mcfpga_device::TechParams;
use serde::{Deserialize, Serialize};

/// Raw usage counters accumulated for one tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantUsage {
    /// Single-vector requests the tenant submitted.
    pub requests: usize,
    /// Bit-parallel fabric passes executed on the tenant's context.
    pub passes: usize,
    /// CSS broadcast-wire toggles spent switching *into* the tenant's
    /// context (the switch is charged to the tenant being switched to).
    pub css_toggles: usize,
    /// Toggles the *naive* (ascending) sweep order would have spent
    /// switching into the tenant's context — the counterfactual baseline
    /// the schedule optimizer is measured against. Equals
    /// [`css_toggles`](Self::css_toggles) when optimization is off. A
    /// single tenant's baseline may be *below* its actual charge (the
    /// optimizer minimizes the whole sweep, not each hop), but summed over
    /// a sweep's tenants the baseline is never less than the charge.
    pub css_toggles_baseline: usize,
    /// Times the tenant was checkpointed and moved to another slot (live
    /// migration, evacuation, or restore from a serialized checkpoint).
    pub migrations: usize,
    /// Checkpoint wire-format bytes moved on the tenant's behalf — the
    /// network/DMA traffic a migration costs, summed over migrations.
    pub migration_bytes: usize,
    /// User cycles the tenant's requests sat unserviceable during
    /// migrations: one context-switch boundary per move, plus one cycle of
    /// added latency per pending request carried across.
    pub migration_downtime_cycles: usize,
    /// Extra CSS broadcast toggles migrations cost — the modeled
    /// realignment of the *destination* shard's sweep when the tenant's
    /// context joins it (the marginal sweep cost of the new slot).
    pub migration_css_toggles: usize,
}

impl TenantUsage {
    /// Accumulates another usage record into this one.
    pub fn absorb(&mut self, other: &TenantUsage) {
        self.requests += other.requests;
        self.passes += other.passes;
        self.css_toggles += other.css_toggles;
        self.css_toggles_baseline += other.css_toggles_baseline;
        self.migrations += other.migrations;
        self.migration_bytes += other.migration_bytes;
        self.migration_downtime_cycles += other.migration_downtime_cycles;
        self.migration_css_toggles += other.migration_css_toggles;
    }
}

/// An insertion-ordered accumulator of per-key [`TenantUsage`] deltas —
/// the mergeable unit a *parallel* executor needs.
///
/// Each shard engine charges the usage of one sweep into its own ledger
/// (keys are tenant handles; the ledger is generic so this crate stays
/// ignorant of the service's id type), and the coordinator merges the
/// per-shard ledgers back in a fixed shard order. Because entries keep
/// insertion order and [`merge`](Self::merge) appends other's keys after
/// this ledger's, the merged entry order is a pure function of the merge
/// order — never of thread scheduling — which is what makes parallel
/// billing bit-for-bit identical to sequential billing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageLedger<K> {
    entries: Vec<(K, TenantUsage)>,
}

impl<K> Default for UsageLedger<K> {
    fn default() -> Self {
        UsageLedger {
            entries: Vec::new(),
        }
    }
}

impl<K: PartialEq + Copy> UsageLedger<K> {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        UsageLedger::default()
    }

    /// The accumulator for `key`, created zeroed on first charge. Lookup is
    /// a linear scan: a sweep touches at most one tenant per context, so
    /// ledgers stay a handful of entries long.
    pub fn charge(&mut self, key: K) -> &mut TenantUsage {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            return &mut self.entries[i].1;
        }
        self.entries.push((key, TenantUsage::default()));
        &mut self.entries.last_mut().expect("just pushed").1
    }

    /// Absorbs every entry of `other` into this ledger, summing counters
    /// for shared keys and appending new keys in `other`'s order.
    pub fn merge(&mut self, other: &UsageLedger<K>) {
        for (key, usage) in &other.entries {
            self.charge(*key).absorb(usage);
        }
    }

    /// The `(key, usage)` entries, insertion order.
    #[must_use]
    pub fn entries(&self) -> &[(K, TenantUsage)] {
        &self.entries
    }

    /// Number of charged keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Has nothing been charged?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One tenant's usage translated into physical units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantBill {
    /// Dynamic CSS broadcast energy attributed to the tenant (joules).
    pub dynamic_energy_j: f64,
    /// Broadcast energy the sweep optimizer saved this tenant versus the
    /// naive ascending order (joules). Negative when the optimizer routed
    /// *more* toggles through this tenant's switch-in (it minimizes the
    /// sweep total, not each tenant); a service-wide sum is never negative.
    pub css_energy_saved_j: f64,
    /// Mean request vectors served per fabric pass — the batching
    /// efficiency (64 is a perfectly full u64-lane pass, 1 is unbatched).
    pub vectors_per_pass: f64,
    /// Broadcast energy the tenant's migrations cost on top of normal
    /// serving (joules) — the destination-sweep realignment toggles of
    /// [`TenantUsage::migration_css_toggles`], priced like any other
    /// broadcast toggle.
    pub migration_energy_j: f64,
}

/// Bills `usage` under the technology parameters `p`.
#[must_use]
pub fn bill(usage: &TenantUsage, p: &TechParams) -> TenantBill {
    TenantBill {
        dynamic_energy_j: usage.css_toggles as f64 * p.css_toggle_energy_j,
        css_energy_saved_j: (usage.css_toggles_baseline as f64 - usage.css_toggles as f64)
            * p.css_toggle_energy_j,
        vectors_per_pass: if usage.passes == 0 {
            0.0
        } else {
            usage.requests as f64 / usage.passes as f64
        },
        migration_energy_j: usage.migration_css_toggles as f64 * p.css_toggle_energy_j,
    }
}

/// Renders a per-tenant billing table (markdown) from `(name, usage)` rows.
#[must_use]
pub fn render_billing(rows: &[(String, TenantUsage)], p: &TechParams) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, u)| {
            let b = bill(u, p);
            vec![
                name.clone(),
                u.requests.to_string(),
                u.passes.to_string(),
                format!("{:.1}", b.vectors_per_pass),
                u.css_toggles.to_string(),
                format!("{:.3e}", b.dynamic_energy_j),
                format!("{:.3e}", b.css_energy_saved_j),
                u.migrations.to_string(),
                u.migration_bytes.to_string(),
                format!("{:.3e}", b.migration_energy_j),
            ]
        })
        .collect();
    crate::report::render_markdown_table(
        &[
            "tenant",
            "requests",
            "passes",
            "vec/pass",
            "css toggles",
            "energy (J)",
            "saved (J)",
            "migr",
            "moved (B)",
            "migr (J)",
        ],
        &body,
    )
}

/// Raw QoS front-end admission counters for one tenant's request stream.
///
/// Deliberately a **separate** struct from [`TenantUsage`]: that one is
/// serialized inside the versioned migration checkpoint wire format
/// (golden-file pinned), so front-end accounting — which never migrates;
/// streams live on the coordinator — gets its own ledger rather than a
/// wire-format bump. Every counter is an *outcome* count, so for any
/// stream `offered == admitted + rejected_backpressure + rejected_rate +
/// rejected_deadline` and every admitted request eventually lands in
/// exactly one of `completed`, `expired`, or `failed`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontendUsage {
    /// Requests offered to the stream (admitted or not).
    pub offered: usize,
    /// Requests admitted into the bounded stream queue.
    pub admitted: usize,
    /// Offers refused because the bounded queue was full.
    pub rejected_backpressure: usize,
    /// Offers rejected by the token-bucket rate limit.
    pub rejected_rate: usize,
    /// Offers rejected as dead on arrival (deadline already passed).
    pub rejected_deadline: usize,
    /// Admitted requests served to completion.
    pub completed: usize,
    /// Admitted requests whose deadline passed while still queued in the
    /// front-end — removed unserved with a typed event.
    pub expired: usize,
    /// Admitted requests the service refused at submit time.
    pub failed: usize,
    /// Whole rate-limit tokens spent on admissions.
    pub rate_tokens_spent: usize,
}

impl FrontendUsage {
    /// Accumulates another stream's counters into this one.
    pub fn absorb(&mut self, other: &FrontendUsage) {
        self.offered += other.offered;
        self.admitted += other.admitted;
        self.rejected_backpressure += other.rejected_backpressure;
        self.rejected_rate += other.rejected_rate;
        self.rejected_deadline += other.rejected_deadline;
        self.completed += other.completed;
        self.expired += other.expired;
        self.failed += other.failed;
        self.rate_tokens_spent += other.rate_tokens_spent;
    }

    /// Total offers rejected for any reason (backpressure, rate limit,
    /// dead-on-arrival deadline).
    #[must_use]
    pub fn rejected(&self) -> usize {
        self.rejected_backpressure + self.rejected_rate + self.rejected_deadline
    }

    /// Admitted requests already resolved (completed, expired, or
    /// failed); the remainder are still queued or in flight.
    #[must_use]
    pub fn resolved(&self) -> usize {
        self.completed + self.expired + self.failed
    }
}

/// One stream's admission counters summarized into service-quality rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontendBill {
    /// Fraction of offers admitted (1.0 for an uncontended stream).
    pub admission_rate: f64,
    /// Fraction of *admitted* requests served to completion — the
    /// stream's goodput ratio (expiries and failures subtract from it).
    pub goodput: f64,
}

/// Summarizes `usage` into admission/goodput rates.
#[must_use]
pub fn bill_frontend(usage: &FrontendUsage) -> FrontendBill {
    FrontendBill {
        admission_rate: if usage.offered == 0 {
            1.0
        } else {
            usage.admitted as f64 / usage.offered as f64
        },
        goodput: if usage.resolved() == 0 {
            1.0
        } else {
            usage.completed as f64 / usage.resolved() as f64
        },
    }
}

/// Renders a per-stream admission/QoS billing table (markdown) from
/// `(name, usage)` rows.
#[must_use]
pub fn render_frontend_billing(rows: &[(String, FrontendUsage)]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, u)| {
            let b = bill_frontend(u);
            vec![
                name.clone(),
                u.offered.to_string(),
                u.admitted.to_string(),
                u.rejected_backpressure.to_string(),
                u.rejected_rate.to_string(),
                u.rejected_deadline.to_string(),
                u.completed.to_string(),
                u.expired.to_string(),
                u.failed.to_string(),
                format!("{:.3}", b.admission_rate),
                format!("{:.3}", b.goodput),
            ]
        })
        .collect();
    crate::report::render_markdown_table(
        &[
            "stream", "offered", "admitted", "bp", "rate-rej", "ddl-rej", "done", "expired",
            "failed", "adm rate", "goodput",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn billing_is_linear_in_toggles() {
        let p = TechParams::default();
        let a = bill(
            &TenantUsage {
                requests: 64,
                passes: 1,
                css_toggles: 2,
                css_toggles_baseline: 2,
                ..TenantUsage::default()
            },
            &p,
        );
        let b = bill(
            &TenantUsage {
                requests: 64,
                passes: 1,
                css_toggles: 4,
                css_toggles_baseline: 4,
                ..TenantUsage::default()
            },
            &p,
        );
        assert!((b.dynamic_energy_j - 2.0 * a.dynamic_energy_j).abs() < 1e-24);
        assert_eq!(a.vectors_per_pass, 64.0);
    }

    #[test]
    fn idle_tenant_bills_zero() {
        let b = bill(&TenantUsage::default(), &TechParams::default());
        assert_eq!(b.dynamic_energy_j, 0.0);
        assert_eq!(b.css_energy_saved_j, 0.0);
        assert_eq!(b.vectors_per_pass, 0.0);
    }

    #[test]
    fn saved_energy_is_signed() {
        let p = TechParams::default();
        let saved = bill(
            &TenantUsage {
                requests: 1,
                passes: 1,
                css_toggles: 2,
                css_toggles_baseline: 4,
                ..TenantUsage::default()
            },
            &p,
        );
        assert!(saved.css_energy_saved_j > 0.0);
        // a tenant the optimizer charged *more* than the naive order sees
        // a negative saving — honest per-tenant accounting
        let charged = bill(
            &TenantUsage {
                requests: 1,
                passes: 1,
                css_toggles: 4,
                css_toggles_baseline: 2,
                ..TenantUsage::default()
            },
            &p,
        );
        assert!(charged.css_energy_saved_j < 0.0);
        assert_eq!(saved.css_energy_saved_j, -charged.css_energy_saved_j);
    }

    #[test]
    fn absorb_accumulates() {
        let mut u = TenantUsage {
            requests: 1,
            passes: 1,
            css_toggles: 1,
            css_toggles_baseline: 2,
            ..TenantUsage::default()
        };
        u.absorb(&TenantUsage {
            requests: 63,
            passes: 0,
            css_toggles: 3,
            css_toggles_baseline: 5,
            ..TenantUsage::default()
        });
        assert_eq!(u.requests, 64);
        assert_eq!(u.passes, 1);
        assert_eq!(u.css_toggles, 4);
        assert_eq!(u.css_toggles_baseline, 7);
    }

    #[test]
    fn ledger_charges_and_merges_in_insertion_order() {
        let mut a: UsageLedger<u32> = UsageLedger::new();
        a.charge(7).requests += 1;
        a.charge(3).css_toggles += 2;
        a.charge(7).passes += 1; // existing key accumulates, no new entry
        assert_eq!(a.len(), 2);
        assert_eq!(a.entries()[0].0, 7, "first-charged key stays first");
        assert_eq!(a.entries()[1].0, 3);

        let mut b: UsageLedger<u32> = UsageLedger::new();
        b.charge(3).css_toggles += 5;
        b.charge(9).requests += 4;
        a.merge(&b);
        assert_eq!(
            a.entries().iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![7, 3, 9],
            "merge sums shared keys and appends new ones in other's order"
        );
        assert_eq!(a.entries()[1].1.css_toggles, 7);
        assert_eq!(a.entries()[2].1.requests, 4);
        assert!(!a.is_empty());
        assert!(UsageLedger::<u32>::new().is_empty());
    }

    /// Merging per-shard ledgers in a fixed order equals charging the same
    /// events into one ledger sequentially — the parallel executor's
    /// billing-determinism invariant, in miniature.
    #[test]
    fn ledger_merge_equals_sequential_accumulation() {
        let events: [(u32, usize); 5] = [(1, 2), (2, 3), (1, 1), (3, 4), (2, 2)];
        let mut sequential: UsageLedger<u32> = UsageLedger::new();
        for (k, t) in events {
            sequential.charge(k).css_toggles += t;
        }
        // shard 0 saw events 0..2, shard 1 the rest
        let mut shard0: UsageLedger<u32> = UsageLedger::new();
        let mut shard1: UsageLedger<u32> = UsageLedger::new();
        for (k, t) in &events[..2] {
            shard0.charge(*k).css_toggles += t;
        }
        for (k, t) in &events[2..] {
            shard1.charge(*k).css_toggles += t;
        }
        let mut merged: UsageLedger<u32> = UsageLedger::new();
        merged.merge(&shard0);
        merged.merge(&shard1);
        assert_eq!(merged, sequential);
    }

    #[test]
    fn migration_overhead_bills_separately() {
        let p = TechParams::default();
        let u = TenantUsage {
            requests: 64,
            passes: 1,
            css_toggles: 2,
            css_toggles_baseline: 2,
            migrations: 2,
            migration_bytes: 300,
            migration_downtime_cycles: 9,
            migration_css_toggles: 4,
        };
        let b = bill(&u, &p);
        assert_eq!(b.migration_energy_j, 4.0 * p.css_toggle_energy_j);
        // migration toggles are extra, not folded into serving energy
        assert_eq!(b.dynamic_energy_j, 2.0 * p.css_toggle_energy_j);
        let table = render_billing(&[("mover".to_string(), u)], &p);
        assert!(table.contains("migr"));
        assert!(table.contains("300"));
    }

    #[test]
    fn frontend_usage_invariants_and_rates() {
        let mut u = FrontendUsage {
            offered: 10,
            admitted: 7,
            rejected_backpressure: 1,
            rejected_rate: 1,
            rejected_deadline: 1,
            completed: 5,
            expired: 1,
            failed: 1,
            rate_tokens_spent: 7,
        };
        assert_eq!(u.offered, u.admitted + u.rejected());
        assert_eq!(u.resolved(), 7);
        let b = bill_frontend(&u);
        assert!((b.admission_rate - 0.7).abs() < 1e-12);
        assert!((b.goodput - 5.0 / 7.0).abs() < 1e-12);
        u.absorb(&u.clone());
        assert_eq!(u.offered, 20);
        assert_eq!(u.completed, 10);
        // empty stream reads as perfectly served, not as 0/0
        let idle = bill_frontend(&FrontendUsage::default());
        assert_eq!(idle.admission_rate, 1.0);
        assert_eq!(idle.goodput, 1.0);
    }

    #[test]
    fn frontend_billing_table_renders_all_streams() {
        let rows = vec![
            (
                "video (latency-sensitive)".to_string(),
                FrontendUsage {
                    offered: 4,
                    admitted: 3,
                    rejected_backpressure: 1,
                    completed: 3,
                    ..FrontendUsage::default()
                },
            ),
            ("batch (throughput)".to_string(), FrontendUsage::default()),
        ];
        let table = render_frontend_billing(&rows);
        assert!(table.contains("video"));
        assert!(table.contains("batch"));
        assert!(table.contains("adm rate"));
        assert!(table.contains("goodput"));
    }

    #[test]
    fn billing_table_renders_all_tenants() {
        let rows = vec![
            (
                "parity".to_string(),
                TenantUsage {
                    requests: 128,
                    passes: 2,
                    css_toggles: 3,
                    css_toggles_baseline: 7,
                    ..TenantUsage::default()
                },
            ),
            ("idle".to_string(), TenantUsage::default()),
        ];
        let table = render_billing(&rows, &TechParams::default());
        assert!(table.contains("parity"));
        assert!(table.contains("idle"));
        assert!(table.contains("64.0"));
    }
}
