//! Per-tenant cost attribution for shared-fabric execution.
//!
//! A multi-tenant batch service runs many tenants' requests through one
//! fabric; this module turns each tenant's raw usage counters (passes,
//! vectors, CSS broadcast toggles) into a bill with physical units, so the
//! shared fabric's energy is attributed to the tenant whose context switch
//! caused it rather than smeared across everyone.
//!
//! Alongside the toggles actually charged, each tenant carries the
//! *baseline* toggles the naive ascending sweep order would have charged
//! for the same switches — the counterfactual the schedule optimizer
//! (`mcfpga_css::optimize`) is billed against. The difference surfaces on
//! the bill as `css_energy_saved_j`, so a tenant can see what the
//! optimizer's reordering was worth to them specifically.
//!
//! ```
//! use mcfpga_cost::attribution::{bill, TenantUsage};
//! use mcfpga_device::TechParams;
//!
//! let usage = TenantUsage {
//!     requests: 130,
//!     passes: 3,
//!     css_toggles: 5,
//!     css_toggles_baseline: 8, // the naive order would have cost 8
//!     ..TenantUsage::default()
//! };
//! let b = bill(&usage, &TechParams::default());
//! assert!(b.dynamic_energy_j > 0.0);
//! assert!(b.css_energy_saved_j > 0.0, "the optimizer saved 3 toggles");
//! assert!((b.vectors_per_pass - 130.0 / 3.0).abs() < 1e-12);
//! ```

use mcfpga_device::TechParams;
use serde::{Deserialize, Serialize};

/// Raw usage counters accumulated for one tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantUsage {
    /// Single-vector requests the tenant submitted.
    pub requests: usize,
    /// Bit-parallel fabric passes executed on the tenant's context.
    pub passes: usize,
    /// CSS broadcast-wire toggles spent switching *into* the tenant's
    /// context (the switch is charged to the tenant being switched to).
    pub css_toggles: usize,
    /// Toggles the *naive* (ascending) sweep order would have spent
    /// switching into the tenant's context — the counterfactual baseline
    /// the schedule optimizer is measured against. Equals
    /// [`css_toggles`](Self::css_toggles) when optimization is off. A
    /// single tenant's baseline may be *below* its actual charge (the
    /// optimizer minimizes the whole sweep, not each hop), but summed over
    /// a sweep's tenants the baseline is never less than the charge.
    pub css_toggles_baseline: usize,
    /// Times the tenant was checkpointed and moved to another slot (live
    /// migration, evacuation, or restore from a serialized checkpoint).
    pub migrations: usize,
    /// Checkpoint wire-format bytes moved on the tenant's behalf — the
    /// network/DMA traffic a migration costs, summed over migrations.
    pub migration_bytes: usize,
    /// User cycles the tenant's requests sat unserviceable during
    /// migrations: one context-switch boundary per move, plus one cycle of
    /// added latency per pending request carried across.
    pub migration_downtime_cycles: usize,
    /// Extra CSS broadcast toggles migrations cost — the modeled
    /// realignment of the *destination* shard's sweep when the tenant's
    /// context joins it (the marginal sweep cost of the new slot).
    pub migration_css_toggles: usize,
}

impl TenantUsage {
    /// Accumulates another usage record into this one.
    pub fn absorb(&mut self, other: &TenantUsage) {
        self.requests += other.requests;
        self.passes += other.passes;
        self.css_toggles += other.css_toggles;
        self.css_toggles_baseline += other.css_toggles_baseline;
        self.migrations += other.migrations;
        self.migration_bytes += other.migration_bytes;
        self.migration_downtime_cycles += other.migration_downtime_cycles;
        self.migration_css_toggles += other.migration_css_toggles;
    }
}

/// One tenant's usage translated into physical units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantBill {
    /// Dynamic CSS broadcast energy attributed to the tenant (joules).
    pub dynamic_energy_j: f64,
    /// Broadcast energy the sweep optimizer saved this tenant versus the
    /// naive ascending order (joules). Negative when the optimizer routed
    /// *more* toggles through this tenant's switch-in (it minimizes the
    /// sweep total, not each tenant); a service-wide sum is never negative.
    pub css_energy_saved_j: f64,
    /// Mean request vectors served per fabric pass — the batching
    /// efficiency (64 is a perfectly full u64-lane pass, 1 is unbatched).
    pub vectors_per_pass: f64,
    /// Broadcast energy the tenant's migrations cost on top of normal
    /// serving (joules) — the destination-sweep realignment toggles of
    /// [`TenantUsage::migration_css_toggles`], priced like any other
    /// broadcast toggle.
    pub migration_energy_j: f64,
}

/// Bills `usage` under the technology parameters `p`.
#[must_use]
pub fn bill(usage: &TenantUsage, p: &TechParams) -> TenantBill {
    TenantBill {
        dynamic_energy_j: usage.css_toggles as f64 * p.css_toggle_energy_j,
        css_energy_saved_j: (usage.css_toggles_baseline as f64 - usage.css_toggles as f64)
            * p.css_toggle_energy_j,
        vectors_per_pass: if usage.passes == 0 {
            0.0
        } else {
            usage.requests as f64 / usage.passes as f64
        },
        migration_energy_j: usage.migration_css_toggles as f64 * p.css_toggle_energy_j,
    }
}

/// Renders a per-tenant billing table (markdown) from `(name, usage)` rows.
#[must_use]
pub fn render_billing(rows: &[(String, TenantUsage)], p: &TechParams) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, u)| {
            let b = bill(u, p);
            vec![
                name.clone(),
                u.requests.to_string(),
                u.passes.to_string(),
                format!("{:.1}", b.vectors_per_pass),
                u.css_toggles.to_string(),
                format!("{:.3e}", b.dynamic_energy_j),
                format!("{:.3e}", b.css_energy_saved_j),
                u.migrations.to_string(),
                u.migration_bytes.to_string(),
                format!("{:.3e}", b.migration_energy_j),
            ]
        })
        .collect();
    crate::report::render_markdown_table(
        &[
            "tenant",
            "requests",
            "passes",
            "vec/pass",
            "css toggles",
            "energy (J)",
            "saved (J)",
            "migr",
            "moved (B)",
            "migr (J)",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn billing_is_linear_in_toggles() {
        let p = TechParams::default();
        let a = bill(
            &TenantUsage {
                requests: 64,
                passes: 1,
                css_toggles: 2,
                css_toggles_baseline: 2,
                ..TenantUsage::default()
            },
            &p,
        );
        let b = bill(
            &TenantUsage {
                requests: 64,
                passes: 1,
                css_toggles: 4,
                css_toggles_baseline: 4,
                ..TenantUsage::default()
            },
            &p,
        );
        assert!((b.dynamic_energy_j - 2.0 * a.dynamic_energy_j).abs() < 1e-24);
        assert_eq!(a.vectors_per_pass, 64.0);
    }

    #[test]
    fn idle_tenant_bills_zero() {
        let b = bill(&TenantUsage::default(), &TechParams::default());
        assert_eq!(b.dynamic_energy_j, 0.0);
        assert_eq!(b.css_energy_saved_j, 0.0);
        assert_eq!(b.vectors_per_pass, 0.0);
    }

    #[test]
    fn saved_energy_is_signed() {
        let p = TechParams::default();
        let saved = bill(
            &TenantUsage {
                requests: 1,
                passes: 1,
                css_toggles: 2,
                css_toggles_baseline: 4,
                ..TenantUsage::default()
            },
            &p,
        );
        assert!(saved.css_energy_saved_j > 0.0);
        // a tenant the optimizer charged *more* than the naive order sees
        // a negative saving — honest per-tenant accounting
        let charged = bill(
            &TenantUsage {
                requests: 1,
                passes: 1,
                css_toggles: 4,
                css_toggles_baseline: 2,
                ..TenantUsage::default()
            },
            &p,
        );
        assert!(charged.css_energy_saved_j < 0.0);
        assert_eq!(saved.css_energy_saved_j, -charged.css_energy_saved_j);
    }

    #[test]
    fn absorb_accumulates() {
        let mut u = TenantUsage {
            requests: 1,
            passes: 1,
            css_toggles: 1,
            css_toggles_baseline: 2,
            ..TenantUsage::default()
        };
        u.absorb(&TenantUsage {
            requests: 63,
            passes: 0,
            css_toggles: 3,
            css_toggles_baseline: 5,
            ..TenantUsage::default()
        });
        assert_eq!(u.requests, 64);
        assert_eq!(u.passes, 1);
        assert_eq!(u.css_toggles, 4);
        assert_eq!(u.css_toggles_baseline, 7);
    }

    #[test]
    fn migration_overhead_bills_separately() {
        let p = TechParams::default();
        let u = TenantUsage {
            requests: 64,
            passes: 1,
            css_toggles: 2,
            css_toggles_baseline: 2,
            migrations: 2,
            migration_bytes: 300,
            migration_downtime_cycles: 9,
            migration_css_toggles: 4,
        };
        let b = bill(&u, &p);
        assert_eq!(b.migration_energy_j, 4.0 * p.css_toggle_energy_j);
        // migration toggles are extra, not folded into serving energy
        assert_eq!(b.dynamic_energy_j, 2.0 * p.css_toggle_energy_j);
        let table = render_billing(&[("mover".to_string(), u)], &p);
        assert!(table.contains("migr"));
        assert!(table.contains("300"));
    }

    #[test]
    fn billing_table_renders_all_tenants() {
        let rows = vec![
            (
                "parity".to_string(),
                TenantUsage {
                    requests: 128,
                    passes: 2,
                    css_toggles: 3,
                    css_toggles_baseline: 7,
                    ..TenantUsage::default()
                },
            ),
            ("idle".to_string(), TenantUsage::default()),
        ];
        let table = render_billing(&rows, &TechParams::default());
        assert!(table.contains("parity"));
        assert!(table.contains("idle"));
        assert!(table.contains("64.0"));
    }
}
