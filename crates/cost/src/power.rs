//! Static power of configuration storage (paper §4).
//!
//! SRAM keeps every configuration plane alive off the supply; floating-gate
//! storage holds charge with the supply off. We price one switch, one
//! switch block and one fabric per architecture.

use mcfpga_core::ArchKind;
use mcfpga_core::{HybridMcSwitch, MvFgfpMcSwitch};
use mcfpga_device::TechParams;

/// Static power of one MC-switch's configuration storage (watts).
#[must_use]
pub fn switch_static_w(arch: ArchKind, contexts: usize, p: &TechParams) -> f64 {
    match arch {
        ArchKind::Sram => contexts as f64 * p.sram_leak_w,
        ArchKind::MvFgfp => MvFgfpMcSwitch::transistor_count_for(contexts) as f64 * p.fgmos_leak_w,
        ArchKind::Hybrid => HybridMcSwitch::transistor_count_for(contexts) as f64 * p.fgmos_leak_w,
    }
}

/// Static power of a `k × k` switch block (watts).
#[must_use]
pub fn sb_static_w(arch: ArchKind, k: usize, contexts: usize, p: &TechParams) -> f64 {
    (k * k) as f64 * switch_static_w(arch, contexts, p)
}

/// Ratio of FGFP-based static power to the SRAM baseline — the §4 claim as
/// a single number (≈ 0 at default parameters).
#[must_use]
pub fn fgfp_vs_sram_ratio(contexts: usize, p: &TechParams) -> f64 {
    switch_static_w(ArchKind::Hybrid, contexts, p) / switch_static_w(ArchKind::Sram, contexts, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fgfp_storage_essentially_free() {
        let p = TechParams::default();
        assert!(fgfp_vs_sram_ratio(4, &p) < 1e-4);
    }

    #[test]
    fn sram_power_scales_with_contexts() {
        let p = TechParams::default();
        let w4 = switch_static_w(ArchKind::Sram, 4, &p);
        let w16 = switch_static_w(ArchKind::Sram, 16, &p);
        assert!((w16 / w4 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sb_rollup() {
        let p = TechParams::default();
        let one = switch_static_w(ArchKind::Sram, 4, &p);
        assert!((sb_static_w(ArchKind::Sram, 10, 4, &p) - 100.0 * one).abs() < 1e-18);
    }
}
