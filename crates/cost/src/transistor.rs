//! Table 1: per-switch transistor counts.

use mcfpga_core::{ArchKind, HybridMcSwitch, MvFgfpMcSwitch, SramMcSwitch};

/// Closed-form transistor count of one MC-switch.
#[must_use]
pub fn switch_transistors(arch: ArchKind, contexts: usize) -> usize {
    match arch {
        ArchKind::Sram => SramMcSwitch::transistor_count_for(contexts),
        ArchKind::MvFgfp => MvFgfpMcSwitch::transistor_count_for(contexts),
        ArchKind::Hybrid => HybridMcSwitch::transistor_count_for(contexts),
    }
}

/// One row of the Table 1 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Architecture label (the paper's wording).
    pub label: &'static str,
    /// Transistor count.
    pub transistors: usize,
    /// Fraction of the SRAM-based count.
    pub vs_sram: f64,
}

/// Regenerates Table 1 for `contexts` contexts.
#[must_use]
pub fn table1(contexts: usize) -> Vec<Table1Row> {
    let sram = switch_transistors(ArchKind::Sram, contexts);
    ArchKind::all()
        .into_iter()
        .map(|arch| {
            let t = switch_transistors(arch, contexts);
            Table1Row {
                label: arch.label(),
                transistors: t,
                vs_sram: t as f64 / sram as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_values() {
        let rows = table1(4);
        assert_eq!(rows[0].transistors, 31);
        assert_eq!(rows[1].transistors, 4);
        assert_eq!(rows[2].transistors, 2);
    }

    #[test]
    fn paper_headline_ratios() {
        // "The transistor count of the MC-switch is reduced to 7% and 50%
        // in comparison with that of the SRAM-based MC-switch and the
        // MC-switch using only MV-FGFPs"
        let rows = table1(4);
        assert!((rows[2].vs_sram - 0.0645).abs() < 0.01, "~7% (2/31)");
        let vs_mv = rows[2].transistors as f64 / rows[1].transistors as f64;
        assert!((vs_mv - 0.5).abs() < 1e-12, "50% of the MV switch");
    }

    #[test]
    fn scaling_shapes() {
        // Hybrid grows slowest; SRAM fastest.
        for c in [8usize, 16, 32, 64] {
            let s = switch_transistors(ArchKind::Sram, c);
            let m = switch_transistors(ArchKind::MvFgfp, c);
            let h = switch_transistors(ArchKind::Hybrid, c);
            assert!(h < m && m < s, "c={c}");
            assert_eq!(h, c / 2);
            assert_eq!(m, 3 * c / 2 - 2);
            assert_eq!(s, 8 * c - 1);
        }
    }
}
