//! Parameter sweeps: the scaling data behind the paper's "high scalability"
//! claim and the extension experiments X1/X3.

use crate::transistor::switch_transistors;
use mcfpga_core::timing::{switch_latency_ps, TimingParams};
use mcfpga_core::ArchKind;
use mcfpga_switchblock::sb_transistors;

/// One sweep point: x plus one y per architecture (SRAM, MV-FGFP, hybrid).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Sweep variable (context count or block size).
    pub x: usize,
    /// Values per architecture, in [`ArchKind::all`] order.
    pub y: [f64; 3],
}

/// Per-switch transistor count vs context count.
#[must_use]
pub fn contexts_sweep(context_counts: &[usize]) -> Vec<SweepPoint> {
    context_counts
        .iter()
        .map(|&c| SweepPoint {
            x: c,
            y: [
                switch_transistors(ArchKind::Sram, c) as f64,
                switch_transistors(ArchKind::MvFgfp, c) as f64,
                switch_transistors(ArchKind::Hybrid, c) as f64,
            ],
        })
        .collect()
}

/// Switch-block transistor count vs block size `k` at fixed contexts.
#[must_use]
pub fn sb_size_sweep(ks: &[usize], contexts: usize) -> Vec<SweepPoint> {
    ks.iter()
        .map(|&k| SweepPoint {
            x: k,
            y: [
                sb_transistors(ArchKind::Sram, k, contexts) as f64,
                sb_transistors(ArchKind::MvFgfp, k, contexts) as f64,
                sb_transistors(ArchKind::Hybrid, k, contexts) as f64,
            ],
        })
        .collect()
}

/// Context-switch latency vs context count.
#[must_use]
pub fn latency_sweep(context_counts: &[usize], p: &TimingParams) -> Vec<SweepPoint> {
    context_counts
        .iter()
        .map(|&c| SweepPoint {
            x: c,
            y: [
                switch_latency_ps(ArchKind::Sram, c, p),
                switch_latency_ps(ArchKind::MvFgfp, c, p),
                switch_latency_ps(ArchKind::Hybrid, c, p),
            ],
        })
        .collect()
}

/// Standard context counts used across the sweeps.
pub const STANDARD_CONTEXTS: [usize; 5] = [4, 8, 16, 32, 64];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_always_wins_and_gap_widens() {
        let pts = contexts_sweep(&STANDARD_CONTEXTS);
        let mut last_gap = 0.0;
        for p in &pts {
            assert!(p.y[2] < p.y[1] && p.y[1] < p.y[0], "x={}", p.x);
            let gap = p.y[0] - p.y[2];
            assert!(gap > last_gap);
            last_gap = gap;
        }
    }

    #[test]
    fn sb_sweep_contains_table2_point() {
        let pts = sb_size_sweep(&[5, 10, 20], 4);
        let p10 = pts.iter().find(|p| p.x == 10).unwrap();
        assert_eq!(p10.y, [3100.0, 400.0, 240.0]);
    }

    #[test]
    fn latency_sweep_hybrid_flat() {
        let pts = latency_sweep(&STANDARD_CONTEXTS, &TimingParams::default());
        let first = pts[0].y[2];
        assert!(pts.iter().all(|p| (p.y[2] - first).abs() < 1e-12));
        assert!(pts.last().unwrap().y[0] > pts[0].y[0]);
    }
}
