//! # mcfpga-cost — area, transistor and power models plus report rendering
//!
//! Everything the paper's evaluation section reports, as reusable code:
//!
//! * [`transistor`] — Table 1 (per-switch) closed forms, cross-checked
//!   elsewhere against structural netlists;
//! * [`area`] — a parametric silicon-area estimate layered on the counts;
//! * [`power`] — static-power comparison (volatile SRAM vs non-volatile
//!   FGFP storage, the paper's §4 claim);
//! * [`sweep`] — context-count and switch-block-size sweeps (the scaling
//!   story behind "high scalability");
//! * [`attribution`] — per-tenant billing of shared-fabric usage (CSS
//!   energy and batching efficiency), used by `mcfpga-service`;
//! * [`report`] — markdown/CSV renderers used by the `repro` binary and
//!   `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod area;
pub mod attribution;
pub mod energy;
pub mod power;
pub mod report;
pub mod sweep;
pub mod transistor;

pub use report::{render_csv, render_markdown_table};
pub use transistor::{switch_transistors, table1, Table1Row};
