//! Configuration and reconfiguration energy.
//!
//! The FGFP trade-off the paper leaves implicit: floating-gate programming
//! is *expensive per write* (charge injection) but free to *hold*, while
//! SRAM is cheap to write but leaks continuously. This module locates the
//! crossover — below a certain reconfiguration rate the FGFP fabric wins on
//! total configuration energy too, on top of its 15× area win.

use mcfpga_core::ArchKind;
use mcfpga_core::{HybridMcSwitch, MvFgfpMcSwitch};
use mcfpga_device::TechParams;

/// Energy to write one switch's full multi-context configuration (joules).
#[must_use]
pub fn config_write_energy_j(arch: ArchKind, contexts: usize, p: &TechParams) -> f64 {
    match arch {
        // SRAM write energy per bit is tiny; model as one CSS-toggle quantum
        ArchKind::Sram => contexts as f64 * p.css_toggle_energy_j,
        ArchKind::MvFgfp => {
            MvFgfpMcSwitch::transistor_count_for(contexts) as f64 * p.fgmos_program_energy_j
        }
        ArchKind::Hybrid => {
            HybridMcSwitch::transistor_count_for(contexts) as f64 * p.fgmos_program_energy_j
        }
    }
}

/// Total configuration-related energy of one switch over `hours` of
/// operation with `rewrites` full reconfigurations: write energy plus
/// static hold energy.
#[must_use]
pub fn total_config_energy_j(
    arch: ArchKind,
    contexts: usize,
    hours: f64,
    rewrites: u64,
    p: &TechParams,
) -> f64 {
    let write = rewrites as f64 * config_write_energy_j(arch, contexts, p);
    let hold = crate::power::switch_static_w(arch, contexts, p) * hours * 3600.0;
    write + hold
}

/// The reconfiguration count at which SRAM's total energy overtakes the
/// hybrid's over a given deployment length (`None` if SRAM never overtakes,
/// i.e. the hybrid loses at any rate — does not happen at default
/// parameters for deployments beyond ~1 s).
#[must_use]
pub fn breakeven_rewrites(contexts: usize, hours: f64, p: &TechParams) -> Option<u64> {
    // solve: rewrites · (E_fg − E_sram) = P_sram_hold · t  (fg hold ≈ 0)
    let e_fg = config_write_energy_j(ArchKind::Hybrid, contexts, p);
    let e_sram = config_write_energy_j(ArchKind::Sram, contexts, p);
    let hold = crate::power::switch_static_w(ArchKind::Sram, contexts, p) * hours * 3600.0;
    let delta = e_fg - e_sram;
    if delta <= 0.0 {
        return Some(0);
    }
    Some((hold / delta).floor() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fgfp_writes_cost_more_than_sram_writes() {
        let p = TechParams::default();
        assert!(
            config_write_energy_j(ArchKind::Hybrid, 4, &p)
                > config_write_energy_j(ArchKind::Sram, 4, &p)
        );
    }

    #[test]
    fn hybrid_wins_for_long_deployments_with_rare_rewrites() {
        let p = TechParams::default();
        let hours = 24.0 * 365.0; // one year
        let sram = total_config_energy_j(ArchKind::Sram, 4, hours, 10, &p);
        let hybrid = total_config_energy_j(ArchKind::Hybrid, 4, hours, 10, &p);
        assert!(hybrid < sram, "hold energy dominates over a year");
    }

    #[test]
    fn sram_wins_for_write_dominated_usage() {
        let p = TechParams::default();
        // one second of deployment, a million rewrites
        let sram = total_config_energy_j(ArchKind::Sram, 4, 1.0 / 3600.0, 1_000_000, &p);
        let hybrid = total_config_energy_j(ArchKind::Hybrid, 4, 1.0 / 3600.0, 1_000_000, &p);
        assert!(sram < hybrid);
    }

    #[test]
    fn breakeven_is_finite_and_scales_with_time() {
        let p = TechParams::default();
        let day = breakeven_rewrites(4, 24.0, &p).unwrap();
        let year = breakeven_rewrites(4, 24.0 * 365.0, &p).unwrap();
        assert!(day > 0);
        assert!(year > day);
        // a year of SRAM leakage buys a *lot* of FGFP rewrites
        assert!(year > 100_000);
    }

    #[test]
    fn hybrid_writes_cheaper_than_mv_writes() {
        // fewer devices to program per reconfiguration
        let p = TechParams::default();
        assert!(
            config_write_energy_j(ArchKind::Hybrid, 4, &p)
                < config_write_energy_j(ArchKind::MvFgfp, 4, &p)
        );
    }
}
