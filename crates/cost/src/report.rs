//! Report rendering: markdown tables and CSV series.

use crate::sweep::SweepPoint;

/// Renders a markdown table. `headers.len()` must equal each row's length.
#[must_use]
pub fn render_markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut s = String::new();
    s.push('|');
    for h in headers {
        s.push_str(&format!(" {h} |"));
    }
    s.push('\n');
    s.push('|');
    for _ in headers {
        s.push_str("---|");
    }
    s.push('\n');
    for row in rows {
        debug_assert_eq!(row.len(), headers.len());
        s.push('|');
        for cell in row {
            s.push_str(&format!(" {cell} |"));
        }
        s.push('\n');
    }
    s
}

/// Renders sweep points as CSV with one column per architecture.
#[must_use]
pub fn render_csv(x_label: &str, series_labels: &[&str; 3], points: &[SweepPoint]) -> String {
    let mut s = format!(
        "{x_label},{},{},{}\n",
        series_labels[0], series_labels[1], series_labels[2]
    );
    for p in points {
        s.push_str(&format!("{},{},{},{}\n", p.x, p.y[0], p.y[1], p.y[2]));
    }
    s
}

/// Formats a ratio as the paper does ("reduced to 7%").
#[must_use]
pub fn percent(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let t = render_markdown_table(
            &["arch", "transistors"],
            &[
                vec!["SRAM".into(), "31".into()],
                vec!["hybrid".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("arch"));
        assert!(lines[1].starts_with("|---|"));
        assert!(lines[3].contains('2'));
    }

    #[test]
    fn csv_shape() {
        let pts = vec![SweepPoint {
            x: 4,
            y: [31.0, 4.0, 2.0],
        }];
        let csv = render_csv("contexts", &["sram", "mv", "hybrid"], &pts);
        assert_eq!(csv, "contexts,sram,mv,hybrid\n4,31,4,2\n");
    }

    #[test]
    fn percent_rounding() {
        assert_eq!(percent(0.0645), "6%");
        assert_eq!(percent(0.5), "50%");
    }
}
