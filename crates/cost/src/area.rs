//! Parametric silicon-area model on top of the transistor counts.
//!
//! The paper reports transistor counts only; this layer translates them to
//! an area estimate so fabric-scale comparisons have physical units. The
//! per-device footprints are representative 90 nm-era values (documented
//! model assumptions): FGMOS cells are larger than plain logic transistors
//! (double-poly stack), SRAM cells are quoted as a whole.

use mcfpga_core::ArchKind;
use mcfpga_core::{HybridMcSwitch, MvFgfpMcSwitch};

/// Per-device area parameters (µm²).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaParams {
    /// One logic/pass transistor.
    pub logic_transistor_um2: f64,
    /// One FGMOS functional pass gate (double-poly, larger).
    pub fgmos_um2: f64,
    /// One complete 6T SRAM cell.
    pub sram_cell_um2: f64,
}

impl Default for AreaParams {
    fn default() -> Self {
        AreaParams {
            logic_transistor_um2: 0.6,
            fgmos_um2: 1.1,
            sram_cell_um2: 2.5,
        }
    }
}

/// Area estimate of one MC-switch (µm²).
#[must_use]
pub fn switch_area_um2(arch: ArchKind, contexts: usize, p: &AreaParams) -> f64 {
    match arch {
        ArchKind::Sram => {
            let sram = contexts as f64 * p.sram_cell_um2;
            let mux = (2 * (contexts - 1)) as f64 * p.logic_transistor_um2;
            sram + mux + p.logic_transistor_um2
        }
        ArchKind::MvFgfp => {
            let fg = contexts as f64 * p.fgmos_um2;
            let mux_t = MvFgfpMcSwitch::transistor_count_for(contexts) - contexts;
            fg + mux_t as f64 * p.logic_transistor_um2
        }
        ArchKind::Hybrid => HybridMcSwitch::transistor_count_for(contexts) as f64 * p.fgmos_um2,
    }
}

/// Area of a `k × k` switch block (µm²), with the hybrid's per-column select
/// network in plain transistors.
#[must_use]
pub fn sb_area_um2(arch: ArchKind, k: usize, contexts: usize, p: &AreaParams) -> f64 {
    let base = (k * k) as f64 * switch_area_um2(arch, contexts, p);
    match arch {
        ArchKind::Hybrid => {
            base + (k * HybridMcSwitch::select_transistors_for(contexts)) as f64
                * p.logic_transistor_um2
        }
        _ => base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_smallest_even_with_fgmos_penalty() {
        // FGMOS cells are ~2× a logic transistor, yet the hybrid switch
        // still wins by a wide margin — the count gap dominates.
        let p = AreaParams::default();
        let s = switch_area_um2(ArchKind::Sram, 4, &p);
        let m = switch_area_um2(ArchKind::MvFgfp, 4, &p);
        let h = switch_area_um2(ArchKind::Hybrid, 4, &p);
        assert!(h < m && m < s);
        assert!(h / s < 0.2, "hybrid under 20% of SRAM area, got {}", h / s);
    }

    #[test]
    fn sram_area_dominated_by_cells() {
        let p = AreaParams::default();
        let total = switch_area_um2(ArchKind::Sram, 4, &p);
        let cells = 4.0 * p.sram_cell_um2;
        assert!(cells / total > 0.5);
    }

    #[test]
    fn sb_area_matches_structure() {
        let p = AreaParams::default();
        let per = switch_area_um2(ArchKind::Sram, 4, &p);
        assert!((sb_area_um2(ArchKind::Sram, 10, 4, &p) - 100.0 * per).abs() < 1e-9);
        // hybrid SB adds the column select networks
        let hybrid_no_sel = 100.0 * switch_area_um2(ArchKind::Hybrid, 4, &p);
        assert!(sb_area_um2(ArchKind::Hybrid, 10, 4, &p) > hybrid_no_sel);
    }
}
