//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the narrow random-number API it actually uses: a seedable deterministic
//! generator ([`rngs::StdRng`]), uniform range sampling
//! ([`RngExt::random_range`]) and Fisher–Yates shuffling
//! ([`seq::SliceRandom`]). The generator is xoshiro256++ seeded through
//! splitmix64, so streams are reproducible across platforms and runs.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a simple seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types usable as the argument of [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // widening multiply keeps the draw unbiased enough for
                // simulation workloads without a rejection loop
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + v as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                if start == 0 && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + v as $t
            }
        }
    )*};
}
impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                // 53 uniformly random mantissa bits in [0, 1)
                let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                (self.start as f64 + frac * (self.end as f64 - self.start as f64)) as $t
            }
        }
    )*};
}
impl_sample_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// Uniform draw from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Uniformly random boolean.
    fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's "standard" RNG).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..u64::MAX),
                b.random_range(0u64..u64::MAX)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-3.0..3.0);
            assert!((-3.0..3.0).contains(&f));
            let i = rng.random_range(1usize..=64);
            assert!((1..=64).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
