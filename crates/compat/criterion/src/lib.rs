//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-harness surface the workspace's `benches/` use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`Bencher::iter`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is simple wall-clock sampling —
//! calibrate one call, batch iterations per sample, report the median and
//! minimum per-iteration time. No statistics engine, plots or baselines; it
//! exists so `cargo bench` runs offline and prints honest numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label of one benchmark, optionally `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function/parameter` label.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Parameter-only label.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Runs the measured closure and accumulates timing samples.
#[derive(Debug, Default)]
pub struct Bencher {
    sample_size: usize,
    /// Per-iteration times in seconds, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `f`, batching enough calls per sample for a stable reading.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // calibrate with one warm-up call
        let t0 = Instant::now();
        black_box(f());
        let single = t0.elapsed().as_secs_f64().max(1e-9);
        // target ~200µs per sample, capped so huge closures still finish
        let iters = ((2e-4 / single) as usize).clamp(1, 100_000);
        let budget = Instant::now();
        for _ in 0..self.sample_size.max(1) {
            let s = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(s.elapsed().as_secs_f64() / iters as f64);
            if budget.elapsed() > Duration::from_millis(500) {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        println!(
            "{name:<50} time: [median {} | min {}] ({} samples)",
            fmt_time(median),
            fmt_time(min),
            sorted.len()
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timing samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&id.0);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs and reports one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                runs += 1;
                black_box(2u64 + 2)
            });
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function(BenchmarkId::from_parameter(8), |b| b.iter(|| black_box(1)));
        g.bench_function(BenchmarkId::new("f", 4), |b| b.iter(|| black_box(1)));
        g.finish();
    }
}
