//! Offline stand-in for `serde`.
//!
//! The workspace annotates a handful of types with
//! `#[derive(Serialize, Deserialize)]` but never serialises them through a
//! serde data format (the bitstream module has its own byte format). With no
//! crates.io access, this crate supplies marker traits and
//! [`serde_derive`]'s trivial derives so those annotations compile. Swap the
//! path dependency for the real `serde` when the environment has network
//! access — no source changes needed.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that would be serialisable under real serde.
pub trait Serialize {}

/// Marker for types that would be deserialisable under real serde.
pub trait Deserialize {}
