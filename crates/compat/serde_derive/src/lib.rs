//! Trivial `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! Each derive emits an empty marker-trait impl for the annotated type. Only
//! non-generic structs and enums are supported — exactly what this workspace
//! derives on. Written against `proc_macro` alone so no crates.io
//! dependencies (`syn`/`quote`) are needed.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type identifier following the `struct`/`enum` keyword.
///
/// Outer attributes and doc comments arrive as `#[...]` token groups, so a
/// top-level scan for the keyword ident cannot be fooled by their contents.
fn type_name(input: &TokenStream) -> String {
    let mut tokens = input.clone().into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ref kw) = tt {
            let kw = kw.to_string();
            if kw == "struct" || kw == "enum" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = tokens.next() {
                            assert!(
                                p.as_char() != '<',
                                "offline serde derive does not support generic types"
                            );
                        }
                        return name.to_string();
                    }
                    other => panic!("expected type name after `{kw}`, found {other:?}"),
                }
            }
        }
    }
    panic!("offline serde derive: no struct/enum keyword in input");
}

/// Derives the no-op `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    format!("impl ::serde::Serialize for {} {{}}", type_name(&input))
        .parse()
        .expect("generated impl parses")
}

/// Derives the no-op `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    format!("impl ::serde::Deserialize for {} {{}}", type_name(&input))
        .parse()
        .expect("generated impl parses")
}
