//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert*` / `prop_assume!`,
//! [`strategy::Strategy`] with `prop_map`/`prop_flat_map`, [`arbitrary::any`],
//! `prop::collection::vec`, `prop::bits::*::masked`, `prop::sample::select`,
//! tuple strategies and [`ProptestConfig`]. Cases are generated from a
//! deterministic per-test seed (FNV hash of the test name) so failures
//! reproduce; there is **no shrinking** — a failing case reports the
//! assertion message as-is.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Deterministic case generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Generator seeded from a test's name (stable across runs).
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Access the inner rand generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; it does not count as a run.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;

    /// A recipe for generating random values (no shrinking).
    pub trait Strategy {
        /// Type of value produced.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Chains a dependent strategy off each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::RngExt;
                    rng.rng().random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::RngExt;
                    rng.rng().random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_inclusive_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+)
                ;
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical full-domain strategy for a type.

    use super::strategy::Strategy;
    use super::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use super::TestRng;

    /// Accepted size arguments for [`fn@vec`]: a fixed length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing vectors of `element` draws.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::RngExt;
            let n = rng.rng().random_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod bits {
    //! Bit-pattern strategies (`prop::bits::u64::masked`).

    macro_rules! bits_mod {
        ($mod_name:ident, $t:ty) => {
            /// Strategies over one unsigned width.
            pub mod $mod_name {
                use crate::strategy::Strategy;
                use crate::TestRng;

                /// Strategy producing values whose set bits are within `mask`.
                #[derive(Debug, Clone, Copy)]
                pub struct Masked($t);

                impl Strategy for Masked {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t & self.0
                    }
                }

                /// Uniform values restricted to the set bits of `mask`.
                #[must_use]
                pub fn masked(mask: $t) -> Masked {
                    Masked(mask)
                }
            }
        };
    }

    bits_mod!(u8, u8);
    bits_mod!(u16, u16);
    bits_mod!(u32, u32);
    bits_mod!(u64, u64);
}

pub mod sample {
    //! Sampling strategies (`prop::sample::select`).

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy drawing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            use rand::RngExt;
            assert!(!self.0.is_empty(), "select from empty list");
            self.0[rng.rng().random_range(0..self.0.len())].clone()
        }
    }

    /// Uniform draw from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select(options)
    }
}

/// Namespace mirror of proptest's `prop::` path (as re-exported by its
/// prelude): `prop::collection`, `prop::bits`, `prop::sample`.
pub mod prop {
    pub use crate::bits;
    pub use crate::collection;
    pub use crate::sample;
}

/// The usual single import for property tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Filters out the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({})",
                l, r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case_runner {
    ($cfg:expr, $name:ident, |$rng:ident| $gen_and_run:block) => {
        let config: $crate::ProptestConfig = $cfg;
        let mut $rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
        let mut accepted: u32 = 0;
        let mut attempts: u32 = 0;
        let max_attempts = config.cases.saturating_mul(40).max(40);
        while accepted < config.cases && attempts < max_attempts {
            attempts += 1;
            let outcome: ::core::result::Result<(), $crate::TestCaseError> = $gen_and_run;
            match outcome {
                ::core::result::Result::Ok(()) => accepted += 1,
                ::core::result::Result::Err($crate::TestCaseError::Reject) => continue,
                ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest case failed for `{}` (case {} of {}): {}",
                        stringify!($name),
                        accepted + 1,
                        config.cases,
                        msg
                    );
                }
            }
        }
        // mirror real proptest: a test whose every case was filtered out
        // proved nothing and must not pass vacuously
        assert!(
            accepted > 0,
            "proptest `{}` rejected all {} generated cases (prop_assume too strict?)",
            stringify!($name),
            attempts
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($($cfg:tt)*)) => {};
    (@cfg($($cfg:tt)*)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case_runner!($($cfg)*, $name, |rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_fns!{ @cfg($($cfg)*) $($rest)* }
    };
}

/// Declares deterministic random-case tests.
///
/// Supports the standard proptest surface this workspace uses: an optional
/// leading `#![proptest_config(expr)]`, then `#[test]` functions whose
/// arguments are drawn from strategies with `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg(::core::default::Default::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_any(x in 3usize..17, v in any::<u64>(), b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            let _ = (v, b);
        }

        #[test]
        fn vec_and_map(
            xs in prop::collection::vec(any::<bool>(), 1..10),
            y in (0u64..4).prop_map(|v| v * 2),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 10);
            prop_assert!(y % 2 == 0 && y < 8);
        }

        #[test]
        fn masked_and_select(
            m in prop::bits::u64::masked(0xF0),
            s in prop::sample::select(vec![1usize, 2, 4]),
        ) {
            prop_assert_eq!(m & !0xF0, 0);
            prop_assert!(s == 1 || s == 2 || s == 4);
        }

        #[test]
        fn flat_map_dependent(
            (n, k) in (1usize..10).prop_flat_map(|n| (Just(n), 0usize..n)),
        ) {
            prop_assert!(k < n);
        }

        #[test]
        fn assume_filters(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
