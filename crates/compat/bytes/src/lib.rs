//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the bitstream codec uses: [`BytesMut`] as an
//! append-only builder with big-endian `put_*` writers (via [`BufMut`]),
//! frozen into [`Bytes`], a cheaply sliceable read cursor with big-endian
//! `get_*` readers (via [`Buf`]). Backed by `Arc<[u8]>` so `slice` and
//! `copy_to_bytes` stay zero-copy like the real crate.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::sync::Arc;

/// Read access to a byte cursor (big-endian, panicking on underflow —
/// callers bounds-check with [`Buf::remaining`] first, as real `bytes` does).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `n` raw bytes, advancing the cursor.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_to_bytes(1).as_slice()[0]
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.copy_to_bytes(2).as_slice().try_into().unwrap())
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.copy_to_bytes(4).as_slice().try_into().unwrap())
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.copy_to_bytes(8).as_slice().try_into().unwrap())
    }
}

/// Write access to a growable byte buffer (big-endian).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// An immutable, cheaply cloneable and sliceable byte buffer with a read
/// cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// The unread bytes as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Unread length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Is the buffer exhausted?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-range of the unread bytes.
    #[must_use]
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the unread bytes into a fresh vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "buffer underflow");
        let out = self.slice(0..n);
        self.start += n;
        out
    }
}

/// A growable byte builder.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Has anything been written?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::new();
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0123_4567_89AB_CDEF);
        b.put_slice(b"hello");
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 5);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.copy_to_bytes(5).as_slice(), b"hello");
        assert!(r.is_empty());
    }

    #[test]
    fn slice_is_independent() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let mut s = b.slice(1..4);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
        assert_eq!(s.get_u8(), 2);
        assert_eq!(b.len(), 5, "parent cursor untouched");
    }
}
