//! Quantised multiple-valued rail levels.
//!
//! The paper's hybrid context-switching signal mixes a binary gate with a
//! multiple-valued residue. For `C = 4` contexts the residue rail carries
//! **five** distinguishable levels `0..=4`:
//!
//! * level `0` — the binary "off" level (the output of the Fig. 8 generator
//!   when its binary input is 0);
//! * levels `1..=4` — the MV context residue, `Vs = ctx + 1`.
//!
//! "Five-valued signals are required to make a clear distinction between the
//! 0-level of binary and that of multiple-valued" (§3). The MV inversion used
//! by the generator is `¬Vs = 5 − Vs`; level 0 is a fixed point of gating,
//! not of inversion (inversion is only defined on the MV sub-rail `1..=R−1`).

use crate::MvlError;

/// The radix (number of distinguishable levels) of an MV rail.
///
/// A rail of radix `R` carries levels `0..=R-1`. For `C` contexts encoded on
/// the MV part, the hybrid scheme needs radix `C + 1` (level 0 reserved for
/// the binary off state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Radix(u8);

impl Radix {
    /// Five-valued rail used by the 4-context hybrid CSS of the paper.
    pub const FIVE: Radix = Radix(5);

    /// Creates a radix. Must be at least 2 (binary).
    ///
    /// # Panics
    /// Panics if `r < 2`.
    #[must_use]
    pub fn new(r: u8) -> Self {
        assert!(r >= 2, "radix must be >= 2, got {r}");
        Radix(r)
    }

    /// Radix needed to carry `contexts` MV residues plus the binary-off level.
    ///
    /// `contexts` here is the number of contexts *resolved by the MV part*
    /// (4 in the paper's base block, regardless of total context count).
    #[must_use]
    pub fn for_contexts(contexts: usize) -> Self {
        let c = u8::try_from(contexts).expect("context count fits in u8");
        Radix::new(c + 1)
    }

    /// Number of levels on this rail.
    #[must_use]
    pub fn levels(self) -> u8 {
        self.0
    }

    /// Highest level on this rail (`R − 1`).
    #[must_use]
    pub fn top(self) -> Level {
        Level(self.0 - 1)
    }

    /// Iterator over every level of the rail, `0..R`.
    pub fn all_levels(self) -> impl Iterator<Item = Level> {
        (0..self.0).map(Level)
    }

    /// Iterator over the MV sub-rail `1..R` (excludes the binary-off level).
    pub fn mv_levels(self) -> impl Iterator<Item = Level> {
        (1..self.0).map(Level)
    }
}

impl std::fmt::Display for Radix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "radix-{}", self.0)
    }
}

/// One quantised level on an MV rail.
///
/// `Level` is deliberately radix-agnostic (a plain `u8` payload); operations
/// that depend on the rail take a [`Radix`] argument and are checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Level(u8);

impl Level {
    /// The binary-off level (0).
    pub const ZERO: Level = Level(0);

    /// Creates a level with no radix check.
    #[must_use]
    pub const fn new(v: u8) -> Self {
        Level(v)
    }

    /// Creates a level, checking it against the rail's radix.
    pub fn checked(v: u8, radix: Radix) -> Result<Self, MvlError> {
        if v < radix.levels() {
            Ok(Level(v))
        } else {
            Err(MvlError::LevelOutOfRange {
                level: v,
                radix: radix.levels(),
            })
        }
    }

    /// Raw level value.
    #[must_use]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Is this the binary-off level?
    #[must_use]
    pub const fn is_off(self) -> bool {
        self.0 == 0
    }

    /// The MV residue encoding of a context id: `Vs = ctx + 1`.
    ///
    /// The paper: "The context ID CSS = {0,1,2,3} is represented by a voltage
    /// Vs = {1,2,3,4}. The reason why CSS = 0 corresponds to Vs = 1 is that
    /// (Vs and S0) and (Vs and ¬S0) make a difference when CSS = 0."
    #[must_use]
    pub fn encode_ctx(ctx: usize) -> Self {
        let v = u8::try_from(ctx + 1).expect("context id fits in u8");
        Level(v)
    }

    /// Inverse of [`Level::encode_ctx`]; `None` for the off level.
    #[must_use]
    pub fn decode_ctx(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(usize::from(self.0) - 1)
        }
    }

    /// MV inversion on the given rail: `¬v = R − v` for `v ≥ 1`.
    ///
    /// For the paper's five-valued rail this is `¬Vs = 5 − Vs`, mapping
    /// `{1,2,3,4} → {4,3,2,1}`. The binary-off level 0 is returned unchanged
    /// (a gated-off signal stays gated off regardless of polarity).
    #[must_use]
    pub fn invert(self, radix: Radix) -> Self {
        if self.0 == 0 {
            Level(0)
        } else {
            Level(radix.levels() - self.0)
        }
    }

    /// MV conjunction (lattice meet): `min`.
    #[must_use]
    pub fn and(self, other: Level) -> Level {
        Level(self.0.min(other.0))
    }

    /// MV disjunction (lattice join): `max`.
    #[must_use]
    pub fn or(self, other: Level) -> Level {
        Level(self.0.max(other.0))
    }

    /// Binary gating as used by the Fig. 8 generator: pass the MV value when
    /// the binary gate is 1, emit the off level otherwise.
    #[must_use]
    pub fn gate(self, bin: bool) -> Level {
        if bin {
            self
        } else {
            Level::ZERO
        }
    }

    /// Threshold detection: `1` iff `self >= t` (an up-literal at threshold `t`).
    #[must_use]
    pub fn at_least(self, t: Level) -> bool {
        self >= t
    }

    /// Threshold detection: `1` iff `self <= t` (a down-literal at threshold `t`).
    #[must_use]
    pub fn at_most(self, t: Level) -> bool {
        self <= t
    }
}

impl From<u8> for Level {
    fn from(v: u8) -> Self {
        Level(v)
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Maps a level to a model voltage, for waveform rendering.
///
/// The paper draws `Vs ∈ {1,2,3,4}` directly as volts; we keep that
/// convention (`step_v` defaults to 1.0 V per level).
#[must_use]
pub fn level_to_volts(level: Level, step_v: f64) -> f64 {
    f64::from(level.value()) * step_v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_basics() {
        let r = Radix::FIVE;
        assert_eq!(r.levels(), 5);
        assert_eq!(r.top(), Level::new(4));
        assert_eq!(r.all_levels().count(), 5);
        assert_eq!(r.mv_levels().count(), 4);
        assert_eq!(Radix::for_contexts(4), Radix::FIVE);
    }

    #[test]
    #[should_panic(expected = "radix must be >= 2")]
    fn radix_rejects_unary() {
        let _ = Radix::new(1);
    }

    #[test]
    fn level_checked_respects_radix() {
        assert!(Level::checked(4, Radix::FIVE).is_ok());
        assert_eq!(
            Level::checked(5, Radix::FIVE),
            Err(MvlError::LevelOutOfRange { level: 5, radix: 5 })
        );
    }

    #[test]
    fn ctx_encoding_matches_paper() {
        // CSS = {0,1,2,3} → Vs = {1,2,3,4}
        for ctx in 0..4 {
            let v = Level::encode_ctx(ctx);
            assert_eq!(usize::from(v.value()), ctx + 1);
            assert_eq!(v.decode_ctx(), Some(ctx));
        }
        assert_eq!(Level::ZERO.decode_ctx(), None);
    }

    #[test]
    fn inversion_is_five_minus_vs() {
        // ¬Vs = 5 − Vs on the five-valued rail.
        let r = Radix::FIVE;
        assert_eq!(Level::new(1).invert(r), Level::new(4));
        assert_eq!(Level::new(2).invert(r), Level::new(3));
        assert_eq!(Level::new(3).invert(r), Level::new(2));
        assert_eq!(Level::new(4).invert(r), Level::new(1));
        // off level is a fixed point of gating semantics
        assert_eq!(Level::ZERO.invert(r), Level::ZERO);
    }

    #[test]
    fn inversion_is_involutive_on_mv_subrail() {
        let r = Radix::FIVE;
        for v in r.mv_levels() {
            assert_eq!(v.invert(r).invert(r), v);
        }
    }

    #[test]
    fn min_max_algebra() {
        let a = Level::new(2);
        let b = Level::new(3);
        assert_eq!(a.and(b), a);
        assert_eq!(a.or(b), b);
        // idempotent, commutative
        assert_eq!(a.and(a), a);
        assert_eq!(a.or(a), a);
        assert_eq!(a.and(b), b.and(a));
        assert_eq!(a.or(b), b.or(a));
    }

    #[test]
    fn gating() {
        let v = Level::new(3);
        assert_eq!(v.gate(true), v);
        assert_eq!(v.gate(false), Level::ZERO);
        assert_eq!(Level::ZERO.gate(true), Level::ZERO);
    }

    #[test]
    fn thresholds() {
        let v = Level::new(2);
        assert!(v.at_least(Level::new(2)));
        assert!(v.at_least(Level::new(1)));
        assert!(!v.at_least(Level::new(3)));
        assert!(v.at_most(Level::new(2)));
        assert!(v.at_most(Level::new(4)));
        assert!(!v.at_most(Level::new(1)));
    }

    #[test]
    fn volts_mapping() {
        assert_eq!(level_to_volts(Level::new(3), 1.0), 3.0);
        assert_eq!(level_to_volts(Level::new(2), 0.5), 1.0);
    }
}
