//! ON-sets of contexts.
//!
//! A multi-context switch is configured by choosing, for every context, whether
//! the switch conducts. That configuration is exactly a subset of the context
//! ids — the function `F` of the paper's Fig. 3. [`CtxSet`] is a compact
//! bitmask representation of such a subset for up to 64 contexts.

use crate::MvlError;

/// A set of context ids, over a domain of `contexts` contexts (`≤ 64`).
///
/// The pair `(mask, contexts)` is kept together so that complement and
/// universal-set operations are well-defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CtxSet {
    mask: u64,
    contexts: usize,
}

impl CtxSet {
    /// Maximum number of contexts representable.
    pub const MAX_CONTEXTS: usize = 64;

    /// Empty set over a domain of `contexts` contexts.
    pub fn empty(contexts: usize) -> Result<Self, MvlError> {
        if contexts == 0 || contexts > Self::MAX_CONTEXTS {
            return Err(MvlError::BadContextCount(contexts));
        }
        Ok(CtxSet { mask: 0, contexts })
    }

    /// The full set (switch ON in every context).
    pub fn full(contexts: usize) -> Result<Self, MvlError> {
        let mut s = Self::empty(contexts)?;
        s.mask = Self::domain_mask(contexts);
        Ok(s)
    }

    /// Builds a set from an iterator of context ids.
    pub fn from_ctxs<I: IntoIterator<Item = usize>>(
        contexts: usize,
        ctxs: I,
    ) -> Result<Self, MvlError> {
        let mut s = Self::empty(contexts)?;
        for c in ctxs {
            s.insert(c)?;
        }
        Ok(s)
    }

    /// Builds a set from a raw bitmask; bits above the domain are rejected.
    pub fn from_mask(contexts: usize, mask: u64) -> Result<Self, MvlError> {
        Self::empty(contexts)?;
        if mask & !Self::domain_mask(contexts) != 0 {
            return Err(MvlError::ContextOutOfRange {
                ctx: (63 - mask.leading_zeros()) as usize,
                contexts,
            });
        }
        Ok(CtxSet { mask, contexts })
    }

    fn domain_mask(contexts: usize) -> u64 {
        if contexts == 64 {
            u64::MAX
        } else {
            (1u64 << contexts) - 1
        }
    }

    /// Number of contexts in the domain (not the cardinality of the set).
    #[must_use]
    pub fn contexts(&self) -> usize {
        self.contexts
    }

    /// Raw bitmask.
    #[must_use]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Number of contexts in which the switch is ON.
    #[must_use]
    pub fn count(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// Is the set empty (switch never conducts)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.mask == 0
    }

    /// Is the set full (switch always conducts)?
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.mask == Self::domain_mask(self.contexts)
    }

    /// Membership test.
    pub fn contains(&self, ctx: usize) -> Result<bool, MvlError> {
        self.check(ctx)?;
        Ok(self.mask & (1u64 << ctx) != 0)
    }

    /// Membership test that panics on out-of-domain contexts.
    ///
    /// Convenient inside hot simulator loops where the context id is already
    /// validated.
    #[must_use]
    pub fn get(&self, ctx: usize) -> bool {
        assert!(ctx < self.contexts, "context {ctx} out of domain");
        self.mask & (1u64 << ctx) != 0
    }

    /// Inserts a context id.
    pub fn insert(&mut self, ctx: usize) -> Result<(), MvlError> {
        self.check(ctx)?;
        self.mask |= 1u64 << ctx;
        Ok(())
    }

    /// Removes a context id.
    pub fn remove(&mut self, ctx: usize) -> Result<(), MvlError> {
        self.check(ctx)?;
        self.mask &= !(1u64 << ctx);
        Ok(())
    }

    fn check(&self, ctx: usize) -> Result<(), MvlError> {
        if ctx >= self.contexts {
            Err(MvlError::ContextOutOfRange {
                ctx,
                contexts: self.contexts,
            })
        } else {
            Ok(())
        }
    }

    /// Set union (switch functions OR — Fig. 3's wired-OR of window literals).
    #[must_use]
    pub fn union(&self, other: &CtxSet) -> CtxSet {
        assert_eq!(self.contexts, other.contexts, "context domains differ");
        CtxSet {
            mask: self.mask | other.mask,
            contexts: self.contexts,
        }
    }

    /// Set intersection (wired-AND of series literals).
    #[must_use]
    pub fn intersection(&self, other: &CtxSet) -> CtxSet {
        assert_eq!(self.contexts, other.contexts, "context domains differ");
        CtxSet {
            mask: self.mask & other.mask,
            contexts: self.contexts,
        }
    }

    /// Set complement within the domain.
    #[must_use]
    pub fn complement(&self) -> CtxSet {
        CtxSet {
            mask: !self.mask & Self::domain_mask(self.contexts),
            contexts: self.contexts,
        }
    }

    /// Symmetric difference.
    #[must_use]
    pub fn symmetric_difference(&self, other: &CtxSet) -> CtxSet {
        assert_eq!(self.contexts, other.contexts, "context domains differ");
        CtxSet {
            mask: self.mask ^ other.mask,
            contexts: self.contexts,
        }
    }

    /// Is `self` a subset of `other`?
    #[must_use]
    pub fn is_subset(&self, other: &CtxSet) -> bool {
        assert_eq!(self.contexts, other.contexts, "context domains differ");
        self.mask & !other.mask == 0
    }

    /// Iterator over member context ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let contexts = self.contexts;
        let mask = self.mask;
        (0..contexts).filter(move |c| mask & (1u64 << c) != 0)
    }

    /// Iterator over every subset of the domain — i.e. every possible switch
    /// configuration. Only sensible for small domains (`contexts ≤ ~20`).
    pub fn enumerate_all(contexts: usize) -> Result<impl Iterator<Item = CtxSet>, MvlError> {
        if contexts == 0 || contexts > 20 {
            return Err(MvlError::BadContextCount(contexts));
        }
        let n = 1u64 << contexts;
        Ok((0..n).map(move |mask| CtxSet { mask, contexts }))
    }

    /// The number of *maximal runs* of consecutive ON contexts.
    ///
    /// This is exactly the number of window literals the Fig. 3 decomposition
    /// produces, and therefore the number of parallel FGMOS branches the pure
    /// MV switch of ref \[3\] needs for this function.
    #[must_use]
    pub fn run_count(&self) -> usize {
        let mut runs = 0;
        let mut prev = false;
        for c in 0..self.contexts {
            let cur = self.mask & (1u64 << c) != 0;
            if cur && !prev {
                runs += 1;
            }
            prev = cur;
        }
        runs
    }
}

impl std::fmt::Display for CtxSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for c in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_membership() {
        let s = CtxSet::from_ctxs(4, [1, 3]).unwrap();
        assert!(!s.get(0));
        assert!(s.get(1));
        assert!(!s.get(2));
        assert!(s.get(3));
        assert_eq!(s.count(), 2);
        assert_eq!(s.to_string(), "{1,3}");
    }

    #[test]
    fn rejects_bad_domains() {
        assert!(CtxSet::empty(0).is_err());
        assert!(CtxSet::empty(65).is_err());
        assert!(CtxSet::empty(64).is_ok());
    }

    #[test]
    fn rejects_out_of_domain_ctx() {
        let mut s = CtxSet::empty(4).unwrap();
        assert!(s.insert(4).is_err());
        assert!(s.insert(3).is_ok());
        assert_eq!(
            s.contains(9),
            Err(MvlError::ContextOutOfRange {
                ctx: 9,
                contexts: 4
            })
        );
    }

    #[test]
    fn from_mask_validates() {
        assert!(CtxSet::from_mask(4, 0b1010).is_ok());
        assert!(CtxSet::from_mask(4, 0b10000).is_err());
        assert!(CtxSet::from_mask(64, u64::MAX).is_ok());
    }

    #[test]
    fn boolean_algebra() {
        let a = CtxSet::from_ctxs(8, [0, 2, 4]).unwrap();
        let b = CtxSet::from_ctxs(8, [2, 3]).unwrap();
        assert_eq!(a.union(&b), CtxSet::from_ctxs(8, [0, 2, 3, 4]).unwrap());
        assert_eq!(a.intersection(&b), CtxSet::from_ctxs(8, [2]).unwrap());
        assert_eq!(
            a.complement(),
            CtxSet::from_ctxs(8, [1, 3, 5, 6, 7]).unwrap()
        );
        assert_eq!(
            a.symmetric_difference(&b),
            CtxSet::from_ctxs(8, [0, 3, 4]).unwrap()
        );
        assert!(CtxSet::from_ctxs(8, [2]).unwrap().is_subset(&b));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn complement_of_full_is_empty() {
        for n in [1, 4, 8, 63, 64] {
            let full = CtxSet::full(n).unwrap();
            assert!(full.is_full());
            assert!(full.complement().is_empty());
        }
    }

    #[test]
    fn enumerate_all_counts() {
        assert_eq!(CtxSet::enumerate_all(4).unwrap().count(), 16);
        assert!(CtxSet::enumerate_all(21).is_err());
    }

    #[test]
    fn run_count_examples() {
        // Fig. 3: F ON at {1,3} → two windows.
        assert_eq!(CtxSet::from_ctxs(4, [1, 3]).unwrap().run_count(), 2);
        assert_eq!(CtxSet::from_ctxs(4, [1, 2]).unwrap().run_count(), 1);
        assert_eq!(CtxSet::empty(4).unwrap().run_count(), 0);
        assert_eq!(CtxSet::full(4).unwrap().run_count(), 1);
        // alternating worst case: ⌈C/2⌉ runs
        assert_eq!(CtxSet::from_ctxs(8, [0, 2, 4, 6]).unwrap().run_count(), 4);
    }
}
