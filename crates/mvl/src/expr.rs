//! A small multiple-valued expression AST.
//!
//! Used to describe the behaviour of signal-generation circuitry (the Fig. 8
//! MV/B-CSS generator) declaratively, to cross-check hand-built circuit
//! models against an executable specification, and to state algebraic
//! identities in tests.

use crate::level::{Level, Radix};

/// Inputs to an expression: named MV rails and named binary wires.
#[derive(Debug, Clone, Default)]
pub struct Env {
    mv: Vec<(String, Level)>,
    bin: Vec<(String, bool)>,
}

impl Env {
    /// Empty environment.
    #[must_use]
    pub fn new() -> Self {
        Env::default()
    }

    /// Binds an MV rail value.
    pub fn set_mv(&mut self, name: &str, v: Level) -> &mut Self {
        if let Some(slot) = self.mv.iter_mut().find(|(n, _)| n == name) {
            slot.1 = v;
        } else {
            self.mv.push((name.to_string(), v));
        }
        self
    }

    /// Binds a binary wire value.
    pub fn set_bin(&mut self, name: &str, v: bool) -> &mut Self {
        if let Some(slot) = self.bin.iter_mut().find(|(n, _)| n == name) {
            slot.1 = v;
        } else {
            self.bin.push((name.to_string(), v));
        }
        self
    }

    /// Looks up an MV rail.
    #[must_use]
    pub fn mv(&self, name: &str) -> Option<Level> {
        self.mv.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a binary wire.
    #[must_use]
    pub fn bin(&self, name: &str) -> Option<bool> {
        self.bin.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// Multiple-valued expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MvExpr {
    /// A constant level.
    Const(Level),
    /// An MV input rail by name.
    Input(String),
    /// Lattice meet (series conduction / wired-AND).
    Min(Box<MvExpr>, Box<MvExpr>),
    /// Lattice join (parallel conduction / wired-OR).
    Max(Box<MvExpr>, Box<MvExpr>),
    /// MV inversion `¬v = R − v` (the Fig. 8 `¬Vs` rail).
    Not(Box<MvExpr>),
    /// Binary gating: MV value if the named binary wire is 1, else level 0
    /// (the Fig. 8 output stage: "The output is same as the MV-CSS when the
    /// binary CSS is 1. Otherwise, the output is 0").
    Gate(String, Box<MvExpr>),
}

impl MvExpr {
    /// Constant expression.
    #[must_use]
    pub fn constant(v: Level) -> Self {
        MvExpr::Const(v)
    }

    /// Input rail expression.
    #[must_use]
    pub fn input(name: &str) -> Self {
        MvExpr::Input(name.to_string())
    }

    /// `min(self, rhs)`.
    #[must_use]
    pub fn min(self, rhs: MvExpr) -> Self {
        MvExpr::Min(Box::new(self), Box::new(rhs))
    }

    /// `max(self, rhs)`.
    #[must_use]
    pub fn max(self, rhs: MvExpr) -> Self {
        MvExpr::Max(Box::new(self), Box::new(rhs))
    }

    /// MV inversion.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // DSL constructor, not an operator impl
    pub fn not(self) -> Self {
        MvExpr::Not(Box::new(self))
    }

    /// Binary gating by wire `name`.
    #[must_use]
    pub fn gated_by(self, name: &str) -> Self {
        MvExpr::Gate(name.to_string(), Box::new(self))
    }

    /// Evaluates the expression. Missing inputs evaluate to level 0 / gate
    /// open — the electrical analogue of an undriven node pulled down.
    #[must_use]
    pub fn eval(&self, env: &Env, radix: Radix) -> Level {
        match self {
            MvExpr::Const(v) => *v,
            MvExpr::Input(name) => env.mv(name).unwrap_or(Level::ZERO),
            MvExpr::Min(a, b) => a.eval(env, radix).and(b.eval(env, radix)),
            MvExpr::Max(a, b) => a.eval(env, radix).or(b.eval(env, radix)),
            MvExpr::Not(a) => a.eval(env, radix).invert(radix),
            MvExpr::Gate(name, a) => a.eval(env, radix).gate(env.bin(name).unwrap_or(false)),
        }
    }

    /// Number of nodes in the expression tree.
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            MvExpr::Const(_) | MvExpr::Input(_) => 1,
            MvExpr::Min(a, b) | MvExpr::Max(a, b) => 1 + a.size() + b.size(),
            MvExpr::Not(a) | MvExpr::Gate(_, a) => 1 + a.size(),
        }
    }
}

impl std::fmt::Display for MvExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MvExpr::Const(v) => write!(f, "{v}"),
            MvExpr::Input(n) => write!(f, "{n}"),
            MvExpr::Min(a, b) => write!(f, "min({a},{b})"),
            MvExpr::Max(a, b) => write!(f, "max({a},{b})"),
            MvExpr::Not(a) => write!(f, "¬({a})"),
            MvExpr::Gate(n, a) => write!(f, "[{n}]·({a})"),
        }
    }
}

/// The four hybrid CSS outputs of Fig. 8 as executable specifications:
/// `(S0·Vs, S0·¬Vs, ¬S0·Vs, ¬S0·¬Vs)` where `·` is binary gating and the
/// binary complement is a separate wire `nS0`.
#[must_use]
pub fn hybrid_css_spec() -> [MvExpr; 4] {
    let vs = || MvExpr::input("Vs");
    [
        vs().gated_by("S0"),
        vs().not().gated_by("S0"),
        vs().gated_by("nS0"),
        vs().not().gated_by("nS0"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: Radix = Radix::FIVE;

    #[test]
    fn eval_basics() {
        let mut env = Env::new();
        env.set_mv("a", Level::new(3)).set_bin("g", true);
        let e = MvExpr::input("a").min(MvExpr::constant(Level::new(2)));
        assert_eq!(e.eval(&env, R), Level::new(2));
        let e2 = MvExpr::input("a").gated_by("g");
        assert_eq!(e2.eval(&env, R), Level::new(3));
        env.set_bin("g", false);
        assert_eq!(e2.eval(&env, R), Level::ZERO);
    }

    #[test]
    fn missing_inputs_float_low() {
        let env = Env::new();
        assert_eq!(MvExpr::input("zz").eval(&env, R), Level::ZERO);
        assert_eq!(
            MvExpr::input("zz").gated_by("gg").eval(&env, R),
            Level::ZERO
        );
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // ctx indexes the expectation table
    fn hybrid_spec_matches_fig7_waveforms() {
        // Fig. 7 tabulated: context 0..4 with Vs = ctx+1, S0 = ctx & 1.
        // Panel (a) S0·Vs:   ctx {0,2} → 0;     ctx {1,3} → Vs (2, 4)
        // Panel (b) S0·¬Vs:  ctx {0,2} → 0;     ctx {1,3} → 5−Vs (3, 1)
        // Panel (c) ¬S0·Vs:  ctx {1,3} → 0;     ctx {0,2} → Vs (1, 3)
        // Panel (d) ¬S0·¬Vs: ctx {1,3} → 0;     ctx {0,2} → 5−Vs (4, 2)
        let spec = hybrid_css_spec();
        let expected: [[u8; 4]; 4] = [
            // ctx:      0  1  2  3
            /* S0·Vs  */ [0, 2, 0, 4],
            /* S0·¬Vs */ [0, 3, 0, 1],
            /* ¬S0·Vs */ [1, 0, 3, 0],
            /* ¬S0·¬Vs*/ [4, 0, 2, 0],
        ];
        for ctx in 0..4usize {
            let mut env = Env::new();
            env.set_mv("Vs", Level::encode_ctx(ctx))
                .set_bin("S0", ctx & 1 == 1)
                .set_bin("nS0", ctx & 1 == 0);
            for (i, e) in spec.iter().enumerate() {
                assert_eq!(
                    e.eval(&env, R),
                    Level::new(expected[i][ctx]),
                    "signal {i} ctx {ctx}"
                );
            }
        }
    }

    #[test]
    fn exactly_one_hybrid_signal_nonzero_per_polarity() {
        // For every context, each FGMOS sees exactly one of its two candidate
        // gate signals nonzero only when its polarity matches.
        let spec = hybrid_css_spec();
        for ctx in 0..4usize {
            let mut env = Env::new();
            env.set_mv("Vs", Level::encode_ctx(ctx))
                .set_bin("S0", ctx & 1 == 1)
                .set_bin("nS0", ctx & 1 == 0);
            let nonzero: Vec<bool> = spec.iter().map(|e| !e.eval(&env, R).is_off()).collect();
            // exactly two of four are live (the matching-polarity pair)
            assert_eq!(nonzero.iter().filter(|&&b| b).count(), 2, "ctx {ctx}");
        }
    }

    #[test]
    fn display_and_size() {
        let e = MvExpr::input("Vs").not().gated_by("S0");
        assert_eq!(e.to_string(), "[S0]·(¬(Vs))");
        assert_eq!(e.size(), 3);
    }
}
