//! Window decomposition of switch functions (the Fig. 3 construction).
//!
//! Any multi-context switch function `F : contexts → {0,1}` can be written as
//! the OR of window literals over the MV context signal. The *minimal* such
//! decomposition takes one window per **maximal run** of consecutive ON
//! contexts; for `C` contexts at most `⌈C/2⌉` windows are ever needed
//! (alternating ON/OFF is the worst case).
//!
//! The pure MV-FGFP switch of ref \[3\] provisions that worst case in silicon
//! — `⌈C/2⌉` parallel branches of two series FGMOSs each — which is exactly
//! the redundancy the paper's hybrid MV/B signal removes.

use crate::ctxset::CtxSet;
use crate::level::Level;
use crate::literal::{Literal, WindowLiteral};

/// A window over *context ids* `[lo_ctx, hi_ctx]` (inclusive).
///
/// Distinct from [`WindowLiteral`], which is a window over *rail levels*;
/// [`Window::to_literal`] translates via the `Vs = ctx + 1` encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Window {
    /// First context id covered.
    pub lo_ctx: usize,
    /// Last context id covered (inclusive).
    pub hi_ctx: usize,
}

impl Window {
    /// Number of contexts covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.hi_ctx - self.lo_ctx + 1
    }

    /// Windows are never empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Does the window cover context `ctx`?
    #[must_use]
    pub fn contains(&self, ctx: usize) -> bool {
        (self.lo_ctx..=self.hi_ctx).contains(&ctx)
    }

    /// Translates to a rail-level window literal under `Vs = ctx + 1`.
    #[must_use]
    pub fn to_literal(&self) -> WindowLiteral {
        WindowLiteral::new(
            Level::encode_ctx(self.lo_ctx),
            Level::encode_ctx(self.hi_ctx),
        )
        .expect("lo <= hi by construction")
    }

    /// The context set covered by this window.
    #[must_use]
    pub fn to_ctxset(&self, contexts: usize) -> CtxSet {
        CtxSet::from_ctxs(contexts, self.lo_ctx..=self.hi_ctx)
            .expect("window within context domain")
    }
}

impl std::fmt::Display for Window {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{},{}]", self.lo_ctx, self.hi_ctx)
    }
}

/// Minimal window decomposition: one window per maximal run of ON contexts.
///
/// Returns windows in ascending, pairwise-disjoint, non-adjacent order. The
/// union of the returned windows is exactly `on_set`.
///
/// # Example (paper Fig. 3)
/// ```
/// use mcfpga_mvl::{CtxSet, decompose_windows};
/// let f = CtxSet::from_ctxs(4, [1, 3]).unwrap();
/// let ws = decompose_windows(&f);
/// assert_eq!(ws.len(), 2);
/// assert_eq!((ws[0].lo_ctx, ws[0].hi_ctx), (1, 1)); // F_WL1
/// assert_eq!((ws[1].lo_ctx, ws[1].hi_ctx), (3, 3)); // F_WL2
/// ```
#[must_use]
pub fn decompose_windows(on_set: &CtxSet) -> Vec<Window> {
    let mut windows = Vec::new();
    let mut start: Option<usize> = None;
    for ctx in 0..on_set.contexts() {
        let on = on_set.get(ctx);
        match (on, start) {
            (true, None) => start = Some(ctx),
            (false, Some(s)) => {
                windows.push(Window {
                    lo_ctx: s,
                    hi_ctx: ctx - 1,
                });
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        windows.push(Window {
            lo_ctx: s,
            hi_ctx: on_set.contexts() - 1,
        });
    }
    windows
}

/// Upper bound on windows needed for any function over `contexts` contexts:
/// `⌈contexts / 2⌉`.
///
/// This is the branch count the pure MV-FGFP switch must provision (ref \[3\]);
/// for 4 contexts it is 2 branches × 2 series FGMOSs = 4 transistors, which
/// is the "4" row of Table 1.
#[must_use]
pub fn max_windows_needed(contexts: usize) -> usize {
    contexts.div_ceil(2)
}

/// Recomposes a function from windows (the wired-OR) — inverse of
/// [`decompose_windows`].
#[must_use]
pub fn recompose(contexts: usize, windows: &[Window]) -> CtxSet {
    let mut acc = CtxSet::empty(contexts).expect("valid context count");
    for w in windows {
        acc = acc.union(&w.to_ctxset(contexts));
    }
    acc
}

/// Checks that a window list is a *canonical minimal* decomposition:
/// ascending, disjoint, separated by at least one OFF context, exact cover.
#[must_use]
pub fn is_canonical_decomposition(on_set: &CtxSet, windows: &[Window]) -> bool {
    // exact cover
    if recompose(on_set.contexts(), windows) != *on_set {
        return false;
    }
    // ascending and non-adjacent
    for pair in windows.windows(2) {
        if pair[0].hi_ctx + 1 >= pair[1].lo_ctx {
            return false;
        }
    }
    // each window within domain and well-formed
    windows
        .iter()
        .all(|w| w.lo_ctx <= w.hi_ctx && w.hi_ctx < on_set.contexts())
}

/// Evaluates the OR-of-windows form directly on a context id, through the
/// rail-level literals (i.e. the way the silicon evaluates it).
#[must_use]
pub fn eval_windows_via_literals(windows: &[Window], ctx: usize) -> bool {
    let s = Level::encode_ctx(ctx);
    windows.iter().any(|w| w.to_literal().eval(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(contexts: usize, ctxs: &[usize]) -> CtxSet {
        CtxSet::from_ctxs(contexts, ctxs.iter().copied()).unwrap()
    }

    #[test]
    fn fig3_example() {
        // F is ON only for CSS = 1 and 3 → windows [1,1] and [3,3].
        let f = set(4, &[1, 3]);
        let ws = decompose_windows(&f);
        assert_eq!(
            ws,
            vec![
                Window {
                    lo_ctx: 1,
                    hi_ctx: 1
                },
                Window {
                    lo_ctx: 3,
                    hi_ctx: 3
                }
            ]
        );
        assert!(is_canonical_decomposition(&f, &ws));
    }

    #[test]
    fn empty_and_full() {
        let e = CtxSet::empty(4).unwrap();
        assert!(decompose_windows(&e).is_empty());
        let f = CtxSet::full(4).unwrap();
        let ws = decompose_windows(&f);
        assert_eq!(
            ws,
            vec![Window {
                lo_ctx: 0,
                hi_ctx: 3
            }]
        );
    }

    #[test]
    fn single_window_functions_waste_half_the_branches() {
        // The motivating redundancy: one window still occupies a 2-branch switch.
        let f = set(4, &[0, 1, 2]);
        let ws = decompose_windows(&f);
        assert_eq!(ws.len(), 1);
        assert!(ws.len() < max_windows_needed(4));
    }

    #[test]
    fn window_count_equals_run_count_exhaustive_c4_to_c8() {
        for contexts in 1..=8 {
            for s in CtxSet::enumerate_all(contexts).unwrap() {
                let ws = decompose_windows(&s);
                assert_eq!(ws.len(), s.run_count(), "{s}");
                assert!(ws.len() <= max_windows_needed(contexts));
                assert!(is_canonical_decomposition(&s, &ws), "{s}");
                assert_eq!(recompose(contexts, &ws), s);
            }
        }
    }

    #[test]
    fn literal_evaluation_matches_set_membership_exhaustive_c4() {
        for s in CtxSet::enumerate_all(4).unwrap() {
            let ws = decompose_windows(&s);
            for ctx in 0..4 {
                assert_eq!(
                    eval_windows_via_literals(&ws, ctx),
                    s.get(ctx),
                    "set {s} ctx {ctx}"
                );
            }
        }
    }

    #[test]
    fn alternating_is_worst_case() {
        for contexts in [2usize, 4, 6, 8, 10] {
            let alt = CtxSet::from_ctxs(contexts, (0..contexts).step_by(2)).unwrap();
            assert_eq!(decompose_windows(&alt).len(), max_windows_needed(contexts));
        }
    }

    #[test]
    fn canonical_check_rejects_bad_covers() {
        let f = set(4, &[1, 3]);
        // wrong cover
        assert!(!is_canonical_decomposition(
            &f,
            &[Window {
                lo_ctx: 1,
                hi_ctx: 3
            }]
        ));
        // adjacent windows that should have been merged
        let g = set(4, &[1, 2]);
        assert!(!is_canonical_decomposition(
            &g,
            &[
                Window {
                    lo_ctx: 1,
                    hi_ctx: 1
                },
                Window {
                    lo_ctx: 2,
                    hi_ctx: 2
                }
            ]
        ));
    }
}
