//! # mcfpga-mvl — multiple-valued logic foundation
//!
//! This crate implements the multiple-valued (MV) logic algebra that the
//! multi-context FPGA architecture of Nakatani, Hariyama and Kameyama
//! (IPDPS 2006) is built on:
//!
//! * [`Level`] — a quantised voltage level on an `R`-valued rail. For a
//!   4-context switch the rail is **five-valued** (`R = 5`, levels `0..=4`):
//!   level `0` is the "binary off" level and levels `1..=4` carry the
//!   multiple-valued context residue `Vs = ctx + 1`. The MV inversion is
//!   `¬v = R − v` for `v ≥ 1` (the paper's `¬Vs = 5 − Vs`).
//! * [`UpLiteral`], [`DownLiteral`], [`WindowLiteral`] — the threshold
//!   literals of the paper's Fig. 4: monotone increasing / decreasing step
//!   functions and their conjunction, the window.
//! * [`CtxSet`] — an ON-set of contexts (the function `F` of Fig. 3 is
//!   exactly "the set of contexts in which a switch conducts").
//! * [`decompose_windows`] — the Fig. 3
//!   construction: any switch function is the OR of maximal window literals,
//!   and for `C` contexts at most `⌈C/2⌉` windows are ever needed.
//! * [`expr::MvExpr`] — a small MV expression AST (min/max/inversion/
//!   threshold) used to model the CSS generator behaviourally and to state
//!   algebraic identities in tests.
//!
//! Everything here is pure and allocation-light; the device and netlist
//! crates build the electrical story on top of this algebra.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algebra;
pub mod classify;
pub mod ctxset;
pub mod expr;
pub mod level;
pub mod literal;
pub mod truth_table;
pub mod window;

pub use ctxset::CtxSet;
pub use level::{Level, Radix};
pub use literal::{DownLiteral, Literal, UpLiteral, WindowLiteral};
pub use window::{decompose_windows, max_windows_needed, Window};

/// Errors produced by the MV-logic layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MvlError {
    /// A level was outside the rail's radix.
    LevelOutOfRange {
        /// Offending level value.
        level: u8,
        /// Radix of the rail the level was used with.
        radix: u8,
    },
    /// A context id was outside the configured context count.
    ContextOutOfRange {
        /// Offending context id.
        ctx: usize,
        /// Number of contexts in the domain.
        contexts: usize,
    },
    /// Context count not supported (must be in `1..=64`).
    BadContextCount(usize),
    /// A window literal had `lo > hi`.
    EmptyWindow {
        /// Lower bound supplied.
        lo: u8,
        /// Upper bound supplied.
        hi: u8,
    },
}

impl std::fmt::Display for MvlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MvlError::LevelOutOfRange { level, radix } => {
                write!(f, "level {level} out of range for radix {radix}")
            }
            MvlError::ContextOutOfRange { ctx, contexts } => {
                write!(f, "context {ctx} out of range (contexts={contexts})")
            }
            MvlError::BadContextCount(c) => write!(f, "unsupported context count {c}"),
            MvlError::EmptyWindow { lo, hi } => write!(f, "empty window [{lo},{hi}]"),
        }
    }
}

impl std::error::Error for MvlError {}
