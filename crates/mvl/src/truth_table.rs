//! Tabulation and rendering of MV functions, for regenerating the paper's
//! function figures (Figs. 3 and 4) as text.

use crate::ctxset::CtxSet;
use crate::level::Level;
use crate::literal::Literal;
use crate::window::{decompose_windows, Window};

/// One row of a rendered table: an input level and a binary output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Row {
    /// Input (context id or rail level depending on the table).
    pub input: u8,
    /// Output of the function at that input.
    pub output: bool,
}

/// Tabulates a literal over rail levels `0..levels`.
#[must_use]
pub fn tabulate_literal<L: Literal>(lit: &L, levels: u8) -> Vec<Row> {
    (0..levels)
        .map(|v| Row {
            input: v,
            output: lit.eval(Level::new(v)),
        })
        .collect()
}

/// Tabulates a switch function over its contexts.
#[must_use]
pub fn tabulate_function(f: &CtxSet) -> Vec<Row> {
    (0..f.contexts())
        .map(|c| Row {
            input: u8::try_from(c).expect("small context id"),
            output: f.get(c),
        })
        .collect()
}

/// Renders rows as a two-line ASCII table, e.g.
/// `CSS | 0 1 2 3` / `F   | 0 1 0 1`.
#[must_use]
pub fn render_rows(input_label: &str, output_label: &str, rows: &[Row]) -> String {
    let mut top = format!("{input_label:4}|");
    let mut bot = format!("{output_label:4}|");
    for r in rows {
        top.push_str(&format!(" {}", r.input));
        bot.push_str(&format!(" {}", u8::from(r.output)));
    }
    format!("{top}\n{bot}")
}

/// Renders the Fig. 3 decomposition of a function: the function itself plus
/// one table per window literal, with the window bounds in the label.
#[must_use]
pub fn render_fig3(f: &CtxSet) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "F = {f}  (ON-set over {} contexts)\n",
        f.contexts()
    ));
    out.push_str(&render_rows("CSS", "F", &tabulate_function(f)));
    out.push('\n');
    let windows = decompose_windows(f);
    for (i, w) in windows.iter().enumerate() {
        out.push_str(&format!(
            "\nF_WL{} = window {} (levels {})\n",
            i + 1,
            w,
            w.to_literal()
        ));
        out.push_str(&render_rows(
            "CSS",
            &format!("WL{}", i + 1),
            &tabulate_window_over_ctx(w, f.contexts()),
        ));
        out.push('\n');
    }
    if windows.is_empty() {
        out.push_str("\n(no windows: F is identically 0)\n");
    }
    out
}

fn tabulate_window_over_ctx(w: &Window, contexts: usize) -> Vec<Row> {
    (0..contexts)
        .map(|c| Row {
            input: u8::try_from(c).expect("small context id"),
            output: w.contains(c),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::{DownLiteral, UpLiteral};

    #[test]
    fn tabulate_up_literal() {
        let rows = tabulate_literal(&UpLiteral::new(Level::new(2)), 4);
        assert_eq!(
            rows.iter().map(|r| r.output).collect::<Vec<_>>(),
            [false, false, true, true]
        );
    }

    #[test]
    fn tabulate_down_literal() {
        let rows = tabulate_literal(&DownLiteral::new(Level::new(1)), 4);
        assert_eq!(
            rows.iter().map(|r| r.output).collect::<Vec<_>>(),
            [true, true, false, false]
        );
    }

    #[test]
    fn render_is_stable() {
        let f = CtxSet::from_ctxs(4, [1, 3]).unwrap();
        let s = render_rows("CSS", "F", &tabulate_function(&f));
        assert_eq!(s, "CSS | 0 1 2 3\nF   | 0 1 0 1");
    }

    #[test]
    fn fig3_render_mentions_both_windows() {
        let f = CtxSet::from_ctxs(4, [1, 3]).unwrap();
        let s = render_fig3(&f);
        assert!(s.contains("F_WL1"));
        assert!(s.contains("F_WL2"));
        assert!(s.contains("[1,1]"));
        assert!(s.contains("[3,3]"));
    }

    #[test]
    fn fig3_render_empty_function() {
        let f = CtxSet::empty(4).unwrap();
        let s = render_fig3(&f);
        assert!(s.contains("identically 0"));
    }
}
