//! The (min, max, ¬) algebra on MV levels, plus threshold operators.
//!
//! The multiple-valued logic-in-memory style of ref \[2\] evaluates
//! conjunctions as series conduction (wired-AND → `min`) and disjunctions as
//! parallel conduction (wired-OR → `max`). This module provides free-function
//! forms of the lattice operations, n-ary folds, and the threshold operator
//! `T_k` used to collapse an MV value back to binary.

use crate::level::{Level, Radix};

/// MV conjunction: lattice meet (`min`).
#[must_use]
pub fn mv_and(a: Level, b: Level) -> Level {
    a.and(b)
}

/// MV disjunction: lattice join (`max`).
#[must_use]
pub fn mv_or(a: Level, b: Level) -> Level {
    a.or(b)
}

/// MV negation on a rail: `¬v = R − v` for `v ≥ 1`, `¬0 = 0`.
#[must_use]
pub fn mv_not(a: Level, radix: Radix) -> Level {
    a.invert(radix)
}

/// n-ary meet. Returns the rail top for an empty input (identity of `min`).
#[must_use]
pub fn mv_and_all<I: IntoIterator<Item = Level>>(levels: I, radix: Radix) -> Level {
    levels.into_iter().fold(radix.top(), Level::and)
}

/// n-ary join. Returns level 0 for an empty input (identity of `max`).
#[must_use]
pub fn mv_or_all<I: IntoIterator<Item = Level>>(levels: I) -> Level {
    levels.into_iter().fold(Level::ZERO, Level::or)
}

/// Threshold operator `T_k(v) = 1 iff v ≥ k` — collapses MV to binary.
///
/// The paper's key sentence — "Threshold operation for 'AND-ing' the MV-CSS
/// and the binary one implements the same function as 'AND-ing' two window
/// literals" — is this operator applied to a *gated* MV signal: because the
/// generator emits level 0 whenever the binary gate is 0, a single FGMOS
/// threshold `k ≥ 1` on the gated signal simultaneously checks the binary
/// gate (signal would be 0) and the MV residue (signal must reach `k`).
#[must_use]
pub fn threshold(v: Level, k: Level) -> bool {
    v >= k
}

/// Dual threshold `T̄_k(v) = 1 iff v ≤ k`.
#[must_use]
pub fn threshold_down(v: Level, k: Level) -> bool {
    v <= k
}

/// Checks the De Morgan dual `¬(a ∧ b) = ¬a ∨ ¬b` for one pair on a rail,
/// **restricted to the MV sub-rail** (levels ≥ 1), where inversion is a true
/// order-reversing involution.
#[must_use]
pub fn de_morgan_holds(a: Level, b: Level, radix: Radix) -> bool {
    if a.is_off() || b.is_off() {
        return true; // inversion is not an involution through the off level
    }
    mv_not(mv_and(a, b), radix) == mv_or(mv_not(a, radix), mv_not(b, radix))
        && mv_not(mv_or(a, b), radix) == mv_and(mv_not(a, radix), mv_not(b, radix))
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: Radix = Radix::FIVE;

    #[test]
    fn lattice_laws_exhaustive() {
        for a in R.all_levels() {
            for b in R.all_levels() {
                // commutativity
                assert_eq!(mv_and(a, b), mv_and(b, a));
                assert_eq!(mv_or(a, b), mv_or(b, a));
                // absorption
                assert_eq!(mv_or(a, mv_and(a, b)), a);
                assert_eq!(mv_and(a, mv_or(a, b)), a);
                for c in R.all_levels() {
                    // associativity
                    assert_eq!(mv_and(a, mv_and(b, c)), mv_and(mv_and(a, b), c));
                    assert_eq!(mv_or(a, mv_or(b, c)), mv_or(mv_or(a, b), c));
                    // distributivity (min/max lattice is distributive)
                    assert_eq!(mv_and(a, mv_or(b, c)), mv_or(mv_and(a, b), mv_and(a, c)));
                }
            }
        }
    }

    #[test]
    fn de_morgan_on_mv_subrail() {
        for a in R.all_levels() {
            for b in R.all_levels() {
                assert!(de_morgan_holds(a, b, R), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn nary_folds() {
        let ls = [Level::new(2), Level::new(4), Level::new(1)];
        assert_eq!(mv_and_all(ls, R), Level::new(1));
        assert_eq!(mv_or_all(ls), Level::new(4));
        assert_eq!(mv_and_all([], R), R.top());
        assert_eq!(mv_or_all([]), Level::ZERO);
    }

    #[test]
    fn threshold_collapse() {
        assert!(threshold(Level::new(3), Level::new(2)));
        assert!(!threshold(Level::new(1), Level::new(2)));
        assert!(threshold_down(Level::new(1), Level::new(2)));
        assert!(!threshold_down(Level::new(3), Level::new(2)));
    }

    #[test]
    fn gated_signal_single_threshold_checks_both_conditions() {
        // The paper's central trick, in miniature: with the gated signal
        // g = gate(bin, Vs), a single threshold k>=1 implements
        // (bin == 1) AND (Vs >= k).
        for bin in [false, true] {
            for vs in R.mv_levels() {
                let g = vs.gate(bin);
                for k in R.mv_levels() {
                    assert_eq!(threshold(g, k), bin && vs >= k);
                }
            }
        }
    }
}
