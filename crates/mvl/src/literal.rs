//! Threshold literals over an MV signal (the paper's Fig. 4).
//!
//! * An **up-literal** `F_UL(S, T)` is the monotone increasing step function:
//!   `1` iff `S ≥ T`.
//! * A **down-literal** `F_DL(S, T)` is the monotone decreasing step function:
//!   `1` iff `S ≤ T`.
//! * A **window literal** `F_WL(S, S1, S2)` is their conjunction:
//!   `1` iff `S1 ≤ S ≤ S2`.
//!
//! Each up- or down-literal is realisable by a *single* floating-gate MOS
//! functional pass gate whose threshold is programmed by charge injection
//! (ref \[2\] of the paper); a window literal therefore costs two
//! series-connected FGMOSs (wired-AND).

use crate::level::Level;
use crate::MvlError;

/// Common interface of the three literal kinds.
pub trait Literal {
    /// Evaluates the literal on an input level.
    fn eval(&self, s: Level) -> bool;

    /// The set of levels (within `0..levels`) for which the literal is 1.
    fn on_levels(&self, levels: u8) -> Vec<Level> {
        (0..levels)
            .map(Level::new)
            .filter(|&l| self.eval(l))
            .collect()
    }
}

/// Up-literal: `1` iff `S ≥ T` (Fig. 4(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UpLiteral {
    /// Threshold `T`.
    pub threshold: Level,
}

impl UpLiteral {
    /// Creates an up-literal with threshold `t`.
    #[must_use]
    pub fn new(t: Level) -> Self {
        UpLiteral { threshold: t }
    }
}

impl Literal for UpLiteral {
    fn eval(&self, s: Level) -> bool {
        s >= self.threshold
    }
}

/// Down-literal: `1` iff `S ≤ T` (Fig. 4(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DownLiteral {
    /// Threshold `T`.
    pub threshold: Level,
}

impl DownLiteral {
    /// Creates a down-literal with threshold `t`.
    #[must_use]
    pub fn new(t: Level) -> Self {
        DownLiteral { threshold: t }
    }
}

impl Literal for DownLiteral {
    fn eval(&self, s: Level) -> bool {
        s <= self.threshold
    }
}

/// Window literal: `1` iff `S1 ≤ S ≤ S2` (Fig. 3 definition).
///
/// Invariant: `lo ≤ hi`. An "always off" branch is represented by
/// [`WindowLiteral::never`], which uses a reserved empty encoding rather
/// than violating the invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowLiteral {
    bounds: Option<(Level, Level)>,
}

impl WindowLiteral {
    /// Creates the window `[lo, hi]`.
    pub fn new(lo: Level, hi: Level) -> Result<Self, MvlError> {
        if lo > hi {
            return Err(MvlError::EmptyWindow {
                lo: lo.value(),
                hi: hi.value(),
            });
        }
        Ok(WindowLiteral {
            bounds: Some((lo, hi)),
        })
    }

    /// The never-conducting window (used to park unused FGMOS branches; in
    /// silicon this is "program both thresholds past the rails").
    #[must_use]
    pub fn never() -> Self {
        WindowLiteral { bounds: None }
    }

    /// Is this the never-conducting window?
    #[must_use]
    pub fn is_never(&self) -> bool {
        self.bounds.is_none()
    }

    /// Window bounds, if any.
    #[must_use]
    pub fn bounds(&self) -> Option<(Level, Level)> {
        self.bounds
    }

    /// Decomposes the window into `up(lo) ∧ down(hi)` — the two series FGMOS
    /// thresholds. `None` for the never window.
    #[must_use]
    pub fn as_literal_pair(&self) -> Option<(UpLiteral, DownLiteral)> {
        self.bounds
            .map(|(lo, hi)| (UpLiteral::new(lo), DownLiteral::new(hi)))
    }

    /// Width of the window in levels (0 for never).
    #[must_use]
    pub fn width(&self) -> u8 {
        match self.bounds {
            Some((lo, hi)) => hi.value() - lo.value() + 1,
            None => 0,
        }
    }
}

impl Literal for WindowLiteral {
    fn eval(&self, s: Level) -> bool {
        match self.bounds {
            Some((lo, hi)) => s >= lo && s <= hi,
            None => false,
        }
    }
}

impl std::fmt::Display for WindowLiteral {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.bounds {
            Some((lo, hi)) => write!(f, "W[{lo},{hi}]"),
            None => write!(f, "W[never]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn up_literal_is_monotone_increasing() {
        let ul = UpLiteral::new(Level::new(2));
        let outs: Vec<bool> = (0..5).map(|v| ul.eval(Level::new(v))).collect();
        assert_eq!(outs, [false, false, true, true, true]);
        // monotone: once true, stays true
        assert!(outs.windows(2).all(|w| !w[0] | w[1]));
    }

    #[test]
    fn down_literal_is_monotone_decreasing() {
        let dl = DownLiteral::new(Level::new(2));
        let outs: Vec<bool> = (0..5).map(|v| dl.eval(Level::new(v))).collect();
        assert_eq!(outs, [true, true, true, false, false]);
        assert!(outs.windows(2).all(|w| w[0] | !w[1]));
    }

    #[test]
    fn window_is_conjunction_of_up_and_down() {
        let w = WindowLiteral::new(Level::new(1), Level::new(3)).unwrap();
        let (ul, dl) = w.as_literal_pair().unwrap();
        for v in 0..5 {
            let s = Level::new(v);
            assert_eq!(w.eval(s), ul.eval(s) && dl.eval(s), "level {v}");
        }
    }

    #[test]
    fn window_rejects_inverted_bounds() {
        assert_eq!(
            WindowLiteral::new(Level::new(3), Level::new(1)),
            Err(MvlError::EmptyWindow { lo: 3, hi: 1 })
        );
    }

    #[test]
    fn never_window() {
        let w = WindowLiteral::never();
        assert!(w.is_never());
        assert_eq!(w.width(), 0);
        assert!(w.as_literal_pair().is_none());
        for v in 0..8 {
            assert!(!w.eval(Level::new(v)));
        }
        assert_eq!(w.to_string(), "W[never]");
    }

    #[test]
    fn on_levels_and_width() {
        let w = WindowLiteral::new(Level::new(2), Level::new(3)).unwrap();
        assert_eq!(w.width(), 2);
        assert_eq!(w.on_levels(5), vec![Level::new(2), Level::new(3)]);
        assert_eq!(w.to_string(), "W[2,3]");
    }

    #[test]
    fn degenerate_single_level_window() {
        let w = WindowLiteral::new(Level::new(2), Level::new(2)).unwrap();
        assert_eq!(w.width(), 1);
        assert_eq!(w.on_levels(5), vec![Level::new(2)]);
    }
}
