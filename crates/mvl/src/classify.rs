//! Classification of context functions by window structure.
//!
//! The pure MV-FGFP switch provisions `⌈C/2⌉` window branches; how much of
//! that capacity real configurations use is a distribution question. This
//! module computes, for a context count, the histogram of functions by
//! minimal window count — the combinatorial backbone of the redundancy
//! numbers in `mcfpga-core::redundancy`.

use crate::ctxset::CtxSet;
use crate::window::max_windows_needed;

/// `histogram[k]` = number of functions over `contexts` contexts whose
/// minimal decomposition has exactly `k` windows. Exhaustive; `contexts`
/// must be ≤ 20.
#[must_use]
pub fn window_histogram(contexts: usize) -> Vec<usize> {
    let mut hist = vec![0usize; max_windows_needed(contexts) + 1];
    for s in CtxSet::enumerate_all(contexts).expect("small context count") {
        hist[s.run_count()] += 1;
    }
    hist
}

/// Closed form for the same histogram: the number of ON-sets of `n`
/// contexts with exactly `k` maximal runs is `C(n+1, 2k)` — choose the `2k`
/// run boundaries among the `n+1` gaps.
#[must_use]
pub fn window_histogram_closed_form(contexts: usize) -> Vec<usize> {
    let n = contexts;
    (0..=max_windows_needed(n))
        .map(|k| binomial(n + 1, 2 * k))
        .collect()
}

fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num: u128 = 1;
    let mut den: u128 = 1;
    for i in 0..k {
        num *= (n - i) as u128;
        den *= (i + 1) as u128;
    }
    usize::try_from(num / den).expect("fits usize")
}

/// Fraction of functions that waste at least one branch of the provisioned
/// `⌈C/2⌉` (i.e. need strictly fewer windows).
#[must_use]
pub fn wasteful_fraction(contexts: usize) -> f64 {
    let hist = window_histogram(contexts);
    let max = max_windows_needed(contexts);
    let total: usize = hist.iter().sum();
    let wasteful: usize = hist[..max].iter().sum();
    wasteful as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c4_histogram() {
        // 16 functions: 1 empty, 10 single-window (intervals), 5 two-window
        assert_eq!(window_histogram(4), vec![1, 10, 5]);
    }

    #[test]
    fn closed_form_matches_enumeration_up_to_12() {
        for n in 1..=12 {
            assert_eq!(
                window_histogram(n),
                window_histogram_closed_form(n),
                "n={n}"
            );
        }
    }

    #[test]
    fn histogram_sums_to_2_pow_n() {
        for n in 1..=12 {
            let total: usize = window_histogram(n).iter().sum();
            assert_eq!(total, 1usize << n);
        }
    }

    #[test]
    fn wasteful_fraction_c4() {
        // 11 of 16 functions use fewer than 2 windows
        assert!((wasteful_fraction(4) - 11.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn waste_grows_with_contexts() {
        // provisioning for the worst case gets relatively more wasteful
        assert!(wasteful_fraction(8) > wasteful_fraction(4));
        assert!(wasteful_fraction(12) > wasteful_fraction(8));
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 6), 0);
        assert_eq!(binomial(9, 4), 126);
    }
}
