//! Property-based tests for the MV-logic foundation.

use mcfpga_mvl::algebra::{mv_and, mv_not, mv_or, threshold};
use mcfpga_mvl::expr::{hybrid_css_spec, Env};
use mcfpga_mvl::window::{
    decompose_windows, eval_windows_via_literals, is_canonical_decomposition, max_windows_needed,
    recompose,
};
use mcfpga_mvl::{CtxSet, Level, Radix};
use proptest::prelude::*;

fn arb_ctxset() -> impl Strategy<Value = CtxSet> {
    (1usize..=64).prop_flat_map(|contexts| {
        prop::bits::u64::masked(if contexts == 64 {
            u64::MAX
        } else {
            (1u64 << contexts) - 1
        })
        .prop_map(move |mask| CtxSet::from_mask(contexts, mask).unwrap())
    })
}

/// Two sets drawn over the *same* context domain.
fn arb_ctxset_pair() -> impl Strategy<Value = (CtxSet, CtxSet)> {
    (1usize..=64).prop_flat_map(|contexts| {
        let dom = if contexts == 64 {
            u64::MAX
        } else {
            (1u64 << contexts) - 1
        };
        (prop::bits::u64::masked(dom), prop::bits::u64::masked(dom)).prop_map(move |(a, b)| {
            (
                CtxSet::from_mask(contexts, a).unwrap(),
                CtxSet::from_mask(contexts, b).unwrap(),
            )
        })
    })
}

proptest! {
    #[test]
    fn window_decomposition_roundtrips(s in arb_ctxset()) {
        let ws = decompose_windows(&s);
        prop_assert_eq!(recompose(s.contexts(), &ws), s);
        prop_assert!(is_canonical_decomposition(&s, &ws));
        prop_assert_eq!(ws.len(), s.run_count());
        prop_assert!(ws.len() <= max_windows_needed(s.contexts()));
    }

    #[test]
    fn windows_evaluate_like_membership(s in arb_ctxset()) {
        let ws = decompose_windows(&s);
        for ctx in 0..s.contexts() {
            prop_assert_eq!(eval_windows_via_literals(&ws, ctx), s.get(ctx));
        }
    }

    #[test]
    fn union_of_decompositions_covers_union((a, b) in arb_ctxset_pair()) {
        let u = a.union(&b);
        let mut all = decompose_windows(&a);
        all.extend(decompose_windows(&b));
        prop_assert_eq!(recompose(u.contexts(), &all), u);
    }

    #[test]
    fn ctxset_algebra_laws((a, b) in arb_ctxset_pair()) {
        // De Morgan on context sets
        prop_assert_eq!(
            a.union(&b).complement(),
            a.complement().intersection(&b.complement())
        );
        prop_assert_eq!(
            a.intersection(&b).complement(),
            a.complement().union(&b.complement())
        );
        // double complement
        prop_assert_eq!(a.complement().complement(), a);
        // counts
        prop_assert_eq!(
            a.count() + a.complement().count(),
            a.contexts()
        );
    }

    #[test]
    fn level_lattice_laws(a in 0u8..=4, b in 0u8..=4, c in 0u8..=4) {
        let r = Radix::FIVE;
        let (a, b, c) = (Level::new(a), Level::new(b), Level::new(c));
        prop_assert_eq!(mv_and(a, mv_or(b, c)), mv_or(mv_and(a, b), mv_and(a, c)));
        // inversion is antitone on the MV sub-rail
        if !a.is_off() && !b.is_off() && a <= b {
            prop_assert!(mv_not(b, r) <= mv_not(a, r));
        }
    }

    #[test]
    fn gated_threshold_is_conjunction(bin in any::<bool>(), vs in 1u8..=4, k in 1u8..=4) {
        // The paper's hybrid trick as a property: a single threshold on a
        // gated rail computes the conjunction of the binary gate and the MV
        // threshold.
        let g = Level::new(vs).gate(bin);
        prop_assert_eq!(threshold(g, Level::new(k)), bin && vs >= k);
    }

    #[test]
    fn hybrid_spec_exclusive_pairs(ctx in 0usize..4) {
        let spec = hybrid_css_spec();
        let mut env = Env::new();
        env.set_mv("Vs", Level::encode_ctx(ctx))
            .set_bin("S0", ctx & 1 == 1)
            .set_bin("nS0", ctx & 1 == 0);
        let vals: Vec<Level> = spec.iter().map(|e| e.eval(&env, Radix::FIVE)).collect();
        // signals 0,1 gated by S0; signals 2,3 gated by ¬S0: exactly one pair live
        let s0_live = !vals[0].is_off() && !vals[1].is_off();
        let ns0_live = !vals[2].is_off() && !vals[3].is_off();
        prop_assert!(s0_live ^ ns0_live);
        // live pair carries Vs and its inversion
        let (v, nv) = if s0_live { (vals[0], vals[1]) } else { (vals[2], vals[3]) };
        prop_assert_eq!(v, Level::encode_ctx(ctx));
        prop_assert_eq!(nv, Level::encode_ctx(ctx).invert(Radix::FIVE));
    }
}
