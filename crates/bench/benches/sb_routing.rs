//! Fig. 11 — designated-row remapping: times the mapping algorithm and the
//! shared-column netlist verification on the paper's 10×10 block.

use criterion::{criterion_group, criterion_main, Criterion};
use mcfpga_mvl::CtxSet;
use mcfpga_switchblock::column::SharedColumn;
use mcfpga_switchblock::{remap_to_designated_rows, RouteSet};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", mcfpga_bench::fig11_report());
    c.bench_function("fig11/remap_10x10_4ctx", |b| {
        let routes = RouteSet::random_permutations(10, 4, 77).unwrap();
        b.iter(|| black_box(remap_to_designated_rows(&routes).unwrap().designated.len()));
    });
    c.bench_function("fig11/remap_64x64_8ctx", |b| {
        let routes = RouteSet::random_permutations(64, 8, 78).unwrap();
        b.iter(|| black_box(remap_to_designated_rows(&routes).unwrap().designated.len()));
    });
    c.bench_function("fig11/shared_column_simulate", |b| {
        let on = CtxSet::from_ctxs(4, [0, 3]).unwrap();
        let col = SharedColumn::build(10, 4, &on).unwrap();
        b.iter(|| black_box(col.simulate().unwrap()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
