//! Ablation benches: the design choices DESIGN.md calls out, measured.
//!
//! * duplicate-unused vs parked branches in the MV switch (ref \[3\]'s
//!   redundant-ON behaviour) — same function, different ON-transistor
//!   activity;
//! * serial vs parallel exhaustive equivalence sweeps;
//! * energy break-even between SRAM (leaky, cheap writes) and FGFP
//!   (non-volatile, expensive writes) configuration storage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcfpga_core::ArchKind;
use mcfpga_core::{McSwitch, MvFgfpMcSwitch};
use mcfpga_cost::energy::{breakeven_rewrites, total_config_energy_j};
use mcfpga_device::TechParams;
use mcfpga_mvl::CtxSet;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // redundant-ON activity, parked vs duplicated
    let mut g = c.benchmark_group("ablation/mv_on_activity");
    for duplicate in [false, true] {
        g.bench_with_input(
            BenchmarkId::from_parameter(if duplicate { "duplicate" } else { "parked" }),
            &duplicate,
            |b, &duplicate| {
                let mut sw = MvFgfpMcSwitch::new(4).unwrap();
                sw.set_duplicate_unused(duplicate);
                let cfgs: Vec<CtxSet> = CtxSet::enumerate_all(4).unwrap().collect();
                b.iter(|| {
                    let mut on = 0usize;
                    for cfg in &cfgs {
                        sw.configure(cfg).unwrap();
                        for ctx in 0..4 {
                            on += sw.on_fgmos_count(ctx).unwrap();
                        }
                    }
                    black_box(on)
                });
            },
        );
    }
    g.finish();

    // serial vs parallel exhaustive sweep at C = 12
    let mut g = c.benchmark_group("ablation/equivalence_sweep_c16");
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(mcfpga_bench::parallel_exhaustive_equivalence(16, threads)));
            },
        );
    }
    g.finish();

    // energy model evaluation (and print the break-even table once)
    let p = TechParams::default();
    println!("## energy break-even (rewrites before FGFP loses)");
    for hours in [24.0, 24.0 * 30.0, 24.0 * 365.0] {
        println!(
            "  deployment {:>6.0} h: {} rewrites",
            hours,
            breakeven_rewrites(4, hours, &p).unwrap()
        );
    }
    c.bench_function("ablation/energy_model", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for arch in ArchKind::all() {
                for rewrites in [1u64, 100, 10_000] {
                    acc += total_config_energy_j(arch, 4, 24.0 * 365.0, rewrites, &p);
                }
            }
            black_box(acc)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
