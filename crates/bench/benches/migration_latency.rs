//! X7 — checkpoint/migration cost on the 8×8 / 4-context reference
//! workload: checkpoint wire size, checkpoint+encode latency, and
//! end-to-end live-migration latency (`migrate_tenant`, plane rebased,
//! pending lane batch moved), plus whole-shard evacuation.
//!
//! Acceptance (asserted, runs in CI): the checkpoint wire round-trips
//! losslessly, a migrated tenant answers bit-for-bit like its
//! never-migrated twin, and a full 64-lane checkpoint stays under 4 KiB —
//! the format ships digests and lane words, never bitstreams or planes.
//!
//! Set `MCFPGA_BENCH_SMOKE=1` to run only the acceptance checks and skip
//! wall-clock sampling — the mode CI uses on every push.

use criterion::{criterion_group, criterion_main, Criterion};
use mcfpga_bench::{smoke, time_us, write_bench_json};
use mcfpga_device::TechParams;
use mcfpga_fabric::compiled::LANES;
use mcfpga_fabric::netlist_ir::generators;
use mcfpga_fabric::FabricParams;
use mcfpga_migrate::TenantCheckpoint;
use mcfpga_service::{ShardedService, TenantId};
use std::hint::black_box;

fn reference_params() -> FabricParams {
    FabricParams {
        width: 8,
        height: 8,
        channel_width: 4,
        ..FabricParams::default()
    }
}

/// A 3-shard reference pool with a mover and its never-migrated twin,
/// both holding `pending` queued requests of identical vectors.
fn build_pool(pending: usize) -> (ShardedService, TenantId, TenantId, Vec<(String, bool)>) {
    let mut svc = ShardedService::new(3, reference_params(), TechParams::default()).unwrap();
    let parity = generators::parity_tree(8).unwrap();
    let mover = svc.admit("mover", &parity).unwrap();
    let twin = svc.admit("twin", &parity).unwrap();
    let vector: Vec<(String, bool)> = (0..8).map(|i| (format!("x{i}"), i % 2 == 0)).collect();
    let refs: Vec<(&str, bool)> = vector.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    for _ in 0..pending {
        svc.submit(mover, &refs).unwrap();
        svc.submit(twin, &refs).unwrap();
    }
    (svc, mover, twin, vector)
}

/// The asserted acceptance pass: lossless wire round-trip, bounded
/// checkpoint size, and output equivalence across a live migration.
fn acceptance() {
    // a checkpoint of a full-but-one lane batch (the 64th would flush)
    let (svc, mover, _, _) = build_pool(LANES - 1);
    let ckpt = svc.checkpoint_tenant(mover).unwrap();
    let wire = ckpt.to_bytes();
    assert_eq!(wire.len(), ckpt.encoded_len());
    assert_eq!(TenantCheckpoint::from_bytes(&wire).unwrap(), ckpt);
    assert_eq!(ckpt.pending.lanes, LANES - 1);
    assert!(
        wire.len() < 4096,
        "checkpoint ballooned to {} bytes — is a bitstream leaking in?",
        wire.len()
    );
    println!(
        "checkpoint: {} pending lanes, {} inputs, {} wire bytes",
        ckpt.pending.lanes,
        ckpt.pending.inputs.len(),
        wire.len()
    );

    // migrate with pending work; the twin is the bit-for-bit oracle
    let (mut svc, mover, twin, _) = build_pool(17);
    let dst = svc.migrate_tenant(mover, 2).unwrap();
    let mut responses = svc.drain().unwrap();
    responses.sort_by_key(|r| r.request);
    let moved: Vec<_> = responses.iter().filter(|r| r.tenant == mover).collect();
    let stayed: Vec<_> = responses.iter().filter(|r| r.tenant == twin).collect();
    assert_eq!(moved.len(), 17);
    assert_eq!(stayed.len(), 17);
    for (m, s) in moved.iter().zip(&stayed) {
        assert_eq!(m.outputs, s.outputs, "migration changed an answer");
    }
    println!(
        "migrated mover -> shard {}, ctx {}; 17 pending requests all answered identically",
        dst.shard, dst.ctx
    );
    let usage = svc.usage(mover).unwrap();
    println!(
        "billed: {} migration, {} wire bytes, {} downtime cycles, {} realignment toggles",
        usage.migrations,
        usage.migration_bytes,
        usage.migration_downtime_cycles,
        usage.migration_css_toggles
    );
}

/// Timed latencies with a plain `Instant` loop (independent of the
/// criterion harness, cheap enough for smoke mode) plus the checkpoint
/// wire size — the machine-readable migration trajectory.
fn write_artifact() {
    const ITERS: usize = 200;
    let (svc, mover, _, _) = build_pool(LANES - 1);
    let ckpt = svc.checkpoint_tenant(mover).unwrap();
    let wire = ckpt.to_bytes();

    let encode_us = time_us(ITERS, || {
        black_box(svc.checkpoint_tenant(mover).unwrap().to_bytes().len());
    });
    let decode_us = time_us(ITERS, || {
        black_box(TenantCheckpoint::from_bytes(&wire).unwrap().pending.lanes);
    });
    let migrate_us = {
        let (mut svc, mover, _, _) = build_pool(31);
        let mut dst = 2usize;
        time_us(ITERS, move || {
            black_box(svc.migrate_tenant(mover, dst).unwrap().ctx);
            dst = if dst == 2 { 1 } else { 2 };
        })
    };

    let json = write_bench_json(
        "migration_latency",
        &[
            ("checkpoint_wire_bytes", wire.len().into()),
            ("checkpoint_pending_lanes", ckpt.pending.lanes.into()),
            ("checkpoint_input_names", ckpt.pending.inputs.len().into()),
            ("encode_latency_us", encode_us.into()),
            ("decode_latency_us", decode_us.into()),
            ("migrate_end_to_end_us", migrate_us.into()),
        ],
    )
    .expect("write BENCH_migration_latency.json");
    println!("wrote {}", json.display());
}

fn bench(c: &mut Criterion) {
    acceptance();
    write_artifact();
    if smoke() {
        println!("MCFPGA_BENCH_SMOKE set: skipping wall-clock sampling");
        return;
    }

    let mut group = c.benchmark_group("migration_latency");
    group.sample_size(20);

    group.bench_function("checkpoint_encode_63_lanes", |b| {
        let (svc, mover, _, _) = build_pool(LANES - 1);
        b.iter(|| {
            let ckpt = svc.checkpoint_tenant(mover).unwrap();
            black_box(ckpt.to_bytes().len())
        });
    });

    group.bench_function("decode_63_lanes", |b| {
        let (svc, mover, _, _) = build_pool(LANES - 1);
        let wire = svc.checkpoint_tenant(mover).unwrap().to_bytes();
        b.iter(|| black_box(TenantCheckpoint::from_bytes(&wire).unwrap().pending.lanes));
    });

    group.bench_function("migrate_end_to_end", |b| {
        // ping-pong between shards 1 and 2 so every iteration migrates
        let (mut svc, mover, _, _) = build_pool(31);
        let mut dst = 2usize;
        b.iter(|| {
            let placement = svc.migrate_tenant(mover, dst).unwrap();
            dst = if dst == 2 { 1 } else { 2 };
            black_box(placement.ctx)
        });
    });

    group.bench_function("evacuate_shard_end_to_end", |b| {
        let (mut svc, mover, _, _) = build_pool(31);
        // alternate: evacuate wherever the mover currently lives
        b.iter(|| {
            let shard = svc.registry().tenant(mover).unwrap().placement.shard;
            black_box(svc.evacuate_shard(shard).unwrap().len())
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
