//! X5 — switch-level simulation throughput: netlist-backed evaluation of
//! each architecture's MC-switch across contexts (how fast the silicon
//! model runs, which bounds every higher-level experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcfpga_core::{HybridMcSwitch, McSwitch, MvFgfpMcSwitch};
use mcfpga_css::HybridCssGen;
use mcfpga_device::TechParams;
use mcfpga_mvl::{CtxSet, Level};
use mcfpga_netlist::SwitchSim;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // hybrid switch, netlist-level, all contexts per iteration
    let mut g = c.benchmark_group("switch_sim/netlist_eval");
    for contexts in [4usize, 8] {
        g.bench_with_input(
            BenchmarkId::new("hybrid", contexts),
            &contexts,
            |b, &contexts| {
                let mut sw = HybridMcSwitch::new(contexts).unwrap();
                sw.configure(&CtxSet::from_ctxs(contexts, (0..contexts).step_by(2)).unwrap())
                    .unwrap();
                let nl = sw.build_netlist().unwrap();
                let gen = HybridCssGen::new(contexts).unwrap();
                let in_net = nl.find_net("in").unwrap();
                let out_net = nl.find_net("out").unwrap();
                b.iter(|| {
                    let mut sim = SwitchSim::new(&nl, TechParams::default());
                    let mut on = 0usize;
                    for ctx in 0..contexts {
                        for line in gen.lines() {
                            let name = line.name(gen.blocks());
                            if nl.find_control(&name).is_some() {
                                sim.bind_mv_named(&name, gen.line_value_at(line, ctx).unwrap())
                                    .unwrap();
                            }
                        }
                        sim.evaluate().unwrap();
                        on += usize::from(sim.connected(in_net, out_net));
                    }
                    black_box(on)
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("mv_fgfp", contexts),
            &contexts,
            |b, &contexts| {
                let mut sw = MvFgfpMcSwitch::new(contexts).unwrap();
                sw.configure(&CtxSet::from_ctxs(contexts, (0..contexts).step_by(2)).unwrap())
                    .unwrap();
                let nl = sw.build_netlist().unwrap();
                let in_net = nl.find_net("in").unwrap();
                let out_net = nl.find_net("out").unwrap();
                b.iter(|| {
                    let mut sim = SwitchSim::new(&nl, TechParams::default());
                    let mut on = 0usize;
                    for ctx in 0..contexts {
                        sim.bind_mv_named("MvRail", Level::new((ctx % 4) as u8))
                            .unwrap();
                        let blocks = contexts / 4;
                        let mut bit = 0;
                        let mut blk = ctx / 4;
                        let mut lv = blocks;
                        while lv > 1 {
                            sim.bind_bin_named(&format!("S{}", bit + 2), blk & 1 == 1)
                                .unwrap();
                            sim.bind_bin_named(&format!("nS{}", bit + 2), blk & 1 == 0)
                                .unwrap();
                            blk >>= 1;
                            bit += 1;
                            lv /= 2;
                        }
                        sim.evaluate().unwrap();
                        on += usize::from(sim.connected(in_net, out_net));
                    }
                    black_box(on)
                });
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
