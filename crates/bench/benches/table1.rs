//! Table 1 — builds and configures each MC-switch architecture, asserting
//! the paper's transistor counts, and times configuration + full-function
//! query (the per-switch machinery the table is about).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcfpga_core::{AnySwitch, ArchKind, McSwitch};
use mcfpga_mvl::CtxSet;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    assert!(mcfpga_bench::paper_numbers_hold());
    println!("{}", mcfpga_bench::table1_report());
    let mut g = c.benchmark_group("table1/switch_configure_query");
    for arch in ArchKind::all() {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{arch:?}")),
            &arch,
            |b, &arch| {
                let mut sw = AnySwitch::build(arch, 4).unwrap();
                let cfgs: Vec<CtxSet> = CtxSet::enumerate_all(4).unwrap().collect();
                let mut i = 0usize;
                b.iter(|| {
                    let cfg = &cfgs[i % cfgs.len()];
                    i += 1;
                    sw.configure(cfg).unwrap();
                    let mut on = 0usize;
                    for ctx in 0..4 {
                        on += usize::from(sw.is_on(ctx).unwrap());
                    }
                    black_box(on)
                });
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
