//! QoS front-end latency under seeded open-loop load: per-class
//! p50/p99/p999 flush-to-completion latency, admission/rejection counts,
//! and the class-isolation gate, measured with the
//! [`mcfpga_bench::loadgen`] traffic mixes over a [`FrontendDriver`].
//!
//! Acceptance (asserted, runs in CI):
//!
//! * under the adversarial-skew mix, the latency-sensitive p99 is
//!   **strictly lower** than the throughput p99 — the whole point of the
//!   QoS classes;
//! * no admitted request is served past its deadline: every completion
//!   with a deadline flushed at or before it (violations counted and
//!   asserted zero; late requests must instead expire with the typed
//!   event);
//! * the full event log, service billing, and front-end billing are
//!   bit-identical at 1, 8, and 16 executor threads;
//! * the bursty mix exercises backpressure and the skew mix exercises
//!   token-bucket rate rejections — both counters must be non-zero, or
//!   the harness is no longer testing admission control.
//!
//! Set `MCFPGA_BENCH_SMOKE=1` to run only the acceptance checks and the
//! `BENCH_frontend_latency.json` artifact, skipping wall-clock sampling —
//! the mode CI uses on every push.

use criterion::{criterion_group, criterion_main, Criterion};
use mcfpga_bench::loadgen::{percentile, Arrival, LoadGen, TrafficMix};
use mcfpga_bench::{smoke, write_bench_json, BenchValue};
use mcfpga_device::TechParams;
use mcfpga_fabric::netlist_ir::{generators, LogicNetlist, Node};
use mcfpga_fabric::FabricParams;
use mcfpga_service::frontend::{FrontendDriver, FrontendEvent, RateLimit, StreamPolicy, Ticket};
use mcfpga_service::{ShardedService, TenantId};
use std::collections::HashMap;
use std::hint::black_box;

const SEED: u64 = 0x10AD_6E17;
const CYCLES: u64 = 2000;

fn input_names(nl: &LogicNetlist) -> Vec<String> {
    nl.input_ids()
        .into_iter()
        .map(|id| match nl.node(id) {
            Node::Input { name } => name.clone(),
            _ => unreachable!(),
        })
        .collect()
}

/// Stream layout: two latency-sensitive trickle streams, one throughput
/// trickle stream, and one throughput hot stream (index 3 — the skew
/// mix's target), rate-limited so admission control has teeth.
fn build(threads: usize) -> (FrontendDriver, Vec<(TenantId, Vec<String>, bool)>) {
    let mut svc = ShardedService::new(
        2,
        FabricParams {
            width: 5,
            height: 5,
            channel_width: 3,
            ..FabricParams::default()
        },
        TechParams::default(),
    )
    .expect("service");
    svc.set_threads(threads);
    let mut fe = FrontendDriver::new(svc);
    let designs = [
        ("ls-parity", generators::parity_tree(3).unwrap()),
        ("ls-cmp", generators::equality_comparator(2).unwrap()),
        ("tp-pop", generators::popcount4().unwrap()),
        ("tp-hot", generators::parity_tree(4).unwrap()),
    ];
    let policies = [
        StreamPolicy::latency_sensitive(16, 12),
        StreamPolicy::latency_sensitive(16, 12),
        StreamPolicy::throughput(8),
        StreamPolicy::throughput(16).with_rate(RateLimit::per_cycles(2, 1, 4)),
    ];
    let mut streams = Vec::new();
    for ((name, nl), policy) in designs.iter().zip(policies) {
        let tenant = fe.admit(name, nl).expect("admit");
        fe.open_stream(tenant, policy).expect("open");
        let latency_sensitive = name.starts_with("ls-");
        streams.push((tenant, input_names(nl), latency_sensitive));
    }
    (fe, streams)
}

/// Everything one replay of a mix observes. `events` etc. are the
/// bit-identity artifacts; the rest feeds the JSON.
struct MixOutcome {
    ls_latencies: Vec<u64>,
    tp_latencies: Vec<u64>,
    offered: usize,
    admitted: usize,
    rejected_backpressure: usize,
    rejected_rate: usize,
    completed: usize,
    expired: usize,
    failed: usize,
    deadline_violations: u64,
    events: Vec<String>,
    billing: String,
    frontend_billing: String,
    metrics: String,
}

/// Replays `mix` open-loop for [`CYCLES`] virtual cycles: offers land on
/// their scheduled cycle whether or not the service kept up, one pump
/// per cycle, then a forced flush of the tail.
fn run_mix(mix: TrafficMix, threads: usize) -> MixOutcome {
    let (mut fe, streams) = build(threads);
    let mut generator = LoadGen::new(SEED, mix, streams.len());
    // ticket → deadline the request was admitted under (None for
    // throughput-class requests, which carry no implicit deadline)
    let mut deadlines: HashMap<Ticket, Option<u64>> = HashMap::new();
    let mut ls_latencies = Vec::new();
    let mut tp_latencies = Vec::new();
    let mut deadline_violations = 0u64;
    let mut events = Vec::new();

    let absorb = |batch: Vec<FrontendEvent>,
                  events: &mut Vec<String>,
                  ls: &mut Vec<u64>,
                  tp: &mut Vec<u64>,
                  violations: &mut u64,
                  deadlines: &mut HashMap<Ticket, Option<u64>>| {
        for event in batch {
            events.push(format!("{event:?}"));
            match &event {
                FrontendEvent::Completed {
                    ticket,
                    latency,
                    flushed,
                    ..
                } => match deadlines.remove(ticket).expect("completion has a ticket") {
                    Some(deadline) if *flushed > deadline => *violations += 1,
                    Some(_) => ls.push(*latency),
                    None => tp.push(*latency),
                },
                FrontendEvent::Expired { ticket, .. } => {
                    deadlines.remove(ticket);
                }
                FrontendEvent::Failed { ticket, .. } => {
                    deadlines.remove(ticket);
                }
                FrontendEvent::PassThrough { .. } => {}
            }
        }
    };

    for _ in 0..CYCLES {
        for Arrival { stream, entropy } in generator.tick() {
            let (tenant, names, latency_sensitive) = &streams[stream];
            let inputs: Vec<(&str, bool)> = names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.as_str(), entropy >> i & 1 == 1))
                .collect();
            if let Ok(ticket) = fe.offer(*tenant, &inputs, None) {
                let budget = fe.stream_policy(*tenant).unwrap().deadline_budget;
                debug_assert_eq!(budget.is_some(), *latency_sensitive);
                deadlines.insert(ticket, budget.map(|b| fe.now() + b));
            }
        }
        let batch = fe.pump().expect("pump");
        absorb(
            batch,
            &mut events,
            &mut ls_latencies,
            &mut tp_latencies,
            &mut deadline_violations,
            &mut deadlines,
        );
        fe.advance(1);
    }
    let tail = fe.flush_all().expect("flush tail");
    absorb(
        tail,
        &mut events,
        &mut ls_latencies,
        &mut tp_latencies,
        &mut deadline_violations,
        &mut deadlines,
    );
    assert_eq!(fe.queued_requests(), 0, "flush_all left the queues dirty");
    assert_eq!(fe.inflight_requests(), 0, "the service still owes answers");

    let mut offered = 0;
    let mut admitted = 0;
    let mut rejected_backpressure = 0;
    let mut rejected_rate = 0;
    let mut completed = 0;
    let mut expired = 0;
    let mut failed = 0;
    for (tenant, _, _) in &streams {
        let usage = fe.frontend_usage(*tenant).expect("usage");
        offered += usage.offered;
        admitted += usage.admitted;
        rejected_backpressure += usage.rejected_backpressure;
        rejected_rate += usage.rejected_rate;
        completed += usage.completed;
        expired += usage.expired;
        failed += usage.failed;
    }
    MixOutcome {
        ls_latencies,
        tp_latencies,
        offered,
        admitted,
        rejected_backpressure,
        rejected_rate,
        completed,
        expired,
        failed,
        deadline_violations,
        events,
        billing: fe.service().billing_report(),
        frontend_billing: fe.frontend_billing_report(),
        metrics: fe.telemetry().registry().render_json(),
    }
}

const SKEW: TrafficMix = TrafficMix::AdversarialSkew {
    hot: 3,
    hot_per_cycle: 3,
    num: 1,
    den: 3,
};
const POISSON: TrafficMix = TrafficMix::Poisson { num: 1, den: 3 };
const BURSTY: TrafficMix = TrafficMix::Bursty {
    on: 4,
    off: 12,
    per_cycle: 3,
};

/// The asserted acceptance pass + the machine-readable artifact.
fn acceptance_and_artifact() {
    let skew = run_mix(SKEW, 1);
    let poisson = run_mix(POISSON, 1);
    let bursty = run_mix(BURSTY, 1);

    // class isolation under skew: the latency-sensitive tail must beat
    // the throughput tail strictly, with enough samples to mean it
    assert!(skew.ls_latencies.len() >= 1000, "p999 needs ≥1000 samples");
    assert!(skew.tp_latencies.len() >= 1000, "p999 needs ≥1000 samples");
    let ls_p99 = percentile(&skew.ls_latencies, 99.0);
    let tp_p99 = percentile(&skew.tp_latencies, 99.0);
    assert!(
        ls_p99 < tp_p99,
        "latency-sensitive p99 ({ls_p99}) must beat throughput p99 ({tp_p99})"
    );

    // deadline discipline: served-late is a bug in every mix
    for (name, mix) in [("skew", &skew), ("poisson", &poisson), ("bursty", &bursty)] {
        assert_eq!(
            mix.deadline_violations, 0,
            "{name}: a request was served past its deadline"
        );
        assert_eq!(
            mix.offered,
            mix.admitted + mix.rejected_backpressure + mix.rejected_rate,
            "{name}: admission arithmetic leaks"
        );
        assert_eq!(
            mix.admitted,
            mix.completed + mix.expired + mix.failed,
            "{name}: an admitted request vanished"
        );
    }

    // the harness must actually exercise admission control
    assert!(
        skew.rejected_rate > 0,
        "the hot stream's token bucket never rejected — load too light"
    );
    assert!(
        bursty.rejected_backpressure > 0,
        "the bursty mix never hit a bounded queue — load too light"
    );

    // executor-width determinism: identical event log and billing at
    // 1, 8 and 16 threads
    let mut determinism = true;
    for threads in [8usize, 16] {
        let run = run_mix(SKEW, threads);
        assert_eq!(
            run.events, skew.events,
            "event log diverged at {threads} threads"
        );
        assert_eq!(run.billing, skew.billing, "billing diverged at {threads}");
        assert_eq!(
            run.frontend_billing, skew.frontend_billing,
            "front-end billing diverged at {threads}"
        );
        determinism &= run.events == skew.events && run.billing == skew.billing;
    }

    let mut fields: Vec<(String, BenchValue)> = vec![
        ("cycles".into(), CYCLES.into()),
        ("seed".into(), SEED.into()),
        ("threads_checked".into(), "1,8,16".into()),
        ("thread_determinism".into(), determinism.into()),
        ("ls_p99_below_tp_p99".into(), (ls_p99 < tp_p99).into()),
        (
            "deadline_violations".into(),
            skew.deadline_violations.into(),
        ),
        ("metrics_snapshot".into(), skew.metrics.as_str().into()),
    ];
    for (name, mix) in [("skew", &skew), ("poisson", &poisson), ("bursty", &bursty)] {
        for (class, samples) in [
            ("latency_sensitive", &mix.ls_latencies),
            ("throughput", &mix.tp_latencies),
        ] {
            for (tag, p) in [("p50", 50.0), ("p99", 99.0), ("p999", 99.9)] {
                fields.push((
                    format!("{name}_{class}_{tag}_cycles"),
                    percentile(samples, p).into(),
                ));
            }
        }
        fields.push((format!("{name}_offered"), mix.offered.into()));
        fields.push((format!("{name}_admitted"), mix.admitted.into()));
        fields.push((
            format!("{name}_rejected_backpressure"),
            mix.rejected_backpressure.into(),
        ));
        fields.push((format!("{name}_rejected_rate"), mix.rejected_rate.into()));
        fields.push((format!("{name}_completed"), mix.completed.into()));
        fields.push((format!("{name}_expired"), mix.expired.into()));
    }
    let json = write_bench_json("frontend_latency", &fields).expect("write artifact");
    println!("wrote {}", json.display());
    println!(
        "skew: ls p99 {ls_p99} < tp p99 {tp_p99}; {} rate-rejected, {} backpressured (bursty)",
        skew.rejected_rate, bursty.rejected_backpressure
    );
}

fn bench(c: &mut Criterion) {
    acceptance_and_artifact();
    if smoke() {
        println!("MCFPGA_BENCH_SMOKE set: skipping wall-clock sampling");
        return;
    }

    let mut group = c.benchmark_group("frontend_latency");
    group.sample_size(10);

    group.bench_function("skew_2000_cycles_end_to_end", |b| {
        b.iter(|| black_box(run_mix(SKEW, 1).completed));
    });

    group.bench_function("offer_admission_path", |b| {
        let (mut fe, streams) = build(1);
        let (tenant, names, _) = streams[0].clone();
        let inputs: Vec<(&str, bool)> = names.iter().map(|n| (n.as_str(), true)).collect();
        b.iter(|| {
            let ticket = fe.offer(tenant, &inputs, None).expect("admitted");
            // flush immediately so the bounded queue never rejects
            let events = fe.flush_all().expect("flush");
            black_box((ticket, events.len()))
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
