//! X6 — hot-path evaluation pipeline: straight-line kernel vs branchy
//! interpreter, plus the dirty-cone incremental path's hit rate.
//!
//! The reference workload is the service-throughput fabric: an 8×8,
//! 4-context, channel-width-6 fabric holding the four wide equality
//! comparators (cmp16..cmp13), one per context. Each context's plane is
//! evaluated at the full 256-lane chunk width three ways — the branchy
//! reference interpreter, the branch-free straight-line kernel (full
//! sweeps), and the prebound dirty-cone path under a service-like
//! repeat/partial-change request mix. Outputs are cross-checked
//! bit-for-bit on every path; outside smoke mode the bench **fails if
//! the kernel is slower than the interpreter** on this workload.

use criterion::{criterion_group, criterion_main, Criterion};
use mcfpga_bench::{smoke, time_us, write_bench_json};
use mcfpga_fabric::compiled::{CompiledFabric, LaneChunk, LANE_WORDS, MAX_LANES};
use mcfpga_fabric::netlist_ir::{generators, LogicNetlist, Node};
use mcfpga_fabric::route::implement_netlist;
use mcfpga_fabric::{Fabric, FabricParams, DIRTY_ALL};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

/// Sweeps in the dirty-cone request mix per context.
const MIX_SWEEPS: usize = 64;

fn reference_designs() -> Vec<(&'static str, LogicNetlist)> {
    vec![
        ("cmp16", generators::equality_comparator(16).unwrap()),
        ("cmp15", generators::equality_comparator(15).unwrap()),
        ("cmp14", generators::equality_comparator(14).unwrap()),
        ("cmp13", generators::equality_comparator(13).unwrap()),
    ]
}

/// The 8×8/4-context reference fabric with one comparator per context,
/// compiled; returns the per-context input-name lists alongside.
fn build_reference() -> (Fabric, CompiledFabric, Vec<Vec<String>>) {
    let mut f = Fabric::new(FabricParams {
        width: 8,
        height: 8,
        channel_width: 6,
        ..FabricParams::default()
    })
    .expect("fabric");
    let mut names = Vec::new();
    for (ctx, (_, nl)) in reference_designs().iter().enumerate() {
        implement_netlist(&mut f, nl, ctx, ctx as u64).expect("route");
        names.push(
            nl.input_ids()
                .into_iter()
                .map(|n| match nl.node(n) {
                    Node::Input { name } => name.clone(),
                    _ => unreachable!(),
                })
                .collect(),
        );
    }
    let compiled = CompiledFabric::compile(&f).expect("compile");
    (f, compiled, names)
}

fn random_chunk(rng: &mut StdRng) -> LaneChunk {
    std::array::from_fn(|_| rng.random_range(0..u64::MAX))
}

/// One context's measurements.
struct CtxRun {
    ops_total: u64,
    interpreter_us: f64,
    kernel_us: f64,
    mix_ops_total: u64,
    mix_ops_skipped: u64,
}

fn run_context(compiled: &CompiledFabric, ctx: usize, names: &[String]) -> CtxRun {
    assert!(compiled.has_kernel(ctx), "comparator planes are acyclic");
    let bound = compiled.bind(ctx).expect("bind");
    let mut rng = StdRng::seed_from_u64(0xEA17 + ctx as u64);
    let chunks: Vec<LaneChunk> = bound
        .inputs()
        .iter()
        .map(|_| random_chunk(&mut rng))
        .collect();
    let named: Vec<(&str, LaneChunk)> = bound
        .inputs()
        .iter()
        .zip(&chunks)
        .map(|((_, n, _), c)| (n.as_ref(), *c))
        .collect();

    // correctness first, always (smoke mode included): kernel output ==
    // interpreter output, bit for bit, across all 256 lanes
    let mut st = compiled.new_state();
    let reference = compiled
        .eval_chunks_into_reference(ctx, &named, LANE_WORDS, &mut st)
        .expect("reference eval");
    let mut kst = compiled.new_state();
    let mut outs = Vec::new();
    let stats = compiled
        .eval_bound_into(&bound, &chunks, LANE_WORDS, DIRTY_ALL, &mut kst, &mut outs)
        .expect("kernel eval");
    assert!(stats.kernel);
    for ((_, name, _), chunk) in bound.outputs().iter().zip(&outs) {
        let r = reference
            .iter()
            .find(|(n, _)| n == name.as_ref())
            .expect("output present");
        assert_eq!(&r.1, chunk, "kernel diverged on output '{name}'");
    }

    let iters = if smoke() { 8 } else { 2000 };
    let interpreter_us = time_us(iters, || {
        let out = compiled
            .eval_chunks_into_reference(ctx, &named, LANE_WORDS, &mut st)
            .expect("reference eval");
        black_box(out);
    });
    let kernel_us = time_us(iters, || {
        let s = compiled
            .eval_bound_into(&bound, &chunks, LANE_WORDS, DIRTY_ALL, &mut kst, &mut outs)
            .expect("kernel eval");
        black_box(s);
    });

    // service-like request mix on the persistent state: half the sweeps
    // repeat the previous vectors exactly, a quarter flip one input, a
    // quarter redraw everything — the dirty-cone hit rate is what the
    // incremental path saves across the whole mix
    let mut mix = chunks.clone();
    let (mut mix_total, mut mix_skipped) = (0u64, 0u64);
    for sweep in 0..MIX_SWEEPS {
        let dirty = match sweep % 4 {
            0 | 2 => 0u64,
            1 => {
                let i = rng.random_range(0..mix.len());
                mix[i] = random_chunk(&mut rng);
                1u64 << i
            }
            _ => {
                for c in mix.iter_mut() {
                    *c = random_chunk(&mut rng);
                }
                DIRTY_ALL
            }
        };
        let s = compiled
            .eval_bound_into(&bound, &mix, LANE_WORDS, dirty, &mut kst, &mut outs)
            .expect("incremental eval");
        mix_total += s.ops_total;
        mix_skipped += s.ops_skipped;
        // every incremental answer equals a cold full sweep
        let mut cold_st = compiled.new_state();
        let mut cold = Vec::new();
        compiled
            .eval_bound_into(&bound, &mix, LANE_WORDS, DIRTY_ALL, &mut cold_st, &mut cold)
            .expect("cold eval");
        assert_eq!(outs, cold, "incremental sweep diverged (ctx {ctx})");
    }

    let _ = names;
    CtxRun {
        ops_total: stats.ops_total,
        interpreter_us,
        kernel_us,
        mix_ops_total: mix_total,
        mix_ops_skipped: mix_skipped,
    }
}

fn bench(c: &mut Criterion) {
    let (_f, compiled, names) = build_reference();
    let runs: Vec<CtxRun> = (0..names.len())
        .map(|ctx| run_context(&compiled, ctx, &names[ctx]))
        .collect();

    let ops: u64 = runs.iter().map(|r| r.ops_total).sum();
    let interp_us: f64 = runs.iter().map(|r| r.interpreter_us).sum();
    let kernel_us: f64 = runs.iter().map(|r| r.kernel_us).sum();
    let interp_ns_per_op = interp_us * 1e3 / ops as f64;
    let kernel_ns_per_op = kernel_us * 1e3 / ops as f64;
    let speedup = interp_us / kernel_us.max(f64::MIN_POSITIVE);
    let mix_total: u64 = runs.iter().map(|r| r.mix_ops_total).sum();
    let mix_skipped: u64 = runs.iter().map(|r| r.mix_ops_skipped).sum();
    let hit_rate = mix_skipped as f64 / mix_total.max(1) as f64;

    let gate_enforced = !smoke();
    println!(
        "eval kernel (8x8, 4 contexts, cmp16..cmp13, {MAX_LANES} lanes, {ops} ops/4-ctx sweep):\n  \
         interpreter: {interp_us:.2} µs/4-ctx sweep ({interp_ns_per_op:.2} ns/op)\n  \
         kernel:      {kernel_us:.2} µs/4-ctx sweep ({kernel_ns_per_op:.2} ns/op)\n  \
         speedup: {speedup:.2}x (gate: kernel <= interpreter, {})\n  \
         dirty-cone mix: {mix_skipped}/{mix_total} ops skipped ({:.1}% hit rate)",
        if gate_enforced {
            "enforced"
        } else {
            "skipped: smoke mode"
        },
        hit_rate * 100.0,
    );
    if gate_enforced {
        assert!(
            kernel_us <= interp_us,
            "straight-line kernel ({kernel_us:.2} µs) slower than the branchy \
             interpreter ({interp_us:.2} µs) on the reference workload"
        );
    }
    assert!(
        hit_rate > 0.4,
        "the repeat-heavy mix must skip a substantial share of ops \
         (got {:.1}%)",
        hit_rate * 100.0
    );

    let json = write_bench_json(
        "eval_kernel",
        &[
            ("ops_per_sweep", ops.into()),
            ("lanes", MAX_LANES.into()),
            ("contexts", names.len().into()),
            ("interpreter_us_per_sweep", interp_us.into()),
            ("kernel_us_per_sweep", kernel_us.into()),
            ("interpreter_ns_per_op", interp_ns_per_op.into()),
            ("kernel_ns_per_op", kernel_ns_per_op.into()),
            ("kernel_speedup", speedup.into()),
            ("dirty_mix_sweeps", (MIX_SWEEPS * names.len()).into()),
            ("dirty_mix_ops_total", mix_total.into()),
            ("dirty_mix_ops_skipped", mix_skipped.into()),
            ("dirty_cone_hit_rate", hit_rate.into()),
        ],
    )
    .expect("write BENCH_eval_kernel.json");
    println!("wrote {}", json.display());

    c.bench_function("fabric/kernel_4ctx_256lane_sweep", |b| {
        let bounds: Vec<_> = (0..names.len())
            .map(|ctx| compiled.bind(ctx).expect("bind"))
            .collect();
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        let chunks: Vec<Vec<LaneChunk>> = bounds
            .iter()
            .map(|b| b.inputs().iter().map(|_| random_chunk(&mut rng)).collect())
            .collect();
        let mut st = compiled.new_state();
        let mut outs = Vec::new();
        b.iter(|| {
            for (bound, c) in bounds.iter().zip(&chunks) {
                let s = compiled
                    .eval_bound_into(bound, c, LANE_WORDS, DIRTY_ALL, &mut st, &mut outs)
                    .expect("eval");
                black_box(s);
            }
        });
    });

    c.bench_function("fabric/interpreter_4ctx_256lane_sweep", |b| {
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        let named: Vec<Vec<(String, LaneChunk)>> = names
            .iter()
            .map(|ns| {
                ns.iter()
                    .map(|n| (n.clone(), random_chunk(&mut rng)))
                    .collect()
            })
            .collect();
        let mut st = compiled.new_state();
        b.iter(|| {
            for (ctx, inputs) in named.iter().enumerate() {
                let refs: Vec<(&str, LaneChunk)> =
                    inputs.iter().map(|(n, c)| (n.as_str(), *c)).collect();
                let out = compiled
                    .eval_chunks_into_reference(ctx, &refs, LANE_WORDS, &mut st)
                    .expect("eval");
                black_box(out);
            }
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
