//! Fig. 7 — hybrid MV/B-CSS generation: prints the waveform panels and
//! times line-value generation over long schedules (the broadcast path that
//! runs at every context switch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcfpga_css::waveform::trace_hybrid;
use mcfpga_css::{HybridCssGen, Schedule};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", mcfpga_bench::fig7_report());
    let mut g = c.benchmark_group("fig7/trace_hybrid");
    for contexts in [4usize, 16, 64] {
        g.bench_with_input(
            BenchmarkId::from_parameter(contexts),
            &contexts,
            |b, &contexts| {
                let gen = HybridCssGen::new(contexts).unwrap();
                let sched = Schedule::random(contexts, 1024, 5).unwrap();
                b.iter(|| black_box(trace_hybrid(&gen, &sched).unwrap().len()));
            },
        );
    }
    g.finish();

    c.bench_function("fig7/toggles_between_all_pairs_c64", |b| {
        let gen = HybridCssGen::new(64).unwrap();
        b.iter(|| {
            let mut t = 0usize;
            for a in 0..64 {
                for bb in 0..64 {
                    t += gen.toggles_between(a, bb).unwrap();
                }
            }
            black_box(t)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
