//! Fig. 3 — window decomposition throughput: all 4-context functions, plus
//! random 64-context ON-sets (the configuration-compile path of the MV
//! switch).

use criterion::{criterion_group, criterion_main, Criterion};
use mcfpga_mvl::{decompose_windows, CtxSet};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", mcfpga_bench::fig3_report());
    c.bench_function("fig3/decompose_all_c4_functions", |b| {
        let sets: Vec<CtxSet> = CtxSet::enumerate_all(4).unwrap().collect();
        b.iter(|| {
            let mut windows = 0usize;
            for s in &sets {
                windows += decompose_windows(black_box(s)).len();
            }
            black_box(windows)
        });
    });
    c.bench_function("fig3/decompose_random_c64", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let sets: Vec<CtxSet> = (0..256)
            .map(|_| CtxSet::from_mask(64, rng.random_range(0..u64::MAX)).unwrap())
            .collect();
        b.iter(|| {
            let mut windows = 0usize;
            for s in &sets {
                windows += decompose_windows(black_box(s)).len();
            }
            black_box(windows)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
