//! Table 2 — the 10×10 multi-context switch block: asserts the paper's
//! counts (3100/400/240) and times full block configuration from random
//! per-context permutation routes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcfpga_core::ArchKind;
use mcfpga_switchblock::{RouteSet, SwitchBlock};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    assert!(mcfpga_bench::paper_numbers_hold());
    println!("{}", mcfpga_bench::table2_report());
    let mut g = c.benchmark_group("table2/sb_configure_10x10");
    for arch in ArchKind::all() {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{arch:?}")),
            &arch,
            |b, &arch| {
                let mut sb = SwitchBlock::new(arch, 10, 10, 4).unwrap();
                let routes = RouteSet::random_permutations(10, 4, 7).unwrap();
                b.iter(|| {
                    sb.configure(&routes).unwrap();
                    black_box(sb.transistor_count())
                });
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
