//! X1 — scaling sweeps: transistor counts and latency vs context count and
//! block size (the quantitative form of the paper's "high scalability"),
//! plus compiled-engine throughput vs fabric geometry — the measurement
//! that keeps future scaling PRs honest about simulation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcfpga_core::timing::TimingParams;
use mcfpga_cost::sweep;
use mcfpga_fabric::compiled::CompiledFabric;
use mcfpga_fabric::netlist_ir::generators;
use mcfpga_fabric::route::implement_netlist_robust;
use mcfpga_fabric::{Fabric, FabricParams};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

/// Square fabric of side `n` with a parity tree mapped in context 0.
fn parity_fabric(n: usize) -> Fabric {
    let mut fabric = Fabric::new(FabricParams {
        width: n,
        height: n,
        channel_width: 4,
        ..FabricParams::default()
    })
    .expect("fabric");
    let nl = generators::parity_tree(8).unwrap();
    implement_netlist_robust(&mut fabric, &nl, 0, 2024, 32).expect("maps");
    fabric
}

fn bench(c: &mut Criterion) {
    println!("{}", mcfpga_bench::scaling_report());
    println!("{}", mcfpga_bench::latency_report());
    c.bench_function("scaling/contexts_sweep", |b| {
        b.iter(|| black_box(sweep::contexts_sweep(&sweep::STANDARD_CONTEXTS)));
    });
    c.bench_function("scaling/sb_size_sweep", |b| {
        let ks: Vec<usize> = (1..=64).collect();
        b.iter(|| black_box(sweep::sb_size_sweep(&ks, 4)));
    });
    c.bench_function("scaling/latency_sweep", |b| {
        let p = TimingParams::default();
        b.iter(|| black_box(sweep::latency_sweep(&sweep::STANDARD_CONTEXTS, &p)));
    });

    // compiled engine throughput per 64-vector batch as the grid grows
    let mut g = c.benchmark_group("scaling/compiled_batch_eval");
    for n in [4usize, 8, 12] {
        let fabric = parity_fabric(n);
        let compiled = CompiledFabric::compile(&fabric).unwrap();
        let mut rng = StdRng::seed_from_u64(n as u64);
        let lanes: Vec<(String, u64)> = (0..8)
            .map(|i| (format!("x{i}"), rng.random_range(0..u64::MAX)))
            .collect();
        let ins: Vec<(&str, u64)> = lanes.iter().map(|(s, v)| (s.as_str(), *v)).collect();
        g.bench_function(BenchmarkId::from_parameter(format!("{n}x{n}")), |b| {
            b.iter(|| black_box(compiled.eval_batch(0, &ins).unwrap()));
        });
    }
    g.finish();

    // compile cost as the grid grows (paid once, amortized over batches)
    let mut g = c.benchmark_group("scaling/compile_cost");
    for n in [4usize, 8, 12] {
        let fabric = parity_fabric(n);
        g.bench_function(BenchmarkId::from_parameter(format!("{n}x{n}")), |b| {
            b.iter(|| black_box(CompiledFabric::compile(&fabric).unwrap()));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench
}
criterion_main!(benches);
