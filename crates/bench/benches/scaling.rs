//! X1 — scaling sweeps: transistor counts and latency vs context count and
//! block size (the quantitative form of the paper's "high scalability").

use criterion::{criterion_group, criterion_main, Criterion};
use mcfpga_core::timing::TimingParams;
use mcfpga_cost::sweep;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", mcfpga_bench::scaling_report());
    println!("{}", mcfpga_bench::latency_report());
    c.bench_function("scaling/contexts_sweep", |b| {
        b.iter(|| black_box(sweep::contexts_sweep(&sweep::STANDARD_CONTEXTS)));
    });
    c.bench_function("scaling/sb_size_sweep", |b| {
        let ks: Vec<usize> = (1..=64).collect();
        b.iter(|| black_box(sweep::sb_size_sweep(&ks, 4)));
    });
    c.bench_function("scaling/latency_sweep", |b| {
        let p = TimingParams::default();
        b.iter(|| black_box(sweep::latency_sweep(&sweep::STANDARD_CONTEXTS, &p)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench
}
criterion_main!(benches);
