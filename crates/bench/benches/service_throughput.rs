//! X5 — multi-tenant service throughput: batched vs unbatched.
//!
//! Four tenants share one 8×8, 4-context fabric through the
//! `mcfpga-service` runtime. The **batched** path lets the service coalesce
//! single-vector requests into full 64-lane passes per context; the
//! **unbatched** baseline drains after every submit, so each request pays a
//! whole context switch and fabric pass for one lane of work. The bench
//! prints the measured per-request speedup and asserts the acceptance
//! threshold of ≥8× (the lane math promises ~64× before overheads).

use criterion::{criterion_group, criterion_main, Criterion};
use mcfpga_bench::{smoke, write_bench_json};
use mcfpga_device::TechParams;
use mcfpga_fabric::compiled::MAX_LANES;
use mcfpga_fabric::netlist_ir::{generators, LogicNetlist, Node};
use mcfpga_fabric::FabricParams;
use mcfpga_service::{
    OptimizeMode, PlacementPolicy, Response, ShardedService, TenantId, SPAWN_EVENTS_METRIC,
    TASKS_EXECUTED_METRIC, TASKS_STOLEN_METRIC, TASKS_TOTAL_METRIC, WORKERS_SPAWNED_METRIC,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// Requests per tenant per measured round: three full 64-lane batches.
const REQUESTS_PER_TENANT: usize = 192;

/// Shards in the parallel-drain comparison (the ISSUE's reference scale).
const PAR_SHARDS: usize = 8;

/// Lanes queued per slot before each timed parallel drain — below 64 so
/// nothing auto-flushes on the (sequential) submit path; the drain is
/// where the fan-out happens and is what the gate times.
const PAR_LANES: usize = 63;

/// Drain rounds in the sparse-traffic energy comparison: each round
/// submits one request per tenant and drains, so every round is a full
/// 4-context sweep whose *order* the optimizer may choose.
const SPARSE_ROUNDS: usize = 48;

fn tenant_designs() -> Vec<(&'static str, LogicNetlist)> {
    // workload-scale designs: enough LUTs and routed hops per plane that a
    // fabric pass does real work (an unbatched service pays one whole pass
    // per request; the batched one amortizes it over 64 lanes)
    // wide equality comparators: long routed reduction chains give each
    // plane many ops per request while keeping requests small (one output,
    // moderate inputs), so per-pass work dominates per-request overhead
    vec![
        ("cmp16", generators::equality_comparator(16).unwrap()),
        ("cmp15", generators::equality_comparator(15).unwrap()),
        ("cmp14", generators::equality_comparator(14).unwrap()),
        ("cmp13", generators::equality_comparator(13).unwrap()),
    ]
}

fn build_service() -> (ShardedService, Vec<(TenantId, Vec<String>)>) {
    build_service_mode(OptimizeMode::Optimized)
}

fn build_service_mode(mode: OptimizeMode) -> (ShardedService, Vec<(TenantId, Vec<String>)>) {
    let mut svc = ShardedService::with_policies(
        1,
        FabricParams {
            width: 8,
            height: 8,
            channel_width: 6,
            ..FabricParams::default()
        },
        TechParams::default(),
        mode,
        PlacementPolicy::RoundRobin,
    )
    .expect("service");
    // size the span ring explicitly: a throughput run would otherwise
    // recycle the default 4096-slot ring hundreds of thousands of times,
    // paying formatting + lock + eviction per span just to report
    // `trace_dropped` in the hundreds of thousands
    svc.telemetry().trace_buffer().set_capacity(0);
    let tenants = tenant_designs()
        .iter()
        .map(|(name, nl)| {
            let id = svc.admit(name, nl).expect("admit");
            let names = nl
                .input_ids()
                .into_iter()
                .map(|n| match nl.node(n) {
                    Node::Input { name } => name.clone(),
                    _ => unreachable!(),
                })
                .collect();
            (id, names)
        })
        .collect();
    (svc, tenants)
}

/// The request stream: tenants interleaved, vectors random but seeded.
fn request_stream(tenants: &[(TenantId, Vec<String>)]) -> Vec<(TenantId, Vec<(String, bool)>)> {
    let mut rng = StdRng::seed_from_u64(0x7E47);
    let mut stream = Vec::new();
    for _ in 0..REQUESTS_PER_TENANT {
        for (id, names) in tenants {
            let vector = names
                .iter()
                .map(|n| (n.clone(), rng.random_range(0..2u32) == 1))
                .collect();
            stream.push((*id, vector));
        }
    }
    stream
}

/// Borrowed view of the stream, built once outside any timed window —
/// marshalling request structs is the client's cost, not the service's.
fn as_refs(stream: &[(TenantId, Vec<(String, bool)>)]) -> Vec<(TenantId, Vec<(&str, bool)>)> {
    stream
        .iter()
        .map(|(t, v)| (*t, v.iter().map(|(n, b)| (n.as_str(), *b)).collect()))
        .collect()
}

/// Serves the whole stream; `drain_every_submit` is the unbatched baseline.
fn serve(
    svc: &mut ShardedService,
    stream: &[(TenantId, Vec<(&str, bool)>)],
    drain_every_submit: bool,
) -> usize {
    let mut responses = 0;
    for (tenant, refs) in stream {
        svc.submit(*tenant, refs).expect("submit");
        if drain_every_submit {
            responses += svc.drain().expect("drain").len();
        }
    }
    responses + svc.drain().expect("final drain").len()
}

/// An 8-shard, 4-context pool for the parallel-drain comparison: 32
/// tenants, one design per context index so identical netlists land on
/// the same slot index across shards and share one cached compiled plane.
/// The fabric and comparators are a step larger than the batching bench's
/// so each drain carries enough per-pass work to amortize the executor's
/// thread-spawn cost on modest core counts.
fn build_parallel_service() -> (ShardedService, Vec<(TenantId, Vec<String>)>) {
    let mut svc = ShardedService::with_policies(
        PAR_SHARDS,
        FabricParams {
            width: 10,
            height: 10,
            channel_width: 6,
            ..FabricParams::default()
        },
        TechParams::default(),
        OptimizeMode::Optimized,
        PlacementPolicy::RoundRobin,
    )
    .expect("service");
    // the timed drains are not a tracing benchmark: disable the span ring
    svc.telemetry().trace_buffer().set_capacity(0);
    let designs = vec![
        ("add12", generators::ripple_adder(12).unwrap()),
        ("add11", generators::ripple_adder(11).unwrap()),
        ("cmp24", generators::equality_comparator(24).unwrap()),
        ("cmp22", generators::equality_comparator(22).unwrap()),
    ];
    let mut tenants = Vec::new();
    // round-robin admission sweeps shards before contexts, so admitting
    // shard-count tenants of one design fills one context row with it
    for (name, nl) in &designs {
        for shard in 0..PAR_SHARDS {
            let id = svc.admit(&format!("{name}@{shard}"), nl).expect("admit");
            let names = nl
                .input_ids()
                .into_iter()
                .map(|n| match nl.node(n) {
                    Node::Input { name } => name.clone(),
                    _ => unreachable!(),
                })
                .collect();
            tenants.push((id, names));
        }
    }
    (svc, tenants)
}

/// Queues `PAR_LANES` seeded requests on every tenant (no slot reaches 64
/// lanes, so nothing executes until the drain).
fn fill_all_slots(
    svc: &mut ShardedService,
    tenants: &[(TenantId, Vec<String>)],
    rng: &mut StdRng,
) -> usize {
    let mut queued = 0;
    for _ in 0..PAR_LANES {
        for (id, names) in tenants {
            let vector: Vec<(String, bool)> = names
                .iter()
                .map(|n| (n.clone(), rng.random_range(0..2u32) == 1))
                .collect();
            let refs: Vec<(&str, bool)> = vector.iter().map(|(n, v)| (n.as_str(), *v)).collect();
            svc.submit(*id, &refs).expect("submit");
            queued += 1;
        }
    }
    queued
}

/// The executor's wall-clock counters, read back from the service's
/// telemetry registry at the end of one width's run.
struct ExecutorCounters {
    spawn_events: u64,
    workers_spawned: u64,
    tasks_total: u64,
    tasks_stolen: u64,
    per_worker_executed: Vec<u64>,
}

fn executor_counters(svc: &ShardedService) -> ExecutorCounters {
    let r = svc.telemetry().registry();
    let get = |name: &str| r.counter_value(name).unwrap_or(0);
    ExecutorCounters {
        spawn_events: get(SPAWN_EVENTS_METRIC),
        workers_spawned: get(WORKERS_SPAWNED_METRIC),
        tasks_total: get(TASKS_TOTAL_METRIC),
        tasks_stolen: get(TASKS_STOLEN_METRIC),
        per_worker_executed: r.counter_cells(TASKS_EXECUTED_METRIC).unwrap_or_default(),
    }
}

/// What one width's run of the parallel-drain comparison observed.
struct DrainRun {
    responses: Vec<Response>,
    /// Fastest steady-state drain, seconds.
    best: f64,
    /// The very first drain at this width, seconds — the only one that
    /// pays the worker-pool spawn.
    first: f64,
    stats: ExecutorCounters,
    /// Full metrics snapshot (all classes, JSON) at end of run.
    metrics: String,
}

/// The parallel-executor comparison on the 8-shard reference pool:
/// cross-checks that sequential (1-thread) and parallel (N-thread) drains
/// produce identical responses, times the drain both ways (separating the
/// spawn-paying first drain from steady-state pool reuse), and returns
/// `(seq, par, threads, requests_per_drain)`.
fn measure_parallel_drain() -> (DrainRun, DrainRun, usize, usize) {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let threads = cores.clamp(2, PAR_SHARDS);

    // admission (routing + compilation) happens once per width and stays
    // outside every measured window; each run does a correctness pass
    // first (identical seeded traffic), then the timing loop
    let run_width = |width: usize| -> DrainRun {
        let (mut svc, tenants) = build_parallel_service();
        svc.set_threads(width);
        // correctness traffic: the drain fan-out must be invisible. The
        // first drain is timed separately — it is the one that spawns
        // the persistent workers; every later drain reuses them.
        let mut rng = StdRng::seed_from_u64(0x009A_11E1);
        let mut responses = Vec::new();
        let mut first = 0.0;
        for round in 0..2 {
            fill_all_slots(&mut svc, &tenants, &mut rng);
            let t = Instant::now();
            responses.extend(svc.drain().expect("drain"));
            if round == 0 {
                first = t.elapsed().as_secs_f64();
            }
        }
        // wall-clock: fill untimed, time the drain, keep the minimum
        let mut rng = StdRng::seed_from_u64(0x00D1_2A11);
        let mut best = f64::INFINITY;
        let budget = Instant::now();
        while budget.elapsed() < std::time::Duration::from_millis(400) {
            fill_all_slots(&mut svc, &tenants, &mut rng);
            let t = Instant::now();
            let served = svc.drain().expect("drain").len();
            best = best.min(t.elapsed().as_secs_f64());
            assert_eq!(served, PAR_LANES * PAR_SHARDS * 4);
            black_box(served);
        }
        DrainRun {
            stats: executor_counters(&svc),
            metrics: svc.telemetry().registry().render_json(),
            responses,
            best,
            first,
        }
    };
    let seq = run_width(1);
    assert_eq!(
        seq.responses.len(),
        2 * PAR_LANES * PAR_SHARDS * 4,
        "every queued request answered"
    );
    assert_eq!(
        seq.stats.spawn_events, 0,
        "a 1-thread executor must never spawn workers"
    );
    let par = run_width(threads);
    assert_eq!(
        seq.responses, par.responses,
        "parallel drain must be bit-for-bit identical to sequential"
    );
    // the tentpole's reuse gate: many drains, exactly one pool spawn —
    // after the first drain warms the pool, drains spawn zero threads
    assert_eq!(
        par.stats.spawn_events, 1,
        "steady-state drains must reuse the persistent pool, not respawn it"
    );
    assert_eq!(par.stats.workers_spawned, threads as u64);
    let executed: u64 = par.stats.per_worker_executed.iter().sum();
    assert_eq!(
        executed, par.stats.tasks_total,
        "every per-context task accounted to exactly one worker"
    );
    (seq, par, threads, PAR_LANES * PAR_SHARDS * 4)
}

/// Acceptance measurement: amortized per-request service time, both
/// modes; returns `(unbatched_us_per_req, batched_us_per_req, speedup)`.
fn measure_speedup() -> (f64, f64, f64) {
    let (_, tenants) = build_service();
    let stream = request_stream(&tenants);
    let stream = as_refs(&stream);
    let min_elapsed = std::time::Duration::from_millis(50);

    let time_mode = |unbatched: bool| {
        // admission (routing + compilation) happens once, outside the
        // timed window — the measurement is pure request service time
        let (mut svc, fresh_tenants) = build_service();
        // tenant ids are issued in admission order, so the stream's ids
        // are valid for every freshly built service
        assert_eq!(fresh_tenants.len(), tenants.len());
        // the *minimum* round time is the noise-robust estimator: scheduler
        // preemption and cache pollution only ever add time, so the fastest
        // round is the closest to the true service cost
        let mut best = f64::INFINITY;
        let t = Instant::now();
        while t.elapsed() < min_elapsed {
            let round = Instant::now();
            let served = serve(&mut svc, &stream, unbatched);
            best = best.min(round.elapsed().as_secs_f64());
            assert_eq!(served, stream.len(), "every request answered");
            black_box(served);
        }
        best / stream.len() as f64
    };

    let unbatched_per_req = time_mode(true);
    let batched_per_req = time_mode(false);
    let speedup = unbatched_per_req / batched_per_req;
    println!(
        "service throughput (8x8, 4 contexts, 4 tenants, {} requests, per-request amortized):\n  \
         unbatched (drain per submit): {:.2} µs/req\n  \
         batched (64-lane coalescing): {:.3} µs/req\n  \
         speedup: {speedup:.1}x (acceptance: >=8x)",
        stream.len(),
        unbatched_per_req * 1e6,
        batched_per_req * 1e6,
    );
    (unbatched_per_req * 1e6, batched_per_req * 1e6, speedup)
}

/// Sparse-traffic energy gate: one request per tenant per drain, so every
/// drain is a full 4-context sweep. The optimized sweep order must produce
/// byte-identical responses and **strictly fewer** modeled CSS toggles
/// than the naive (round-robin-order) sweep on the 8×8/4-context
/// reference fabric. Returns `(naive_toggles, optimized_toggles)`.
fn energy_comparison() -> (usize, usize) {
    let run = |mode: OptimizeMode| {
        let (mut svc, tenants) = build_service_mode(mode);
        let mut rng = StdRng::seed_from_u64(0x0E17_0E17);
        let mut responses = Vec::new();
        for _ in 0..SPARSE_ROUNDS {
            for (id, names) in &tenants {
                let vector: Vec<(String, bool)> = names
                    .iter()
                    .map(|n| (n.clone(), rng.random_range(0..2u32) == 1))
                    .collect();
                let refs: Vec<(&str, bool)> =
                    vector.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                svc.submit(*id, &refs).expect("submit");
            }
            responses.extend(svc.drain().expect("drain"));
        }
        responses.sort_by_key(|r| r.request);
        let (mut toggles, mut baseline, mut energy) = (0usize, 0usize, 0.0f64);
        for (id, _) in &tenants {
            let u = svc.usage(*id).expect("usage");
            toggles += u.css_toggles;
            baseline += u.css_toggles_baseline;
            energy += svc.bill(*id).expect("bill").dynamic_energy_j;
        }
        (responses, toggles, baseline, energy)
    };

    let (naive_resp, naive_toggles, naive_baseline, naive_energy) = run(OptimizeMode::Naive);
    let (opt_resp, opt_toggles, opt_baseline, opt_energy) = run(OptimizeMode::Optimized);

    assert_eq!(
        naive_resp, opt_resp,
        "optimized sweeps must be output-equivalent to naive sweeps"
    );
    assert_eq!(
        naive_toggles, naive_baseline,
        "naive mode bills its own order as the baseline"
    );
    assert!(
        opt_toggles < naive_toggles,
        "optimized sweeps must spend strictly fewer CSS toggles \
         ({opt_toggles} vs {naive_toggles})"
    );
    assert!(
        opt_toggles < opt_baseline,
        "the optimized run's own baseline accounting must show savings"
    );
    println!(
        "sweep energy (8x8, 4 contexts, 4 tenants, {SPARSE_ROUNDS} sparse sweeps):\n  \
         naive order:     {naive_toggles} toggles, {naive_energy:.3e} J\n  \
         optimized order: {opt_toggles} toggles, {opt_energy:.3e} J\n  \
         saved: {:.1}% of broadcast switching energy (responses identical)",
        100.0 * (naive_toggles - opt_toggles) as f64 / naive_toggles as f64,
    );
    (naive_toggles, opt_toggles)
}

fn bench(c: &mut Criterion) {
    // energy gate: optimized sweep order strictly beats naive, outputs equal
    let (naive_toggles, opt_toggles) = energy_comparison();

    // correctness cross-check before timing: batched and unbatched modes
    // must produce identical responses for the same stream
    {
        let (mut batched, tenants) = build_service();
        let (mut unbatched, _) = build_service();
        let stream = request_stream(&tenants);
        let stream = as_refs(&stream);
        let collect = |svc: &mut ShardedService, per_submit: bool| {
            let mut out = Vec::new();
            for (tenant, refs) in &stream {
                svc.submit(*tenant, refs).expect("submit");
                if per_submit {
                    out.extend(svc.drain().expect("drain"));
                }
            }
            out.extend(svc.drain().expect("drain"));
            out.sort_by_key(|r| r.request);
            out
        };
        let b = collect(&mut batched, false);
        let u = collect(&mut unbatched, true);
        assert_eq!(b, u, "batched responses must equal unbatched responses");
    }

    let (unbatched_us, batched_us, speedup) = measure_speedup();
    assert!(
        speedup >= 8.0,
        "batched service only {speedup:.1}x faster than single-vector-per-request"
    );

    // parallel-executor gate: an 8-shard drain fanned out across worker
    // threads must be ≥2× the sequential (1-thread) drain — enforced when
    // the machine has the cores to show it (≥4) and not in smoke mode;
    // the bit-for-bit output equivalence check inside always runs
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let (par_seq, par_par, par_threads, par_requests) = measure_parallel_drain();
    let (par_seq_us, par_par_us) = (par_seq.best * 1e6, par_par.best * 1e6);
    let par_speedup = par_seq.best / par_par.best;
    let pool_first_us = par_par.first * 1e6;
    let histogram = format!("{:?}", par_par.stats.per_worker_executed);
    let gate_enforced = cores >= 4 && !smoke();
    println!(
        "parallel drain (10x10, {PAR_SHARDS} shards x 4 contexts, {par_requests} queued requests, \
         {cores} cores):\n  \
         sequential (1 thread):  {par_seq_us:.1} µs/drain\n  \
         parallel ({par_threads} threads):   {par_par_us:.1} µs/drain \
         (first drain incl. pool spawn: {pool_first_us:.1} µs; \
         {} spawn event over {} tasks, {} stolen, per-worker {histogram})\n  \
         speedup: {par_speedup:.2}x (gate: >=2x, {})",
        par_par.stats.spawn_events,
        par_par.stats.tasks_total,
        par_par.stats.tasks_stolen,
        if gate_enforced {
            "enforced"
        } else {
            "skipped: needs >=4 cores and non-smoke mode"
        }
    );
    if gate_enforced {
        assert!(
            par_speedup >= 2.0,
            "parallel drain only {par_speedup:.2}x faster than sequential on {cores} cores"
        );
    }

    let json = write_bench_json(
        "service_throughput",
        &[
            ("unbatched_us_per_req", unbatched_us.into()),
            ("batched_us_per_req", batched_us.into()),
            ("batching_speedup", speedup.into()),
            (
                "throughput_req_per_s",
                (1e6 / batched_us.max(f64::MIN_POSITIVE)).into(),
            ),
            ("sweep_toggles_naive", naive_toggles.into()),
            ("sweep_toggles_optimized", opt_toggles.into()),
            (
                "sweep_toggles_saved_pct",
                (100.0 * (naive_toggles.saturating_sub(opt_toggles)) as f64
                    / naive_toggles.max(1) as f64)
                    .into(),
            ),
            ("parallel_shards", PAR_SHARDS.into()),
            ("parallel_threads", par_threads.into()),
            ("parallel_cores_available", cores.into()),
            ("parallel_seq_drain_us", par_seq_us.into()),
            ("parallel_par_drain_us", par_par_us.into()),
            ("parallel_speedup", par_speedup.into()),
            ("parallel_gate_enforced", gate_enforced.into()),
            ("parallel_tasks_total", par_par.stats.tasks_total.into()),
            ("parallel_tasks_stolen", par_par.stats.tasks_stolen.into()),
            ("per_worker_task_histogram", histogram.as_str().into()),
            ("lane_width", MAX_LANES.into()),
            ("pool_spawn_events", par_par.stats.spawn_events.into()),
            ("pool_first_drain_us", pool_first_us.into()),
            ("pool_steady_drain_us", par_par_us.into()),
            ("metrics_snapshot", par_par.metrics.as_str().into()),
        ],
    )
    .expect("write BENCH_service_throughput.json");
    println!("wrote {}", json.display());

    c.bench_function("service/batched_768req_4tenants", |b| {
        let (mut svc, tenants) = build_service();
        let stream = request_stream(&tenants);
        let stream = as_refs(&stream);
        b.iter(|| black_box(serve(&mut svc, &stream, false)));
    });

    c.bench_function("service/unbatched_768req_4tenants", |b| {
        let (mut svc, tenants) = build_service();
        let stream = request_stream(&tenants);
        let stream = as_refs(&stream);
        b.iter(|| black_box(serve(&mut svc, &stream, true)));
    });

    c.bench_function("service/admit_4tenants_8x8", |b| {
        b.iter(|| black_box(build_service().1.len()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
