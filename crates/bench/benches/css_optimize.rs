//! X6 — CSS sweep-order optimization: modeled toggles of naive (ascending
//! round-robin) sweeps vs optimizer-ordered sweeps, per CSS family and
//! context count, plus the optimizer's own latency (exact Held–Karp regime
//! vs greedy nearest-neighbour regime).
//!
//! Acceptance (asserted, runs in CI): on the paper's 4-context hybrid
//! reference the optimized full sweep spends **strictly fewer** toggles
//! than round-robin order, and on randomized active sweeps the optimizer
//! is never worse for either CSS family.
//!
//! Set `MCFPGA_BENCH_SMOKE=1` to run only the acceptance comparisons and
//! skip wall-clock sampling — the mode CI uses on every push.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcfpga_bench::{smoke, time_us, write_bench_json, BenchValue};
use mcfpga_css::optimize::{optimize_sweep, CostMatrix};
use mcfpga_css::Schedule;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

/// Steady-state cost of repeated full sweeps: each sweep starts from the
/// context the previous one ended on.
fn steady_sweep_cost(matrix: &CostMatrix, order: &[usize], rounds: usize) -> usize {
    let mut cur = 0usize;
    let mut total = 0usize;
    for _ in 0..rounds {
        total += matrix.path_cost(Some(cur), order).unwrap();
        cur = *order.last().unwrap();
    }
    total
}

/// Steady-state cost when every round is re-planned by the optimizer from
/// wherever the broadcast sits.
fn steady_optimized_cost(matrix: &CostMatrix, contexts: usize, rounds: usize) -> usize {
    let sweep = Schedule::active_sweep(contexts, &(0..contexts).collect::<Vec<_>>()).unwrap();
    let mut cur = 0usize;
    let mut total = 0usize;
    for _ in 0..rounds {
        let opt = optimize_sweep(&sweep, matrix, Some(cur)).unwrap();
        total += opt.optimized_cost;
        cur = *opt.schedule.as_slice().last().unwrap();
    }
    total
}

/// Mean `optimize_sweep` latency over a fixed full-domain sweep, seconds.
/// Cheap enough to run in smoke mode, so the JSON artifact always carries
/// optimizer latencies alongside the toggle savings.
fn optimizer_latency_us(contexts: usize) -> f64 {
    let matrix = CostMatrix::hybrid(contexts).unwrap();
    let sweep = Schedule::active_sweep(contexts, &(0..contexts).collect::<Vec<_>>()).unwrap();
    time_us(200, || {
        black_box(optimize_sweep(&sweep, &matrix, Some(0)).unwrap());
    })
}

/// The acceptance comparison: full-domain sweeps, both CSS families.
/// Returns the per-configuration savings table as
/// `(contexts, family, naive, optimized)` rows for the JSON artifact.
fn acceptance() -> Vec<(usize, &'static str, usize, usize)> {
    const ROUNDS: usize = 64;
    let mut table = Vec::new();
    println!("sweep-order optimization, {ROUNDS} steady-state full sweeps:");
    println!("  contexts  family  round-robin  optimized  saved");
    for &contexts in &[4usize, 8, 16] {
        for family in ["hybrid", "binary"] {
            let matrix = match family {
                "hybrid" => CostMatrix::hybrid(contexts).unwrap(),
                _ => CostMatrix::binary(contexts).unwrap(),
            };
            let ascending: Vec<usize> = (0..contexts).collect();
            let naive = steady_sweep_cost(&matrix, &ascending, ROUNDS);
            let optimized = steady_optimized_cost(&matrix, contexts, ROUNDS);
            table.push((contexts, family, naive, optimized));
            assert!(
                optimized <= naive,
                "{contexts}-ctx {family}: optimizer must never be worse"
            );
            println!(
                "  {contexts:>8}  {family:<6}  {naive:>11}  {optimized:>9}  {:>4.1}%",
                100.0 * (naive - optimized) as f64 / naive as f64
            );
        }
    }

    // the paper's reference configuration: 4 hybrid contexts — strictly
    // fewer toggles than round-robin order (the ISSUE's CI gate)
    let matrix = CostMatrix::hybrid(4).unwrap();
    let naive = steady_sweep_cost(&matrix, &[0, 1, 2, 3], ROUNDS);
    let optimized = steady_optimized_cost(&matrix, 4, ROUNDS);
    assert!(
        optimized < naive,
        "4-context hybrid reference: optimized sweeps must be strictly \
         cheaper than round-robin ({optimized} vs {naive})"
    );

    // randomized partial sweeps: never worse, both families, many starts
    let mut rng = StdRng::seed_from_u64(0x0B71_0B71);
    for _ in 0..200 {
        let contexts = 4 * (1 + rng.random_range(0..4usize));
        let len = 1 + rng.random_range(0..contexts);
        let active: Vec<usize> = (0..len).map(|_| rng.random_range(0..contexts)).collect();
        let start = rng.random_range(0..contexts);
        let sweep = Schedule::active_sweep(contexts, &active).unwrap();
        for matrix in [
            CostMatrix::hybrid(contexts).unwrap(),
            CostMatrix::binary(contexts).unwrap(),
        ] {
            let opt = optimize_sweep(&sweep, &matrix, Some(start)).unwrap();
            assert!(opt.optimized_cost <= opt.naive_cost);
        }
    }
    println!("  randomized partial sweeps: optimizer never worse (200 cases)");
    table
}

fn bench(c: &mut Criterion) {
    let table = acceptance();

    // machine-readable trajectory: savings per configuration + optimizer
    // latency in both regimes (exact Held–Karp ≤8 contexts, greedy above)
    let mut fields: Vec<(String, BenchValue)> = Vec::new();
    for (contexts, family, naive, optimized) in &table {
        fields.push((
            format!("toggles_naive_{family}_{contexts}ctx"),
            (*naive).into(),
        ));
        fields.push((
            format!("toggles_optimized_{family}_{contexts}ctx"),
            (*optimized).into(),
        ));
        fields.push((
            format!("toggles_saved_pct_{family}_{contexts}ctx"),
            (100.0 * (naive - optimized) as f64 / (*naive).max(1) as f64).into(),
        ));
    }
    fields.push((
        "optimize_latency_us_exact_4ctx".to_string(),
        optimizer_latency_us(4).into(),
    ));
    fields.push((
        "optimize_latency_us_exact_8ctx".to_string(),
        optimizer_latency_us(8).into(),
    ));
    fields.push((
        "optimize_latency_us_greedy_16ctx".to_string(),
        optimizer_latency_us(16).into(),
    ));
    let json = write_bench_json("css_optimize", &fields).expect("write BENCH_css_optimize.json");
    println!("wrote {}", json.display());

    if smoke() {
        println!("MCFPGA_BENCH_SMOKE set: skipping wall-clock sampling");
        return;
    }

    let mut g = c.benchmark_group("css_optimize");
    for &contexts in &[4usize, 8, 16, 32] {
        let matrix = CostMatrix::hybrid(contexts).unwrap();
        let sweep = Schedule::active_sweep(contexts, &(0..contexts).collect::<Vec<_>>()).unwrap();
        let regime = if contexts <= 8 { "exact" } else { "greedy" };
        g.bench_function(BenchmarkId::new(regime, contexts), |b| {
            b.iter(|| black_box(optimize_sweep(&sweep, &matrix, Some(0)).unwrap()))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
