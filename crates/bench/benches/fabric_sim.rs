//! X4 — fabric-level workload: temporally partitioned adder mapped across
//! contexts, then executed (the end-to-end use case the MC-FPGA exists for).

use criterion::{criterion_group, criterion_main, Criterion};
use mcfpga_fabric::temporal::{execute, implement, partition};
use mcfpga_fabric::{netlist_ir::generators, Fabric, FabricParams};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("fabric/map_adder3_4ctx", |b| {
        let nl = generators::ripple_adder(3).unwrap();
        let part = partition(&nl, 4).unwrap();
        b.iter(|| {
            let mut fabric = Fabric::new(FabricParams {
                width: 4,
                height: 4,
                channel_width: 3,
                ..FabricParams::default()
            })
            .unwrap();
            black_box(implement(&mut fabric, &part, 17).unwrap().len())
        });
    });

    c.bench_function("fabric/execute_adder3_4ctx", |b| {
        let nl = generators::ripple_adder(3).unwrap();
        let part = partition(&nl, 4).unwrap();
        let mut fabric = Fabric::new(FabricParams {
            width: 4,
            height: 4,
            channel_width: 3,
            ..FabricParams::default()
        })
        .unwrap();
        implement(&mut fabric, &part, 17).unwrap();
        let ins = vec![
            ("a0", true),
            ("a1", false),
            ("a2", true),
            ("b0", true),
            ("b1", true),
            ("b2", false),
            ("cin", false),
        ];
        b.iter(|| black_box(execute(&fabric, &part, &ins).unwrap()));
    });

    c.bench_function("fabric/bitstream_roundtrip", |b| {
        let nl = generators::parity_tree(8).unwrap();
        let mut fabric = Fabric::new(FabricParams::default()).unwrap();
        mcfpga_fabric::route::implement_netlist(&mut fabric, &nl, 0, 5).unwrap();
        b.iter(|| {
            let bits = mcfpga_fabric::bitstream::pack(&fabric);
            black_box(mcfpga_fabric::bitstream::unpack(bits).unwrap().crosspoint_count())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
