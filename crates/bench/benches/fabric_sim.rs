//! X4 — fabric-level workload benchmarks.
//!
//! The headline measurement is **interpreted vs compiled** simulation: the
//! legacy fixpoint sweep re-walks the whole tile grid per vector, while the
//! compiled engine flattens each context once and pushes 64 vectors per
//! bit-parallel pass. On the 8×8, 4-context fabric below the compiled
//! engine must amortize to ≥10× faster per vector — the bench prints the
//! measured ratio alongside the Criterion timings.

use criterion::{criterion_group, criterion_main, Criterion};
use mcfpga_core::ArchKind;
use mcfpga_css::Schedule;
use mcfpga_device::TechParams;
use mcfpga_fabric::compiled::{CompiledFabric, LANES};
use mcfpga_fabric::context::{run_schedule, ContextSequencer};
use mcfpga_fabric::netlist_ir::{generators, LogicNetlist};
use mcfpga_fabric::route::implement_netlist_robust;
use mcfpga_fabric::sim::evaluate_fixpoint;
use mcfpga_fabric::temporal::{execute, execute_compiled, implement, partition};
use mcfpga_fabric::{Fabric, FabricParams};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// 8×8, 4-context fabric with a distinct workload mapped in every context.
/// Returns the fabric plus each context's input signal names.
fn workload_fabric() -> (Fabric, Vec<Vec<String>>) {
    let mut fabric = Fabric::new(FabricParams {
        width: 8,
        height: 8,
        channel_width: 4,
        ..FabricParams::default()
    })
    .expect("8x8 fabric");
    let designs: Vec<LogicNetlist> = vec![
        generators::parity_tree(8).unwrap(),
        generators::ripple_adder(3).unwrap(),
        generators::equality_comparator(3).unwrap(),
        generators::popcount4().unwrap(),
    ];
    let mut input_names = Vec::new();
    for (ctx, nl) in designs.iter().enumerate() {
        implement_netlist_robust(&mut fabric, nl, ctx, 0xC0FFEE + ctx as u64, 32)
            .unwrap_or_else(|e| panic!("ctx {ctx} failed to map: {e}"));
        input_names.push(
            nl.input_ids()
                .into_iter()
                .map(|id| match nl.node(id) {
                    mcfpga_fabric::netlist_ir::Node::Input { name } => name.clone(),
                    _ => unreachable!(),
                })
                .collect(),
        );
    }
    (fabric, input_names)
}

/// 64 random vectors for `names`, both lane-packed and per-vector scalar.
#[allow(clippy::type_complexity)]
fn random_batch(names: &[String], seed: u64) -> (Vec<(String, u64)>, Vec<Vec<(String, bool)>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let lanes: Vec<(String, u64)> = names
        .iter()
        .map(|n| (n.clone(), rng.random_range(0..u64::MAX)))
        .collect();
    let scalars = (0..LANES)
        .map(|lane| {
            lanes
                .iter()
                .map(|(n, v)| (n.clone(), (v >> lane) & 1 == 1))
                .collect()
        })
        .collect();
    (lanes, scalars)
}

/// The acceptance measurement: per-vector amortized time of both engines
/// over all four contexts, printed as a ratio.
fn measure_speedup(fabric: &Fabric, inputs: &[Vec<String>]) -> f64 {
    let reps = 5usize;
    let compiled = CompiledFabric::compile(fabric).expect("compiles");
    let batches: Vec<_> = inputs
        .iter()
        .enumerate()
        .map(|(ctx, names)| random_batch(names, 0xBEEF + ctx as u64))
        .collect();

    let t0 = Instant::now();
    for _ in 0..reps {
        for (ctx, (_, scalars)) in batches.iter().enumerate() {
            for scalar in scalars {
                let ins: Vec<(&str, bool)> = scalar.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                black_box(evaluate_fixpoint(fabric, ctx, &ins).expect("resolves"));
            }
        }
    }
    let vectors = (reps * batches.len() * LANES) as f64;
    let legacy_per_vec = t0.elapsed().as_secs_f64() / vectors;

    // The compiled side finishes in microseconds, so a fixed rep count would
    // leave the denominator inside scheduler-noise territory; loop until the
    // measurement itself spans a robust wall-clock window.
    let min_elapsed = std::time::Duration::from_millis(50);
    let lane_ins: Vec<Vec<(&str, u64)>> = batches
        .iter()
        .map(|(lanes, _)| lanes.iter().map(|(n, v)| (n.as_str(), *v)).collect())
        .collect();
    let mut compiled_reps = 0usize;
    let t1 = Instant::now();
    while t1.elapsed() < min_elapsed {
        for (ctx, ins) in lane_ins.iter().enumerate() {
            black_box(compiled.eval_batch(ctx, ins).expect("resolves"));
        }
        compiled_reps += 1;
    }
    let compiled_vectors = (compiled_reps * batches.len() * LANES) as f64;
    let compiled_per_vec = t1.elapsed().as_secs_f64() / compiled_vectors;

    let speedup = legacy_per_vec / compiled_per_vec;
    println!(
        "engine comparison (8x8, 4 contexts, {LANES}-vector batches, per-vector amortized):\n  \
         legacy fixpoint sweep: {:.2} µs/vec\n  \
         compiled bit-parallel: {:.3} µs/vec\n  \
         speedup: {speedup:.1}x (acceptance: >=10x)",
        legacy_per_vec * 1e6,
        compiled_per_vec * 1e6,
    );
    speedup
}

fn bench(c: &mut Criterion) {
    let (fabric, input_names) = workload_fabric();
    let speedup = measure_speedup(&fabric, &input_names);
    assert!(
        speedup >= 10.0,
        "compiled engine only {speedup:.1}x faster than the legacy sweep"
    );

    c.bench_function("fabric/legacy_fixpoint_64vec_8x8", |b| {
        let (_, scalars) = random_batch(&input_names[0], 7);
        b.iter(|| {
            for scalar in &scalars {
                let ins: Vec<(&str, bool)> = scalar.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                black_box(evaluate_fixpoint(&fabric, 0, &ins).unwrap());
            }
        });
    });

    c.bench_function("fabric/compiled_batch_64vec_8x8", |b| {
        let compiled = CompiledFabric::compile(&fabric).unwrap();
        let (lanes, _) = random_batch(&input_names[0], 7);
        let ins: Vec<(&str, u64)> = lanes.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        b.iter(|| black_box(compiled.eval_batch(0, &ins).unwrap()));
    });

    c.bench_function("fabric/compile_8x8_4ctx", |b| {
        b.iter(|| black_box(CompiledFabric::compile(&fabric).unwrap()));
    });

    c.bench_function("fabric/run_schedule_rr16_compiled", |b| {
        let compiled = CompiledFabric::compile(&fabric).unwrap();
        let mut seq = ContextSequencer::new(ArchKind::Hybrid, 4).unwrap();
        let sched = Schedule::round_robin(4, 4).unwrap();
        let p = TechParams::default();
        // shared pads: a signal name bound by several contexts carries the
        // same lanes in every step, so dedup keeps the first assignment
        let mut union: Vec<(String, u64)> = Vec::new();
        for (ctx, names) in input_names.iter().enumerate() {
            for entry in random_batch(names, 0xBEEF + ctx as u64).0 {
                if !union.iter().any(|(n, _)| *n == entry.0) {
                    union.push(entry);
                }
            }
        }
        let ins: Vec<(&str, u64)> = union.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        b.iter(|| black_box(run_schedule(&compiled, &mut seq, &sched, &ins, &p).unwrap()));
    });

    c.bench_function("fabric/map_adder3_4ctx", |b| {
        let nl = generators::ripple_adder(3).unwrap();
        let part = partition(&nl, 4).unwrap();
        b.iter(|| {
            let mut fabric = Fabric::new(FabricParams {
                width: 4,
                height: 4,
                channel_width: 3,
                ..FabricParams::default()
            })
            .unwrap();
            black_box(implement(&mut fabric, &part, 17).unwrap().len())
        });
    });

    c.bench_function("fabric/execute_adder3_4ctx", |b| {
        let nl = generators::ripple_adder(3).unwrap();
        let part = partition(&nl, 4).unwrap();
        let mut fabric = Fabric::new(FabricParams {
            width: 4,
            height: 4,
            channel_width: 3,
            ..FabricParams::default()
        })
        .unwrap();
        implement(&mut fabric, &part, 17).unwrap();
        let ins = vec![
            ("a0", true),
            ("a1", false),
            ("a2", true),
            ("b0", true),
            ("b1", true),
            ("b2", false),
            ("cin", false),
        ];
        // legacy wrapper: pays a full compile per call
        b.iter(|| black_box(execute(&fabric, &part, &ins).unwrap()));
    });

    c.bench_function("fabric/execute_compiled_adder3_4ctx", |b| {
        let nl = generators::ripple_adder(3).unwrap();
        let part = partition(&nl, 4).unwrap();
        let mut fabric = Fabric::new(FabricParams {
            width: 4,
            height: 4,
            channel_width: 3,
            ..FabricParams::default()
        })
        .unwrap();
        implement(&mut fabric, &part, 17).unwrap();
        let compiled = CompiledFabric::compile(&fabric).unwrap();
        let ins: Vec<(&str, u64)> = vec![
            ("a0", !0),
            ("a1", 0),
            ("a2", !0),
            ("b0", !0),
            ("b1", !0),
            ("b2", 0),
            ("cin", 0),
        ];
        // compile-once path: 64 user cycles per call
        b.iter(|| black_box(execute_compiled(&compiled, &part, &ins).unwrap()));
    });

    c.bench_function("fabric/bitstream_roundtrip", |b| {
        let nl = generators::parity_tree(8).unwrap();
        let mut fabric = Fabric::new(FabricParams::default()).unwrap();
        mcfpga_fabric::route::implement_netlist(&mut fabric, &nl, 0, 5).unwrap();
        b.iter(|| {
            let bits = mcfpga_fabric::bitstream::pack(&fabric);
            black_box(
                mcfpga_fabric::bitstream::unpack(bits)
                    .unwrap()
                    .crosspoint_count(),
            )
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
