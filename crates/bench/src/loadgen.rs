//! # Seeded open-loop traffic generation for the QoS front-end
//!
//! An **open-loop** load generator decides arrival times *in advance of
//! and independent of* the system's responses — requests keep arriving
//! on schedule whether or not earlier ones have completed. That is the
//! honest way to measure a service under load: a closed loop (issue →
//! wait → issue) lets a slow system throttle its own offered load and
//! hides queueing delay (coordinated omission). Here the schedule is a
//! pure function of a seed, so a latency artifact reproduces bit-for-bit.
//!
//! Three mixes, all driven by the workspace's deterministic `StdRng`:
//!
//! * [`TrafficMix::Poisson`] — every stream sees an independent
//!   Bernoulli arrival per cycle with probability `num/den`; in discrete
//!   time that *is* the memoryless process (geometric inter-arrival
//!   gaps), the standard Poisson approximation with no floating point.
//! * [`TrafficMix::Bursty`] — a square wave: `per_cycle` arrivals every
//!   cycle of an `on` window, silence for `off`, repeat. Stresses the
//!   front-end's EWMA rate estimate across regime changes.
//! * [`TrafficMix::AdversarialSkew`] — one designated hot stream fires
//!   `hot_per_cycle` arrivals *every* cycle while the rest trickle at
//!   Bernoulli `num/den`. The admission-control worst case: the hot
//!   tenant saturates its bounded queue and must be rejected with
//!   backpressure while the trickle streams keep their latency floor.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One scheduled request arrival: which stream it lands on and a word of
/// seeded entropy for the harness to turn into input bits. The generator
/// deliberately knows nothing about netlists — mapping entropy to named
/// inputs is the caller's job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Index of the destination stream, `0..streams`.
    pub stream: usize,
    /// 64 seeded bits; bit `i` conventionally drives input `i`.
    pub entropy: u64,
}

/// The arrival-process shape. All parameters are integers so the
/// schedule is exact and platform-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficMix {
    /// Independent Bernoulli(`num`/`den`) arrival per stream per cycle —
    /// the discrete-time Poisson process.
    Poisson {
        /// Arrival probability numerator.
        num: u32,
        /// Arrival probability denominator (> 0).
        den: u32,
    },
    /// `per_cycle` arrivals on every stream during each `on`-cycle
    /// window, none for `off` cycles, repeating.
    Bursty {
        /// Length of the firing window, in cycles (> 0).
        on: u64,
        /// Length of the silent window, in cycles.
        off: u64,
        /// Arrivals per stream per firing cycle.
        per_cycle: u32,
    },
    /// Stream `hot` fires `hot_per_cycle` arrivals every cycle; all
    /// other streams are Bernoulli(`num`/`den`).
    AdversarialSkew {
        /// Index of the saturating stream.
        hot: usize,
        /// Arrivals on the hot stream, every cycle.
        hot_per_cycle: u32,
        /// Trickle probability numerator for the other streams.
        num: u32,
        /// Trickle probability denominator (> 0).
        den: u32,
    },
}

/// Seeded open-loop arrival schedule over `streams` parallel streams.
/// Each [`tick`](LoadGen::tick) returns the arrivals for one virtual
/// cycle; two generators with equal seeds and mixes produce equal
/// schedules forever.
#[derive(Debug, Clone)]
pub struct LoadGen {
    rng: StdRng,
    mix: TrafficMix,
    streams: usize,
    cycle: u64,
}

impl LoadGen {
    /// A generator for `streams` streams under `mix`, seeded with
    /// `seed`. Panics on zero streams, a zero denominator, a zero `on`
    /// window, or a hot index out of range — all schedule bugs, not
    /// runtime conditions.
    #[must_use]
    pub fn new(seed: u64, mix: TrafficMix, streams: usize) -> Self {
        assert!(streams > 0, "a schedule needs at least one stream");
        match mix {
            TrafficMix::Poisson { den, .. } => assert!(den > 0, "zero denominator"),
            TrafficMix::Bursty { on, .. } => assert!(on > 0, "a burst needs a window"),
            TrafficMix::AdversarialSkew { hot, den, .. } => {
                assert!(den > 0, "zero denominator");
                assert!(hot < streams, "hot stream {hot} out of range {streams}");
            }
        }
        LoadGen {
            rng: StdRng::seed_from_u64(seed),
            mix,
            streams,
            cycle: 0,
        }
    }

    /// The virtual cycle the next [`tick`](Self::tick) will schedule.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advances one virtual cycle and returns its arrivals, in stream
    /// order (ties broken by draw order within a stream).
    pub fn tick(&mut self) -> Vec<Arrival> {
        let cycle = self.cycle;
        self.cycle += 1;
        let mut arrivals = Vec::new();
        for stream in 0..self.streams {
            let count = match self.mix {
                TrafficMix::Poisson { num, den } => u32::from(self.rng.random_range(0..den) < num),
                TrafficMix::Bursty { on, off, per_cycle } => {
                    if cycle % (on + off) < on {
                        per_cycle
                    } else {
                        0
                    }
                }
                TrafficMix::AdversarialSkew {
                    hot,
                    hot_per_cycle,
                    num,
                    den,
                } => {
                    if stream == hot {
                        hot_per_cycle
                    } else {
                        u32::from(self.rng.random_range(0..den) < num)
                    }
                }
            };
            for _ in 0..count {
                let entropy = (u64::from(self.rng.random_range(0..u32::MAX)) << 32)
                    | u64::from(self.rng.random_range(0..u32::MAX));
                arrivals.push(Arrival { stream, entropy });
            }
        }
        arrivals
    }

    /// Runs `cycles` ticks and returns the whole schedule as
    /// `(cycle, arrival)` pairs — the form the latency harness replays.
    pub fn schedule(&mut self, cycles: u64) -> Vec<(u64, Arrival)> {
        let mut out = Vec::new();
        for _ in 0..cycles {
            let cycle = self.cycle;
            for a in self.tick() {
                out.push((cycle, a));
            }
        }
        out
    }
}

/// Nearest-rank percentile of an unsorted latency sample (`p` in
/// `0.0..=100.0`). Returns 0 on an empty sample — the caller decides
/// whether that is meaningful.
#[must_use]
pub fn percentile(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_make_equal_schedules() {
        let mix = TrafficMix::Poisson { num: 1, den: 3 };
        let a = LoadGen::new(7, mix, 4).schedule(500);
        let b = LoadGen::new(7, mix, 4).schedule(500);
        assert_eq!(a, b);
        assert_ne!(
            a,
            LoadGen::new(8, mix, 4).schedule(500),
            "a different seed must move the schedule"
        );
    }

    #[test]
    fn poisson_rate_lands_near_num_over_den() {
        let mut generator = LoadGen::new(42, TrafficMix::Poisson { num: 1, den: 4 }, 1);
        let n = generator.schedule(8000).len() as f64;
        let expect = 8000.0 / 4.0;
        assert!(
            (n - expect).abs() < expect * 0.15,
            "observed {n} arrivals, expected ≈{expect}"
        );
    }

    #[test]
    fn bursty_is_silent_in_the_off_window() {
        let mix = TrafficMix::Bursty {
            on: 3,
            off: 5,
            per_cycle: 2,
        };
        let mut generator = LoadGen::new(1, mix, 2);
        for cycle in 0..64u64 {
            let arrivals = generator.tick();
            if cycle % 8 < 3 {
                assert_eq!(arrivals.len(), 4, "2 streams × 2 per cycle in the window");
            } else {
                assert!(arrivals.is_empty(), "cycle {cycle} should be silent");
            }
        }
    }

    #[test]
    fn adversarial_skew_saturates_exactly_the_hot_stream() {
        let mix = TrafficMix::AdversarialSkew {
            hot: 2,
            hot_per_cycle: 3,
            num: 1,
            den: 8,
        };
        let schedule = LoadGen::new(5, mix, 4).schedule(400);
        let hot = schedule.iter().filter(|(_, a)| a.stream == 2).count();
        let cold = schedule.len() - hot;
        assert_eq!(hot, 1200, "hot stream fires on schedule, every cycle");
        assert!(
            cold > 50 && cold < 400,
            "3 trickle streams at 1/8 over 400 cycles ≈ 150, got {cold}"
        );
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let samples = [5u64, 1, 4, 2, 3];
        assert_eq!(percentile(&samples, 50.0), 3);
        assert_eq!(percentile(&samples, 100.0), 5);
        assert_eq!(percentile(&samples, 1.0), 1);
        assert_eq!(percentile(&[], 99.0), 0);
    }
}
