//! # mcfpga-bench — experiment harness
//!
//! One function per paper artifact (table, figure, extension experiment),
//! each returning a rendered report with **paper-expected vs measured**
//! values. The `repro` binary prints them; the Criterion benches time the
//! underlying machinery; `EXPERIMENTS.md` records the outputs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod loadgen;

use mcfpga_core::equivalence;
use mcfpga_core::redundancy;
use mcfpga_core::timing::TimingParams;
use mcfpga_core::{ArchKind, HybridMcSwitch, McSwitch, MvFgfpMcSwitch, SramMcSwitch};
use mcfpga_cost::report::{percent, render_csv, render_markdown_table};
use mcfpga_cost::sweep;
use mcfpga_css::waveform::render_fig7;
use mcfpga_css::{GeneratorCost, HybridCssGen, Schedule};
use mcfpga_mvl::truth_table::render_fig3;
use mcfpga_mvl::{CtxSet, Level};
use mcfpga_switchblock::{
    column_row_usage, mapping::select_networks_needed, remap_to_designated_rows, sb_transistors,
    RouteSet, SwitchBlock,
};

/// Experiment identifiers, mirroring DESIGN.md's index.
pub const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "scaling",
    "redundancy",
    "power",
    "latency",
];

/// Table 1 — MC-switch transistor counts (paper: 31 / 4 / 2 at C=4).
#[must_use]
pub fn table1_report() -> String {
    let paper = [31usize, 4, 2];
    let rows: Vec<Vec<String>> = mcfpga_cost::table1(4)
        .into_iter()
        .zip(paper)
        .map(|(r, p)| {
            vec![
                r.label.to_string(),
                p.to_string(),
                r.transistors.to_string(),
                percent(r.vs_sram),
            ]
        })
        .collect();
    format!(
        "## Table 1 — transistor count of an MC-switch (4 contexts)\n\n{}",
        render_markdown_table(&["architecture", "paper", "measured", "vs SRAM"], &rows)
    )
}

/// Table 2 — 10×10 MC-SB transistor counts (paper: 3100 / 400 / 240).
#[must_use]
pub fn table2_report() -> String {
    let paper = [3100usize, 400, 240];
    let rows: Vec<Vec<String>> = mcfpga_switchblock::count::table2(10, 4)
        .into_iter()
        .zip(paper)
        .map(|(r, p)| {
            vec![
                r.label.to_string(),
                p.to_string(),
                r.transistors.to_string(),
                percent(r.vs_sram),
            ]
        })
        .collect();
    format!(
        "## Table 2 — transistor count of a 10×10 MC-SB (4 contexts)\n\n{}",
        render_markdown_table(&["architecture", "paper", "measured", "vs SRAM"], &rows)
    )
}

/// Fig. 1 — overall MC-FPGA structure (structural census of a small fabric).
#[must_use]
pub fn fig1_report() -> String {
    use mcfpga_fabric::{Fabric, FabricParams};
    let mut out = String::from("## Fig. 1 — overall structure of an MC-FPGA\n\n");
    for arch in ArchKind::all() {
        let f = Fabric::new(FabricParams {
            arch,
            ..FabricParams::default()
        })
        .expect("default fabric");
        out.push_str(&format!(
            "- {}: 4×4 cells, {} cross-points, {} routing transistors, {} LUT config bits\n",
            arch.label(),
            f.crosspoint_count(),
            f.routing_transistor_count(),
            f.lut_config_bits(),
        ));
    }
    out
}

/// Fig. 2 — the conventional SRAM MC-switch.
#[must_use]
pub fn fig2_report() -> String {
    let mut sw = SramMcSwitch::new(4).expect("4 contexts");
    sw.configure(&CtxSet::from_ctxs(4, [1, 3]).expect("cfg"))
        .expect("configure");
    let nl = sw.build_netlist().expect("netlist");
    format!(
        "## Fig. 2 — SRAM-based MC-switch (4 contexts)\n\n\
         - storage: {} SRAM cells (6T each)\n\
         - config MUX: {} support transistors\n\
         - routing pass transistor: 1\n\
         - total: {} (paper: 31)\n",
        nl.sram_cell_count(),
        nl.support_transistor_count(),
        nl.transistor_count()
    )
}

/// Fig. 3 — switch function as OR of window literals.
#[must_use]
pub fn fig3_report() -> String {
    let f = CtxSet::from_ctxs(4, [1, 3]).expect("paper's F");
    format!(
        "## Fig. 3 — function of an MC-switch as windows\n\n```\n{}```\n",
        render_fig3(&f)
    )
}

/// Fig. 4 — up-literal and down-literal.
#[must_use]
pub fn fig4_report() -> String {
    use mcfpga_mvl::truth_table::{render_rows, tabulate_literal};
    use mcfpga_mvl::{DownLiteral, UpLiteral};
    let up = UpLiteral::new(Level::new(2));
    let down = DownLiteral::new(Level::new(2));
    format!(
        "## Fig. 4 — threshold literals (4-level rail, T = 2)\n\n```\nup-literal\n{}\n\ndown-literal\n{}\n```\n",
        render_rows("S", "F", &tabulate_literal(&up, 4)),
        render_rows("S", "F", &tabulate_literal(&down, 4)),
    )
}

/// Figs. 5–6 — the MV-FGFP switch at 4 and 8 contexts.
#[must_use]
pub fn fig5_fig6_report() -> String {
    let mut out = String::from("## Figs. 5–6 — MV-FGFP MC-switch\n\n");
    for contexts in [4usize, 8] {
        let mut sw = MvFgfpMcSwitch::new(contexts).expect("switch");
        let alternating = CtxSet::from_ctxs(contexts, (0..contexts).step_by(2)).expect("cfg");
        sw.configure(&alternating).expect("configure");
        out.push_str(&format!(
            "- {contexts} contexts: {} FGMOS + {} doubling MUXes = {} transistors \
             (closed form {}); worst-case config uses {} branches\n",
            sw.fgmos_count(),
            sw.mux_count(),
            sw.transistor_count(),
            MvFgfpMcSwitch::transistor_count_for(contexts),
            sw.branches_used(),
        ));
    }
    out.push_str("- equivalence: all 2^C configurations agree with SRAM and hybrid (see tests)\n");
    out
}

/// Fig. 7 — the hybrid CSS waveforms over one round-robin sweep.
#[must_use]
pub fn fig7_report() -> String {
    let gen = HybridCssGen::new(4).expect("4 contexts");
    let sched = Schedule::round_robin(4, 1).expect("schedule");
    format!(
        "## Fig. 7 — hybrid MV/B-CSS waveforms (contexts 0→3)\n\n```\n{}```\n",
        render_fig7(&gen, &sched).expect("render")
    )
}

/// Fig. 8 — the CSS generator and its amortised overhead.
#[must_use]
pub fn fig8_report() -> String {
    let g = GeneratorCost::for_contexts(4).expect("4 contexts");
    let sb_switches = 100; // one 10×10 SB
    let fabric_switches = 6400; // 8×8 cells × 100
    format!(
        "## Fig. 8 — MV/B-CSS generator\n\n\
         - drivers: {} T, binary inverter: {} T, MV inverter: {} T → total {} T\n\
         - shared overhead per switch: {:.3} T across one 10×10 SB, {:.4} T across an 8×8-cell fabric\n\
         - (paper: \"they can be shared among several MC-switches, and its overhead is negligible\")\n",
        g.driver_transistors,
        g.binary_inverter_transistors,
        g.mv_inverter_transistors,
        g.total(),
        g.overhead_per_switch(sb_switches),
        g.overhead_per_switch(fabric_switches),
    )
}

/// Figs. 9–10 — the hybrid switch: exclusivity and MUX-free scaling.
#[must_use]
pub fn fig9_fig10_report() -> String {
    let mut out = String::from("## Figs. 9–10 — proposed hybrid MC-switch\n\n");
    for contexts in [4usize, 8, 16, 64] {
        out.push_str(&format!(
            "- {contexts} contexts: {} FGMOS, 0 MUXes (paper: \"does not require any additional MUX\")\n",
            HybridMcSwitch::transistor_count_for(contexts),
        ));
    }
    // exclusivity, verified live
    let mut sw = HybridMcSwitch::new(4).expect("switch");
    let mut max_on = 0;
    for s in CtxSet::enumerate_all(4).expect("enumerable") {
        sw.configure(&s).expect("configure");
        for ctx in 0..4 {
            max_on = max_on.max(sw.on_fgmos_count(ctx).expect("count"));
        }
    }
    out.push_str(&format!(
        "- exclusive-ON verified over all 16 configs × 4 contexts: max simultaneous ON FGMOS = {max_on}\n",
    ));
    out
}

/// Fig. 11 — column-shared switch block.
#[must_use]
pub fn fig11_report() -> String {
    let routes = RouteSet::random_permutations(10, 4, 2024).expect("routes");
    let before = select_networks_needed(&routes).1;
    let out = remap_to_designated_rows(&routes).expect("remap");
    let after = select_networks_needed(&out.routes).1;
    let usage = column_row_usage(&out.routes);
    let max_rows_per_col = usage.iter().map(Vec::len).max().unwrap_or(0);
    let mut sb = SwitchBlock::new(ArchKind::Hybrid, 10, 10, 4).expect("sb");
    sb.configure(&out.routes).expect("configure");
    sb.verify_against_routes().expect("verify");
    format!(
        "## Fig. 11 — MC-SB with column-shared control signals\n\n\
         - random 4-context permutation routes on 10×10: {before} select networks if rows fixed\n\
         - after designated-row remapping: {after} (= N, the paper's claim); max rows/column = {max_rows_per_col}\n\
         - remapped block configured + verified in silicon model: OK\n\
         - transistors: {} (= K²·C/2 + K·C)\n",
        sb.transistor_count(),
    )
}

/// X1 — scaling sweeps (CSV series for per-switch and SB counts).
#[must_use]
pub fn scaling_report() -> String {
    let per_switch = sweep::contexts_sweep(&sweep::STANDARD_CONTEXTS);
    let sb = sweep::sb_size_sweep(&[2, 5, 10, 20, 40], 4);
    format!(
        "## X1 — scaling sweeps\n\nper-switch transistors vs contexts:\n```\n{}```\n\nSB transistors vs K (C=4):\n```\n{}```\n",
        render_csv("contexts", &["sram", "mv_fgfp", "hybrid"], &per_switch),
        render_csv("k", &["sram", "mv_fgfp", "hybrid"], &sb),
    )
}

/// X2 — redundancy quantification.
#[must_use]
pub fn redundancy_report() -> String {
    let r4 = redundancy::measure(4).expect("C=4");
    let r8 = redundancy::measure(8).expect("C=8");
    format!("## X2 — redundancy (the waste the hybrid signal removes)\n\n{r4}\n\n{r8}\n")
}

/// X3 — static power.
#[must_use]
pub fn power_report() -> String {
    use mcfpga_cost::power::{sb_static_w, switch_static_w};
    let p = mcfpga_device::TechParams::default();
    let mut out = String::from("## X3 — static power of configuration storage\n\n");
    for arch in ArchKind::all() {
        out.push_str(&format!(
            "- {}: {:.3e} W per switch, {:.3e} W per 10×10 SB\n",
            arch.label(),
            switch_static_w(arch, 4, &p),
            sb_static_w(arch, 10, 4, &p),
        ));
    }
    out.push_str("- (paper §4: FGFPs need \"no supply voltage ... to keep the storage\")\n");
    out
}

/// Latency extension — context-switch depth vs context count.
#[must_use]
pub fn latency_report() -> String {
    let pts = sweep::latency_sweep(&sweep::STANDARD_CONTEXTS, &TimingParams::default());
    format!(
        "## X-latency — context-switch latency model (ps)\n\n```\n{}```\n- hybrid latency is constant in C; SRAM grows with log2(C); MV gains a MUX stage per doubling\n",
        render_csv("contexts", &["sram", "mv_fgfp", "hybrid"], &pts),
    )
}

/// Cross-architecture equivalence statement (exhaustive).
#[must_use]
pub fn equivalence_report() -> String {
    let c4 = equivalence::check_exhaustive(4).expect("C=4");
    let c8 = equivalence::check_exhaustive(8).expect("C=8");
    format!(
        "## Equivalence — all three architectures agree\n\n- C=4: {c4} configurations checked exhaustively\n- C=8: {c8} configurations checked exhaustively\n"
    )
}

/// Everything, in paper order.
#[must_use]
pub fn full_report() -> String {
    [
        table1_report(),
        table2_report(),
        fig1_report(),
        fig2_report(),
        fig3_report(),
        fig4_report(),
        fig5_fig6_report(),
        fig7_report(),
        fig8_report(),
        fig9_fig10_report(),
        fig11_report(),
        scaling_report(),
        redundancy_report(),
        power_report(),
        latency_report(),
        equivalence_report(),
    ]
    .join("\n")
}

/// Parallel exhaustive equivalence sweep: splits the `2^contexts`
/// configuration space across `threads` workers (std scoped threads),
/// each building its own three switches. Returns total configurations
/// checked; panics on any disagreement.
///
/// Used by the scaling bench to push exhaustive checking to `C = 16+`
/// within a time budget, and as the workspace's demonstration of the
/// embarrassingly-parallel sweep pattern.
pub fn parallel_exhaustive_equivalence(contexts: usize, threads: usize) -> usize {
    assert!(contexts <= 20, "config space explodes past 2^20");
    assert!(threads >= 1);
    let total: u64 = 1u64 << contexts;
    let chunk = total.div_ceil(threads as u64);
    let counter = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let counter = &counter;
            scope.spawn(move || {
                let mut switches =
                    equivalence::build_all(contexts).expect("buildable architectures");
                let lo = t as u64 * chunk;
                let hi = (lo + chunk).min(total);
                let mut local = 0usize;
                for mask in lo..hi {
                    let s = CtxSet::from_mask(contexts, mask).expect("mask in domain");
                    let mismatches =
                        equivalence::check_config(&mut switches, &s).expect("configurable");
                    assert!(mismatches.is_empty(), "disagreement on {s}");
                    local += 1;
                }
                counter.fetch_add(local, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });
    counter.load(std::sync::atomic::Ordering::Relaxed)
}

/// Sanity used by benches: Table 1/2 must match the paper exactly.
#[must_use]
pub fn paper_numbers_hold() -> bool {
    mcfpga_cost::switch_transistors(ArchKind::Sram, 4) == 31
        && mcfpga_cost::switch_transistors(ArchKind::MvFgfp, 4) == 4
        && mcfpga_cost::switch_transistors(ArchKind::Hybrid, 4) == 2
        && sb_transistors(ArchKind::Sram, 10, 4) == 3100
        && sb_transistors(ArchKind::MvFgfp, 10, 4) == 400
        && sb_transistors(ArchKind::Hybrid, 10, 4) == 240
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers() {
        assert!(paper_numbers_hold());
    }

    #[test]
    fn reports_render() {
        let full = full_report();
        for needle in [
            "Table 1",
            "Table 2",
            "Fig. 3",
            "Fig. 7",
            "Fig. 11",
            "31",
            "3100",
            "240",
            "S0·Vs",
            "window [1,1]",
        ] {
            assert!(full.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn parallel_sweep_counts_everything() {
        assert_eq!(parallel_exhaustive_equivalence(8, 4), 256);
        assert_eq!(parallel_exhaustive_equivalence(8, 3), 256);
    }

    #[test]
    fn table_reports_show_exact_match() {
        let t1 = table1_report();
        assert!(t1.contains("| SRAM-based one | 31 | 31 |"));
        assert!(t1.contains("| Proposed one | 2 | 2 |"));
        let t2 = table2_report();
        assert!(t2.contains("| SRAM-based one | 3100 | 3100 |"));
        assert!(t2.contains("| Proposed one | 240 | 240 |"));
    }
}

/// Is `MCFPGA_BENCH_SMOKE` set (to anything but `0`)? Benches use this
/// to run acceptance checks + artifacts only and skip wall-clock
/// sampling — the mode CI uses on every push.
#[must_use]
pub fn smoke() -> bool {
    std::env::var_os("MCFPGA_BENCH_SMOKE").is_some_and(|v| v != "0")
}

/// Mean wall-clock microseconds of `f` over `iters` calls — the plain
/// `Instant` timing loop the JSON artifacts use (independent of the
/// criterion harness, cheap enough for smoke mode).
pub fn time_us(iters: usize, mut f: impl FnMut()) -> f64 {
    let t = std::time::Instant::now();
    for _ in 0..iters.max(1) {
        f();
    }
    t.elapsed().as_secs_f64() * 1e6 / iters.max(1) as f64
}

/// One value in a machine-readable `BENCH_<name>.json` artifact.
#[derive(Debug, Clone)]
pub enum BenchValue {
    /// A measurement (latency, speedup, percentage). Non-finite values
    /// serialize as `null`.
    Num(f64),
    /// A count (requests, toggles, bytes).
    Int(u64),
    /// A flag (e.g. whether a gate was enforced on this machine).
    Bool(bool),
    /// A label (units, mode).
    Str(String),
}

impl From<f64> for BenchValue {
    fn from(v: f64) -> Self {
        BenchValue::Num(v)
    }
}
impl From<u64> for BenchValue {
    fn from(v: u64) -> Self {
        BenchValue::Int(v)
    }
}
impl From<usize> for BenchValue {
    fn from(v: usize) -> Self {
        BenchValue::Int(v as u64)
    }
}
impl From<bool> for BenchValue {
    fn from(v: bool) -> Self {
        BenchValue::Bool(v)
    }
}
impl From<&str> for BenchValue {
    fn from(v: &str) -> Self {
        BenchValue::Str(v.to_string())
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `fields` as a flat JSON object (insertion order preserved).
/// Keys may be `&str` literals or owned `String`s.
#[must_use]
pub fn render_bench_json<K: AsRef<str>>(name: &str, fields: &[(K, BenchValue)]) -> String {
    let mut body = String::new();
    body.push_str(&format!("  \"bench\": \"{}\"", json_escape(name)));
    for (key, value) in fields {
        body.push_str(",\n");
        body.push_str(&format!("  \"{}\": ", json_escape(key.as_ref())));
        match value {
            BenchValue::Num(v) if v.is_finite() => body.push_str(&format!("{v}")),
            BenchValue::Num(_) => body.push_str("null"),
            BenchValue::Int(v) => body.push_str(&format!("{v}")),
            BenchValue::Bool(v) => body.push_str(&format!("{v}")),
            BenchValue::Str(v) => body.push_str(&format!("\"{}\"", json_escape(v))),
        }
    }
    format!("{{\n{body}\n}}\n")
}

/// The provenance every committed artifact must carry: how many CPU
/// cores the writing machine had (`cpu_cores`) and whether its timing
/// gates were actually enforced there (`gates_enforced` — false in
/// [`smoke`] mode, where wall-clock assertions are skipped). Without
/// these a committed number can't be judged: a latency measured on a
/// 2-core CI box under smoke mode is not evidence of a regression.
#[must_use]
pub fn provenance_fields() -> Vec<(String, BenchValue)> {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    vec![
        ("cpu_cores".to_string(), cores.into()),
        ("gates_enforced".to_string(), (!smoke()).into()),
    ]
}

/// Writes `BENCH_<name>.json` to the repository root so the perf
/// trajectory of every gated benchmark is tracked in-tree. Returns the
/// path written. Fields keep insertion order; values follow
/// [`BenchValue`]'s JSON mapping. The [`provenance_fields`] are appended
/// automatically (callers' own fields win on key collision — the
/// appended ones are skipped).
pub fn write_bench_json<K: AsRef<str>>(
    name: &str,
    fields: &[(K, BenchValue)],
) -> std::io::Result<std::path::PathBuf> {
    // CARGO_MANIFEST_DIR is crates/bench at compile time; the repo root
    // is two levels up — stable regardless of the bench's working dir
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the repo root")
        .to_path_buf();
    let path = root.join(format!("BENCH_{name}.json"));
    let mut all: Vec<(String, BenchValue)> = fields
        .iter()
        .map(|(k, v)| (k.as_ref().to_string(), v.clone()))
        .collect();
    for (key, value) in provenance_fields() {
        if !all.iter().any(|(k, _)| *k == key) {
            all.push((key, value));
        }
    }
    std::fs::write(&path, render_bench_json(name, &all))?;
    Ok(path)
}
