//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro            # everything
//! repro table1     # one artifact
//! repro --list     # available artifact names
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for e in mcfpga_bench::EXPERIMENTS {
            println!("{e}");
        }
        return;
    }
    let pick = |name: &str| -> Option<String> {
        Some(match name.trim_start_matches("--") {
            "table1" => mcfpga_bench::table1_report(),
            "table2" => mcfpga_bench::table2_report(),
            "fig1" => mcfpga_bench::fig1_report(),
            "fig2" => mcfpga_bench::fig2_report(),
            "fig3" => mcfpga_bench::fig3_report(),
            "fig4" => mcfpga_bench::fig4_report(),
            "fig5" | "fig6" => mcfpga_bench::fig5_fig6_report(),
            "fig7" => mcfpga_bench::fig7_report(),
            "fig8" => mcfpga_bench::fig8_report(),
            "fig9" | "fig10" => mcfpga_bench::fig9_fig10_report(),
            "fig11" => mcfpga_bench::fig11_report(),
            "scaling" => mcfpga_bench::scaling_report(),
            "redundancy" => mcfpga_bench::redundancy_report(),
            "power" => mcfpga_bench::power_report(),
            "latency" => mcfpga_bench::latency_report(),
            "equivalence" => mcfpga_bench::equivalence_report(),
            _ => return None,
        })
    };
    if args.is_empty() {
        println!("{}", mcfpga_bench::full_report());
        return;
    }
    for a in &args {
        match pick(a) {
            Some(r) => println!("{r}"),
            None => {
                eprintln!("unknown artifact '{a}' — try --list");
                std::process::exit(2);
            }
        }
    }
}
