//! Edge cases of schedule-driven execution: empty schedules, single-context
//! schedules, and schedules that reference a context a partial compilation
//! never saw (which must error, not panic).

use mcfpga_core::ArchKind;
use mcfpga_css::optimize::{optimize_sweep, CostMatrix, OptimizeMode};
use mcfpga_css::Schedule;
use mcfpga_device::TechParams;
use mcfpga_fabric::compiled::CompiledFabric;
use mcfpga_fabric::context::{run_schedule, ContextSequencer};
use mcfpga_fabric::netlist_ir::generators;
use mcfpga_fabric::route::implement_netlist;
use mcfpga_fabric::{Fabric, FabricError, FabricParams};

fn two_context_fabric() -> Fabric {
    let mut f = Fabric::new(FabricParams::default()).unwrap();
    implement_netlist(&mut f, &generators::parity_tree(3).unwrap(), 0, 2).unwrap();
    implement_netlist(&mut f, &generators::wire_lanes(1).unwrap(), 1, 3).unwrap();
    f
}

const UNION: &[(&str, u64)] = &[("x0", 0b01), ("x1", 0b11), ("x2", 0), ("in0", 0b10)];

#[test]
fn empty_schedule_runs_zero_steps() {
    let compiled = CompiledFabric::compile(&two_context_fabric()).unwrap();
    let sched = Schedule::explicit(4, vec![]).unwrap();
    for arch in ArchKind::all() {
        let mut seq = ContextSequencer::new(arch, 4).unwrap();
        let run = run_schedule(&compiled, &mut seq, &sched, UNION, &TechParams::default()).unwrap();
        assert!(run.steps.is_empty(), "{arch:?}");
        assert_eq!(run.stats.steps, 0);
        assert_eq!(run.stats.switches, 0);
        assert_eq!(run.stats.wire_toggles, 0);
        assert_eq!(run.stats.dynamic_energy_j, 0.0);
    }
}

#[test]
fn single_context_schedule_never_switches() {
    let compiled = CompiledFabric::compile(&two_context_fabric()).unwrap();
    let sched = Schedule::explicit(4, vec![1; 5]).unwrap();
    let mut seq = ContextSequencer::new(ArchKind::Hybrid, 4).unwrap();
    let run = run_schedule(&compiled, &mut seq, &sched, UNION, &TechParams::default()).unwrap();
    assert_eq!(run.steps.len(), 5);
    // one switch to reach context 1, then it dwells
    assert_eq!(run.stats.switches, 1);
    for (ctx, outs) in &run.steps {
        assert_eq!(*ctx, 1);
        assert_eq!(outs[0].1, 0b10, "wire lane passes in0 through every step");
    }
}

#[test]
fn schedule_into_uncompiled_context_errors_not_panics() {
    let fabric = two_context_fabric();
    // only context 0 compiled; the schedule also visits context 1
    let partial = CompiledFabric::compile_context(&fabric, 0).unwrap();
    let sched = Schedule::explicit(4, vec![0, 1]).unwrap();
    let mut seq = ContextSequencer::new(ArchKind::Hybrid, 4).unwrap();
    let err = run_schedule(&partial, &mut seq, &sched, UNION, &TechParams::default()).unwrap_err();
    assert_eq!(
        err,
        FabricError::ContextNotCompiled {
            ctx: 1,
            compiled: 0
        }
    );
}

#[test]
fn schedule_beyond_fabric_contexts_errors_not_panics() {
    // the schedule's domain (8 contexts) is wider than the fabric's (4):
    // stepping to context 5 must surface ContextOutOfRange
    let compiled = CompiledFabric::compile(&two_context_fabric()).unwrap();
    let sched = Schedule::explicit(8, vec![0, 5]).unwrap();
    let mut seq = ContextSequencer::new(ArchKind::Hybrid, 8).unwrap();
    let err = run_schedule(&compiled, &mut seq, &sched, UNION, &TechParams::default()).unwrap_err();
    assert_eq!(
        err,
        FabricError::ContextOutOfRange {
            ctx: 5,
            contexts: 4
        }
    );
}

/// Duplicate context ids handed to a sweep are *specified* to collapse —
/// the dedup-not-error decision (documented on `Schedule::active_sweep`
/// and `css::optimize`). A sweep visits each context at most once, so the
/// replay executes one step per distinct context, not per duplicate.
#[test]
fn duplicate_context_ids_in_a_sweep_collapse() {
    let compiled = CompiledFabric::compile(&two_context_fabric()).unwrap();
    // context 1 reported pending three times, context 0 twice
    let sched = Schedule::active_sweep(4, &[1, 1, 0, 1, 0]).unwrap();
    assert_eq!(sched.as_slice(), &[0, 1], "duplicates dedup, not error");
    let mut seq = ContextSequencer::new(ArchKind::Hybrid, 4).unwrap();
    let run = run_schedule(&compiled, &mut seq, &sched, UNION, &TechParams::default()).unwrap();
    assert_eq!(run.steps.len(), 2, "one execution per distinct context");
    assert_eq!(run.stats.switches, 1, "stay on 0, one switch to 1");
}

/// The optimizer makes the same dedup decision, so replaying its plan of
/// a duplicated sweep equals replaying the deduplicated naive order —
/// same outputs, never more toggles.
#[test]
fn optimizer_collapses_duplicates_and_replays_equivalently() {
    let compiled = CompiledFabric::compile(&two_context_fabric()).unwrap();
    let matrix = CostMatrix::hybrid(4).unwrap();
    let dup = Schedule::explicit(4, vec![1, 0, 1, 0, 1]).unwrap();
    let opt = optimize_sweep(&dup, &matrix, Some(0)).unwrap();
    let mut visited = opt.schedule.as_slice().to_vec();
    visited.sort_unstable();
    assert_eq!(visited, vec![0, 1], "each context exactly once");

    let p = TechParams::default();
    let mut seq = ContextSequencer::new(ArchKind::Hybrid, 4).unwrap();
    let naive = Schedule::active_sweep(4, &[1, 0, 1, 0, 1]).unwrap();
    let naive_run = run_schedule(&compiled, &mut seq, &naive, UNION, &p).unwrap();
    let opt_run = run_schedule(&compiled, &mut seq, &opt.schedule, UNION, &p).unwrap();
    assert!(opt_run.stats.wire_toggles <= naive_run.stats.wire_toggles);
    for (ctx, outs) in &naive_run.steps {
        let (_, opt_outs) = opt_run
            .steps
            .iter()
            .find(|(c, _)| c == ctx)
            .expect("optimized sweep visits the same contexts");
        assert_eq!(outs, opt_outs, "ctx {ctx} outputs must be identical");
    }
    // replaying the *duplicated* schedule itself is still legal (explicit
    // schedules preserve duplicates by design) and costs at least as much
    let dup_run = run_schedule(&compiled, &mut seq, &dup, UNION, &p).unwrap();
    assert_eq!(dup_run.steps.len(), 5);
    assert!(dup_run.stats.wire_toggles >= opt_run.stats.wire_toggles);
}

/// `plan_sweep` accepts a duplicated sweep too: the plan it returns is
/// deduplicated, so a service replaying the plan never double-executes.
#[test]
fn plan_sweep_dedups_duplicated_input() {
    let seq = ContextSequencer::new(ArchKind::Hybrid, 4).unwrap();
    let dup = Schedule::explicit(4, vec![3, 3, 2, 3, 2]).unwrap();
    let plan = seq.plan_sweep(&dup, OptimizeMode::Optimized).unwrap();
    let mut visited = plan.as_slice().to_vec();
    visited.sort_unstable();
    assert_eq!(visited, vec![2, 3]);
}

#[test]
fn active_sweep_drives_only_pending_contexts() {
    let compiled = CompiledFabric::compile(&two_context_fabric()).unwrap();
    // only context 1 has pending work; context 0 is never switched in
    let sched = Schedule::active_sweep(4, &[1, 1, 1]).unwrap();
    assert_eq!(sched.as_slice(), &[1]);
    let mut seq = ContextSequencer::new(ArchKind::Hybrid, 4).unwrap();
    let run = run_schedule(&compiled, &mut seq, &sched, UNION, &TechParams::default()).unwrap();
    assert_eq!(run.steps.len(), 1);
    assert_eq!(run.steps[0].0, 1);
}
