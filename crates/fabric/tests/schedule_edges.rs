//! Edge cases of schedule-driven execution: empty schedules, single-context
//! schedules, and schedules that reference a context a partial compilation
//! never saw (which must error, not panic).

use mcfpga_core::ArchKind;
use mcfpga_css::Schedule;
use mcfpga_device::TechParams;
use mcfpga_fabric::compiled::CompiledFabric;
use mcfpga_fabric::context::{run_schedule, ContextSequencer};
use mcfpga_fabric::netlist_ir::generators;
use mcfpga_fabric::route::implement_netlist;
use mcfpga_fabric::{Fabric, FabricError, FabricParams};

fn two_context_fabric() -> Fabric {
    let mut f = Fabric::new(FabricParams::default()).unwrap();
    implement_netlist(&mut f, &generators::parity_tree(3).unwrap(), 0, 2).unwrap();
    implement_netlist(&mut f, &generators::wire_lanes(1).unwrap(), 1, 3).unwrap();
    f
}

const UNION: &[(&str, u64)] = &[("x0", 0b01), ("x1", 0b11), ("x2", 0), ("in0", 0b10)];

#[test]
fn empty_schedule_runs_zero_steps() {
    let compiled = CompiledFabric::compile(&two_context_fabric()).unwrap();
    let sched = Schedule::explicit(4, vec![]).unwrap();
    for arch in ArchKind::all() {
        let mut seq = ContextSequencer::new(arch, 4).unwrap();
        let run = run_schedule(&compiled, &mut seq, &sched, UNION, &TechParams::default()).unwrap();
        assert!(run.steps.is_empty(), "{arch:?}");
        assert_eq!(run.stats.steps, 0);
        assert_eq!(run.stats.switches, 0);
        assert_eq!(run.stats.wire_toggles, 0);
        assert_eq!(run.stats.dynamic_energy_j, 0.0);
    }
}

#[test]
fn single_context_schedule_never_switches() {
    let compiled = CompiledFabric::compile(&two_context_fabric()).unwrap();
    let sched = Schedule::explicit(4, vec![1; 5]).unwrap();
    let mut seq = ContextSequencer::new(ArchKind::Hybrid, 4).unwrap();
    let run = run_schedule(&compiled, &mut seq, &sched, UNION, &TechParams::default()).unwrap();
    assert_eq!(run.steps.len(), 5);
    // one switch to reach context 1, then it dwells
    assert_eq!(run.stats.switches, 1);
    for (ctx, outs) in &run.steps {
        assert_eq!(*ctx, 1);
        assert_eq!(outs[0].1, 0b10, "wire lane passes in0 through every step");
    }
}

#[test]
fn schedule_into_uncompiled_context_errors_not_panics() {
    let fabric = two_context_fabric();
    // only context 0 compiled; the schedule also visits context 1
    let partial = CompiledFabric::compile_context(&fabric, 0).unwrap();
    let sched = Schedule::explicit(4, vec![0, 1]).unwrap();
    let mut seq = ContextSequencer::new(ArchKind::Hybrid, 4).unwrap();
    let err = run_schedule(&partial, &mut seq, &sched, UNION, &TechParams::default()).unwrap_err();
    assert_eq!(
        err,
        FabricError::ContextNotCompiled {
            ctx: 1,
            compiled: 0
        }
    );
}

#[test]
fn schedule_beyond_fabric_contexts_errors_not_panics() {
    // the schedule's domain (8 contexts) is wider than the fabric's (4):
    // stepping to context 5 must surface ContextOutOfRange
    let compiled = CompiledFabric::compile(&two_context_fabric()).unwrap();
    let sched = Schedule::explicit(8, vec![0, 5]).unwrap();
    let mut seq = ContextSequencer::new(ArchKind::Hybrid, 8).unwrap();
    let err = run_schedule(&compiled, &mut seq, &sched, UNION, &TechParams::default()).unwrap_err();
    assert_eq!(
        err,
        FabricError::ContextOutOfRange {
            ctx: 5,
            contexts: 4
        }
    );
}

#[test]
fn active_sweep_drives_only_pending_contexts() {
    let compiled = CompiledFabric::compile(&two_context_fabric()).unwrap();
    // only context 1 has pending work; context 0 is never switched in
    let sched = Schedule::active_sweep(4, &[1, 1, 1]).unwrap();
    assert_eq!(sched.as_slice(), &[1]);
    let mut seq = ContextSequencer::new(ArchKind::Hybrid, 4).unwrap();
    let run = run_schedule(&compiled, &mut seq, &sched, UNION, &TechParams::default()).unwrap();
    assert_eq!(run.steps.len(), 1);
    assert_eq!(run.steps[0].0, 1);
}
