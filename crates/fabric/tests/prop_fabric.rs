//! Property tests for the fabric: random LUT DAGs must survive the whole
//! place→route→simulate pipeline and agree with the golden model.

use mcfpga_core::ArchKind;
use mcfpga_fabric::netlist_ir::{LogicNetlist, NodeId};
use mcfpga_fabric::route::implement_netlist;
use mcfpga_fabric::sim::evaluate_sorted;
use mcfpga_fabric::temporal::{execute, implement, partition};
use mcfpga_fabric::{Fabric, FabricParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Builds a random DAG: `inputs` primary inputs, `luts` LUT nodes with 1–3
/// fanins drawn from earlier nodes, 2 primary outputs.
fn random_dag(seed: u64, inputs: usize, luts: usize) -> LogicNetlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = LogicNetlist::new();
    let mut pool: Vec<NodeId> = (0..inputs)
        .map(|i| nl.add_input(&format!("i{i}")))
        .collect();
    for j in 0..luts {
        let f = 1 + rng.random_range(0..3usize.min(pool.len()));
        let mut fanin = Vec::with_capacity(f);
        for _ in 0..f {
            fanin.push(pool[rng.random_range(0..pool.len())]);
        }
        fanin.dedup();
        let rows = 1u64 << fanin.len();
        let table = rng.random_range(0..(1u64 << rows.min(63)));
        let id = nl.add_lut(&format!("l{j}"), &fanin, table).unwrap();
        pool.push(id);
    }
    let o1 = pool[pool.len() - 1];
    let o2 = pool[pool.len() - 2];
    nl.add_output("o1", o1).unwrap();
    nl.add_output("o2", o2).unwrap();
    nl
}

fn fabric() -> Fabric {
    Fabric::new(FabricParams {
        width: 5,
        height: 5,
        channel_width: 4,
        ..FabricParams::default()
    })
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A random DAG mapped to one context computes exactly what the golden
    /// model computes, over random input vectors.
    #[test]
    fn fabric_matches_golden_on_random_dags(
        seed in 0u64..5000,
        vectors in prop::collection::vec(any::<u64>(), 4),
    ) {
        let nl = random_dag(seed, 4, 6);
        let mut f = fabric();
        // routing of a random DAG can legitimately fail on a small grid —
        // discard those cases rather than masking real mismatches
        let ok = implement_netlist(&mut f, &nl, 0, seed);
        prop_assume!(ok.is_ok());
        for v in vectors {
            let ins: Vec<(String, bool)> = (0..4)
                .map(|i| (format!("i{i}"), (v >> i) & 1 == 1))
                .collect();
            let ins_ref: Vec<(&str, bool)> = ins.iter().map(|(n, b)| (n.as_str(), *b)).collect();
            let mut golden = nl.eval(&ins_ref).unwrap();
            golden.sort();
            let got = evaluate_sorted(&f, 0, &ins_ref).unwrap();
            prop_assert_eq!(got, golden);
        }
    }

    /// Temporal partitioning preserves semantics for random DAGs.
    #[test]
    fn temporal_partition_matches_golden(
        seed in 0u64..2000,
        v in any::<u64>(),
    ) {
        let nl = random_dag(seed, 4, 8);
        let part = partition(&nl, 4).unwrap();
        let mut f = fabric();
        let ok = implement(&mut f, &part, seed);
        prop_assume!(ok.is_ok());
        let ins: Vec<(String, bool)> = (0..4)
            .map(|i| (format!("i{i}"), (v >> i) & 1 == 1))
            .collect();
        let ins_ref: Vec<(&str, bool)> = ins.iter().map(|(n, b)| (n.as_str(), *b)).collect();
        let mut golden = nl.eval(&ins_ref).unwrap();
        golden.sort();
        let mut got = execute(&f, &part, &ins_ref).unwrap();
        got.sort();
        prop_assert_eq!(got, golden);
    }

    /// Bitstream round-trips preserve random configurations bit-exactly.
    #[test]
    fn bitstream_roundtrip_random(seed in 0u64..2000) {
        use mcfpga_fabric::bitstream::{pack, unpack};
        let nl = random_dag(seed, 3, 5);
        let mut f = fabric();
        let ok = implement_netlist(&mut f, &nl, (seed % 4) as usize, seed);
        prop_assume!(ok.is_ok());
        let restored = unpack(pack(&f)).unwrap();
        // identical behaviour on a random vector
        let ins: Vec<(String, bool)> = (0..3)
            .map(|i| (format!("i{i}"), (seed >> i) & 1 == 1))
            .collect();
        let ins_ref: Vec<(&str, bool)> = ins.iter().map(|(n, b)| (n.as_str(), *b)).collect();
        let ctx = (seed % 4) as usize;
        prop_assert_eq!(
            evaluate_sorted(&f, ctx, &ins_ref).unwrap(),
            evaluate_sorted(&restored, ctx, &ins_ref).unwrap()
        );
    }

    /// Fabric transistor roll-up keeps the architecture ordering at any
    /// geometry.
    #[test]
    fn rollup_ordering(w in 2usize..8, h in 2usize..8, ch in 1usize..4) {
        let mk = |arch| Fabric::new(FabricParams {
            width: w,
            height: h,
            channel_width: ch,
            arch,
            ..FabricParams::default()
        }).unwrap().routing_transistor_count();
        let s = mk(ArchKind::Sram);
        let m = mk(ArchKind::MvFgfp);
        let hy = mk(ArchKind::Hybrid);
        prop_assert!(hy < m && m < s);
    }
}
