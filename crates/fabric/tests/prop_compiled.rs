//! Engine equivalence: the compiled levelized bit-parallel engine must
//! match the legacy fixpoint sweep **bit-for-bit** — on random routed
//! fabrics, across every context, across all 64 lanes of a batch — and
//! the straight-line kernel (with its dirty-cone incremental path) must
//! match the branchy interpreter across all 256 chunked lanes.

use mcfpga_fabric::array::{Dir, Sink, Source};
use mcfpga_fabric::compiled::{CompiledFabric, LaneChunk, LANES, LANE_WORDS, MAX_LANES};
use mcfpga_fabric::netlist_ir::{LogicNetlist, NodeId};
use mcfpga_fabric::route::implement_netlist;
use mcfpga_fabric::sim::evaluate_fixpoint;
use mcfpga_fabric::{Fabric, FabricParams, TileCoord, DIRTY_ALL};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random DAG: `inputs` primary inputs named `{prefix}i0..`, `luts` LUT
/// nodes with 1–3 fanins drawn from earlier nodes, 2 primary outputs
/// named `{prefix}o1`/`{prefix}o2`. A `"reg:"` prefix mimics a temporal
/// stage's stream-register IO.
fn random_dag(seed: u64, inputs: usize, luts: usize, prefix: &str) -> LogicNetlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = LogicNetlist::new();
    let mut pool: Vec<NodeId> = (0..inputs)
        .map(|i| nl.add_input(&format!("{prefix}i{i}")))
        .collect();
    for j in 0..luts {
        let f = 1 + rng.random_range(0..3usize.min(pool.len()));
        let mut fanin = Vec::with_capacity(f);
        for _ in 0..f {
            fanin.push(pool[rng.random_range(0..pool.len())]);
        }
        fanin.dedup();
        let rows = 1u64 << fanin.len();
        let table = rng.random_range(0..(1u64 << rows.min(63)));
        let id = nl.add_lut(&format!("l{j}"), &fanin, table).unwrap();
        pool.push(id);
    }
    let o1 = pool[pool.len() - 1];
    let o2 = pool[pool.len() - 2];
    nl.add_output(&format!("{prefix}o1"), o1).unwrap();
    nl.add_output(&format!("{prefix}o2"), o2).unwrap();
    nl
}

fn fabric() -> Fabric {
    Fabric::new(FabricParams {
        width: 5,
        height: 5,
        channel_width: 4,
        ..FabricParams::default()
    })
    .unwrap()
}

/// Random full-width lane chunk: one of 256 vectors per bit position.
fn random_chunk(rng: &mut StdRng) -> LaneChunk {
    std::array::from_fn(|_| rng.random_range(0..u64::MAX))
}

/// Overlay a two-tile combinational wire loop on free sinks of `ctx`,
/// turning the plane cyclic without disturbing the routed netlist.
/// Returns false if every candidate sink pair is already driven.
fn inject_wire_loop(f: &mut Fabric, ctx: usize) -> bool {
    let p = *f.params();
    for y in 0..p.height {
        for x in 0..p.width.saturating_sub(1) {
            let a = TileCoord { x, y };
            let b = TileCoord { x: x + 1, y };
            for w in 0..p.channel_width {
                let east = Sink::WireTo { dir: Dir::East, w };
                let west = Sink::WireTo { dir: Dir::West, w };
                let free = f.route_of(a, ctx, east).unwrap().is_none()
                    && f.route_of(b, ctx, west).unwrap().is_none();
                if !free {
                    continue;
                }
                // a.east <- (east neighbour's) west feed and vice versa:
                // the two wires drive each other and never resolve
                f.set_route(a, ctx, east, Some(Source::WireFrom { dir: Dir::East, w }))
                    .unwrap();
                f.set_route(b, ctx, west, Some(Source::WireFrom { dir: Dir::West, w }))
                    .unwrap();
                return true;
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Compiled batch evaluation equals the fixpoint sweep on every context
    /// of a multi-context fabric, for every one of the 64 lanes.
    #[test]
    fn compiled_matches_fixpoint_all_contexts_all_lanes(
        seed in 0u64..5000,
        lane_seed in any::<u64>(),
    ) {
        const INPUTS: usize = 4;
        // a different random DAG in each of the 4 contexts
        let mut f = fabric();
        let mut mapped = Vec::new();
        for ctx in 0..4usize {
            let nl = random_dag(seed.wrapping_add(1 + ctx as u64), INPUTS, 5 + ctx, "");
            if implement_netlist(&mut f, &nl, ctx, seed ^ ctx as u64).is_ok() {
                mapped.push(ctx);
            } else {
                f.clear_context(ctx).unwrap();
            }
        }
        prop_assume!(!mapped.is_empty());

        let compiled = CompiledFabric::compile(&f).unwrap();
        // 64 random input vectors, packed one lane each
        let mut rng = StdRng::seed_from_u64(lane_seed);
        let lanes: Vec<u64> = (0..INPUTS).map(|_| rng.random_range(0..u64::MAX)).collect();
        let names: Vec<String> = (0..INPUTS).map(|i| format!("i{i}")).collect();
        let batch: Vec<(&str, u64)> = names
            .iter()
            .zip(&lanes)
            .map(|(n, v)| (n.as_str(), *v))
            .collect();

        for &ctx in &mapped {
            let got = compiled.eval_batch_sorted(ctx, &batch).unwrap();
            for lane in 0..LANES {
                let scalar: Vec<(&str, bool)> = names
                    .iter()
                    .zip(&lanes)
                    .map(|(n, v)| (n.as_str(), (v >> lane) & 1 == 1))
                    .collect();
                let (mut want, _) = evaluate_fixpoint(&f, ctx, &scalar).unwrap();
                want.sort();
                prop_assert_eq!(want.len(), got.len());
                for (w, g) in want.iter().zip(&got) {
                    prop_assert_eq!(&w.0, &g.0, "ctx {} lane {}", ctx, lane);
                    prop_assert_eq!(
                        w.1,
                        (g.1 >> lane) & 1 == 1,
                        "output {} ctx {} lane {}",
                        w.0, ctx, lane
                    );
                }
            }
        }
    }

    /// The dense compiled state agrees with the sparse fixpoint state on
    /// every routing resource (values *and* known-ness), per lane.
    #[test]
    fn compiled_state_matches_fixpoint_state(
        seed in 0u64..2000,
        vector in any::<u8>(),
    ) {
        const INPUTS: usize = 4;
        let nl = random_dag(seed, INPUTS, 7, "");
        let mut f = fabric();
        prop_assume!(implement_netlist(&mut f, &nl, 0, seed).is_ok());
        let compiled = CompiledFabric::compile(&f).unwrap();

        let scalar: Vec<(String, bool)> = (0..INPUTS)
            .map(|i| (format!("i{i}"), (vector >> i) & 1 == 1))
            .collect();
        let scalar_ref: Vec<(&str, bool)> =
            scalar.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let batch: Vec<(&str, u64)> = scalar
            .iter()
            .map(|(n, v)| (n.as_str(), if *v { !0u64 } else { 0 }))
            .collect();

        let (_, want) = evaluate_fixpoint(&f, 0, &scalar_ref).unwrap();
        let (_, got) = compiled.eval_batch(0, &batch).unwrap();
        let p = *f.params();
        for t in f.tiles() {
            prop_assert_eq!(
                want.lut_out(t),
                got.lut_out(t).map(|v| v & 1 == 1),
                "lut_out {}", t
            );
            for dir in mcfpga_fabric::array::Dir::ALL {
                for w in 0..p.channel_width {
                    prop_assert_eq!(
                        want.wire(t, dir, w),
                        got.wire(t, dir, w).map(|v| v & 1 == 1),
                        "wire {} {:?} {}", t, dir, w
                    );
                }
            }
            for port in 0..p.io_out {
                prop_assert_eq!(
                    want.io_out(t, port),
                    got.io_out(t, port).map(|v| v & 1 == 1),
                    "io_out {} {}", t, port
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The straight-line kernel equals the branchy interpreter — and the
    /// legacy fixpoint sweep — bit-for-bit across all 256 chunked lanes,
    /// with and without stream-register (`reg:`) IO names.
    #[test]
    fn kernel_matches_interpreter_and_fixpoint_across_chunked_lanes(
        seed in 0u64..5000,
        lane_seed in any::<u64>(),
        reg_io in any::<bool>(),
    ) {
        const INPUTS: usize = 4;
        let prefix = if reg_io { "reg:" } else { "" };
        let nl = random_dag(seed, INPUTS, 7, prefix);
        let mut f = fabric();
        prop_assume!(implement_netlist(&mut f, &nl, 0, seed).is_ok());
        let compiled = CompiledFabric::compile(&f).unwrap();
        prop_assert!(compiled.has_kernel(0), "acyclic plane must compile a kernel");

        let mut rng = StdRng::seed_from_u64(lane_seed);
        let names: Vec<String> = (0..INPUTS).map(|i| format!("{prefix}i{i}")).collect();
        let chunks: Vec<LaneChunk> = names.iter().map(|_| random_chunk(&mut rng)).collect();
        let inputs: Vec<(&str, LaneChunk)> = names
            .iter()
            .zip(&chunks)
            .map(|(n, c)| (n.as_str(), *c))
            .collect();

        let mut st_kernel = compiled.new_state();
        let kernel_outs = compiled
            .eval_chunks_into(0, &inputs, LANE_WORDS, &mut st_kernel)
            .unwrap();
        let mut st_ref = compiled.new_state();
        let ref_outs = compiled
            .eval_chunks_into_reference(0, &inputs, LANE_WORDS, &mut st_ref)
            .unwrap();
        prop_assert_eq!(&kernel_outs, &ref_outs, "kernel vs interpreter");

        // the prebound path agrees too, and flags the reg-ness of the IO
        let bound = compiled.bind(0).unwrap();
        for (_, name, is_reg) in bound.inputs().iter().chain(bound.outputs()) {
            prop_assert_eq!(*is_reg, reg_io, "reg flag of '{}'", name);
        }
        let bound_chunks: Vec<LaneChunk> = bound
            .inputs()
            .iter()
            .map(|(_, name, _)| {
                inputs.iter().find(|(n, _)| *n == name.as_ref()).unwrap().1
            })
            .collect();
        let mut st_bound = compiled.new_state();
        let mut outs = Vec::new();
        let stats = compiled
            .eval_bound_into(&bound, &bound_chunks, LANE_WORDS, DIRTY_ALL, &mut st_bound, &mut outs)
            .unwrap();
        prop_assert!(stats.kernel);
        prop_assert_eq!(stats.ops_skipped, 0, "a DIRTY_ALL sweep skips nothing");
        for ((_, name, _), chunk) in bound.outputs().iter().zip(&outs) {
            let named = kernel_outs
                .iter()
                .find(|(n, _)| n == name.as_ref())
                .unwrap();
            prop_assert_eq!(&named.1, chunk, "bound output '{}'", name);
        }

        // every one of the 256 lanes equals a scalar fixpoint evaluation
        let mut want_sorted = kernel_outs.clone();
        want_sorted.sort();
        for lane in 0..MAX_LANES {
            let (word, bit) = (lane / 64, lane % 64);
            let scalar: Vec<(&str, bool)> = names
                .iter()
                .zip(&chunks)
                .map(|(n, c)| (n.as_str(), (c[word] >> bit) & 1 == 1))
                .collect();
            let (mut gold, _) = evaluate_fixpoint(&f, 0, &scalar).unwrap();
            gold.sort();
            prop_assert_eq!(gold.len(), want_sorted.len());
            for (g, (name, chunk)) in gold.iter().zip(&want_sorted) {
                prop_assert_eq!(&g.0, name, "lane {}", lane);
                prop_assert_eq!(
                    g.1,
                    (chunk[word] >> bit) & 1 == 1,
                    "output {} lane {}", g.0, lane
                );
            }
        }
    }

    /// A cyclic plane compiles no kernel; `eval_chunks_into` falls back
    /// to the interpreter and stays the bit-exact oracle, and the
    /// prebound path reports a full non-kernel sweep regardless of the
    /// dirty mask.
    #[test]
    fn cyclic_overlay_falls_back_to_the_interpreter(
        seed in 0u64..3000,
        lane_seed in any::<u64>(),
    ) {
        const INPUTS: usize = 4;
        let nl = random_dag(seed, INPUTS, 5, "");
        let mut f = fabric();
        prop_assume!(implement_netlist(&mut f, &nl, 0, seed).is_ok());
        prop_assume!(inject_wire_loop(&mut f, 0));
        let compiled = CompiledFabric::compile(&f).unwrap();
        prop_assert!(compiled.plane(0).unwrap().is_cyclic());
        prop_assert!(!compiled.has_kernel(0), "cyclic planes carry no kernel");

        let mut rng = StdRng::seed_from_u64(lane_seed);
        let names: Vec<String> = (0..INPUTS).map(|i| format!("i{i}")).collect();
        let chunks: Vec<LaneChunk> = names.iter().map(|_| random_chunk(&mut rng)).collect();
        let inputs: Vec<(&str, LaneChunk)> = names
            .iter()
            .zip(&chunks)
            .map(|(n, c)| (n.as_str(), *c))
            .collect();

        let mut st_a = compiled.new_state();
        let got = compiled.eval_chunks_into(0, &inputs, LANE_WORDS, &mut st_a).unwrap();
        let mut st_b = compiled.new_state();
        let reference = compiled
            .eval_chunks_into_reference(0, &inputs, LANE_WORDS, &mut st_b)
            .unwrap();
        prop_assert_eq!(&got, &reference);

        let bound = compiled.bind(0).unwrap();
        let bound_chunks: Vec<LaneChunk> = bound
            .inputs()
            .iter()
            .map(|(_, name, _)| {
                inputs.iter().find(|(n, _)| *n == name.as_ref()).unwrap().1
            })
            .collect();
        let mut st_c = compiled.new_state();
        let mut outs = Vec::new();
        // dirty = 0 is ignored off the kernel path: still a full sweep
        let stats = compiled
            .eval_bound_into(&bound, &bound_chunks, LANE_WORDS, 0, &mut st_c, &mut outs)
            .unwrap();
        prop_assert!(!stats.kernel);
        prop_assert_eq!(stats.ops_skipped, 0);
        for ((_, name, _), chunk) in bound.outputs().iter().zip(&outs) {
            let named = got.iter().find(|(n, _)| n == name.as_ref()).unwrap();
            prop_assert_eq!(&named.1, chunk, "bound output '{}'", name);
        }

        for lane in 0..MAX_LANES {
            let (word, bit) = (lane / 64, lane % 64);
            let scalar: Vec<(&str, bool)> = names
                .iter()
                .zip(&chunks)
                .map(|(n, c)| (n.as_str(), (c[word] >> bit) & 1 == 1))
                .collect();
            let (mut gold, _) = evaluate_fixpoint(&f, 0, &scalar).unwrap();
            gold.sort();
            let mut got_sorted = got.clone();
            got_sorted.sort();
            for (g, (name, chunk)) in gold.iter().zip(&got_sorted) {
                prop_assert_eq!(&g.0, name);
                prop_assert_eq!(
                    g.1,
                    (chunk[word] >> bit) & 1 == 1,
                    "output {} lane {}", g.0, lane
                );
            }
        }
    }

    /// Dirty-cone partial sweeps on a persistent state are
    /// observationally equivalent to fresh full sweeps: after any
    /// sequence of partial input changes, outputs match both a cold
    /// DIRTY_ALL kernel run and the reference interpreter.
    #[test]
    fn dirty_cone_partial_sweeps_match_full_evals(
        seed in 0u64..5000,
        lane_seed in any::<u64>(),
        rounds in 1usize..5,
    ) {
        const INPUTS: usize = 4;
        let nl = random_dag(seed, INPUTS, 7, "");
        let mut f = fabric();
        prop_assume!(implement_netlist(&mut f, &nl, 0, seed).is_ok());
        let compiled = CompiledFabric::compile(&f).unwrap();
        prop_assume!(compiled.has_kernel(0));
        let bound = compiled.bind(0).unwrap();

        let mut rng = StdRng::seed_from_u64(lane_seed);
        let mut chunks: Vec<LaneChunk> =
            bound.inputs().iter().map(|_| random_chunk(&mut rng)).collect();
        let mut st = compiled.new_state();
        let mut outs = Vec::new();
        let full = compiled
            .eval_bound_into(&bound, &chunks, LANE_WORDS, DIRTY_ALL, &mut st, &mut outs)
            .unwrap();
        prop_assert!(full.kernel);
        prop_assert_eq!(full.ops_skipped, 0);

        for round in 0..rounds {
            // flip a random subset of inputs (possibly none)
            let mut dirty = 0u64;
            for (i, chunk) in chunks.iter_mut().enumerate() {
                if rng.random_range(0..2u32) == 1 {
                    *chunk = random_chunk(&mut rng);
                    dirty |= 1 << i;
                }
            }
            let stats = compiled
                .eval_bound_into(&bound, &chunks, LANE_WORDS, dirty, &mut st, &mut outs)
                .unwrap();
            prop_assert!(stats.kernel);
            prop_assert_eq!(stats.ops_total, full.ops_total);
            if dirty == 0 {
                prop_assert_eq!(
                    stats.ops_skipped, stats.ops_total,
                    "an unchanged sweep skips the whole op program"
                );
            }
            let incremental = outs.clone();

            // oracle 1: a cold full kernel sweep on a fresh state
            let mut st_cold = compiled.new_state();
            let cold = compiled
                .eval_bound_into(&bound, &chunks, LANE_WORDS, DIRTY_ALL, &mut st_cold, &mut outs)
                .unwrap();
            prop_assert_eq!(cold.ops_skipped, 0);
            prop_assert_eq!(&incremental, &outs, "round {}: partial vs cold", round);

            // oracle 2: the branchy reference interpreter
            let named: Vec<(&str, LaneChunk)> = bound
                .inputs()
                .iter()
                .zip(&chunks)
                .map(|((_, n, _), c)| (n.as_ref(), *c))
                .collect();
            let mut st_ref = compiled.new_state();
            let reference = compiled
                .eval_chunks_into_reference(0, &named, LANE_WORDS, &mut st_ref)
                .unwrap();
            for ((_, name, _), chunk) in bound.outputs().iter().zip(&incremental) {
                let r = reference.iter().find(|(n, _)| n == name.as_ref()).unwrap();
                prop_assert_eq!(
                    &r.1, chunk,
                    "round {}: output '{}' vs interpreter", round, name
                );
            }
        }
    }
}
