//! Engine equivalence: the compiled levelized bit-parallel engine must
//! match the legacy fixpoint sweep **bit-for-bit** — on random routed
//! fabrics, across every context, across all 64 lanes of a batch.

use mcfpga_fabric::compiled::{CompiledFabric, LANES};
use mcfpga_fabric::netlist_ir::{LogicNetlist, NodeId};
use mcfpga_fabric::route::implement_netlist;
use mcfpga_fabric::sim::evaluate_fixpoint;
use mcfpga_fabric::{Fabric, FabricParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random DAG: `inputs` primary inputs named `i0..`, `luts` LUT nodes with
/// 1–3 fanins drawn from earlier nodes, 2 primary outputs.
fn random_dag(seed: u64, inputs: usize, luts: usize) -> LogicNetlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = LogicNetlist::new();
    let mut pool: Vec<NodeId> = (0..inputs)
        .map(|i| nl.add_input(&format!("i{i}")))
        .collect();
    for j in 0..luts {
        let f = 1 + rng.random_range(0..3usize.min(pool.len()));
        let mut fanin = Vec::with_capacity(f);
        for _ in 0..f {
            fanin.push(pool[rng.random_range(0..pool.len())]);
        }
        fanin.dedup();
        let rows = 1u64 << fanin.len();
        let table = rng.random_range(0..(1u64 << rows.min(63)));
        let id = nl.add_lut(&format!("l{j}"), &fanin, table).unwrap();
        pool.push(id);
    }
    let o1 = pool[pool.len() - 1];
    let o2 = pool[pool.len() - 2];
    nl.add_output("o1", o1).unwrap();
    nl.add_output("o2", o2).unwrap();
    nl
}

fn fabric() -> Fabric {
    Fabric::new(FabricParams {
        width: 5,
        height: 5,
        channel_width: 4,
        ..FabricParams::default()
    })
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Compiled batch evaluation equals the fixpoint sweep on every context
    /// of a multi-context fabric, for every one of the 64 lanes.
    #[test]
    fn compiled_matches_fixpoint_all_contexts_all_lanes(
        seed in 0u64..5000,
        lane_seed in any::<u64>(),
    ) {
        const INPUTS: usize = 4;
        // a different random DAG in each of the 4 contexts
        let mut f = fabric();
        let mut mapped = Vec::new();
        for ctx in 0..4usize {
            let nl = random_dag(seed.wrapping_add(1 + ctx as u64), INPUTS, 5 + ctx);
            if implement_netlist(&mut f, &nl, ctx, seed ^ ctx as u64).is_ok() {
                mapped.push(ctx);
            } else {
                f.clear_context(ctx).unwrap();
            }
        }
        prop_assume!(!mapped.is_empty());

        let compiled = CompiledFabric::compile(&f).unwrap();
        // 64 random input vectors, packed one lane each
        let mut rng = StdRng::seed_from_u64(lane_seed);
        let lanes: Vec<u64> = (0..INPUTS).map(|_| rng.random_range(0..u64::MAX)).collect();
        let names: Vec<String> = (0..INPUTS).map(|i| format!("i{i}")).collect();
        let batch: Vec<(&str, u64)> = names
            .iter()
            .zip(&lanes)
            .map(|(n, v)| (n.as_str(), *v))
            .collect();

        for &ctx in &mapped {
            let got = compiled.eval_batch_sorted(ctx, &batch).unwrap();
            for lane in 0..LANES {
                let scalar: Vec<(&str, bool)> = names
                    .iter()
                    .zip(&lanes)
                    .map(|(n, v)| (n.as_str(), (v >> lane) & 1 == 1))
                    .collect();
                let (mut want, _) = evaluate_fixpoint(&f, ctx, &scalar).unwrap();
                want.sort();
                prop_assert_eq!(want.len(), got.len());
                for (w, g) in want.iter().zip(&got) {
                    prop_assert_eq!(&w.0, &g.0, "ctx {} lane {}", ctx, lane);
                    prop_assert_eq!(
                        w.1,
                        (g.1 >> lane) & 1 == 1,
                        "output {} ctx {} lane {}",
                        w.0, ctx, lane
                    );
                }
            }
        }
    }

    /// The dense compiled state agrees with the sparse fixpoint state on
    /// every routing resource (values *and* known-ness), per lane.
    #[test]
    fn compiled_state_matches_fixpoint_state(
        seed in 0u64..2000,
        vector in any::<u8>(),
    ) {
        const INPUTS: usize = 4;
        let nl = random_dag(seed, INPUTS, 7);
        let mut f = fabric();
        prop_assume!(implement_netlist(&mut f, &nl, 0, seed).is_ok());
        let compiled = CompiledFabric::compile(&f).unwrap();

        let scalar: Vec<(String, bool)> = (0..INPUTS)
            .map(|i| (format!("i{i}"), (vector >> i) & 1 == 1))
            .collect();
        let scalar_ref: Vec<(&str, bool)> =
            scalar.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let batch: Vec<(&str, u64)> = scalar
            .iter()
            .map(|(n, v)| (n.as_str(), if *v { !0u64 } else { 0 }))
            .collect();

        let (_, want) = evaluate_fixpoint(&f, 0, &scalar_ref).unwrap();
        let (_, got) = compiled.eval_batch(0, &batch).unwrap();
        let p = *f.params();
        for t in f.tiles() {
            prop_assert_eq!(
                want.lut_out(t),
                got.lut_out(t).map(|v| v & 1 == 1),
                "lut_out {}", t
            );
            for dir in mcfpga_fabric::array::Dir::ALL {
                for w in 0..p.channel_width {
                    prop_assert_eq!(
                        want.wire(t, dir, w),
                        got.wire(t, dir, w).map(|v| v & 1 == 1),
                        "wire {} {:?} {}", t, dir, w
                    );
                }
            }
            for port in 0..p.io_out {
                prop_assert_eq!(
                    want.io_out(t, port),
                    got.io_out(t, port).map(|v| v & 1 == 1),
                    "io_out {} {}", t, port
                );
            }
        }
    }
}
