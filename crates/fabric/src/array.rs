//! The island-style fabric: tiles, channel wires, switch-block geometry and
//! configuration storage (Fig. 1's array of cells).
//!
//! Each tile holds one cell: a multi-context K-LUT (the programmable logic
//! block) and a crossbar switch block connecting
//!
//! * **sources** (crossbar rows): wires arriving from the four neighbours,
//!   the tile's LUT output, and `io_in` external input ports;
//! * **sinks** (crossbar columns): wires departing to the four neighbours,
//!   the LUT's input pins, and `io_out` external output ports.
//!
//! Every sink stores, per context, which source drives it — that is the
//! routing configuration plane. Counting those cross-points under the three
//! MC-switch architectures reproduces the fabric-level area story.

use crate::lut::MultiContextLut;
use crate::FabricError;
use mcfpga_core::{ArchKind, HybridMcSwitch, MvFgfpMcSwitch, SramMcSwitch};
use serde::{Deserialize, Serialize};

/// Compass directions of channel wires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dir {
    /// Toward `y − 1`.
    North,
    /// Toward `x + 1`.
    East,
    /// Toward `y + 1`.
    South,
    /// Toward `x − 1`.
    West,
}

impl Dir {
    /// All directions in a fixed order.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::East, Dir::South, Dir::West];

    /// The opposite direction.
    #[must_use]
    pub fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::East => Dir::West,
            Dir::South => Dir::North,
            Dir::West => Dir::East,
        }
    }

    /// Coordinate delta.
    #[must_use]
    pub fn delta(self) -> (isize, isize) {
        match self {
            Dir::North => (0, -1),
            Dir::East => (1, 0),
            Dir::South => (0, 1),
            Dir::West => (-1, 0),
        }
    }
}

/// A tile coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TileCoord {
    /// Column.
    pub x: usize,
    /// Row.
    pub y: usize,
}

impl std::fmt::Display for TileCoord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// A crossbar row (source) of one tile's switch block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// Wire arriving from the neighbour in `dir`.
    WireFrom {
        /// Direction the neighbour lies in.
        dir: Dir,
        /// Wire index within the channel.
        w: usize,
    },
    /// The tile's own LUT output.
    LutOut,
    /// External input port `idx` of this tile.
    IoIn(usize),
}

/// A crossbar column (sink) of one tile's switch block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sink {
    /// Wire departing toward the neighbour in `dir`.
    WireTo {
        /// Direction of the receiving neighbour.
        dir: Dir,
        /// Wire index within the channel.
        w: usize,
    },
    /// LUT input pin.
    LutIn(usize),
    /// External output port `idx` of this tile.
    IoOut(usize),
}

/// Fabric geometry and architecture parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricParams {
    /// Grid width (tiles).
    pub width: usize,
    /// Grid height (tiles).
    pub height: usize,
    /// Wires per direction per tile.
    pub channel_width: usize,
    /// LUT inputs.
    pub lut_k: usize,
    /// Configuration contexts.
    pub contexts: usize,
    /// External input ports per tile.
    pub io_in: usize,
    /// External output ports per tile.
    pub io_out: usize,
    /// Switch architecture of every cross-point.
    pub arch: ArchKind,
}

impl Default for FabricParams {
    fn default() -> Self {
        FabricParams {
            width: 4,
            height: 4,
            channel_width: 2,
            lut_k: 4,
            contexts: 4,
            io_in: 2,
            io_out: 2,
            arch: ArchKind::Hybrid,
        }
    }
}

/// Per-tile configuration: the LUT planes plus, per context, the source
/// driving each sink.
#[derive(Debug, Clone, PartialEq)]
pub struct TileConfig {
    /// The tile's LUT (one truth-table plane per context).
    pub lut: MultiContextLut,
    /// `sb[ctx][sink_idx] = Some(source_idx)`.
    pub sb: Vec<Vec<Option<u16>>>,
}

/// The multi-context FPGA.
#[derive(Debug, Clone)]
pub struct Fabric {
    params: FabricParams,
    tiles: Vec<TileConfig>,
    /// `(tile, port, ctx) → signal name` bindings for external inputs.
    input_binds: Vec<(TileCoord, usize, usize, String)>,
    /// `(tile, port, ctx) → signal name` bindings for external outputs.
    output_binds: Vec<(TileCoord, usize, usize, String)>,
}

impl Fabric {
    /// Builds an unconfigured fabric.
    pub fn new(params: FabricParams) -> Result<Self, FabricError> {
        if params.width == 0
            || params.height == 0
            || params.width * params.height > 64 * 64
            || params.channel_width == 0
            || params.channel_width > 16
        {
            return Err(FabricError::BadParams(format!("{params:?}")));
        }
        if params.contexts == 0 || params.contexts > 64 {
            return Err(FabricError::BadParams("contexts".into()));
        }
        let mut tiles = Vec::with_capacity(params.width * params.height);
        for i in 0..params.width * params.height {
            let t = TileCoord {
                x: i % params.width,
                y: i / params.width,
            };
            let sinks = Self::sinks_static(&params, t).len();
            tiles.push(TileConfig {
                lut: MultiContextLut::new(params.lut_k, params.contexts)?,
                sb: vec![vec![None; sinks]; params.contexts],
            });
        }
        Ok(Fabric {
            params,
            tiles,
            input_binds: Vec::new(),
            output_binds: Vec::new(),
        })
    }

    /// Fabric parameters.
    #[must_use]
    pub fn params(&self) -> &FabricParams {
        &self.params
    }

    /// All tile coordinates, row-major.
    pub fn tiles(&self) -> impl Iterator<Item = TileCoord> + '_ {
        let w = self.params.width;
        (0..w * self.params.height).map(move |i| TileCoord { x: i % w, y: i / w })
    }

    /// The neighbour of `t` in `dir`, if on the grid.
    #[must_use]
    pub fn neighbor(&self, t: TileCoord, dir: Dir) -> Option<TileCoord> {
        let (dx, dy) = dir.delta();
        let x = t.x.checked_add_signed(dx)?;
        let y = t.y.checked_add_signed(dy)?;
        (x < self.params.width && y < self.params.height).then_some(TileCoord { x, y })
    }

    fn tile_index(&self, t: TileCoord) -> Result<usize, FabricError> {
        if t.x < self.params.width && t.y < self.params.height {
            Ok(t.y * self.params.width + t.x)
        } else {
            Err(FabricError::BadTile { x: t.x, y: t.y })
        }
    }

    /// Tile configuration (read).
    pub fn tile(&self, t: TileCoord) -> Result<&TileConfig, FabricError> {
        let i = self.tile_index(t)?;
        Ok(&self.tiles[i])
    }

    /// Tile configuration (write).
    pub fn tile_mut(&mut self, t: TileCoord) -> Result<&mut TileConfig, FabricError> {
        let i = self.tile_index(t)?;
        Ok(&mut self.tiles[i])
    }

    fn has_neighbor(params: &FabricParams, t: TileCoord, dir: Dir) -> bool {
        let (dx, dy) = dir.delta();
        match (t.x.checked_add_signed(dx), t.y.checked_add_signed(dy)) {
            (Some(x), Some(y)) => x < params.width && y < params.height,
            _ => false,
        }
    }

    fn sources_static(params: &FabricParams, t: TileCoord) -> Vec<Source> {
        let mut v = Vec::new();
        for dir in Dir::ALL {
            if Self::has_neighbor(params, t, dir) {
                for w in 0..params.channel_width {
                    v.push(Source::WireFrom { dir, w });
                }
            }
        }
        v.push(Source::LutOut);
        for i in 0..params.io_in {
            v.push(Source::IoIn(i));
        }
        v
    }

    fn sinks_static(params: &FabricParams, t: TileCoord) -> Vec<Sink> {
        let mut v = Vec::new();
        for dir in Dir::ALL {
            if Self::has_neighbor(params, t, dir) {
                for w in 0..params.channel_width {
                    v.push(Sink::WireTo { dir, w });
                }
            }
        }
        for pin in 0..params.lut_k {
            v.push(Sink::LutIn(pin));
        }
        for i in 0..params.io_out {
            v.push(Sink::IoOut(i));
        }
        v
    }

    /// The crossbar rows of `t`'s switch block, in index order.
    #[must_use]
    pub fn sources(&self, t: TileCoord) -> Vec<Source> {
        Self::sources_static(&self.params, t)
    }

    /// The crossbar columns of `t`'s switch block, in index order.
    #[must_use]
    pub fn sinks(&self, t: TileCoord) -> Vec<Sink> {
        Self::sinks_static(&self.params, t)
    }

    /// Index of a source within `t`'s row list.
    #[must_use]
    pub fn source_index(&self, t: TileCoord, s: Source) -> Option<usize> {
        self.sources(t).iter().position(|&x| x == s)
    }

    /// Index of a sink within `t`'s column list.
    #[must_use]
    pub fn sink_index(&self, t: TileCoord, s: Sink) -> Option<usize> {
        self.sinks(t).iter().position(|&x| x == s)
    }

    /// Sets (or clears) the driver of a sink in one context.
    pub fn set_route(
        &mut self,
        t: TileCoord,
        ctx: usize,
        sink: Sink,
        source: Option<Source>,
    ) -> Result<(), FabricError> {
        let contexts = self.params.contexts;
        if ctx >= contexts {
            return Err(FabricError::ContextOutOfRange { ctx, contexts });
        }
        let sink_idx = self
            .sink_index(t, sink)
            .ok_or(FabricError::BadTile { x: t.x, y: t.y })?;
        let source_idx = match source {
            Some(s) => Some(
                self.source_index(t, s)
                    .ok_or(FabricError::BadTile { x: t.x, y: t.y })? as u16,
            ),
            None => None,
        };
        let i = self.tile_index(t)?;
        self.tiles[i].sb[ctx][sink_idx] = source_idx;
        Ok(())
    }

    /// The source driving `sink` at `t` in `ctx`, if any.
    pub fn route_of(
        &self,
        t: TileCoord,
        ctx: usize,
        sink: Sink,
    ) -> Result<Option<Source>, FabricError> {
        let sink_idx = self
            .sink_index(t, sink)
            .ok_or(FabricError::BadTile { x: t.x, y: t.y })?;
        let i = self.tile_index(t)?;
        Ok(self.tiles[i].sb[ctx][sink_idx].map(|si| self.sources(t)[si as usize]))
    }

    /// Binds an external input port to a named signal in one context.
    pub fn bind_input(
        &mut self,
        t: TileCoord,
        port: usize,
        ctx: usize,
        name: &str,
    ) -> Result<(), FabricError> {
        self.tile_index(t)?;
        if port >= self.params.io_in {
            return Err(FabricError::BadParams(format!("io_in port {port}")));
        }
        self.input_binds
            .retain(|(t2, p, c, _)| !(*t2 == t && *p == port && *c == ctx));
        self.input_binds.push((t, port, ctx, name.to_string()));
        Ok(())
    }

    /// Binds an external output port to a named signal in one context.
    pub fn bind_output(
        &mut self,
        t: TileCoord,
        port: usize,
        ctx: usize,
        name: &str,
    ) -> Result<(), FabricError> {
        self.tile_index(t)?;
        if port >= self.params.io_out {
            return Err(FabricError::BadParams(format!("io_out port {port}")));
        }
        self.output_binds
            .retain(|(t2, p, c, _)| !(*t2 == t && *p == port && *c == ctx));
        self.output_binds.push((t, port, ctx, name.to_string()));
        Ok(())
    }

    /// Input bindings `(tile, port, ctx, name)`.
    #[must_use]
    pub fn input_binds(&self) -> &[(TileCoord, usize, usize, String)] {
        &self.input_binds
    }

    /// Output bindings `(tile, port, ctx, name)`.
    #[must_use]
    pub fn output_binds(&self) -> &[(TileCoord, usize, usize, String)] {
        &self.output_binds
    }

    /// Clears all routing, LUT planes and bindings for one context.
    pub fn clear_context(&mut self, ctx: usize) -> Result<(), FabricError> {
        let contexts = self.params.contexts;
        if ctx >= contexts {
            return Err(FabricError::ContextOutOfRange { ctx, contexts });
        }
        for tc in &mut self.tiles {
            tc.lut.program(ctx, 0)?;
            for slot in &mut tc.sb[ctx] {
                *slot = None;
            }
        }
        self.input_binds.retain(|(_, _, c, _)| *c != ctx);
        self.output_binds.retain(|(_, _, c, _)| *c != ctx);
        Ok(())
    }

    /// Total cross-points (MC-switches) in the fabric.
    #[must_use]
    pub fn crosspoint_count(&self) -> usize {
        self.tiles()
            .map(|t| self.sources(t).len() * self.sinks(t).len())
            .sum()
    }

    /// Routing-switch transistors of the whole fabric under the configured
    /// architecture (column-shared select networks included for hybrid).
    #[must_use]
    pub fn routing_transistor_count(&self) -> usize {
        let c = self.params.contexts;
        let per_switch = match self.params.arch {
            ArchKind::Sram => SramMcSwitch::transistor_count_for(c),
            ArchKind::MvFgfp => MvFgfpMcSwitch::transistor_count_for(c),
            ArchKind::Hybrid => HybridMcSwitch::transistor_count_for(c),
        };
        let mut total = 0;
        for t in self.tiles() {
            let rows = self.sources(t).len();
            let cols = self.sinks(t).len();
            total += rows * cols * per_switch;
            if self.params.arch == ArchKind::Hybrid {
                total += cols * HybridMcSwitch::select_transistors_for(c);
            }
        }
        total
    }

    /// LUT configuration bits of the whole fabric (per-context planes).
    #[must_use]
    pub fn lut_config_bits(&self) -> usize {
        self.tiles.len() * self.params.contexts * (1 << self.params.lut_k)
    }

    /// Content digest of one context's configuration plane: geometry, the
    /// context id, every tile's LUT table and switch-block row for `ctx`,
    /// and the context's IO bindings (FNV-1a, 64-bit).
    ///
    /// Two fabrics with equal digests for a context produce identical
    /// compiled planes ([`crate::compiled::CompiledFabric::compile_context`]
    /// reads exactly the hashed state), so the digest is a sound cache key
    /// for compiled-plane reuse: re-admitting an identical bitstream into a
    /// same-shaped fabric never needs a recompile.
    pub fn context_digest(&self, ctx: usize) -> Result<u64, FabricError> {
        if ctx >= self.params.contexts {
            return Err(FabricError::ContextOutOfRange {
                ctx,
                contexts: self.params.contexts,
            });
        }
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut put = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        };
        put(&[match self.params.arch {
            ArchKind::Sram => 0u8,
            ArchKind::MvFgfp => 1,
            ArchKind::Hybrid => 2,
        }]);
        for v in [
            self.params.width,
            self.params.height,
            self.params.channel_width,
            self.params.lut_k,
            self.params.contexts,
            self.params.io_in,
            self.params.io_out,
            ctx,
        ] {
            put(&(v as u64).to_le_bytes());
        }
        for tc in &self.tiles {
            put(&tc.lut.table(ctx)?.to_le_bytes());
            for slot in &tc.sb[ctx] {
                match slot {
                    Some(s) => put(&(u32::from(*s) + 1).to_le_bytes()),
                    None => put(&0u32.to_le_bytes()),
                }
            }
        }
        // each bind list is prefixed with a distinct tag and its length so
        // moving a bind between the input and output lists (or across the
        // list boundary) can never produce a colliding digest
        let mut put_binds = |tag: u8, binds: &[(TileCoord, usize, usize, String)]| {
            put(&[tag]);
            let count = binds.iter().filter(|(_, _, c, _)| *c == ctx).count();
            put(&(count as u64).to_le_bytes());
            for (t, port, c, name) in binds {
                if *c != ctx {
                    continue;
                }
                put(&(t.x as u64).to_le_bytes());
                put(&(t.y as u64).to_le_bytes());
                put(&(*port as u64).to_le_bytes());
                put(&(name.len() as u64).to_le_bytes());
                put(name.as_bytes());
            }
        };
        put_binds(0x49, &self.input_binds); // 'I'
        put_binds(0x4F, &self.output_binds); // 'O'
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Fabric {
        Fabric::new(FabricParams {
            width: 3,
            height: 2,
            channel_width: 2,
            lut_k: 4,
            contexts: 4,
            io_in: 2,
            io_out: 2,
            arch: ArchKind::Hybrid,
        })
        .unwrap()
    }

    #[test]
    fn geometry_and_neighbors() {
        let f = small();
        assert_eq!(f.tiles().count(), 6);
        let t = TileCoord { x: 0, y: 0 };
        assert_eq!(f.neighbor(t, Dir::West), None);
        assert_eq!(f.neighbor(t, Dir::North), None);
        assert_eq!(f.neighbor(t, Dir::East), Some(TileCoord { x: 1, y: 0 }));
        assert_eq!(f.neighbor(t, Dir::South), Some(TileCoord { x: 0, y: 1 }));
    }

    #[test]
    fn corner_tiles_have_fewer_wires() {
        let f = small();
        let corner = TileCoord { x: 0, y: 0 };
        let mid = TileCoord { x: 1, y: 0 };
        // corner: E+S = 2 dirs × 2 wires + lut + 2 io = 7 sources
        assert_eq!(f.sources(corner).len(), 7);
        // mid top row: E+S+W = 3 dirs × 2 + 1 + 2 = 9
        assert_eq!(f.sources(mid).len(), 9);
        // sinks: corner = 4 wires + 4 lutin + 2 ioout = 10
        assert_eq!(f.sinks(corner).len(), 10);
    }

    #[test]
    fn route_set_get_roundtrip() {
        let mut f = small();
        let t = TileCoord { x: 1, y: 0 };
        let sink = Sink::LutIn(2);
        let src = Source::WireFrom {
            dir: Dir::West,
            w: 1,
        };
        f.set_route(t, 3, sink, Some(src)).unwrap();
        assert_eq!(f.route_of(t, 3, sink).unwrap(), Some(src));
        assert_eq!(f.route_of(t, 2, sink).unwrap(), None);
        f.set_route(t, 3, sink, None).unwrap();
        assert_eq!(f.route_of(t, 3, sink).unwrap(), None);
    }

    #[test]
    fn io_bindings() {
        let mut f = small();
        let t = TileCoord { x: 0, y: 1 };
        f.bind_input(t, 0, 1, "a").unwrap();
        f.bind_input(t, 0, 1, "b").unwrap(); // rebind replaces
        assert_eq!(f.input_binds().len(), 1);
        assert_eq!(f.input_binds()[0].3, "b");
        assert!(f.bind_input(t, 5, 0, "x").is_err());
        f.bind_output(t, 1, 0, "y").unwrap();
        assert_eq!(f.output_binds().len(), 1);
    }

    #[test]
    fn clear_context_only_touches_one_plane() {
        let mut f = small();
        let t = TileCoord { x: 0, y: 0 };
        f.set_route(t, 0, Sink::LutIn(0), Some(Source::LutOut))
            .unwrap();
        f.set_route(t, 1, Sink::LutIn(0), Some(Source::LutOut))
            .unwrap();
        f.clear_context(0).unwrap();
        assert_eq!(f.route_of(t, 0, Sink::LutIn(0)).unwrap(), None);
        assert_eq!(
            f.route_of(t, 1, Sink::LutIn(0)).unwrap(),
            Some(Source::LutOut)
        );
    }

    #[test]
    fn transistor_rollup_orders() {
        let mk = |arch| {
            Fabric::new(FabricParams {
                arch,
                ..FabricParams::default()
            })
            .unwrap()
            .routing_transistor_count()
        };
        let sram = mk(ArchKind::Sram);
        let mv = mk(ArchKind::MvFgfp);
        let hy = mk(ArchKind::Hybrid);
        assert!(hy < mv && mv < sram);
        // fabric-level ratio close to the per-switch 2/31 with select overhead
        let ratio = hy as f64 / sram as f64;
        assert!(ratio < 0.12, "ratio {ratio}");
    }

    #[test]
    fn crosspoint_count_is_consistent() {
        let f = small();
        let manual: usize = f
            .tiles()
            .map(|t| f.sources(t).len() * f.sinks(t).len())
            .sum();
        assert_eq!(f.crosspoint_count(), manual);
        assert_eq!(f.lut_config_bits(), 6 * 4 * 16);
    }
}
