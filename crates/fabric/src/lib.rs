//! # mcfpga-fabric — an island-style multi-context FPGA
//!
//! The MC-FPGA of the paper's Fig. 1: an array of cells, each holding a
//! programmable logic block (a multi-context K-LUT) and a programmable
//! switch block (a crossbar of multi-context switches), with channel wires
//! between neighbouring cells. The fabric exists so the paper's switches can
//! be exercised by *real workloads*: place a logic netlist, route it per
//! context, stream the bitstream in, and simulate execution while the CSS
//! broadcasts context switches.
//!
//! Pipeline:
//!
//! 1. [`netlist_ir`] — a technology-mapped logic netlist (LUT DAG).
//! 2. [`temporal`] — Trimberger-style temporal partitioning: slice the DAG
//!    into `C` stages, one per context, with inter-stage values held in a
//!    context register file.
//! 3. [`place`] — simulated-annealing placement of each stage's LUTs.
//! 4. [`route`] — per-context maze routing through the crossbar SBs.
//! 5. [`bitstream`] — serialisable configuration for all planes.
//! 6. [`compiled`] — **compile → levelize → bit-parallel**: the production
//!    simulation engine. [`compiled::CompiledFabric::compile`] flattens
//!    every routing resource into a dense `u32` arena, turns each context's
//!    routed configuration into a topologically levelized op list (with a
//!    bounded-sweep fallback for genuinely cyclic configs), and evaluates
//!    **64 input vectors per pass** in `u64` bit lanes.
//! 7. [`sim`] — the one-vector API ([`sim::evaluate`], a thin 1-lane
//!    wrapper over the compiled engine) and the reference fixpoint sweep
//!    ([`sim::evaluate_fixpoint`]) the engine is verified against;
//!    [`context`] sequences contexts through compiled planes and accounts
//!    switching energy.
//! 8. [`power`] — fabric-level area/static-power roll-up per architecture;
//!    [`stats`] reports occupancy and compiled-plane shape.
//!
//! The fabric's switch blocks allow **fanout** (one row driving several
//! columns); the strict partial-permutation discipline of Fig. 11 is kept in
//! `mcfpga-switchblock`, where the designated-row sharing theorem needs it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod array;
pub mod bitstream;
pub mod compiled;
pub mod context;
pub mod lut;
pub mod netlist_ir;
pub mod place;
pub mod power;
pub mod route;
pub mod sim;
pub mod stats;
pub mod temporal;

pub use array::{Fabric, FabricParams, TileCoord};
pub use compiled::{BoundPlan, CompiledFabric, EvalStats, DIRTY_ALL, REG_PREFIX};
pub use context::{run_schedule, ContextSequencer};
pub use lut::MultiContextLut;
pub use netlist_ir::{LogicNetlist, NodeId};
pub use route::RoutedDesign;
pub use temporal::{RegisterFile, TemporalPartition};

/// Errors from fabric construction, mapping and simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum FabricError {
    /// Grid/channel parameters out of range.
    BadParams(String),
    /// Context id out of range.
    ContextOutOfRange {
        /// Offending context.
        ctx: usize,
        /// Fabric context count.
        contexts: usize,
    },
    /// Referenced a tile outside the grid.
    BadTile {
        /// X coordinate.
        x: usize,
        /// Y coordinate.
        y: usize,
    },
    /// Netlist IR malformed (dangling reference, cycle, arity).
    BadNetlist(String),
    /// Placement failed (more LUTs than tiles, etc.).
    PlacementFailed(String),
    /// Routing failed for a net.
    RoutingFailed {
        /// Human-readable net description.
        net: String,
        /// Context being routed.
        ctx: usize,
    },
    /// Simulation could not resolve all values (combinational loop or
    /// undriven input).
    Unresolved(String),
    /// Evaluated a context the [`CompiledFabric`] was not compiled for
    /// (it was built with [`CompiledFabric::compile_context`]).
    ContextNotCompiled {
        /// Context requested for evaluation.
        ctx: usize,
        /// The single context that was compiled.
        compiled: usize,
    },
    /// Bitstream parse error.
    BadBitstream(String),
    /// Underlying switch error.
    Core(mcfpga_core::CoreError),
}

impl From<mcfpga_core::CoreError> for FabricError {
    fn from(e: mcfpga_core::CoreError) -> Self {
        FabricError::Core(e)
    }
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::BadParams(s) => write!(f, "bad fabric params: {s}"),
            FabricError::ContextOutOfRange { ctx, contexts } => {
                write!(f, "context {ctx} out of range ({contexts})")
            }
            FabricError::BadTile { x, y } => write!(f, "tile ({x},{y}) outside grid"),
            FabricError::BadNetlist(s) => write!(f, "bad netlist: {s}"),
            FabricError::PlacementFailed(s) => write!(f, "placement failed: {s}"),
            FabricError::RoutingFailed { net, ctx } => {
                write!(f, "routing failed for {net} in ctx {ctx}")
            }
            FabricError::Unresolved(s) => write!(f, "simulation unresolved: {s}"),
            FabricError::ContextNotCompiled { ctx, compiled } => {
                write!(f, "context {ctx} not compiled (only context {compiled} is)")
            }
            FabricError::BadBitstream(s) => write!(f, "bad bitstream: {s}"),
            FabricError::Core(e) => write!(f, "switch: {e}"),
        }
    }
}

impl std::error::Error for FabricError {}
