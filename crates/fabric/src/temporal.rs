//! Temporal partitioning — time-multiplexed execution of a large circuit
//! across contexts (the Trimberger-style use case the paper's introduction
//! assumes, ref \[1\]).
//!
//! The LUT DAG is cut into `C` stages by logic level; stage `s` is mapped
//! into context `s`. Values crossing a cut are written to a **context
//! register file** (named `reg:<node>`) at the producing stage and read back
//! as stage inputs downstream. Primary inputs are pad-held and available in
//! every context.

use crate::array::Fabric;
use crate::compiled::{chunk_of_word, CompiledFabric, LaneChunk};
use crate::lut::tables;
use crate::netlist_ir::{LogicNetlist, Node, NodeId};
use crate::route::{implement_netlist, RoutedDesign};
use crate::FabricError;
use std::collections::HashMap;

/// The context register file: values crossing a context-switch boundary,
/// as named `reg:<node>` [`LaneChunk`]s (lane `l` of the chunk = lane `l`'s
/// value).
///
/// This is the *suspendable* state of a temporal execution — between two
/// stages every live intermediate value sits in the register file, which is
/// why a checkpoint taken at a context-switch boundary (and only there)
/// captures a design's entire execution state. Entries keep insertion
/// order, so serializations of the same execution are deterministic.
/// Single-word callers use [`get`](Self::get)/[`set`](Self::set), which
/// view word 0 of each chunk — the legacy 64-lane representation.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RegisterFile {
    entries: Vec<(String, LaneChunk)>,
}

impl RegisterFile {
    /// An empty register file.
    #[must_use]
    pub fn new() -> Self {
        RegisterFile::default()
    }

    /// Word 0 of `name`'s chunk, if written.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<u64> {
        self.get_chunk(name).map(|c| c[0])
    }

    /// The full lane chunk of `name`, if written.
    #[must_use]
    pub fn get_chunk(&self, name: &str) -> Option<LaneChunk> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Writes (or overwrites) one register from a single lane word (words
    /// 1.. are zeroed).
    pub fn set(&mut self, name: &str, lanes: u64) {
        self.set_chunk(name, chunk_of_word(lanes));
    }

    /// Writes (or overwrites) one register's full chunk.
    pub fn set_chunk(&mut self, name: &str, lanes: LaneChunk) {
        match self.entries.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = lanes,
            None => self.entries.push((name.to_string(), lanes)),
        }
    }

    /// All registers, in first-write order.
    #[must_use]
    pub fn entries(&self) -> &[(String, LaneChunk)] {
        &self.entries
    }

    /// Number of registers written.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Has nothing been written?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Forgets every register.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl FromIterator<(String, u64)> for RegisterFile {
    fn from_iter<I: IntoIterator<Item = (String, u64)>>(iter: I) -> Self {
        RegisterFile {
            entries: iter
                .into_iter()
                .map(|(n, v)| (n, chunk_of_word(v)))
                .collect(),
        }
    }
}

impl FromIterator<(String, LaneChunk)> for RegisterFile {
    fn from_iter<I: IntoIterator<Item = (String, LaneChunk)>>(iter: I) -> Self {
        RegisterFile {
            entries: iter.into_iter().collect(),
        }
    }
}

/// A temporal partition of one netlist into stages.
#[derive(Debug, Clone)]
pub struct TemporalPartition {
    /// One sub-netlist per stage (may be empty at the tail).
    pub stages: Vec<LogicNetlist>,
    /// Stage of every original LUT node.
    pub stage_of: HashMap<NodeId, usize>,
    /// Original primary output names (order preserved).
    pub output_names: Vec<String>,
}

/// Partitions `netlist` into at most `contexts` stages by logic level.
pub fn partition(
    netlist: &LogicNetlist,
    contexts: usize,
) -> Result<TemporalPartition, FabricError> {
    if contexts == 0 {
        return Err(FabricError::BadParams("contexts=0".into()));
    }
    let levels = netlist.levels();
    let depth = netlist.depth().max(1);
    let stage_count = contexts.min(depth);
    // LUT level ℓ ∈ 1..=depth → stage floor((ℓ−1)·stage_count/depth)
    let mut stage_of: HashMap<NodeId, usize> = HashMap::new();
    for id in netlist.lut_ids() {
        let l = levels[id.0];
        stage_of.insert(id, (l.saturating_sub(1)) * stage_count / depth);
    }

    // which nodes need registering: LUT u consumed in a later stage,
    // or driving a primary output from a non-final stage
    let mut needs_reg: HashMap<NodeId, bool> = HashMap::new();
    for id in netlist.lut_ids() {
        if let Node::Lut { fanin, .. } = netlist.node(id) {
            for f in fanin {
                if let Node::Lut { .. } = netlist.node(*f) {
                    if stage_of[f] < stage_of[&id] {
                        needs_reg.insert(*f, true);
                    }
                }
            }
        }
    }

    let mut stages: Vec<LogicNetlist> = Vec::with_capacity(stage_count);
    let mut output_names = Vec::new();
    for (name, _) in netlist.outputs() {
        output_names.push(name.clone());
    }
    for s in 0..stage_count {
        let mut sub = LogicNetlist::new();
        // map original node → node in this stage's sub-netlist
        let mut local: HashMap<NodeId, NodeId> = HashMap::new();
        // resolve an original fanin node into this stage
        // (primary input → re-declared input; earlier-stage LUT → reg input;
        // same-stage LUT → local node, guaranteed by topological order)
        let resolve =
            |orig: NodeId, sub: &mut LogicNetlist, local: &mut HashMap<NodeId, NodeId>| {
                if let Some(l) = local.get(&orig) {
                    return *l;
                }
                let id = match netlist.node(orig) {
                    Node::Input { name } => sub.add_input(name),
                    Node::Lut { .. } => sub.add_input(&format!("reg:{}", orig.0)),
                };
                local.insert(orig, id);
                id
            };
        for id in netlist.lut_ids() {
            if stage_of[&id] != s {
                continue;
            }
            let Node::Lut { name, fanin, table } = netlist.node(id) else {
                unreachable!()
            };
            let mapped: Vec<NodeId> = fanin
                .iter()
                .map(|f| resolve(*f, &mut sub, &mut local))
                .collect();
            let new_id = sub.add_lut(name, &mapped, *table)?;
            local.insert(id, new_id);
            if needs_reg.get(&id).copied().unwrap_or(false) {
                sub.add_output(&format!("reg:{}", id.0), new_id)?;
            }
        }
        // primary outputs whose driver lives in this stage
        for (name, driver) in netlist.outputs() {
            match netlist.node(*driver) {
                Node::Lut { .. } if stage_of[driver] == s => {
                    sub.add_output(name, local[driver])?;
                }
                Node::Input { name: in_name } if s == 0 => {
                    // degenerate pass-through: buffer it in stage 0
                    let in_id = resolve(*driver, &mut sub, &mut local);
                    let b = sub.add_lut(&format!("buf_{in_name}"), &[in_id], tables::buf(1))?;
                    sub.add_output(name, b)?;
                }
                _ => {}
            }
        }
        stages.push(sub);
    }
    Ok(TemporalPartition {
        stages,
        stage_of,
        output_names,
    })
}

/// Maps every stage of a partition into its context of `fabric`.
pub fn implement(
    fabric: &mut Fabric,
    part: &TemporalPartition,
    seed: u64,
) -> Result<Vec<RoutedDesign>, FabricError> {
    let mut designs = Vec::new();
    for (s, sub) in part.stages.iter().enumerate() {
        if sub.lut_count() == 0 && sub.outputs().is_empty() {
            continue;
        }
        designs.push(implement_netlist(
            fabric,
            sub,
            s,
            seed.wrapping_add(s as u64),
        )?);
    }
    Ok(designs)
}

/// Executes one "user cycle": runs every stage in order, moving register
/// values through the context register file. Returns the primary outputs.
///
/// The fabric is compiled once and each stage runs through its compiled
/// plane; repeated cycles amortize better via [`execute_compiled`].
pub fn execute(
    fabric: &Fabric,
    part: &TemporalPartition,
    inputs: &[(&str, bool)],
) -> Result<Vec<(String, bool)>, FabricError> {
    let compiled = CompiledFabric::compile(fabric)?;
    let lanes: Vec<(String, u64)> = inputs
        .iter()
        .map(|(n, v)| ((*n).to_string(), u64::from(*v)))
        .collect();
    let lane_refs: Vec<(&str, u64)> = lanes.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let outs = execute_compiled(&compiled, part, &lane_refs)?;
    Ok(outs.into_iter().map(|(n, v)| (n, v & 1 == 1)).collect())
}

/// [`execute`] on an already-compiled fabric, 64 input vectors at a time:
/// bit `l` of each input's `u64` is its value in user cycle `l`, and the
/// returned outputs use the same lane packing.
pub fn execute_compiled(
    compiled: &CompiledFabric,
    part: &TemporalPartition,
    inputs: &[(&str, u64)],
) -> Result<Vec<(String, u64)>, FabricError> {
    let mut regs = RegisterFile::new();
    let mut primary: HashMap<String, u64> = HashMap::new();
    let mut scratch = compiled.new_state();
    for s in 0..part.stages.len() {
        for (name, v) in execute_stage(compiled, part, s, inputs, &mut regs, &mut scratch)? {
            primary.insert(name, v);
        }
    }
    Ok(part
        .output_names
        .iter()
        .map(|n| (n.clone(), primary.get(n).copied().unwrap_or_default()))
        .collect())
}

/// Executes exactly one stage of a user cycle: reads cross-boundary values
/// from `regs`, evaluates context `stage`, writes the values the stage
/// registers back into `regs`, and returns the stage's *primary* (non-
/// register) outputs.
///
/// This is the suspend/resume primitive behind [`execute_compiled`]: after
/// any stage — a context-switch boundary — the whole execution state is
/// `regs`, so a caller can stop, serialize the [`RegisterFile`], and later
/// resume the remaining stages (on this fabric or an identically-configured
/// one) with bit-for-bit identical results.
pub fn execute_stage(
    compiled: &CompiledFabric,
    part: &TemporalPartition,
    stage: usize,
    inputs: &[(&str, u64)],
    regs: &mut RegisterFile,
    scratch: &mut crate::compiled::CompiledState,
) -> Result<Vec<(String, u64)>, FabricError> {
    let sub = part
        .stages
        .get(stage)
        .ok_or_else(|| FabricError::BadParams(format!("stage {stage} out of range")))?;
    if sub.lut_count() == 0 && sub.outputs().is_empty() {
        return Ok(Vec::new());
    }
    // stage inputs: primary inputs + register reads (word 0 — temporal
    // execution batches at most 64 user cycles per call)
    let mut stage_inputs: Vec<(&str, u64)> = inputs.to_vec();
    for (name, v) in regs.entries() {
        stage_inputs.push((name.as_str(), v[0]));
    }
    let outs = compiled.eval_batch_into(stage, &stage_inputs, scratch)?;
    let mut primary = Vec::new();
    for (name, v) in outs {
        if name.starts_with("reg:") {
            regs.set(&name, v);
        } else {
            primary.push((name, v));
        }
    }
    Ok(primary)
}

// Register files travel with their tenants across the service's worker
// threads (and across migrations); keep them structurally thread-safe.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RegisterFile>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::FabricParams;
    use crate::netlist_ir::generators;

    #[test]
    fn partition_respects_level_order() {
        let nl = generators::ripple_adder(4).unwrap();
        let part = partition(&nl, 4).unwrap();
        assert_eq!(part.stages.len(), 4);
        for id in nl.lut_ids() {
            if let Node::Lut { fanin, .. } = nl.node(id) {
                for f in fanin {
                    if matches!(nl.node(*f), Node::Lut { .. }) {
                        assert!(part.stage_of[f] <= part.stage_of[&id]);
                    }
                }
            }
        }
    }

    #[test]
    fn partitioned_adder_executes_correctly() {
        let nl = generators::ripple_adder(3).unwrap();
        let part = partition(&nl, 4).unwrap();
        let mut fabric = Fabric::new(FabricParams {
            width: 4,
            height: 4,
            channel_width: 3,
            ..FabricParams::default()
        })
        .unwrap();
        implement(&mut fabric, &part, 17).unwrap();
        for a in 0..8u32 {
            for b in 0..8u32 {
                let ins = [
                    ("a0".to_string(), a & 1 == 1),
                    ("a1".to_string(), a & 2 == 2),
                    ("a2".to_string(), a & 4 == 4),
                    ("b0".to_string(), b & 1 == 1),
                    ("b1".to_string(), b & 2 == 2),
                    ("b2".to_string(), b & 4 == 4),
                    ("cin".to_string(), false),
                ];
                let ins_ref: Vec<(&str, bool)> =
                    ins.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                let out = execute(&fabric, &part, &ins_ref).unwrap();
                let mut got = 0u32;
                for (name, v) in &out {
                    if !v {
                        continue;
                    }
                    match name.as_str() {
                        "s0" => got |= 1,
                        "s1" => got |= 2,
                        "s2" => got |= 4,
                        "cout" => got |= 8,
                        _ => {}
                    }
                }
                assert_eq!(got, a + b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn single_context_partition_is_flat() {
        let nl = generators::parity_tree(4).unwrap();
        let part = partition(&nl, 1).unwrap();
        assert_eq!(part.stages.len(), 1);
        assert_eq!(part.stages[0].lut_count(), nl.lut_count());
    }

    #[test]
    fn registers_cross_stage_boundaries() {
        let nl = generators::parity_tree(8).unwrap(); // depth 3
        let part = partition(&nl, 3).unwrap();
        // some stage must write registers
        let reg_outs: usize = part
            .stages
            .iter()
            .map(|s| {
                s.outputs()
                    .iter()
                    .filter(|(n, _)| n.starts_with("reg:"))
                    .count()
            })
            .sum();
        assert!(reg_outs > 0);
    }

    /// Suspending after any stage boundary, moving the register file, and
    /// resuming the remaining stages reproduces the uninterrupted run
    /// bit-for-bit — the checkpoint-at-context-switch-boundary invariant.
    #[test]
    fn stage_execution_suspends_and_resumes_exactly() {
        let nl = generators::ripple_adder(3).unwrap();
        let part = partition(&nl, 4).unwrap();
        let mut fabric = Fabric::new(FabricParams {
            width: 4,
            height: 4,
            channel_width: 3,
            ..FabricParams::default()
        })
        .unwrap();
        implement(&mut fabric, &part, 17).unwrap();
        let compiled = CompiledFabric::compile(&fabric).unwrap();
        let inputs: Vec<(&str, u64)> = vec![
            ("a0", 0b1100),
            ("a1", 0b1010),
            ("a2", 0b0110),
            ("b0", 0b0101),
            ("b1", 0b0011),
            ("b2", 0b1001),
            ("cin", 0),
        ];
        let golden = execute_compiled(&compiled, &part, &inputs).unwrap();
        for boundary in 0..part.stages.len() {
            let mut regs = RegisterFile::new();
            let mut scratch = compiled.new_state();
            let mut primary: std::collections::HashMap<String, u64> =
                std::collections::HashMap::new();
            for s in 0..boundary {
                for (n, v) in
                    execute_stage(&compiled, &part, s, &inputs, &mut regs, &mut scratch).unwrap()
                {
                    primary.insert(n, v);
                }
            }
            // suspend: round-trip the register file through its entries —
            // exactly what a serialized checkpoint carries
            let mut resumed: RegisterFile =
                regs.entries().iter().cloned().collect::<RegisterFile>();
            assert_eq!(resumed, regs);
            let mut fresh = compiled.new_state();
            for s in boundary..part.stages.len() {
                for (n, v) in
                    execute_stage(&compiled, &part, s, &inputs, &mut resumed, &mut fresh).unwrap()
                {
                    primary.insert(n, v);
                }
            }
            for (name, want) in &golden {
                assert_eq!(
                    primary.get(name).copied().unwrap_or_default(),
                    *want,
                    "boundary {boundary} output {name}"
                );
            }
        }
    }

    #[test]
    fn register_file_set_get_overwrite() {
        let mut rf = RegisterFile::new();
        assert!(rf.is_empty());
        assert_eq!(rf.get("reg:1"), None);
        rf.set("reg:1", 5);
        rf.set("reg:2", 7);
        rf.set("reg:1", 9);
        assert_eq!(rf.len(), 2);
        assert_eq!(rf.get("reg:1"), Some(9));
        assert_eq!(rf.entries()[0].0, "reg:1", "insertion order kept");
        rf.clear();
        assert!(rf.is_empty());
    }

    #[test]
    fn degenerate_input_to_output() {
        let mut nl = LogicNetlist::new();
        let x = nl.add_input("x");
        nl.add_output("y", x).unwrap();
        let part = partition(&nl, 4).unwrap();
        let mut fabric = Fabric::new(FabricParams::default()).unwrap();
        implement(&mut fabric, &part, 3).unwrap();
        let out = execute(&fabric, &part, &[("x", true)]).unwrap();
        assert_eq!(out, vec![("y".to_string(), true)]);
    }
}
