//! Temporal partitioning — time-multiplexed execution of a large circuit
//! across contexts (the Trimberger-style use case the paper's introduction
//! assumes, ref \[1\]).
//!
//! The LUT DAG is cut into `C` stages by logic level; stage `s` is mapped
//! into context `s`. Values crossing a cut are written to a **context
//! register file** (named `reg:<node>`) at the producing stage and read back
//! as stage inputs downstream. Primary inputs are pad-held and available in
//! every context.

use crate::array::Fabric;
use crate::compiled::CompiledFabric;
use crate::lut::tables;
use crate::netlist_ir::{LogicNetlist, Node, NodeId};
use crate::route::{implement_netlist, RoutedDesign};
use crate::FabricError;
use std::collections::HashMap;

/// A temporal partition of one netlist into stages.
#[derive(Debug, Clone)]
pub struct TemporalPartition {
    /// One sub-netlist per stage (may be empty at the tail).
    pub stages: Vec<LogicNetlist>,
    /// Stage of every original LUT node.
    pub stage_of: HashMap<NodeId, usize>,
    /// Original primary output names (order preserved).
    pub output_names: Vec<String>,
}

/// Partitions `netlist` into at most `contexts` stages by logic level.
pub fn partition(
    netlist: &LogicNetlist,
    contexts: usize,
) -> Result<TemporalPartition, FabricError> {
    if contexts == 0 {
        return Err(FabricError::BadParams("contexts=0".into()));
    }
    let levels = netlist.levels();
    let depth = netlist.depth().max(1);
    let stage_count = contexts.min(depth);
    // LUT level ℓ ∈ 1..=depth → stage floor((ℓ−1)·stage_count/depth)
    let mut stage_of: HashMap<NodeId, usize> = HashMap::new();
    for id in netlist.lut_ids() {
        let l = levels[id.0];
        stage_of.insert(id, (l.saturating_sub(1)) * stage_count / depth);
    }

    // which nodes need registering: LUT u consumed in a later stage,
    // or driving a primary output from a non-final stage
    let mut needs_reg: HashMap<NodeId, bool> = HashMap::new();
    for id in netlist.lut_ids() {
        if let Node::Lut { fanin, .. } = netlist.node(id) {
            for f in fanin {
                if let Node::Lut { .. } = netlist.node(*f) {
                    if stage_of[f] < stage_of[&id] {
                        needs_reg.insert(*f, true);
                    }
                }
            }
        }
    }

    let mut stages: Vec<LogicNetlist> = Vec::with_capacity(stage_count);
    let mut output_names = Vec::new();
    for (name, _) in netlist.outputs() {
        output_names.push(name.clone());
    }
    for s in 0..stage_count {
        let mut sub = LogicNetlist::new();
        // map original node → node in this stage's sub-netlist
        let mut local: HashMap<NodeId, NodeId> = HashMap::new();
        // resolve an original fanin node into this stage
        // (primary input → re-declared input; earlier-stage LUT → reg input;
        // same-stage LUT → local node, guaranteed by topological order)
        let resolve =
            |orig: NodeId, sub: &mut LogicNetlist, local: &mut HashMap<NodeId, NodeId>| {
                if let Some(l) = local.get(&orig) {
                    return *l;
                }
                let id = match netlist.node(orig) {
                    Node::Input { name } => sub.add_input(name),
                    Node::Lut { .. } => sub.add_input(&format!("reg:{}", orig.0)),
                };
                local.insert(orig, id);
                id
            };
        for id in netlist.lut_ids() {
            if stage_of[&id] != s {
                continue;
            }
            let Node::Lut { name, fanin, table } = netlist.node(id) else {
                unreachable!()
            };
            let mapped: Vec<NodeId> = fanin
                .iter()
                .map(|f| resolve(*f, &mut sub, &mut local))
                .collect();
            let new_id = sub.add_lut(name, &mapped, *table)?;
            local.insert(id, new_id);
            if needs_reg.get(&id).copied().unwrap_or(false) {
                sub.add_output(&format!("reg:{}", id.0), new_id)?;
            }
        }
        // primary outputs whose driver lives in this stage
        for (name, driver) in netlist.outputs() {
            match netlist.node(*driver) {
                Node::Lut { .. } if stage_of[driver] == s => {
                    sub.add_output(name, local[driver])?;
                }
                Node::Input { name: in_name } if s == 0 => {
                    // degenerate pass-through: buffer it in stage 0
                    let in_id = resolve(*driver, &mut sub, &mut local);
                    let b = sub.add_lut(&format!("buf_{in_name}"), &[in_id], tables::buf(1))?;
                    sub.add_output(name, b)?;
                }
                _ => {}
            }
        }
        stages.push(sub);
    }
    Ok(TemporalPartition {
        stages,
        stage_of,
        output_names,
    })
}

/// Maps every stage of a partition into its context of `fabric`.
pub fn implement(
    fabric: &mut Fabric,
    part: &TemporalPartition,
    seed: u64,
) -> Result<Vec<RoutedDesign>, FabricError> {
    let mut designs = Vec::new();
    for (s, sub) in part.stages.iter().enumerate() {
        if sub.lut_count() == 0 && sub.outputs().is_empty() {
            continue;
        }
        designs.push(implement_netlist(
            fabric,
            sub,
            s,
            seed.wrapping_add(s as u64),
        )?);
    }
    Ok(designs)
}

/// Executes one "user cycle": runs every stage in order, moving register
/// values through the context register file. Returns the primary outputs.
///
/// The fabric is compiled once and each stage runs through its compiled
/// plane; repeated cycles amortize better via [`execute_compiled`].
pub fn execute(
    fabric: &Fabric,
    part: &TemporalPartition,
    inputs: &[(&str, bool)],
) -> Result<Vec<(String, bool)>, FabricError> {
    let compiled = CompiledFabric::compile(fabric)?;
    let lanes: Vec<(String, u64)> = inputs
        .iter()
        .map(|(n, v)| ((*n).to_string(), u64::from(*v)))
        .collect();
    let lane_refs: Vec<(&str, u64)> = lanes.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let outs = execute_compiled(&compiled, part, &lane_refs)?;
    Ok(outs.into_iter().map(|(n, v)| (n, v & 1 == 1)).collect())
}

/// [`execute`] on an already-compiled fabric, 64 input vectors at a time:
/// bit `l` of each input's `u64` is its value in user cycle `l`, and the
/// returned outputs use the same lane packing.
pub fn execute_compiled(
    compiled: &CompiledFabric,
    part: &TemporalPartition,
    inputs: &[(&str, u64)],
) -> Result<Vec<(String, u64)>, FabricError> {
    let mut regs: HashMap<String, u64> = HashMap::new();
    let mut primary: HashMap<String, u64> = HashMap::new();
    let mut scratch = compiled.new_state();
    for (s, sub) in part.stages.iter().enumerate() {
        if sub.lut_count() == 0 && sub.outputs().is_empty() {
            continue;
        }
        // stage inputs: primary inputs + register reads
        let mut stage_inputs: Vec<(&str, u64)> = inputs.to_vec();
        for (name, v) in &regs {
            stage_inputs.push((name.as_str(), *v));
        }
        let outs = compiled.eval_batch_into(s, &stage_inputs, &mut scratch)?;
        for (name, v) in outs {
            if name.starts_with("reg:") {
                regs.insert(name, v);
            } else {
                primary.insert(name, v);
            }
        }
    }
    Ok(part
        .output_names
        .iter()
        .map(|n| (n.clone(), primary.get(n).copied().unwrap_or_default()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::FabricParams;
    use crate::netlist_ir::generators;

    #[test]
    fn partition_respects_level_order() {
        let nl = generators::ripple_adder(4).unwrap();
        let part = partition(&nl, 4).unwrap();
        assert_eq!(part.stages.len(), 4);
        for id in nl.lut_ids() {
            if let Node::Lut { fanin, .. } = nl.node(id) {
                for f in fanin {
                    if matches!(nl.node(*f), Node::Lut { .. }) {
                        assert!(part.stage_of[f] <= part.stage_of[&id]);
                    }
                }
            }
        }
    }

    #[test]
    fn partitioned_adder_executes_correctly() {
        let nl = generators::ripple_adder(3).unwrap();
        let part = partition(&nl, 4).unwrap();
        let mut fabric = Fabric::new(FabricParams {
            width: 4,
            height: 4,
            channel_width: 3,
            ..FabricParams::default()
        })
        .unwrap();
        implement(&mut fabric, &part, 17).unwrap();
        for a in 0..8u32 {
            for b in 0..8u32 {
                let ins = [
                    ("a0".to_string(), a & 1 == 1),
                    ("a1".to_string(), a & 2 == 2),
                    ("a2".to_string(), a & 4 == 4),
                    ("b0".to_string(), b & 1 == 1),
                    ("b1".to_string(), b & 2 == 2),
                    ("b2".to_string(), b & 4 == 4),
                    ("cin".to_string(), false),
                ];
                let ins_ref: Vec<(&str, bool)> =
                    ins.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                let out = execute(&fabric, &part, &ins_ref).unwrap();
                let mut got = 0u32;
                for (name, v) in &out {
                    if !v {
                        continue;
                    }
                    match name.as_str() {
                        "s0" => got |= 1,
                        "s1" => got |= 2,
                        "s2" => got |= 4,
                        "cout" => got |= 8,
                        _ => {}
                    }
                }
                assert_eq!(got, a + b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn single_context_partition_is_flat() {
        let nl = generators::parity_tree(4).unwrap();
        let part = partition(&nl, 1).unwrap();
        assert_eq!(part.stages.len(), 1);
        assert_eq!(part.stages[0].lut_count(), nl.lut_count());
    }

    #[test]
    fn registers_cross_stage_boundaries() {
        let nl = generators::parity_tree(8).unwrap(); // depth 3
        let part = partition(&nl, 3).unwrap();
        // some stage must write registers
        let reg_outs: usize = part
            .stages
            .iter()
            .map(|s| {
                s.outputs()
                    .iter()
                    .filter(|(n, _)| n.starts_with("reg:"))
                    .count()
            })
            .sum();
        assert!(reg_outs > 0);
    }

    #[test]
    fn degenerate_input_to_output() {
        let mut nl = LogicNetlist::new();
        let x = nl.add_input("x");
        nl.add_output("y", x).unwrap();
        let part = partition(&nl, 4).unwrap();
        let mut fabric = Fabric::new(FabricParams::default()).unwrap();
        implement(&mut fabric, &part, 3).unwrap();
        let out = execute(&fabric, &part, &[("x", true)]).unwrap();
        assert_eq!(out, vec![("y".to_string(), true)]);
    }
}
