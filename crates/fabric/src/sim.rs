//! Functional simulation of a configured fabric.
//!
//! Two engines share identical unknown-propagation semantics:
//!
//! * [`evaluate_fixpoint`] — the **reference** monotone fixpoint sweep:
//!   wires, LUT outputs and IO ports start unknown; each sweep copies
//!   values across configured switch-block routes and evaluates LUTs whose
//!   context plane is active. Values only move from unknown to known, so
//!   the sweep terminates; anything still unknown that a primary output
//!   depends on is reported as unresolved (combinational loop or undriven
//!   input). Simple, obviously correct, and slow — it re-scans every tile
//!   per sweep per vector through `HashMap` keys.
//! * [`crate::compiled::CompiledFabric`] — the production engine: compile
//!   once into dense levelized ops, then evaluate 64 input vectors per
//!   bit-parallel pass.
//!
//! [`evaluate`] keeps the original one-vector API as a thin wrapper over a
//! 1-lane compiled call; the equivalence of both engines is enforced
//! bit-for-bit by `tests/prop_compiled.rs`.

use crate::array::{Dir, Fabric, Sink, Source, TileCoord};
use crate::compiled::CompiledFabric;
use crate::FabricError;
use std::collections::HashMap;

/// Values of every routing resource after a successful evaluation.
#[derive(Debug, Clone, Default)]
pub struct FabricState {
    wire: HashMap<(TileCoord, Dir, usize), bool>,
    lut_out: HashMap<TileCoord, bool>,
    io_out: HashMap<(TileCoord, usize), bool>,
}

impl FabricState {
    /// Value on output wire `(tile, dir, w)`, if resolved.
    #[must_use]
    pub fn wire(&self, tile: TileCoord, dir: Dir, w: usize) -> Option<bool> {
        self.wire.get(&(tile, dir, w)).copied()
    }

    /// LUT output of `tile`, if resolved.
    #[must_use]
    pub fn lut_out(&self, tile: TileCoord) -> Option<bool> {
        self.lut_out.get(&tile).copied()
    }

    /// External output port value, if resolved.
    #[must_use]
    pub fn io_out(&self, tile: TileCoord, port: usize) -> Option<bool> {
        self.io_out.get(&(tile, port)).copied()
    }
}

/// Evaluates context `ctx` of `fabric` with named input signals.
///
/// Returns `(named outputs, full state)`. This compiles the fabric and
/// runs a single bit-parallel lane — correct but paying compile cost per
/// call. Callers evaluating many vectors or replaying schedules should
/// compile once with [`CompiledFabric::compile`] and use
/// [`CompiledFabric::eval_batch`].
pub fn evaluate(
    fabric: &Fabric,
    ctx: usize,
    inputs: &[(&str, bool)],
) -> Result<(Vec<(String, bool)>, FabricState), FabricError> {
    let compiled = CompiledFabric::compile_context(fabric, ctx)?;
    let lane_inputs: Vec<(&str, u64)> = inputs
        .iter()
        .map(|(n, v)| (*n, if *v { 1u64 } else { 0 }))
        .collect();
    let (outs, cst) = compiled.eval_batch(ctx, &lane_inputs)?;
    let outs = outs.into_iter().map(|(n, v)| (n, v & 1 == 1)).collect();

    // lower lane 0 of the dense state into the sparse map form
    let params = fabric.params();
    let mut st = FabricState::default();
    for t in fabric.tiles() {
        for dir in Dir::ALL {
            for w in 0..params.channel_width {
                if let Some(v) = cst.wire(t, dir, w) {
                    st.wire.insert((t, dir, w), v & 1 == 1);
                }
            }
        }
        if let Some(v) = cst.lut_out(t) {
            st.lut_out.insert(t, v & 1 == 1);
        }
        for port in 0..params.io_out {
            if let Some(v) = cst.io_out(t, port) {
                st.io_out.insert((t, port), v & 1 == 1);
            }
        }
    }
    Ok((outs, st))
}

/// Reference implementation: monotone fixpoint sweep over the raw fabric.
///
/// Kept as the executable specification the compiled engine is tested
/// against, and as the baseline the benchmarks measure speedup over.
pub fn evaluate_fixpoint(
    fabric: &Fabric,
    ctx: usize,
    inputs: &[(&str, bool)],
) -> Result<(Vec<(String, bool)>, FabricState), FabricError> {
    let params = fabric.params();
    if ctx >= params.contexts {
        return Err(FabricError::ContextOutOfRange {
            ctx,
            contexts: params.contexts,
        });
    }
    // resolve input bindings to port values
    let mut io_in: HashMap<(TileCoord, usize), bool> = HashMap::new();
    for (tile, port, bctx, name) in fabric.input_binds() {
        if *bctx != ctx {
            continue;
        }
        let v = inputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .ok_or_else(|| FabricError::Unresolved(format!("input '{name}' not driven")))?;
        io_in.insert((*tile, *port), v);
    }

    let mut st = FabricState::default();
    let tiles: Vec<TileCoord> = fabric.tiles().collect();
    // sweep until fixpoint; bound by resource count
    let bound = tiles.len() * (4 * params.channel_width + params.lut_k + params.io_out) + 2;
    let mut changed = true;
    let mut sweeps = 0usize;
    while changed {
        changed = false;
        sweeps += 1;
        if sweeps > bound {
            return Err(FabricError::Unresolved("no fixpoint".into()));
        }
        for &t in &tiles {
            let tc = fabric.tile(t)?;
            // resolve a source's value if known
            let read = |src: Source, st: &FabricState| -> Option<bool> {
                match src {
                    Source::WireFrom { dir, w } => {
                        let n = fabric.neighbor(t, dir)?;
                        st.wire(n, dir.opposite(), w)
                    }
                    Source::LutOut => st.lut_out(t),
                    Source::IoIn(p) => io_in.get(&(t, p)).copied(),
                }
            };
            // route values through the tile's configured sinks
            for (sink_idx, sink) in fabric.sinks(t).into_iter().enumerate() {
                let Some(src_idx) = tc.sb[ctx][sink_idx] else {
                    continue;
                };
                let src = fabric.sources(t)[src_idx as usize];
                let Some(v) = read(src, &st) else { continue };
                match sink {
                    Sink::WireTo { dir, w } => {
                        if st.wire.insert((t, dir, w), v) != Some(v) {
                            changed = true;
                        }
                    }
                    Sink::IoOut(port) => {
                        if st.io_out.insert((t, port), v) != Some(v) {
                            changed = true;
                        }
                    }
                    Sink::LutIn(_) => { /* consumed below via lut eval */ }
                }
            }
            // evaluate the LUT when all configured pins are known
            let mut row = 0usize;
            let mut ready = true;
            let mut any_pin = false;
            for (sink_idx, sink) in fabric.sinks(t).into_iter().enumerate() {
                if let Sink::LutIn(pin) = sink {
                    if let Some(src_idx) = tc.sb[ctx][sink_idx] {
                        any_pin = true;
                        let src = fabric.sources(t)[src_idx as usize];
                        match read(src, &st) {
                            Some(true) => row |= 1 << pin,
                            Some(false) => {}
                            None => ready = false,
                        }
                    }
                }
            }
            if any_pin && ready {
                let v = tc.lut.eval(ctx, row)?;
                if st.lut_out.insert(t, v) != Some(v) {
                    changed = true;
                }
            }
        }
    }

    // collect named outputs
    let mut outs = Vec::new();
    for (tile, port, bctx, name) in fabric.output_binds() {
        if *bctx != ctx {
            continue;
        }
        let v = st
            .io_out(*tile, *port)
            .ok_or_else(|| FabricError::Unresolved(format!("output '{name}' unresolved")))?;
        outs.push((name.clone(), v));
    }
    Ok((outs, st))
}

/// Convenience: evaluate and return outputs sorted by name.
///
/// Unlike [`evaluate`], this never materialises a [`FabricState`] — the
/// caller only wants outputs, so the dense arena is not lowered into the
/// sparse map form.
pub fn evaluate_sorted(
    fabric: &Fabric,
    ctx: usize,
    inputs: &[(&str, bool)],
) -> Result<Vec<(String, bool)>, FabricError> {
    let compiled = CompiledFabric::compile_context(fabric, ctx)?;
    let lane_inputs: Vec<(&str, u64)> = inputs.iter().map(|(n, v)| (*n, u64::from(*v))).collect();
    Ok(compiled
        .eval_batch_sorted(ctx, &lane_inputs)?
        .into_iter()
        .map(|(n, v)| (n, v & 1 == 1))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::FabricParams;
    use crate::netlist_ir::generators;
    use crate::route::implement_netlist;

    #[test]
    fn wire_lane_passes_values() {
        let nl = generators::wire_lanes(2).unwrap();
        let mut f = Fabric::new(FabricParams::default()).unwrap();
        implement_netlist(&mut f, &nl, 0, 1).unwrap();
        for (a, b) in [(false, false), (true, false), (false, true), (true, true)] {
            let out = evaluate_sorted(&f, 0, &[("in0", a), ("in1", b)]).unwrap();
            assert_eq!(out, vec![("out0".to_string(), a), ("out1".to_string(), b)]);
        }
    }

    #[test]
    fn parity_tree_on_fabric_matches_golden() {
        let nl = generators::parity_tree(4).unwrap();
        let mut f = Fabric::new(FabricParams::default()).unwrap();
        implement_netlist(&mut f, &nl, 1, 5).unwrap();
        for x in 0..16u32 {
            let ins: Vec<(String, bool)> = (0..4)
                .map(|i| (format!("x{i}"), (x >> i) & 1 == 1))
                .collect();
            let ins_ref: Vec<(&str, bool)> = ins.iter().map(|(n, v)| (n.as_str(), *v)).collect();
            let golden = nl.eval(&ins_ref).unwrap()[0].1;
            let out = evaluate_sorted(&f, 1, &ins_ref).unwrap();
            assert_eq!(out[0].1, golden, "x={x}");
        }
    }

    #[test]
    fn adder_on_fabric_matches_golden() {
        let nl = generators::ripple_adder(2).unwrap();
        let mut f = Fabric::new(FabricParams {
            width: 4,
            height: 4,
            channel_width: 3,
            ..FabricParams::default()
        })
        .unwrap();
        implement_netlist(&mut f, &nl, 0, 9).unwrap();
        for a in 0..4u32 {
            for b in 0..4u32 {
                let ins = [
                    ("a0".to_string(), a & 1 == 1),
                    ("a1".to_string(), a & 2 == 2),
                    ("b0".to_string(), b & 1 == 1),
                    ("b1".to_string(), b & 2 == 2),
                    ("cin".to_string(), false),
                ];
                let ins_ref: Vec<(&str, bool)> =
                    ins.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                let golden = nl.eval(&ins_ref).unwrap();
                let mut fab = evaluate_sorted(&f, 0, &ins_ref).unwrap();
                let mut gold_sorted = golden.clone();
                gold_sorted.sort();
                fab.sort();
                assert_eq!(fab, gold_sorted, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn contexts_are_independent() {
        // parity in ctx 0, wire lanes in ctx 1 — same fabric
        let mut f = Fabric::new(FabricParams::default()).unwrap();
        let p = generators::parity_tree(3).unwrap();
        let w = generators::wire_lanes(1).unwrap();
        implement_netlist(&mut f, &p, 0, 2).unwrap();
        implement_netlist(&mut f, &w, 1, 3).unwrap();
        let out0 = evaluate_sorted(&f, 0, &[("x0", true), ("x1", true), ("x2", false)]).unwrap();
        assert!(!out0[0].1, "parity of 2 ones");
        let out1 = evaluate_sorted(&f, 1, &[("in0", true)]).unwrap();
        assert_eq!(out1, vec![("out0".to_string(), true)]);
    }

    #[test]
    fn missing_input_reports_unresolved() {
        let nl = generators::wire_lanes(1).unwrap();
        let mut f = Fabric::new(FabricParams::default()).unwrap();
        implement_netlist(&mut f, &nl, 0, 1).unwrap();
        assert!(matches!(
            evaluate_sorted(&f, 0, &[]),
            Err(FabricError::Unresolved(_))
        ));
    }

    #[test]
    fn wrapper_and_fixpoint_agree_including_state() {
        let nl = generators::ripple_adder(2).unwrap();
        let mut f = Fabric::new(FabricParams {
            width: 4,
            height: 4,
            channel_width: 3,
            ..FabricParams::default()
        })
        .unwrap();
        implement_netlist(&mut f, &nl, 2, 11).unwrap();
        let ins = [
            ("a0", true),
            ("a1", false),
            ("b0", true),
            ("b1", true),
            ("cin", false),
        ];
        let (mut o1, s1) = evaluate(&f, 2, &ins).unwrap();
        let (mut o2, s2) = evaluate_fixpoint(&f, 2, &ins).unwrap();
        o1.sort();
        o2.sort();
        assert_eq!(o1, o2);
        for t in f.tiles() {
            assert_eq!(s1.lut_out(t), s2.lut_out(t), "lut_out {t}");
            for dir in Dir::ALL {
                for w in 0..f.params().channel_width {
                    assert_eq!(
                        s1.wire(t, dir, w),
                        s2.wire(t, dir, w),
                        "wire {t} {dir:?} {w}"
                    );
                }
            }
            for p in 0..f.params().io_out {
                assert_eq!(s1.io_out(t, p), s2.io_out(t, p), "io_out {t} {p}");
            }
        }
    }
}
