//! Multi-context lookup tables.
//!
//! A `K`-LUT holds `2^K` configuration bits *per context* — exactly the
//! "multiple memory bits per configuration bit forming configuration planes"
//! overhead the paper opens with. The LUT model is architecture-agnostic
//! (the storage cost per architecture is priced in [`crate::power`]).

use crate::FabricError;
use serde::{Deserialize, Serialize};

/// A multi-context K-input lookup table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiContextLut {
    k: usize,
    contexts: usize,
    /// `tables[ctx]` is a `2^K`-bit truth table, LSB = all-zero input row.
    tables: Vec<u64>,
}

impl MultiContextLut {
    /// Maximum supported inputs (truth table packed in a `u64`).
    pub const MAX_K: usize = 6;

    /// Creates a LUT with all contexts programmed to constant 0.
    pub fn new(k: usize, contexts: usize) -> Result<Self, FabricError> {
        if k == 0 || k > Self::MAX_K {
            return Err(FabricError::BadParams(format!("k={k} not in 1..=6")));
        }
        if contexts == 0 || contexts > 64 {
            return Err(FabricError::BadParams(format!("contexts={contexts}")));
        }
        Ok(MultiContextLut {
            k,
            contexts,
            tables: vec![0; contexts],
        })
    }

    /// Number of inputs.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of contexts.
    #[must_use]
    pub fn contexts(&self) -> usize {
        self.contexts
    }

    /// Configuration bits per context (`2^K`).
    #[must_use]
    pub fn bits_per_context(&self) -> usize {
        1 << self.k
    }

    /// Programs one context's truth table.
    pub fn program(&mut self, ctx: usize, table: u64) -> Result<(), FabricError> {
        self.check_ctx(ctx)?;
        let mask = if self.bits_per_context() == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits_per_context()) - 1
        };
        self.tables[ctx] = table & mask;
        Ok(())
    }

    /// Reads back one context's truth table.
    pub fn table(&self, ctx: usize) -> Result<u64, FabricError> {
        self.check_ctx(ctx)?;
        Ok(self.tables[ctx])
    }

    /// Evaluates the LUT in `ctx` on packed inputs (bit `i` of `inputs` is
    /// input pin `i`).
    pub fn eval(&self, ctx: usize, inputs: usize) -> Result<bool, FabricError> {
        self.check_ctx(ctx)?;
        let row = inputs & (self.bits_per_context() - 1);
        Ok((self.tables[ctx] >> row) & 1 == 1)
    }

    fn check_ctx(&self, ctx: usize) -> Result<(), FabricError> {
        if ctx >= self.contexts {
            Err(FabricError::ContextOutOfRange {
                ctx,
                contexts: self.contexts,
            })
        } else {
            Ok(())
        }
    }
}

/// Truth-table constructors for common functions, packed LSB-first.
pub mod tables {
    /// AND of the first `k` inputs.
    #[must_use]
    pub fn and(k: usize) -> u64 {
        1u64 << ((1usize << k) - 1)
    }

    /// OR of the first `k` inputs.
    #[must_use]
    pub fn or(k: usize) -> u64 {
        let rows = 1usize << k;
        let full = if rows == 64 {
            u64::MAX
        } else {
            (1u64 << rows) - 1
        };
        full & !1
    }

    /// XOR (parity) of the first `k` inputs.
    #[must_use]
    pub fn xor(k: usize) -> u64 {
        let rows = 1usize << k;
        let mut t = 0u64;
        for row in 0..rows {
            if (row as u32).count_ones() % 2 == 1 {
                t |= 1 << row;
            }
        }
        t
    }

    /// NOT of input 0 (other inputs ignored).
    #[must_use]
    pub fn not(k: usize) -> u64 {
        let rows = 1usize << k;
        let mut t = 0u64;
        for row in 0..rows {
            if row & 1 == 0 {
                t |= 1 << row;
            }
        }
        t
    }

    /// Pass-through of input 0.
    #[must_use]
    pub fn buf(k: usize) -> u64 {
        let rows = 1usize << k;
        let mut t = 0u64;
        for row in 0..rows {
            if row & 1 == 1 {
                t |= 1 << row;
            }
        }
        t
    }

    /// Majority of inputs 0..2 (for full-adder carries).
    #[must_use]
    pub fn maj3(k: usize) -> u64 {
        assert!(k >= 3);
        let rows = 1usize << k;
        let mut t = 0u64;
        for row in 0..rows {
            if (row & 0b111_usize).count_ones() >= 2 {
                t |= 1 << row;
            }
        }
        t
    }

    /// 2:1 mux: inputs (data0, data1, select) on pins 0,1,2.
    #[must_use]
    pub fn mux2(k: usize) -> u64 {
        assert!(k >= 3);
        let rows = 1usize << k;
        let mut t = 0u64;
        for row in 0..rows {
            let sel = (row >> 2) & 1;
            let v = if sel == 1 { (row >> 1) & 1 } else { row & 1 };
            if v == 1 {
                t |= 1 << row;
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_and_eval_per_context() {
        let mut lut = MultiContextLut::new(2, 4).unwrap();
        lut.program(0, tables::and(2)).unwrap();
        lut.program(1, tables::or(2)).unwrap();
        lut.program(2, tables::xor(2)).unwrap();
        // ctx 3 left at constant 0
        for a in 0..2usize {
            for b in 0..2usize {
                let inputs = a | (b << 1);
                assert_eq!(lut.eval(0, inputs).unwrap(), a == 1 && b == 1);
                assert_eq!(lut.eval(1, inputs).unwrap(), a == 1 || b == 1);
                assert_eq!(lut.eval(2, inputs).unwrap(), (a ^ b) == 1);
                assert!(!lut.eval(3, inputs).unwrap());
            }
        }
    }

    #[test]
    fn truth_table_builders() {
        assert_eq!(tables::and(2), 0b1000);
        assert_eq!(tables::or(2), 0b1110);
        assert_eq!(tables::xor(2), 0b0110);
        assert_eq!(tables::buf(1), 0b10);
        assert_eq!(tables::not(1), 0b01);
    }

    #[test]
    fn maj3_and_mux2() {
        let lut_k = 4;
        let maj = tables::maj3(lut_k);
        for row in 0..8usize {
            let want = (row & 0b111).count_ones() >= 2;
            assert_eq!((maj >> row) & 1 == 1, want, "row {row}");
        }
        let mux = tables::mux2(lut_k);
        for row in 0..8usize {
            let (d0, d1, s) = (row & 1, (row >> 1) & 1, (row >> 2) & 1);
            let want = if s == 1 { d1 } else { d0 };
            assert_eq!((mux >> row) & 1, want as u64, "row {row}");
        }
    }

    #[test]
    fn bounds_checked() {
        assert!(MultiContextLut::new(0, 4).is_err());
        assert!(MultiContextLut::new(7, 4).is_err());
        assert!(MultiContextLut::new(4, 0).is_err());
        let mut lut = MultiContextLut::new(2, 2).unwrap();
        assert!(lut.program(2, 0).is_err());
        assert!(lut.eval(2, 0).is_err());
    }

    #[test]
    fn table_masked_to_width() {
        let mut lut = MultiContextLut::new(2, 1).unwrap();
        lut.program(0, u64::MAX).unwrap();
        assert_eq!(lut.table(0).unwrap(), 0b1111);
    }
}
