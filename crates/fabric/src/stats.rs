//! Fabric utilization statistics: how much of each configuration plane a
//! mapped design actually occupies — the quantity the MC-FPGA trades area
//! for — plus the shape of each plane after compilation (op counts,
//! levelized depth, cyclic fallbacks).

use crate::array::{Fabric, Sink};
use crate::compiled::{CompiledFabric, Op};
use crate::FabricError;

/// Per-context occupancy of fabric resources.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextStats {
    /// Context measured.
    pub ctx: usize,
    /// Tiles with an active LUT plane (any programmed LUT input route).
    pub luts_used: usize,
    /// Channel wires driven.
    pub wires_used: usize,
    /// Total configured switch-block cross-points (sinks with a source).
    pub crosspoints_used: usize,
    /// Fraction of all sinks configured, 0..=1.
    pub sink_utilization: f64,
}

/// Computes occupancy for one context.
pub fn context_stats(fabric: &Fabric, ctx: usize) -> Result<ContextStats, FabricError> {
    let params = fabric.params();
    if ctx >= params.contexts {
        return Err(FabricError::ContextOutOfRange {
            ctx,
            contexts: params.contexts,
        });
    }
    let mut luts_used = 0usize;
    let mut wires_used = 0usize;
    let mut crosspoints_used = 0usize;
    let mut total_sinks = 0usize;
    for t in fabric.tiles() {
        let tc = fabric.tile(t)?;
        let sinks = fabric.sinks(t);
        total_sinks += sinks.len();
        let mut lut_active = false;
        for (i, sink) in sinks.into_iter().enumerate() {
            if tc.sb[ctx][i].is_some() {
                crosspoints_used += 1;
                match sink {
                    Sink::WireTo { .. } => wires_used += 1,
                    Sink::LutIn(_) => lut_active = true,
                    Sink::IoOut(_) => {}
                }
            }
        }
        if lut_active {
            luts_used += 1;
        }
    }
    Ok(ContextStats {
        ctx,
        luts_used,
        wires_used,
        crosspoints_used,
        sink_utilization: crosspoints_used as f64 / total_sinks.max(1) as f64,
    })
}

/// Stats for every context plus the cross-context union utilization.
pub fn all_context_stats(fabric: &Fabric) -> Result<Vec<ContextStats>, FabricError> {
    (0..fabric.params().contexts)
        .map(|c| context_stats(fabric, c))
        .collect()
}

/// Renders a small utilization table.
pub fn render_stats(stats: &[ContextStats]) -> String {
    let mut s = String::from("ctx | luts | wires | crosspoints | sink util\n");
    for st in stats {
        s.push_str(&format!(
            "{:>3} | {:>4} | {:>5} | {:>11} | {:>8.2}%\n",
            st.ctx,
            st.luts_used,
            st.wires_used,
            st.crosspoints_used,
            st.sink_utilization * 100.0
        ));
    }
    s
}

/// Shape of one compiled context plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledPlaneStats {
    /// Context measured.
    pub ctx: usize,
    /// Route (switch-block) ops.
    pub copy_ops: usize,
    /// LUT evaluation ops.
    pub lut_ops: usize,
    /// Depth of the levelized DAG (longest producer→consumer chain).
    pub levels: usize,
    /// True when evaluation uses the bounded-sweep fallback.
    pub cyclic: bool,
}

/// Shape of every plane of a compiled fabric.
pub fn compiled_stats(compiled: &CompiledFabric) -> Result<Vec<CompiledPlaneStats>, FabricError> {
    (0..compiled.params().contexts)
        .map(|ctx| {
            let plane = compiled.plane(ctx)?;
            let (mut copy_ops, mut lut_ops) = (0usize, 0usize);
            for op in plane.ops() {
                match op {
                    Op::Copy { .. } => copy_ops += 1,
                    Op::Lut { .. } => lut_ops += 1,
                }
            }
            Ok(CompiledPlaneStats {
                ctx,
                copy_ops,
                lut_ops,
                levels: plane.levels(),
                cyclic: plane.is_cyclic(),
            })
        })
        .collect()
}

/// Renders the compiled-plane table.
pub fn render_compiled_stats(stats: &[CompiledPlaneStats]) -> String {
    let mut s = String::from("ctx | route ops | lut ops | levels | engine\n");
    for st in stats {
        s.push_str(&format!(
            "{:>3} | {:>9} | {:>7} | {:>6} | {}\n",
            st.ctx,
            st.copy_ops,
            st.lut_ops,
            st.levels,
            if st.cyclic { "sweep" } else { "levelized" }
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::FabricParams;
    use crate::netlist_ir::generators;
    use crate::route::implement_netlist;

    #[test]
    fn empty_fabric_has_zero_utilization() {
        let f = Fabric::new(FabricParams::default()).unwrap();
        for st in all_context_stats(&f).unwrap() {
            assert_eq!(st.crosspoints_used, 0);
            assert_eq!(st.luts_used, 0);
            assert_eq!(st.sink_utilization, 0.0);
        }
    }

    #[test]
    fn mapped_context_shows_usage_others_stay_empty() {
        let mut f = Fabric::new(FabricParams::default()).unwrap();
        let nl = generators::parity_tree(4).unwrap();
        implement_netlist(&mut f, &nl, 1, 9).unwrap();
        let stats = all_context_stats(&f).unwrap();
        assert_eq!(stats[0].crosspoints_used, 0);
        assert!(stats[1].crosspoints_used > 0);
        assert_eq!(stats[1].luts_used, 3, "three XOR LUTs");
        assert!(stats[1].sink_utilization > 0.0 && stats[1].sink_utilization < 0.5);
        assert_eq!(stats[2].crosspoints_used, 0);
    }

    #[test]
    fn render_contains_all_contexts() {
        let f = Fabric::new(FabricParams::default()).unwrap();
        let s = render_stats(&all_context_stats(&f).unwrap());
        assert_eq!(s.lines().count(), 5); // header + 4 contexts
    }

    #[test]
    fn out_of_range_ctx_rejected() {
        let f = Fabric::new(FabricParams::default()).unwrap();
        assert!(context_stats(&f, 4).is_err());
    }

    #[test]
    fn compiled_stats_track_mapped_contexts() {
        let mut f = Fabric::new(FabricParams::default()).unwrap();
        implement_netlist(&mut f, &generators::parity_tree(4).unwrap(), 1, 9).unwrap();
        let compiled = CompiledFabric::compile(&f).unwrap();
        let stats = compiled_stats(&compiled).unwrap();
        assert_eq!(stats.len(), 4);
        assert_eq!(stats[0].copy_ops + stats[0].lut_ops, 0);
        assert_eq!(stats[1].lut_ops, 3, "three XOR LUTs");
        assert!(stats[1].copy_ops > 0);
        assert!(stats[1].levels >= 2, "tree has at least two logic levels");
        assert!(!stats[1].cyclic);
        // occupancy view agrees: configured crosspoints = copy ops + pins
        let occ = context_stats(&f, 1).unwrap();
        assert!(occ.crosspoints_used >= stats[1].copy_ops + stats[1].lut_ops);
        let render = render_compiled_stats(&stats);
        assert_eq!(render.lines().count(), 5);
        assert!(render.contains("levelized"));
    }
}
