//! Compile-once / evaluate-many fabric engine.
//!
//! The reference simulator ([`crate::sim::evaluate_fixpoint`]) re-discovers
//! the routed structure of a context on every call: it sweeps every tile,
//! hashes `(TileCoord, Dir, usize)` keys, and repeats until a fixpoint —
//! fine for one vector, hopeless for workload-scale simulation. This module
//! does the discovery **once**:
//!
//! 1. **Flatten** — every routing resource (channel wire, LUT output,
//!    IO port) gets a dense `u32` id in one arena ([`ResourceLayout`]), so
//!    evaluation indexes flat arrays instead of hash maps.
//! 2. **Levelize** — each context's configured switch-block routes and LUT
//!    pins become a list of [`Op`]s, topologically sorted at compile time.
//!    An acyclic plane evaluates in a single pass; a genuinely cyclic
//!    configuration falls back to a bounded monotone sweep over the same op
//!    list (identical semantics to the reference simulator).
//! 3. **Bit-parallelize** — values are [`LaneChunk`]s of [`LANE_WORDS`]
//!    contiguous `u64` lane words: one evaluation pass pushes up to
//!    **[`MAX_LANES`] input vectors** through the fabric, with LUTs
//!    evaluated by lane-wise mux reduction of their truth tables. Sparse
//!    batches evaluate only the occupied words
//!    ([`LaneBatch::words`]), so a ≤64-lane pass costs what the old
//!    single-word engine did.
//!
//! [`crate::sim::evaluate`] wraps a 1-lane call for API compatibility;
//! batch users call [`CompiledFabric::eval_batch`] directly, and
//! [`crate::context::run_schedule`] drives whole context schedules through
//! the per-context compiled planes. Independent single-vector requests are
//! coalesced into one pass with [`LaneBatch`].
//!
//! ```
//! use mcfpga_fabric::compiled::{pack_lanes, CompiledFabric};
//! use mcfpga_fabric::netlist_ir::generators;
//! use mcfpga_fabric::route::implement_netlist;
//! use mcfpga_fabric::{Fabric, FabricParams};
//!
//! // Route a 3-input parity tree into context 0 and compile it once.
//! let mut fabric = Fabric::new(FabricParams::default())?;
//! implement_netlist(&mut fabric, &generators::parity_tree(3)?, 0, 7)?;
//! let compiled = CompiledFabric::compile(&fabric)?;
//!
//! // Evaluate all 8 input vectors in a single bit-parallel pass:
//! // lane `v` of input `xi` carries bit `i` of vector `v`.
//! let inputs: Vec<(String, u64)> = (0..3)
//!     .map(|i| (format!("x{i}"), pack_lanes(|v| v < 8 && (v >> i) & 1 == 1)))
//!     .collect();
//! let refs: Vec<(&str, u64)> = inputs.iter().map(|(n, v)| (n.as_str(), *v)).collect();
//! let outs = compiled.eval_batch_sorted(0, &refs)?;
//! for v in 0..8u32 {
//!     assert_eq!((outs[0].1 >> v) & 1 == 1, v.count_ones() % 2 == 1);
//! }
//! # Ok::<(), mcfpga_fabric::FabricError>(())
//! ```

use crate::array::{Dir, Fabric, FabricParams, Sink, Source, TileCoord};
use crate::lut::MultiContextLut;
use crate::FabricError;
use std::sync::Arc;

/// Lanes per `u64` word — the legacy single-word batch width, kept as the
/// default [`LaneBatch::new`] width so single-word callers are unaffected.
pub const LANES: usize = 64;

/// Prefix of signal names that are *stream registers*: values carried
/// across context-switch boundaries ([`crate::temporal`]) and between a
/// service tenant's passes, rather than returned as primary outputs. The
/// one naming convention shared by the temporal partitioner, the compiled
/// engine's [`BoundPlan`] and the service's register harvesting.
pub const REG_PREFIX: &str = "reg:";

/// Dirty mask treating every bound input as changed — the full-sweep
/// sentinel for [`CompiledFabric::eval_bound_into`].
pub const DIRTY_ALL: u64 = u64::MAX;

/// `u64` words per [`LaneChunk`].
pub const LANE_WORDS: usize = 4;

/// Widest supported batch: [`LANE_WORDS`] × 64 lanes per evaluation pass.
pub const MAX_LANES: usize = LANE_WORDS * 64;

/// The chunked lane value of one signal: [`LANE_WORDS`] contiguous `u64`
/// words, lane `l` living at bit `l % 64` of word `l / 64`. Word 0 alone is
/// the legacy 64-lane representation, which is why every single-word API
/// reads/writes `chunk[0]` and zeroes the rest.
pub type LaneChunk = [u64; LANE_WORDS];

/// Reads lane `l` of a chunk — the canonical inverse of [`pack_chunk`].
#[must_use]
pub fn chunk_bit(chunk: &LaneChunk, lane: usize) -> bool {
    (chunk[lane / 64] >> (lane % 64)) & 1 == 1
}

/// Packs per-lane booleans into a chunk: lane `l` of the result is
/// `bit(l)`, for all [`MAX_LANES`] lanes.
#[must_use]
pub fn pack_chunk(mut bit: impl FnMut(usize) -> bool) -> LaneChunk {
    let mut chunk = [0u64; LANE_WORDS];
    for l in 0..MAX_LANES {
        chunk[l / 64] |= u64::from(bit(l)) << (l % 64);
    }
    chunk
}

/// Widens a legacy single lane word to a chunk (word 0 = `word`).
#[must_use]
pub fn chunk_of_word(word: u64) -> LaneChunk {
    let mut chunk = [0u64; LANE_WORDS];
    chunk[0] = word;
    chunk
}

/// Packs per-lane booleans into one lane word: bit `l` of the result is
/// `bit(l)`. This is the canonical lane packing of the engine — the inverse
/// of reading `(word >> l) & 1` — shared by tests, examples and benches so
/// lane semantics live in exactly one place.
#[must_use]
pub fn pack_lanes(mut bit: impl FnMut(usize) -> bool) -> u64 {
    (0..LANES).fold(0u64, |acc, l| acc | (u64::from(bit(l)) << l))
}

/// Dense id of one routing resource in the arena.
pub type ResourceId = u32;

/// Coalesces independent single-vector requests into the lane chunks one
/// [`CompiledFabric::eval_chunks`] pass consumes.
///
/// Each pushed request occupies one lane; the batch keeps the union of all
/// named inputs, with lane `l` of a name's [`LaneChunk`] holding request
/// `l`'s value (a request that omits a name contributes 0 in its lane).
/// After the pass, [`LaneBatch::extract_lane`] demuxes one request's
/// outputs back out. The capacity is the batch's **width**: [`LANES`] (one
/// word) for [`LaneBatch::new`], up to [`MAX_LANES`] via
/// [`LaneBatch::with_width`].
///
/// ```
/// use mcfpga_fabric::compiled::{LaneBatch, LANES};
///
/// let mut batch = LaneBatch::new();
/// let lane_a = batch.push(&[("x", true), ("y", false)]).unwrap();
/// let lane_b = batch.push(&[("x", false), ("y", true)]).unwrap();
/// assert_eq!((lane_a, lane_b), (0, 1));
/// assert_eq!(batch.len(), 2);
/// assert!(!batch.is_full());
///
/// let inputs = batch.lane_inputs();
/// let x = inputs.iter().find(|(n, _)| *n == "x").unwrap().1;
/// assert_eq!(x[0] & 0b11, 0b01); // lane 0 true, lane 1 false
///
/// // outputs of an eval pass demux the same way
/// let outs = vec![("z".to_string(), [0b10u64, 0, 0, 0])];
/// assert_eq!(LaneBatch::extract_lane(&outs, lane_b), vec![("z".to_string(), true)]);
/// ```
#[derive(Debug, Clone)]
pub struct LaneBatch {
    width: usize,
    lanes: usize,
    inputs: Vec<(String, LaneChunk)>,
    /// Resolved input indices of the request being pushed; reused across
    /// [`LaneBatch::push_covering`] calls so the hot path allocates nothing.
    idx_scratch: Vec<u32>,
}

impl Default for LaneBatch {
    fn default() -> Self {
        LaneBatch::new()
    }
}

/// Why [`LaneBatch::push_covering`] refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushRefusal {
    /// All of the batch's [`LaneBatch::width`] lanes are occupied.
    Full,
    /// The request did not drive the canonical input at this index (see
    /// [`LaneBatch::ensure_name`]); [`LaneBatch::input_name`] maps it back
    /// to the signal name. The batch is unchanged.
    MissingInput(usize),
}

impl LaneBatch {
    /// An empty batch at the legacy single-word width ([`LANES`]).
    #[must_use]
    pub fn new() -> Self {
        LaneBatch::with_width(LANES).expect("LANES is a valid width")
    }

    /// An empty batch holding up to `width` lanes, `1..=MAX_LANES`.
    pub fn with_width(width: usize) -> Result<Self, FabricError> {
        if width == 0 || width > MAX_LANES {
            return Err(FabricError::BadParams(format!(
                "batch width {width} outside 1..={MAX_LANES}"
            )));
        }
        Ok(LaneBatch {
            width,
            lanes: 0,
            inputs: Vec::new(),
            idx_scratch: Vec::new(),
        })
    }

    /// Lane capacity of this batch.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of `u64` words an evaluation pass must process to cover the
    /// occupied lanes — the sparse-traffic optimization: a ≤64-lane batch
    /// evaluates one word no matter how wide the batch is.
    #[must_use]
    pub fn words(&self) -> usize {
        self.lanes.div_ceil(64).max(1)
    }

    /// Number of occupied lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lanes
    }

    /// Is the batch empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lanes == 0
    }

    /// Are all [`width`](Self::width) lanes occupied?
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.lanes == self.width
    }

    /// Adds one single-vector request, returning the lane it occupies, or
    /// `None` when the batch is already full.
    pub fn push(&mut self, request: &[(&str, bool)]) -> Option<usize> {
        self.push_covering(request, 0).ok()
    }

    /// [`push`](Self::push) that additionally verifies the request drives
    /// every one of the batch's first `required` input names (the canonical
    /// prefix an executor seeds with [`ensure_name`](Self::ensure_name)) —
    /// in the *same* single name-resolution scan, so the coverage check
    /// costs no extra string comparisons. On refusal the batch's lane
    /// contents are unchanged.
    ///
    /// This is the check a batch executor needs: evaluation consumes the
    /// *union* of all lanes' names, so a lane that omitted a name another
    /// lane drives would otherwise silently read 0.
    ///
    /// Requests from one submitter present names in a stable order, so the
    /// positional probe hits on every push after the first and the linear
    /// rescan is cold.
    pub fn push_covering(
        &mut self,
        request: &[(&str, bool)],
        required: usize,
    ) -> Result<usize, PushRefusal> {
        if self.is_full() {
            return Err(PushRefusal::Full);
        }
        // pass 1: resolve names to indices (the only string comparisons),
        // accumulating coverage of the canonical prefix as a bitmask
        let mut idx_scratch = std::mem::take(&mut self.idx_scratch);
        idx_scratch.clear();
        let mut covered = 0u64;
        for (i, (name, _)) in request.iter().enumerate() {
            let idx = match self.inputs.get(i) {
                Some((n, _)) if n == name => i,
                _ => match self.inputs.iter().position(|(n, _)| n == name) {
                    Some(j) => j,
                    None => {
                        // appending with a zero chunk is harmless even if the
                        // coverage check below refuses the request
                        self.inputs.push(((*name).to_string(), [0u64; LANE_WORDS]));
                        self.inputs.len() - 1
                    }
                },
            };
            if idx < required.min(64) {
                covered |= 1 << idx;
            }
            idx_scratch.push(idx as u32);
        }
        let refusal = self.first_uncovered(required, covered, request);
        if let Some(missing) = refusal {
            self.idx_scratch = idx_scratch;
            return Err(PushRefusal::MissingInput(missing));
        }
        // pass 2: commit the lane by index — no further name lookups
        let lane = self.lanes;
        for (&idx, (_, value)) in idx_scratch.iter().zip(request) {
            self.inputs[idx as usize].1[lane / 64] |= u64::from(*value) << (lane % 64);
        }
        self.lanes += 1;
        self.idx_scratch = idx_scratch;
        Ok(lane)
    }

    /// First canonical-prefix index the request left undriven, if any.
    /// Prefix indices past 64 exceed the coverage bitmask and fall back to
    /// a name search (bound-input counts that large do not occur on real
    /// geometries).
    fn first_uncovered(
        &self,
        required: usize,
        covered: u64,
        request: &[(&str, bool)],
    ) -> Option<usize> {
        let in_mask = required.min(64);
        let need = if in_mask == 64 {
            u64::MAX
        } else {
            (1u64 << in_mask) - 1
        };
        if covered & need != need {
            return Some((!covered & need).trailing_zeros() as usize);
        }
        for idx in 64..required {
            let name = &self.inputs[idx].0;
            if !request.iter().any(|(n, _)| n == name) {
                return Some(idx);
            }
        }
        None
    }

    /// Rebuilds a batch from its serialized parts: the target width, the
    /// occupied-lane count and the union lane chunks, in union order — the
    /// inverse of reading [`len`](Self::len) and
    /// [`lane_inputs`](Self::lane_inputs). The checkpoint/restore path uses
    /// this to reinstall pending requests exactly as they were queued (same
    /// names, same lane bits), so a restored batch evaluates bit-for-bit
    /// like the original.
    pub fn from_parts(
        width: usize,
        lanes: usize,
        inputs: Vec<(String, LaneChunk)>,
    ) -> Result<Self, FabricError> {
        let mut batch = LaneBatch::with_width(width)?;
        if lanes > width {
            return Err(FabricError::BadParams(format!(
                "{lanes} lanes exceed the {width}-lane batch width"
            )));
        }
        // bits above the occupied lanes must be clear: push_covering ORs
        // new values in assuming them zero, so a stray high bit would leak
        // into a later request's lane as a silently wrong input
        for (name, chunk) in &inputs {
            for (w, word) in chunk.iter().enumerate() {
                let occupied_here = lanes.saturating_sub(w * 64).min(64);
                let unoccupied = if occupied_here == 64 {
                    0
                } else {
                    !0u64 << occupied_here
                };
                if word & unoccupied != 0 {
                    return Err(FabricError::BadParams(format!(
                        "input '{name}' has lane bits set beyond the {lanes} occupied lanes"
                    )));
                }
            }
        }
        batch.lanes = lanes;
        batch.inputs = inputs;
        Ok(batch)
    }

    /// Union index of `name`, if present.
    #[must_use]
    pub fn name_index(&self, name: &str) -> Option<usize> {
        self.inputs.iter().position(|(n, _)| n == name)
    }

    /// Appends `name` to the input union with an all-zero word when absent.
    /// Executors call this at admission, in bound-input order, to seed the
    /// canonical prefix [`push_covering`](Self::push_covering) checks
    /// coverage against.
    pub fn ensure_name(&mut self, name: &str) {
        if !self.inputs.iter().any(|(n, _)| n == name) {
            self.inputs.push((name.to_string(), [0u64; LANE_WORDS]));
        }
    }

    /// The input name at union index `idx`, if any.
    #[must_use]
    pub fn input_name(&self, idx: usize) -> Option<&str> {
        self.inputs.get(idx).map(|(n, _)| n.as_str())
    }

    /// The union lane chunk at index `idx` (zeros when out of range) —
    /// the indexed companion to [`name_index`](Self::name_index), letting
    /// executors that resolved names once read chunks without further
    /// string comparisons.
    #[must_use]
    pub fn input_chunk(&self, idx: usize) -> LaneChunk {
        self.inputs.get(idx).map_or([0u64; LANE_WORDS], |(_, c)| *c)
    }

    /// Number of distinct input names in the union.
    #[must_use]
    pub fn name_count(&self) -> usize {
        self.inputs.len()
    }

    /// Drops union names past the first `keep` from an **empty** batch —
    /// executors trim request-added names (unbound extras) back to the
    /// canonical prefix when recycling, so the union cannot grow without
    /// bound across a service's lifetime. No-op on a non-empty batch
    /// (trimming would drop live lane values).
    pub fn truncate_names(&mut self, keep: usize) {
        if self.is_empty() {
            self.inputs.truncate(keep);
        }
    }

    /// The union lane chunks, ready for [`CompiledFabric::eval_chunks`].
    #[must_use]
    pub fn lane_inputs(&self) -> Vec<(&str, LaneChunk)> {
        self.inputs.iter().map(|(n, v)| (n.as_str(), *v)).collect()
    }

    /// Empties the batch for reuse, keeping the input-name capacity.
    pub fn clear(&mut self) {
        self.lanes = 0;
        for (_, chunk) in &mut self.inputs {
            *chunk = [0u64; LANE_WORDS];
        }
    }

    /// Demuxes one lane of a pass's outputs back to scalar booleans.
    #[must_use]
    pub fn extract_lane(outputs: &[(String, LaneChunk)], lane: usize) -> Vec<(String, bool)> {
        outputs
            .iter()
            .map(|(n, v)| (n.clone(), chunk_bit(v, lane)))
            .collect()
    }
}

/// Maps `(tile, resource)` coordinates onto the dense arena.
///
/// Per tile the arena holds, in order: `4 × channel_width` outgoing wires
/// (all four directions are allocated even on edges — dead slots cost one
/// unused array cell each and keep the addressing branch-free), the LUT
/// output, `io_in` input ports and `io_out` output ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceLayout {
    width: usize,
    height: usize,
    channel_width: usize,
    io_in: usize,
    io_out: usize,
    per_tile: usize,
}

fn dir_index(dir: Dir) -> usize {
    match dir {
        Dir::North => 0,
        Dir::East => 1,
        Dir::South => 2,
        Dir::West => 3,
    }
}

impl ResourceLayout {
    fn new(p: &FabricParams) -> Self {
        ResourceLayout {
            width: p.width,
            height: p.height,
            channel_width: p.channel_width,
            io_in: p.io_in,
            io_out: p.io_out,
            per_tile: 4 * p.channel_width + 1 + p.io_in + p.io_out,
        }
    }

    fn tile_base(&self, t: TileCoord) -> usize {
        (t.y * self.width + t.x) * self.per_tile
    }

    /// Id of the outgoing wire `(t, dir, w)`.
    #[must_use]
    pub fn wire(&self, t: TileCoord, dir: Dir, w: usize) -> ResourceId {
        (self.tile_base(t) + dir_index(dir) * self.channel_width + w) as ResourceId
    }

    /// Id of the LUT output of `t`.
    #[must_use]
    pub fn lut_out(&self, t: TileCoord) -> ResourceId {
        (self.tile_base(t) + 4 * self.channel_width) as ResourceId
    }

    /// Id of external input port `p` of `t`.
    #[must_use]
    pub fn io_in(&self, t: TileCoord, p: usize) -> ResourceId {
        (self.tile_base(t) + 4 * self.channel_width + 1 + p) as ResourceId
    }

    /// Id of external output port `p` of `t`.
    #[must_use]
    pub fn io_out(&self, t: TileCoord, p: usize) -> ResourceId {
        (self.tile_base(t) + 4 * self.channel_width + 1 + self.io_in + p) as ResourceId
    }

    /// Total arena size.
    #[must_use]
    pub fn total(&self) -> usize {
        self.width * self.height * self.per_tile
    }

    /// Remaps a resource id from this arena into `dst`'s arena, keeping
    /// the tile coordinate and intra-tile offset. Both layouts must share
    /// `per_tile` (same channel width, IO counts) and `dst` must be at
    /// least as wide and tall as `self`.
    fn remap_into(&self, dst: &ResourceLayout, id: ResourceId) -> ResourceId {
        debug_assert_eq!(self.per_tile, dst.per_tile);
        let tile = id as usize / self.per_tile;
        let offset = id as usize % self.per_tile;
        let x = tile % self.width;
        let y = tile / self.width;
        debug_assert!(x < dst.width && y < dst.height);
        (((y * dst.width + x) * dst.per_tile) + offset) as ResourceId
    }
}

/// One evaluation step of a compiled plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Drive `dst` from `src` (a configured switch-block cross-point
    /// feeding a channel wire or IO output).
    Copy {
        /// Source resource.
        src: ResourceId,
        /// Destination resource.
        dst: ResourceId,
    },
    /// Evaluate one tile's LUT plane into its output resource.
    Lut {
        /// Per-pin source resources; `None` = pin unconfigured (reads 0).
        pins: [Option<ResourceId>; MultiContextLut::MAX_K],
        /// Number of LUT inputs (`k` of the fabric).
        k: u8,
        /// Truth table of this context's plane.
        table: u64,
        /// The LUT-output resource.
        dst: ResourceId,
    },
}

impl Op {
    fn dst(&self) -> ResourceId {
        match *self {
            Op::Copy { dst, .. } | Op::Lut { dst, .. } => dst,
        }
    }

    fn for_each_src(&self, mut f: impl FnMut(ResourceId)) {
        match self {
            Op::Copy { src, .. } => f(*src),
            Op::Lut { pins, k, .. } => {
                for pin in pins.iter().take(*k as usize).flatten() {
                    f(*pin);
                }
            }
        }
    }
}

/// One context's compiled configuration plane.
#[derive(Debug, Clone)]
pub struct CompiledPlane {
    /// Ops in topological order (acyclic planes) or deterministic tile
    /// order (cyclic fallback).
    ops: Vec<Op>,
    /// True when the configured routing contains a combinational cycle and
    /// evaluation must sweep to a fixpoint instead of a single pass.
    cyclic: bool,
    /// Depth of the levelized DAG (longest op chain; 0 for empty planes
    /// and for cyclic fallbacks).
    levels: usize,
    /// `(io_in resource, signal name)` for this context's bound inputs.
    inputs: Vec<(ResourceId, String)>,
    /// `(io_out resource, signal name)` for this context's bound outputs.
    outputs: Vec<(ResourceId, String)>,
    /// Branch-free straight-line program for the steady-state path; `None`
    /// for cyclic planes and planes with an unreachable bound output
    /// (which must fault through the interpreter's unknown propagation).
    kernel: Option<PlaneKernel>,
}

impl CompiledPlane {
    /// Compiled ops, in evaluation order.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Does this plane need the cyclic fallback sweep?
    #[must_use]
    pub fn is_cyclic(&self) -> bool {
        self.cyclic
    }

    /// Longest producer→consumer chain after levelization.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Input bindings `(resource, name)`.
    #[must_use]
    pub fn input_binds(&self) -> &[(ResourceId, String)] {
        &self.inputs
    }

    /// Output bindings `(resource, name)`.
    #[must_use]
    pub fn output_binds(&self) -> &[(ResourceId, String)] {
        &self.outputs
    }

    /// Does this plane carry a straight-line kernel (acyclic, every bound
    /// output reachable from the bound inputs)?
    #[must_use]
    pub fn has_kernel(&self) -> bool {
        self.kernel.is_some()
    }
}

/// One step of a [`PlaneKernel`]'s straight-line program. Unlike [`Op`],
/// every pin is a pre-resolved arena index — unconfigured pins point at
/// the arena's always-zero sentinel cell — so execution needs no `Option`
/// dispatch and no `known`-bitmap branching.
#[derive(Debug, Clone)]
enum KernelOp {
    /// `values[dst] = values[src]`, one word at a time.
    Copy { src: u32, dst: u32 },
    /// `values[dst] = lut(tables[table], pins…)`, one word at a time.
    Lut {
        pins: [u32; MultiContextLut::MAX_K],
        k: u8,
        /// Index into [`PlaneKernel::tables`].
        table: u32,
        dst: u32,
    },
}

impl KernelOp {
    fn dst(&self) -> u32 {
        match *self {
            KernelOp::Copy { dst, .. } | KernelOp::Lut { dst, .. } => dst,
        }
    }
}

/// The compiled straight-line program of one acyclic plane: ops already
/// filtered down to the subset reachable from the bound inputs (exactly
/// the ops the branchy interpreter would ever run), in topological order,
/// with truth tables flattened into one contiguous arena and a per-op
/// *input cone* mask for dirty-cone skipping.
#[derive(Debug, Clone)]
struct PlaneKernel {
    ops: Vec<KernelOp>,
    /// `cones[i]`: bit `b` set ⇔ op `i`'s value depends on bound input
    /// `b`. All-ones when the plane binds more than 64 inputs (cone
    /// tracking disabled, every sweep is a full sweep).
    cones: Vec<u64>,
    /// Flattened LUT truth tables, indexed by [`KernelOp::Lut::table`].
    tables: Vec<u64>,
}

/// A context's IO names resolved to dense resource ids once, at tenant
/// admission, so steady-state sweeps index arrays instead of scanning
/// name lists and clone `Arc<str>`s instead of `String`s.
///
/// Entries keep the plane's bind order — output order is exactly the
/// response order of the name-keyed evaluation APIs. The `bool` marks
/// stream registers ([`REG_PREFIX`]).
#[derive(Debug, Clone)]
pub struct BoundPlan {
    ctx: usize,
    inputs: Vec<(ResourceId, Arc<str>, bool)>,
    outputs: Vec<(ResourceId, Arc<str>, bool)>,
}

impl BoundPlan {
    /// The context this plan binds.
    #[must_use]
    pub fn ctx(&self) -> usize {
        self.ctx
    }

    /// Bound inputs `(resource, interned name, is stream register)`, in
    /// plane bind order.
    #[must_use]
    pub fn inputs(&self) -> &[(ResourceId, Arc<str>, bool)] {
        &self.inputs
    }

    /// Bound outputs `(resource, interned name, is stream register)`, in
    /// plane bind order.
    #[must_use]
    pub fn outputs(&self) -> &[(ResourceId, Arc<str>, bool)] {
        &self.outputs
    }
}

/// Deterministic accounting of one [`CompiledFabric::eval_bound_into`]
/// pass: pure counts of compiled ops, so totals are bit-identical at any
/// thread count and lane width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalStats {
    /// Ops in the executed program (kernel ops, or interpreter ops for
    /// planes without a kernel).
    pub ops_total: u64,
    /// Ops skipped because no bound input in their cone was dirty.
    pub ops_skipped: u64,
    /// Whether the straight-line kernel ran (vs the reference
    /// interpreter).
    pub kernel: bool,
}

/// Dense lane values of every resource after one batch evaluation.
///
/// Each resource holds a [`LaneChunk`]; lane `l` of the chunk is its
/// boolean value in input vector `l`. Known-ness is per-resource, not
/// per-lane: whether a resource resolves depends only on the configuration
/// and which inputs are driven, never on input values. The single-word
/// accessors ([`wire`](Self::wire), [`lut_out`](Self::lut_out),
/// [`io_out`](Self::io_out)) read word 0 — the legacy 64-lane view.
#[derive(Debug, Clone)]
pub struct CompiledState {
    layout: ResourceLayout,
    values: Vec<LaneChunk>,
    known: Vec<bool>,
}

impl CompiledState {
    fn read_chunk(&self, id: ResourceId) -> Option<LaneChunk> {
        self.known[id as usize].then(|| self.values[id as usize])
    }

    fn read(&self, id: ResourceId) -> Option<u64> {
        self.read_chunk(id).map(|c| c[0])
    }

    /// Marks every resource unknown again. Stale values behind a cleared
    /// `known` flag are unobservable (every read is gated on it), so only
    /// the flag array needs zeroing.
    fn reset(&mut self) {
        self.known.fill(false);
    }

    /// Word-0 lanes on output wire `(tile, dir, w)`, if resolved.
    #[must_use]
    pub fn wire(&self, tile: TileCoord, dir: Dir, w: usize) -> Option<u64> {
        self.read(self.layout.wire(tile, dir, w))
    }

    /// Word-0 LUT output lanes of `tile`, if resolved.
    #[must_use]
    pub fn lut_out(&self, tile: TileCoord) -> Option<u64> {
        self.read(self.layout.lut_out(tile))
    }

    /// Word-0 external output port lanes, if resolved.
    #[must_use]
    pub fn io_out(&self, tile: TileCoord, port: usize) -> Option<u64> {
        self.read(self.layout.io_out(tile, port))
    }

    /// Full lane chunk of output wire `(tile, dir, w)`, if resolved.
    #[must_use]
    pub fn wire_chunk(&self, tile: TileCoord, dir: Dir, w: usize) -> Option<LaneChunk> {
        self.read_chunk(self.layout.wire(tile, dir, w))
    }
}

/// Lane-wise LUT evaluation: mux-reduce the truth table over the pin lanes.
///
/// `acc` starts as the 2^k truth-table rows broadcast to all lanes; each
/// pin folds the table in half, selecting between the pin=0 and pin=1
/// halves per lane. `2^k − 1` select steps evaluate all 64 lanes at once.
#[inline]
fn lut_lanes(table: u64, pins: &[u64]) -> u64 {
    let mut acc = [0u64; 1 << MultiContextLut::MAX_K];
    let rows = 1usize << pins.len();
    for (r, slot) in acc.iter_mut().enumerate().take(rows) {
        *slot = if (table >> r) & 1 == 1 { !0u64 } else { 0 };
    }
    let mut len = rows;
    for &p in pins {
        len /= 2;
        for j in 0..len {
            acc[j] = (acc[2 * j] & !p) | (acc[2 * j + 1] & p);
        }
    }
    acc[0]
}

/// [`lut_lanes`] monomorphized to an exact row count (`ROWS = 2^k`): the
/// accumulator is exactly sized (no 64-entry scratch to initialize for a
/// 2-pin mux) and the fold loops fully unroll. The straight-line kernel
/// dispatches to this per op; `debug_assert` keeps the pin count honest.
#[inline]
fn mux_reduce<const ROWS: usize>(table: u64, pins: &[u64]) -> u64 {
    debug_assert_eq!(ROWS, 1usize << pins.len());
    let mut acc = [0u64; ROWS];
    for (r, slot) in acc.iter_mut().enumerate() {
        *slot = if (table >> r) & 1 == 1 { !0u64 } else { 0 };
    }
    let mut len = ROWS;
    for &p in pins {
        len /= 2;
        for j in 0..len {
            acc[j] = (acc[2 * j] & !p) | (acc[2 * j + 1] & p);
        }
    }
    acc[0]
}

/// A fabric flattened, levelized and ready for bit-parallel evaluation.
#[derive(Debug, Clone)]
pub struct CompiledFabric {
    params: FabricParams,
    layout: ResourceLayout,
    planes: Vec<CompiledPlane>,
    /// `Some(ctx)` when only one context was compiled
    /// ([`Self::compile_context`]); other contexts then refuse to evaluate
    /// instead of silently returning empty results.
    only_ctx: Option<usize>,
}

impl CompiledFabric {
    /// Compiles every context plane of `fabric`.
    pub fn compile(fabric: &Fabric) -> Result<Self, FabricError> {
        let params = *fabric.params();
        let layout = ResourceLayout::new(&params);
        let mut planes = Vec::with_capacity(params.contexts);
        for ctx in 0..params.contexts {
            planes.push(Self::compile_plane(fabric, &layout, ctx)?);
        }
        Ok(CompiledFabric {
            params,
            layout,
            planes,
            only_ctx: None,
        })
    }

    /// Compiles only the plane of `ctx`, leaving the other contexts empty.
    ///
    /// Single-context callers (like the 1-lane [`crate::sim::evaluate`]
    /// wrapper) skip the O(contexts) compile cost of the unused planes.
    /// Accessing any context other than `ctx` on the result errors with
    /// [`FabricError::ContextNotCompiled`].
    pub fn compile_context(fabric: &Fabric, ctx: usize) -> Result<Self, FabricError> {
        let params = *fabric.params();
        if ctx >= params.contexts {
            return Err(FabricError::ContextOutOfRange {
                ctx,
                contexts: params.contexts,
            });
        }
        let layout = ResourceLayout::new(&params);
        let empty = CompiledPlane {
            ops: Vec::new(),
            cyclic: false,
            levels: 0,
            inputs: Vec::new(),
            outputs: Vec::new(),
            kernel: None,
        };
        let mut planes = vec![empty; params.contexts];
        planes[ctx] = Self::compile_plane(fabric, &layout, ctx)?;
        Ok(CompiledFabric {
            params,
            layout,
            planes,
            only_ctx: Some(ctx),
        })
    }

    fn resolve_source(
        fabric: &Fabric,
        layout: &ResourceLayout,
        t: TileCoord,
        src: Source,
    ) -> Option<ResourceId> {
        match src {
            Source::WireFrom { dir, w } => {
                // the neighbour's wire pointing back toward `t`
                let n = fabric.neighbor(t, dir)?;
                Some(layout.wire(n, dir.opposite(), w))
            }
            Source::LutOut => Some(layout.lut_out(t)),
            Source::IoIn(p) => Some(layout.io_in(t, p)),
        }
    }

    fn compile_plane(
        fabric: &Fabric,
        layout: &ResourceLayout,
        ctx: usize,
    ) -> Result<CompiledPlane, FabricError> {
        let params = fabric.params();
        let mut ops: Vec<Op> = Vec::new();
        for t in fabric.tiles() {
            let tc = fabric.tile(t)?;
            let sources = fabric.sources(t);
            let mut pins = [None; MultiContextLut::MAX_K];
            let mut any_pin = false;
            for (sink_idx, sink) in fabric.sinks(t).into_iter().enumerate() {
                let Some(src_idx) = tc.sb[ctx][sink_idx] else {
                    continue;
                };
                let src = Self::resolve_source(fabric, layout, t, sources[src_idx as usize])
                    .ok_or(FabricError::BadTile { x: t.x, y: t.y })?;
                match sink {
                    Sink::WireTo { dir, w } => ops.push(Op::Copy {
                        src,
                        dst: layout.wire(t, dir, w),
                    }),
                    Sink::IoOut(port) => ops.push(Op::Copy {
                        src,
                        dst: layout.io_out(t, port),
                    }),
                    Sink::LutIn(pin) => {
                        pins[pin] = Some(src);
                        any_pin = true;
                    }
                }
            }
            if any_pin {
                ops.push(Op::Lut {
                    pins,
                    k: params.lut_k as u8,
                    table: tc.lut.table(ctx)?,
                    dst: layout.lut_out(t),
                });
            }
        }

        let (ops, cyclic, levels) = Self::levelize(ops, layout.total());

        let inputs: Vec<(ResourceId, String)> = fabric
            .input_binds()
            .iter()
            .filter(|(_, _, c, _)| *c == ctx)
            .map(|(t, p, _, name)| (layout.io_in(*t, *p), name.clone()))
            .collect();
        let outputs: Vec<(ResourceId, String)> = fabric
            .output_binds()
            .iter()
            .filter(|(_, _, c, _)| *c == ctx)
            .map(|(t, p, _, name)| (layout.io_out(*t, *p), name.clone()))
            .collect();

        let kernel = if cyclic {
            None
        } else {
            Self::build_kernel(&ops, &inputs, &outputs, layout)
        };

        Ok(CompiledPlane {
            ops,
            cyclic,
            levels,
            inputs,
            outputs,
            kernel,
        })
    }

    /// Compiles the straight-line kernel of an acyclic, topologically
    /// sorted op list: a single forward pass keeps exactly the ops the
    /// interpreter's unknown propagation would ever run (those whose
    /// configured sources are all reachable from the bound inputs) and
    /// accumulates each op's input-cone mask. Returns `None` when any
    /// bound output is unreachable — such planes must keep faulting
    /// through the interpreter with its exact error.
    fn build_kernel(
        ops: &[Op],
        inputs: &[(ResourceId, String)],
        outputs: &[(ResourceId, String)],
        layout: &ResourceLayout,
    ) -> Option<PlaneKernel> {
        let zero_pin = layout.total() as u32;
        // cone[r] = Some(mask of bound inputs r depends on) ⇔ r reachable
        let mut cone: Vec<Option<u64>> = vec![None; layout.total()];
        let wide = inputs.len() > 64;
        for (i, (id, _)) in inputs.iter().enumerate() {
            let mask = if wide { DIRTY_ALL } else { 1u64 << i };
            let slot = &mut cone[*id as usize];
            *slot = Some(slot.unwrap_or(0) | mask);
        }
        let mut kops = Vec::with_capacity(ops.len());
        let mut cones = Vec::with_capacity(ops.len());
        let mut tables = Vec::new();
        for op in ops {
            match op {
                Op::Copy { src, dst } => {
                    let Some(c) = cone[*src as usize] else {
                        continue;
                    };
                    cone[*dst as usize] = Some(c);
                    kops.push(KernelOp::Copy {
                        src: *src,
                        dst: *dst,
                    });
                    cones.push(c);
                }
                Op::Lut {
                    pins,
                    k,
                    table,
                    dst,
                } => {
                    // unconfigured pins read the always-zero sentinel and
                    // impose no reachability requirement (run_op parity)
                    let mut c = 0u64;
                    let mut resolved = [zero_pin; MultiContextLut::MAX_K];
                    let mut runnable = true;
                    for (i, pin) in pins.iter().take(*k as usize).enumerate() {
                        if let Some(src) = pin {
                            match cone[*src as usize] {
                                Some(pc) => {
                                    c |= pc;
                                    resolved[i] = *src;
                                }
                                None => {
                                    runnable = false;
                                    break;
                                }
                            }
                        }
                    }
                    if !runnable {
                        continue;
                    }
                    cone[*dst as usize] = Some(c);
                    let ti = tables.len() as u32;
                    tables.push(*table);
                    kops.push(KernelOp::Lut {
                        pins: resolved,
                        k: *k,
                        table: ti,
                        dst: *dst,
                    });
                    cones.push(c);
                }
            }
        }
        if outputs.iter().any(|(id, _)| cone[*id as usize].is_none()) {
            return None;
        }
        Some(PlaneKernel {
            ops: kops,
            cones,
            tables,
        })
    }

    /// Kahn topological sort of `ops` by data dependency. Returns the
    /// sorted ops, whether a cycle forced the fallback order, and the DAG
    /// depth. Every resource has at most one producer op (each sink stores
    /// one source per context), so the dependency graph is exactly
    /// producer→consumer between ops.
    fn levelize(ops: Vec<Op>, total_resources: usize) -> (Vec<Op>, bool, usize) {
        let mut producer: Vec<Option<usize>> = vec![None; total_resources];
        for (i, op) in ops.iter().enumerate() {
            producer[op.dst() as usize] = Some(i);
        }
        let mut indegree = vec![0usize; ops.len()];
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); ops.len()];
        for (i, op) in ops.iter().enumerate() {
            op.for_each_src(|src| {
                if let Some(p) = producer[src as usize] {
                    consumers[p].push(i);
                    indegree[i] += 1;
                }
            });
        }
        let mut queue: Vec<usize> = (0..ops.len()).filter(|&i| indegree[i] == 0).collect();
        let mut level = vec![0usize; ops.len()];
        let mut order = Vec::with_capacity(ops.len());
        let mut head = 0;
        while head < queue.len() {
            let i = queue[head];
            head += 1;
            order.push(i);
            for &c in &consumers[i] {
                indegree[c] -= 1;
                level[c] = level[c].max(level[i] + 1);
                if indegree[c] == 0 {
                    queue.push(c);
                }
            }
        }
        if order.len() == ops.len() {
            let depth = order.iter().map(|&i| level[i] + 1).max().unwrap_or(0);
            let sorted = order.iter().map(|&i| ops[i].clone()).collect();
            (sorted, false, depth)
        } else {
            // genuine combinational cycle: keep deterministic tile order and
            // let evaluation sweep to the monotone fixpoint
            (ops, true, 0)
        }
    }

    /// Fabric parameters the compilation captured.
    #[must_use]
    pub fn params(&self) -> &FabricParams {
        &self.params
    }

    /// The single context a partial compilation
    /// ([`Self::compile_context`]) captured, or `None` for a full
    /// [`Self::compile`].
    #[must_use]
    pub fn compiled_context(&self) -> Option<usize> {
        self.only_ctx
    }

    /// Moves a partially-compiled plane to a different context slot.
    ///
    /// A [`CompiledPlane`] is context-independent once compiled — its ops
    /// address arena resources and carry baked truth tables — so the same
    /// plane evaluates bit-for-bit identically from any slot; only the CSS
    /// broadcast *energy* of reaching the slot differs. Live migration uses
    /// this to restore a tenant into whatever context index the destination
    /// shard has free, without re-routing or recompiling.
    ///
    /// Only single-context compilations rebase (a full compile has one
    /// plane per context and nothing to move); `dst` must be within the
    /// captured geometry's context count.
    pub fn rebase_context(&self, dst: usize) -> Result<CompiledFabric, FabricError> {
        let Some(src) = self.only_ctx else {
            return Err(FabricError::BadParams(
                "rebase_context requires a single-context compilation".into(),
            ));
        };
        if dst >= self.params.contexts {
            return Err(FabricError::ContextOutOfRange {
                ctx: dst,
                contexts: self.params.contexts,
            });
        }
        let mut rebased = self.clone();
        if src != dst {
            rebased.planes.swap(src, dst);
        }
        rebased.only_ctx = Some(dst);
        Ok(rebased)
    }

    /// Re-targets a partially-compiled plane onto a *different* fabric
    /// geometry — the pad-and-remap path behind heterogeneous restore.
    ///
    /// A small grid embeds into the top-left corner of a larger one: every
    /// tile keeps its `(x, y)` coordinate and every resource keeps its
    /// intra-tile offset, so remapping each [`Op`] and IO bind through the
    /// destination arena preserves op order, dependencies and truth tables.
    /// Evaluation of the rebased plane is therefore bit-for-bit identical
    /// to the original — the extra tiles of the larger grid are simply
    /// never addressed.
    ///
    /// Requirements: a single-context compilation ([`Self::compile_context`]),
    /// matching `arch` / `lut_k` / `channel_width` / `io_in` / `io_out`
    /// (so tiles have identical resource shapes), destination at least as
    /// wide and tall as the source, and `dst_ctx` within the destination's
    /// context count. Same-geometry calls fall through to
    /// [`Self::rebase_context`].
    pub fn rebase_onto(
        &self,
        dst_params: FabricParams,
        dst_ctx: usize,
    ) -> Result<CompiledFabric, FabricError> {
        if dst_params == self.params {
            return self.rebase_context(dst_ctx);
        }
        let Some(src) = self.only_ctx else {
            return Err(FabricError::BadParams(
                "rebase_onto requires a single-context compilation".into(),
            ));
        };
        let compatible = dst_params.arch == self.params.arch
            && dst_params.lut_k == self.params.lut_k
            && dst_params.channel_width == self.params.channel_width
            && dst_params.io_in == self.params.io_in
            && dst_params.io_out == self.params.io_out
            && dst_params.width >= self.params.width
            && dst_params.height >= self.params.height;
        if !compatible {
            return Err(FabricError::BadParams(format!(
                "cannot rebase {:?} plane onto incompatible geometry {:?}",
                self.params, dst_params
            )));
        }
        if dst_ctx >= dst_params.contexts {
            return Err(FabricError::ContextOutOfRange {
                ctx: dst_ctx,
                contexts: dst_params.contexts,
            });
        }
        let dst_layout = ResourceLayout::new(&dst_params);
        let remap = |id: ResourceId| self.layout.remap_into(&dst_layout, id);
        let plane = &self.planes[src];
        let ops: Vec<Op> = plane
            .ops
            .iter()
            .map(|op| match op {
                Op::Copy { src, dst } => Op::Copy {
                    src: remap(*src),
                    dst: remap(*dst),
                },
                Op::Lut {
                    pins,
                    k,
                    table,
                    dst,
                } => Op::Lut {
                    pins: pins.map(|p| p.map(remap)),
                    k: *k,
                    table: *table,
                    dst: remap(*dst),
                },
            })
            .collect();
        let remap_binds = |binds: &[(ResourceId, String)]| {
            binds
                .iter()
                .map(|(r, n)| (remap(*r), n.clone()))
                .collect::<Vec<_>>()
        };
        let inputs = remap_binds(&plane.inputs);
        let outputs = remap_binds(&plane.outputs);
        // the kernel bakes arena indices, so it is rebuilt against the
        // destination layout rather than remapped op by op
        let kernel = if plane.cyclic {
            None
        } else {
            Self::build_kernel(&ops, &inputs, &outputs, &dst_layout)
        };
        let moved = CompiledPlane {
            ops,
            cyclic: plane.cyclic,
            levels: plane.levels,
            inputs,
            outputs,
            kernel,
        };
        let empty = CompiledPlane {
            ops: Vec::new(),
            cyclic: false,
            levels: 0,
            inputs: Vec::new(),
            outputs: Vec::new(),
            kernel: None,
        };
        let mut planes = vec![empty; dst_params.contexts];
        planes[dst_ctx] = moved;
        Ok(CompiledFabric {
            params: dst_params,
            layout: dst_layout,
            planes,
            only_ctx: Some(dst_ctx),
        })
    }

    /// The resource arena layout.
    #[must_use]
    pub fn layout(&self) -> &ResourceLayout {
        &self.layout
    }

    /// The compiled plane of `ctx`.
    pub fn plane(&self, ctx: usize) -> Result<&CompiledPlane, FabricError> {
        if let Some(compiled) = self.only_ctx {
            if ctx != compiled {
                return Err(FabricError::ContextNotCompiled { ctx, compiled });
            }
        }
        self.planes.get(ctx).ok_or(FabricError::ContextOutOfRange {
            ctx,
            contexts: self.params.contexts,
        })
    }

    /// Evaluates context `ctx` on up to [`LANES`] input vectors at once —
    /// the legacy single-word view: each input/output `u64` is word 0 of
    /// the chunked datapath (see [`Self::eval_chunks`]).
    ///
    /// Bit `l` of each input's `u64` is that signal's value in vector `l`;
    /// outputs use the same lane packing. Unknown-propagation semantics are
    /// identical to [`crate::sim::evaluate_fixpoint`]: every bound input of
    /// the context must be supplied, and every bound output must resolve.
    pub fn eval_batch(
        &self,
        ctx: usize,
        inputs: &[(&str, u64)],
    ) -> Result<(Vec<(String, u64)>, CompiledState), FabricError> {
        let mut st = self.new_state();
        let outs = self.eval_batch_into(ctx, inputs, &mut st)?;
        Ok((outs, st))
    }

    /// A scratch state sized for this fabric, reusable across
    /// [`Self::eval_chunks_into`] calls. The arena carries one extra
    /// always-zero cell past [`ResourceLayout::total`] — the sentinel an
    /// unconfigured kernel pin reads; nothing ever writes it.
    #[must_use]
    pub fn new_state(&self) -> CompiledState {
        CompiledState {
            layout: self.layout,
            values: vec![[0u64; LANE_WORDS]; self.layout.total() + 1],
            known: vec![false; self.layout.total() + 1],
        }
    }

    /// [`Self::eval_batch`] writing into a caller-owned scratch state —
    /// hot loops (schedule replay, staged execution) evaluate many batches
    /// without re-allocating the arena each step. The single-word path
    /// seeds the arena directly from the `u64` inputs — no intermediate
    /// chunk-widening vector is built.
    pub fn eval_batch_into(
        &self,
        ctx: usize,
        inputs: &[(&str, u64)],
        st: &mut CompiledState,
    ) -> Result<Vec<(String, u64)>, FabricError> {
        let plane = self.plane(ctx)?;
        self.prepare_state(st);
        for (id, name) in &plane.inputs {
            let v = inputs
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .ok_or_else(|| FabricError::Unresolved(format!("input '{name}' not driven")))?;
            st.values[*id as usize] = chunk_of_word(v);
            st.known[*id as usize] = true;
        }
        if let Some(kernel) = &plane.kernel {
            Self::kernel_run_all(kernel, 1, st);
            Ok(plane
                .outputs
                .iter()
                .map(|(id, name)| (name.clone(), st.values[*id as usize][0]))
                .collect())
        } else {
            Self::run_interpreter(plane, 1, st);
            plane
                .outputs
                .iter()
                .map(|(id, name)| {
                    st.read_chunk(*id)
                        .map(|c| (name.clone(), c[0]))
                        .ok_or_else(|| {
                            FabricError::Unresolved(format!("output '{name}' unresolved"))
                        })
                })
                .collect()
        }
    }

    /// Evaluates context `ctx` on up to [`MAX_LANES`] input vectors at
    /// once: lane `l` of each input's [`LaneChunk`] is that signal's value
    /// in vector `l`, outputs use the same packing.
    ///
    /// `words` is the number of 64-lane words actually occupied
    /// ([`LaneBatch::words`], clamped to `1..=LANE_WORDS`): only those
    /// words are computed and words past it come back zero, so sparse
    /// batches pay exactly the old single-word cost. Lanes are fully
    /// independent — evaluating a chunk is bit-for-bit identical to
    /// [`LANE_WORDS`] separate [`Self::eval_batch`] passes, one per word.
    pub fn eval_chunks(
        &self,
        ctx: usize,
        inputs: &[(&str, LaneChunk)],
        words: usize,
    ) -> Result<(Vec<(String, LaneChunk)>, CompiledState), FabricError> {
        let mut st = self.new_state();
        let outs = self.eval_chunks_into(ctx, inputs, words, &mut st)?;
        Ok((outs, st))
    }

    /// [`Self::eval_chunks`] writing into a caller-owned scratch state.
    /// Acyclic planes dispatch to the straight-line kernel; cyclic planes
    /// (and planes with unreachable bound outputs) fall back to the
    /// reference interpreter, with identical results and errors either
    /// way.
    pub fn eval_chunks_into(
        &self,
        ctx: usize,
        inputs: &[(&str, LaneChunk)],
        words: usize,
        st: &mut CompiledState,
    ) -> Result<Vec<(String, LaneChunk)>, FabricError> {
        let words = words.clamp(1, LANE_WORDS);
        let plane = self.plane(ctx)?;
        self.prepare_state(st);
        for (id, name) in &plane.inputs {
            let v = inputs
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .ok_or_else(|| FabricError::Unresolved(format!("input '{name}' not driven")))?;
            Self::seed_input(st, *id, v, words);
        }
        if let Some(kernel) = &plane.kernel {
            Self::kernel_run_all(kernel, words, st);
            Ok(plane
                .outputs
                .iter()
                .map(|(id, name)| (name.clone(), st.values[*id as usize]))
                .collect())
        } else {
            Self::run_interpreter(plane, words, st);
            let mut outs = Vec::with_capacity(plane.outputs.len());
            for (id, name) in &plane.outputs {
                let v = st.read_chunk(*id).ok_or_else(|| {
                    FabricError::Unresolved(format!("output '{name}' unresolved"))
                })?;
                outs.push((name.clone(), v));
            }
            Ok(outs)
        }
    }

    /// The v1 branchy interpreter, unconditionally — bit-for-bit the
    /// pre-kernel [`Self::eval_chunks_into`]. Kept public as the
    /// equivalence oracle for the kernel path (property tests, the
    /// `eval_kernel` bench) and as executable documentation of the
    /// semantics the kernel must reproduce.
    pub fn eval_chunks_into_reference(
        &self,
        ctx: usize,
        inputs: &[(&str, LaneChunk)],
        words: usize,
        st: &mut CompiledState,
    ) -> Result<Vec<(String, LaneChunk)>, FabricError> {
        let words = words.clamp(1, LANE_WORDS);
        let plane = self.plane(ctx)?;
        self.prepare_state(st);
        for (id, name) in &plane.inputs {
            let v = inputs
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .ok_or_else(|| FabricError::Unresolved(format!("input '{name}' not driven")))?;
            Self::seed_input(st, *id, v, words);
        }
        Self::run_interpreter(plane, words, st);
        let mut outs = Vec::with_capacity(plane.outputs.len());
        for (id, name) in &plane.outputs {
            let v = st
                .read_chunk(*id)
                .ok_or_else(|| FabricError::Unresolved(format!("output '{name}' unresolved")))?;
            outs.push((name.clone(), v));
        }
        Ok(outs)
    }

    /// Resolves context `ctx`'s IO names to a reusable [`BoundPlan`] —
    /// the admission-time half of the v2 pipeline. Errors exactly like
    /// [`Self::plane`] for uncompiled contexts.
    pub fn bind(&self, ctx: usize) -> Result<BoundPlan, FabricError> {
        let plane = self.plane(ctx)?;
        let intern = |(id, name): &(ResourceId, String)| {
            (*id, Arc::from(name.as_str()), name.starts_with(REG_PREFIX))
        };
        Ok(BoundPlan {
            ctx,
            inputs: plane.inputs.iter().map(intern).collect(),
            outputs: plane.outputs.iter().map(intern).collect(),
        })
    }

    /// Does context `ctx` carry a straight-line kernel?
    #[must_use]
    pub fn has_kernel(&self, ctx: usize) -> bool {
        self.plane(ctx).is_ok_and(CompiledPlane::has_kernel)
    }

    /// Evaluates a prebound plan: `chunks` parallel to
    /// [`BoundPlan::inputs`], outputs pushed into `outs` parallel to
    /// [`BoundPlan::outputs`] — no name resolution, no `String` clones.
    ///
    /// `dirty` drives the dirty-cone incremental path on kernel planes:
    /// bit `i` set means input `i`'s chunk may differ from the previous
    /// call on this same `st`. Passing anything other than [`DIRTY_ALL`]
    /// is a contract that `st` holds the completed previous sweep of this
    /// plan **at the same `words`** and that every un-dirty chunk equals
    /// the chunk passed then; ops whose input cone misses every dirty bit
    /// are skipped and their cached values reused — observationally
    /// equivalent to a full sweep. Non-kernel planes ignore `dirty` and
    /// always sweep fully through the reference interpreter.
    pub fn eval_bound_into(
        &self,
        bound: &BoundPlan,
        chunks: &[LaneChunk],
        words: usize,
        dirty: u64,
        st: &mut CompiledState,
        outs: &mut Vec<LaneChunk>,
    ) -> Result<EvalStats, FabricError> {
        let words = words.clamp(1, LANE_WORDS);
        let plane = self.plane(bound.ctx)?;
        if chunks.len() != bound.inputs.len() {
            return Err(FabricError::BadParams(format!(
                "{} input chunks for {} bound inputs",
                chunks.len(),
                bound.inputs.len()
            )));
        }
        let mut dirty = dirty;
        if st.layout != self.layout {
            *st = self.new_state();
            dirty = DIRTY_ALL;
        }
        if bound.inputs.len() > 64 && dirty != 0 {
            // the dirty mask cannot address inputs past bit 63 (and cone
            // tracking is disabled for such planes): sweep fully
            dirty = DIRTY_ALL;
        }
        outs.clear();
        if let Some(kernel) = &plane.kernel {
            let ops_total = kernel.ops.len() as u64;
            let run = if dirty == DIRTY_ALL {
                st.reset();
                for ((id, _, _), chunk) in bound.inputs.iter().zip(chunks) {
                    Self::seed_input(st, *id, *chunk, words);
                }
                Self::kernel_run_all(kernel, words, st);
                ops_total
            } else if dirty == 0 {
                0
            } else {
                for (i, ((id, _, _), chunk)) in bound.inputs.iter().zip(chunks).enumerate() {
                    if dirty >> i & 1 == 1 {
                        Self::seed_input(st, *id, *chunk, words);
                    }
                }
                Self::kernel_run_dirty(kernel, words, dirty, st)
            };
            for (id, _, _) in &bound.outputs {
                outs.push(st.values[*id as usize]);
            }
            Ok(EvalStats {
                ops_total,
                ops_skipped: ops_total - run,
                kernel: true,
            })
        } else {
            st.reset();
            for ((id, _, _), chunk) in bound.inputs.iter().zip(chunks) {
                Self::seed_input(st, *id, *chunk, words);
            }
            Self::run_interpreter(plane, words, st);
            for (id, name, _) in &bound.outputs {
                let v = st.read_chunk(*id).ok_or_else(|| {
                    FabricError::Unresolved(format!("output '{name}' unresolved"))
                })?;
                outs.push(v);
            }
            Ok(EvalStats {
                ops_total: plane.ops.len() as u64,
                ops_skipped: 0,
                kernel: false,
            })
        }
    }

    /// Readies a caller scratch state for a fresh sweep: rebuilt when it
    /// came from a differently-shaped fabric (rather than silently
    /// reading through the wrong resource layout), reset otherwise.
    fn prepare_state(&self, st: &mut CompiledState) {
        if st.layout != self.layout || st.values.len() != self.layout.total() + 1 {
            *st = self.new_state();
        } else {
            st.reset();
        }
    }

    /// Seeds one bound input chunk, zeroing lanes past the occupied words
    /// — the invariant that every known chunk is zero beyond `words`, so
    /// outputs (and harvested stream registers) never carry stale or
    /// stray high-word bits.
    #[inline]
    fn seed_input(st: &mut CompiledState, id: ResourceId, mut chunk: LaneChunk, words: usize) {
        for word in chunk.iter_mut().skip(words) {
            *word = 0;
        }
        st.values[id as usize] = chunk;
        st.known[id as usize] = true;
    }

    /// One full interpreter sweep over a seeded state: the monotone
    /// fixpoint loop for cyclic planes (each productive pass resolves ≥1
    /// resource, so `ops.len() + 1` passes suffice), a single in-order
    /// pass otherwise.
    fn run_interpreter(plane: &CompiledPlane, words: usize, st: &mut CompiledState) {
        if plane.cyclic {
            for _ in 0..=plane.ops.len() {
                let mut changed = false;
                for op in &plane.ops {
                    changed |= Self::run_op(op, words, st);
                }
                if !changed {
                    break;
                }
            }
        } else {
            for op in &plane.ops {
                Self::run_op(op, words, st);
            }
        }
    }

    /// Executes the whole straight-line program in topological op order
    /// (every source chunk is fully written before it is read, so no
    /// `known` checks are needed), computing all [`LANE_WORDS`] words of
    /// each op unconditionally — a fixed-width inner loop the compiler
    /// unrolls — then zeroes each produced chunk's unoccupied high words
    /// and marks it known. The resulting value *and* known arrays are
    /// bit-identical to an interpreter sweep.
    fn kernel_run_all(kernel: &PlaneKernel, words: usize, st: &mut CompiledState) {
        for op in &kernel.ops {
            Self::run_kernel_op_chunk(kernel, op, st);
        }
        for op in &kernel.ops {
            let dst = op.dst() as usize;
            for word in &mut st.values[dst][words..] {
                *word = 0;
            }
            st.known[dst] = true;
        }
    }

    /// The incremental variant of [`Self::kernel_run_all`]: runs only ops
    /// whose input cone intersects `dirty`, reusing every other op's
    /// value (and already-zeroed high words) from the previous sweep held
    /// in `st`. Returns the number of ops run.
    fn kernel_run_dirty(
        kernel: &PlaneKernel,
        words: usize,
        dirty: u64,
        st: &mut CompiledState,
    ) -> u64 {
        let mut run = 0u64;
        for (op, cone) in kernel.ops.iter().zip(&kernel.cones) {
            if cone & dirty != 0 {
                Self::run_kernel_op_chunk(kernel, op, st);
                run += 1;
            }
        }
        if words < LANE_WORDS {
            // re-run ops recomputed their high words from the (zeroed)
            // input tails; restore the all-zero-past-`words` invariant
            for (op, cone) in kernel.ops.iter().zip(&kernel.cones) {
                if cone & dirty != 0 {
                    for word in &mut st.values[op.dst() as usize][words..] {
                        *word = 0;
                    }
                }
            }
        }
        run
    }

    /// One kernel op over a whole [`LaneChunk`] — branch-free on `known`,
    /// `Option`-free on pins, mux reduction monomorphized per pin count
    /// so the row array is exactly sized and the folds fully unrolled.
    #[inline]
    fn run_kernel_op_chunk(kernel: &PlaneKernel, op: &KernelOp, st: &mut CompiledState) {
        match op {
            KernelOp::Copy { src, dst } => {
                st.values[*dst as usize] = st.values[*src as usize];
            }
            KernelOp::Lut {
                pins,
                k,
                table,
                dst,
            } => {
                let k = *k as usize;
                let table = kernel.tables[*table as usize];
                let mut out = [0u64; LANE_WORDS];
                for (w, slot) in out.iter_mut().enumerate() {
                    let mut lanes = [0u64; MultiContextLut::MAX_K];
                    for (lane, pin) in lanes.iter_mut().zip(pins).take(k) {
                        *lane = st.values[*pin as usize][w];
                    }
                    *slot = match k {
                        1 => mux_reduce::<2>(table, &lanes[..1]),
                        2 => mux_reduce::<4>(table, &lanes[..2]),
                        3 => mux_reduce::<8>(table, &lanes[..3]),
                        4 => mux_reduce::<16>(table, &lanes[..4]),
                        5 => mux_reduce::<32>(table, &lanes[..5]),
                        _ => mux_reduce::<64>(table, &lanes[..6]),
                    };
                }
                st.values[*dst as usize] = out;
            }
        }
    }

    /// Runs one op on the first `words` lane words; returns true when
    /// `dst` transitioned unknown→known.
    #[inline]
    fn run_op(op: &Op, words: usize, st: &mut CompiledState) -> bool {
        match op {
            Op::Copy { src, dst } => {
                if st.known[*dst as usize] || !st.known[*src as usize] {
                    return false;
                }
                st.values[*dst as usize] = st.values[*src as usize];
                st.known[*dst as usize] = true;
                true
            }
            Op::Lut {
                pins,
                k,
                table,
                dst,
            } => {
                if st.known[*dst as usize] {
                    return false;
                }
                let mut pin_ids = [None; MultiContextLut::MAX_K];
                for (i, pin) in pins.iter().take(*k as usize).enumerate() {
                    if let Some(src) = pin {
                        if !st.known[*src as usize] {
                            return false;
                        }
                        pin_ids[i] = Some(*src as usize);
                    }
                }
                let mut out = [0u64; LANE_WORDS];
                for (w, slot) in out.iter_mut().enumerate().take(words) {
                    let mut lanes = [0u64; MultiContextLut::MAX_K];
                    for (i, id) in pin_ids.iter().take(*k as usize).enumerate() {
                        if let Some(id) = id {
                            lanes[i] = st.values[*id][w];
                        }
                    }
                    *slot = lut_lanes(*table, &lanes[..*k as usize]);
                }
                st.values[*dst as usize] = out;
                st.known[*dst as usize] = true;
                true
            }
        }
    }

    /// Evaluates `ctx` on a batch and returns outputs sorted by name.
    pub fn eval_batch_sorted(
        &self,
        ctx: usize,
        inputs: &[(&str, u64)],
    ) -> Result<Vec<(String, u64)>, FabricError> {
        let (mut o, _) = self.eval_batch(ctx, inputs)?;
        o.sort();
        Ok(o)
    }
}

// The multi-tenant service fans per-shard sweeps out across worker
// threads: compiled planes are shared `Arc<CompiledFabric>`s and lane
// batches/scratch move with their engines. A future `Rc`, raw pointer or
// interior-mutability regression in any of these must fail the build, not
// wait for a review to notice.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledFabric>();
    assert_send_sync::<CompiledPlane>();
    assert_send_sync::<CompiledState>();
    assert_send_sync::<LaneBatch>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::FabricParams;
    use crate::netlist_ir::generators;
    use crate::route::implement_netlist;
    use crate::sim::evaluate_fixpoint;

    #[test]
    fn lut_lanes_matches_scalar_eval() {
        for table in [0b0110u64, 0b1000, 0b1110, 0xDEAD] {
            for v in 0..16u64 {
                let pins = [
                    if v & 1 == 1 { !0u64 } else { 0 },
                    if v & 2 == 2 { !0u64 } else { 0 },
                    if v & 4 == 4 { !0u64 } else { 0 },
                    if v & 8 == 8 { !0u64 } else { 0 },
                ];
                let want = if (table >> v) & 1 == 1 { !0u64 } else { 0 };
                assert_eq!(lut_lanes(table, &pins), want, "table={table:#x} v={v}");
            }
        }
    }

    #[test]
    fn lut_lanes_mixes_lanes_independently() {
        // lane l carries input vector l: pins[i] bit l = bit i of l
        let pins: Vec<u64> = (0..4)
            .map(|i| pack_lanes(|lane| lane < 16 && (lane >> i) & 1 == 1))
            .collect();
        let table = 0x8F31u64;
        let out = lut_lanes(table, &pins);
        for lane in 0..16 {
            assert_eq!((out >> lane) & 1, (table >> lane) & 1, "lane {lane}");
        }
    }

    #[test]
    fn parity_tree_batch_matches_reference() {
        let nl = generators::parity_tree(4).unwrap();
        let mut f = Fabric::new(FabricParams::default()).unwrap();
        implement_netlist(&mut f, &nl, 1, 5).unwrap();
        let compiled = CompiledFabric::compile(&f).unwrap();
        assert!(!compiled.plane(1).unwrap().is_cyclic());
        assert!(compiled.plane(1).unwrap().levels() > 1);

        // all 16 input vectors in one 64-lane batch, lanes 16.. replicate 0
        let ins: Vec<(String, u64)> = (0..4)
            .map(|i| (format!("x{i}"), pack_lanes(|v| v < 16 && (v >> i) & 1 == 1)))
            .collect();
        let ins_ref: Vec<(&str, u64)> = ins.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let outs = compiled.eval_batch_sorted(1, &ins_ref).unwrap();
        assert_eq!(outs.len(), 1);
        for v in 0..16u64 {
            let scalar_ins: Vec<(String, bool)> = (0..4)
                .map(|i| (format!("x{i}"), (v >> i) & 1 == 1))
                .collect();
            let scalar_ref: Vec<(&str, bool)> =
                scalar_ins.iter().map(|(n, b)| (n.as_str(), *b)).collect();
            let (golden, _) = evaluate_fixpoint(&f, 1, &scalar_ref).unwrap();
            assert_eq!((outs[0].1 >> v) & 1 == 1, golden[0].1, "vector {v}");
        }
    }

    #[test]
    fn missing_input_reports_unresolved() {
        let nl = generators::wire_lanes(1).unwrap();
        let mut f = Fabric::new(FabricParams::default()).unwrap();
        implement_netlist(&mut f, &nl, 0, 1).unwrap();
        let compiled = CompiledFabric::compile(&f).unwrap();
        assert!(matches!(
            compiled.eval_batch(0, &[]),
            Err(FabricError::Unresolved(_))
        ));
    }

    #[test]
    fn cyclic_config_falls_back_and_agrees_with_reference() {
        // hand-build a routing loop: two tiles driving each other's wires,
        // plus an independent straight-through lane feeding an output
        let mut f = Fabric::new(FabricParams::default()).unwrap();
        let a = TileCoord { x: 0, y: 0 };
        let b = TileCoord { x: 1, y: 0 };
        // cycle: a's east wire <- b's west wire <- a's east wire
        f.set_route(
            a,
            0,
            Sink::WireTo {
                dir: Dir::East,
                w: 0,
            },
            Some(Source::WireFrom {
                dir: Dir::East,
                w: 0,
            }),
        )
        .unwrap();
        f.set_route(
            b,
            0,
            Sink::WireTo {
                dir: Dir::West,
                w: 0,
            },
            Some(Source::WireFrom {
                dir: Dir::West,
                w: 0,
            }),
        )
        .unwrap();
        // independent resolvable path: io_in(a,0) -> io_out(a,0)
        f.set_route(a, 0, Sink::IoOut(0), Some(Source::IoIn(0)))
            .unwrap();
        f.bind_input(a, 0, 0, "x").unwrap();
        f.bind_output(a, 0, 0, "y").unwrap();

        let compiled = CompiledFabric::compile(&f).unwrap();
        assert!(compiled.plane(0).unwrap().is_cyclic());
        let outs = compiled.eval_batch_sorted(0, &[("x", 0b10u64)]).unwrap();
        assert_eq!(outs, vec![("y".to_string(), 0b10u64)]);
        // the looped wires stay unknown, exactly like the reference
        let (_, st) = compiled.eval_batch(0, &[("x", 1)]).unwrap();
        assert_eq!(st.wire(a, Dir::East, 0), None);
        let (gold, gst) = evaluate_fixpoint(&f, 0, &[("x", true)]).unwrap();
        assert_eq!(gold, vec![("y".to_string(), true)]);
        assert_eq!(gst.wire(a, Dir::East, 0), None);
    }

    #[test]
    fn contexts_compile_independently() {
        let mut f = Fabric::new(FabricParams::default()).unwrap();
        let p = generators::parity_tree(3).unwrap();
        let w = generators::wire_lanes(1).unwrap();
        implement_netlist(&mut f, &p, 0, 2).unwrap();
        implement_netlist(&mut f, &w, 1, 3).unwrap();
        let compiled = CompiledFabric::compile(&f).unwrap();
        assert!(!compiled.plane(0).unwrap().ops().is_empty());
        assert!(!compiled.plane(1).unwrap().ops().is_empty());
        assert!(compiled.plane(2).unwrap().ops().is_empty());
        let out1 = compiled.eval_batch_sorted(1, &[("in0", !0u64)]).unwrap();
        assert_eq!(out1, vec![("out0".to_string(), !0u64)]);
    }

    #[test]
    fn partial_compile_refuses_other_contexts() {
        let mut f = Fabric::new(FabricParams::default()).unwrap();
        let p = generators::parity_tree(3).unwrap();
        let w = generators::wire_lanes(1).unwrap();
        implement_netlist(&mut f, &p, 0, 2).unwrap();
        implement_netlist(&mut f, &w, 1, 3).unwrap();
        let partial = CompiledFabric::compile_context(&f, 0).unwrap();
        let ins: Vec<(&str, u64)> = vec![("x0", !0), ("x1", 0), ("x2", !0)];
        assert!(partial.eval_batch(0, &ins).is_ok());
        // ctx 1 has a real design, but this compilation never saw it —
        // error out rather than hand back empty outputs
        assert_eq!(
            partial.eval_batch(1, &[("in0", 1)]).unwrap_err(),
            FabricError::ContextNotCompiled {
                ctx: 1,
                compiled: 0
            }
        );
    }

    #[test]
    fn lane_batch_coalesces_and_demuxes() {
        let mut batch = LaneBatch::new();
        assert!(batch.is_empty());
        for i in 0..LANES {
            let lane = batch.push(&[("a", i % 2 == 0), ("b", i % 3 == 0)]).unwrap();
            assert_eq!(lane, i);
        }
        assert!(batch.is_full());
        assert_eq!(batch.push(&[("a", true)]), None, "65th request refused");
        let ins = batch.lane_inputs();
        let a = ins.iter().find(|(n, _)| *n == "a").unwrap().1;
        let b = ins.iter().find(|(n, _)| *n == "b").unwrap().1;
        assert_eq!(a, chunk_of_word(pack_lanes(|l| l % 2 == 0)));
        assert_eq!(b, chunk_of_word(pack_lanes(|l| l % 3 == 0)));
        batch.clear();
        assert!(batch.is_empty());
        assert!(batch
            .lane_inputs()
            .iter()
            .all(|(_, w)| *w == [0u64; LANE_WORDS]));
    }

    #[test]
    fn wide_batch_fills_past_64_lanes() {
        let mut batch = LaneBatch::with_width(MAX_LANES).unwrap();
        assert_eq!(batch.width(), MAX_LANES);
        assert_eq!(batch.words(), 1, "empty batch still evaluates one word");
        for i in 0..MAX_LANES {
            let lane = batch.push(&[("a", i % 2 == 0)]).unwrap();
            assert_eq!(lane, i);
        }
        assert!(batch.is_full());
        assert_eq!(batch.words(), LANE_WORDS);
        assert_eq!(batch.push(&[("a", true)]), None, "257th request refused");
        let a = batch.lane_inputs()[0].1;
        assert_eq!(a, pack_chunk(|l| l % 2 == 0));
        // lane 100 lives in word 1 bit 36
        assert!(chunk_bit(&a, 100));
        assert!(!chunk_bit(&a, 101));
        // widths outside 1..=MAX_LANES refuse
        assert!(LaneBatch::with_width(0).is_err());
        assert!(LaneBatch::with_width(MAX_LANES + 1).is_err());
        // 65 occupied lanes need two words
        let mut b = LaneBatch::with_width(MAX_LANES).unwrap();
        for _ in 0..65 {
            b.push(&[("x", true)]).unwrap();
        }
        assert_eq!(b.words(), 2);
    }

    #[test]
    fn push_covering_checks_the_canonical_prefix() {
        let mut b = LaneBatch::new();
        b.ensure_name("a");
        b.ensure_name("b");
        b.ensure_name("a"); // idempotent
                            // full coverage in any order; extra names are fine
        assert_eq!(
            b.push_covering(&[("b", true), ("a", false), ("zz", true)], 2),
            Ok(0)
        );
        // missing "b": refused, lane contents unchanged
        assert_eq!(
            b.push_covering(&[("a", true)], 2),
            Err(PushRefusal::MissingInput(1))
        );
        assert_eq!(b.input_name(1), Some("b"));
        assert_eq!(b.len(), 1);
        let ins = b.lane_inputs();
        assert_eq!(
            ins.iter().find(|(n, _)| *n == "a").unwrap().1,
            chunk_of_word(0)
        );
        assert_eq!(
            ins.iter().find(|(n, _)| *n == "b").unwrap().1,
            chunk_of_word(1)
        );
        // required = 0 behaves like a plain push
        assert_eq!(b.push_covering(&[], 0), Ok(1));
        // a full batch refuses regardless
        while !b.is_full() {
            b.push(&[("a", true)]).unwrap();
        }
        assert_eq!(
            b.push_covering(&[("a", true), ("b", true)], 2),
            Err(PushRefusal::Full)
        );
    }

    #[test]
    fn lane_batch_drives_compiled_eval() {
        let nl = generators::parity_tree(3).unwrap();
        let mut f = Fabric::new(FabricParams::default()).unwrap();
        implement_netlist(&mut f, &nl, 0, 5).unwrap();
        let compiled = CompiledFabric::compile(&f).unwrap();
        let mut batch = LaneBatch::new();
        let requests = [
            (true, false, true),
            (false, false, false),
            (true, true, true),
        ];
        for (x0, x1, x2) in requests {
            batch.push(&[("x0", x0), ("x1", x1), ("x2", x2)]).unwrap();
        }
        let (outs, _) = compiled
            .eval_chunks(0, &batch.lane_inputs(), batch.words())
            .unwrap();
        for (lane, (x0, x1, x2)) in requests.into_iter().enumerate() {
            let scalar = LaneBatch::extract_lane(&outs, lane);
            let want = x0 ^ x1 ^ x2;
            assert_eq!(scalar[0].1, want, "lane {lane}");
        }
    }

    #[test]
    fn chunked_eval_matches_independent_word_passes() {
        // one 256-lane chunked pass must be bit-for-bit identical to four
        // independent 64-lane single-word passes, one per word
        let nl = generators::parity_tree(3).unwrap();
        let mut f = Fabric::new(FabricParams::default()).unwrap();
        implement_netlist(&mut f, &nl, 0, 5).unwrap();
        let compiled = CompiledFabric::compile(&f).unwrap();
        let chunks: Vec<(String, LaneChunk)> = (0..3)
            .map(|i| {
                (
                    format!("x{i}"),
                    pack_chunk(|l| (l * 0x9E37 + i * 31) % (i + 2) == 0),
                )
            })
            .collect();
        let refs: Vec<(&str, LaneChunk)> = chunks.iter().map(|(n, c)| (n.as_str(), *c)).collect();
        let (wide, _) = compiled.eval_chunks(0, &refs, LANE_WORDS).unwrap();
        for w in 0..LANE_WORDS {
            let words: Vec<(&str, u64)> = chunks.iter().map(|(n, c)| (n.as_str(), c[w])).collect();
            let (narrow, _) = compiled.eval_batch(0, &words).unwrap();
            for ((wn, wc), (nn, nv)) in wide.iter().zip(&narrow) {
                assert_eq!(wn, nn);
                assert_eq!(wc[w], *nv, "word {w}");
            }
        }
        // words < LANE_WORDS zeroes the unoccupied words, even when the
        // input chunk carries stray bits there
        let (sparse, _) = compiled.eval_chunks(0, &refs, 1).unwrap();
        for ((_, c), (_, full)) in sparse.iter().zip(&wide) {
            assert_eq!(c[0], full[0]);
            assert_eq!(c[1..], [0u64; LANE_WORDS - 1]);
        }
    }

    #[test]
    fn context_digest_tracks_configuration() {
        let nl = generators::parity_tree(3).unwrap();
        let mut f = Fabric::new(FabricParams::default()).unwrap();
        implement_netlist(&mut f, &nl, 0, 5).unwrap();
        let d0 = f.context_digest(0).unwrap();
        // deterministic and per-context
        assert_eq!(d0, f.context_digest(0).unwrap());
        assert_ne!(d0, f.context_digest(1).unwrap());
        // identical flow into an identical fabric reproduces the digest
        let mut g = Fabric::new(FabricParams::default()).unwrap();
        implement_netlist(&mut g, &nl, 0, 5).unwrap();
        assert_eq!(d0, g.context_digest(0).unwrap());
        // any configuration change moves it
        let mut h = Fabric::new(FabricParams::default()).unwrap();
        implement_netlist(&mut h, &nl, 0, 6).unwrap();
        let moved = h.context_digest(0).unwrap();
        let empty = Fabric::new(FabricParams::default())
            .unwrap()
            .context_digest(0)
            .unwrap();
        assert_ne!(d0, empty);
        // seeds 5 and 6 place differently on the default 4×4 grid
        assert_ne!(d0, moved);
        assert!(f.context_digest(99).is_err());
    }

    #[test]
    fn context_digest_covers_the_architecture() {
        // CompiledFabric captures params().arch, so two configurations that
        // differ only in switch architecture must not share a digest
        use mcfpga_core::ArchKind;
        let sram = Fabric::new(FabricParams {
            arch: ArchKind::Sram,
            ..FabricParams::default()
        })
        .unwrap();
        let hybrid = Fabric::new(FabricParams::default()).unwrap();
        assert_ne!(
            sram.context_digest(0).unwrap(),
            hybrid.context_digest(0).unwrap()
        );
    }

    #[test]
    fn context_digest_separates_input_and_output_binds() {
        // same tile config, same concatenated bind records — but "b" is an
        // input in one fabric and an output in the other; the digests must
        // differ (domain tags + lengths prevent the collision)
        let t = TileCoord { x: 0, y: 0 };
        let mut a = Fabric::new(FabricParams::default()).unwrap();
        a.bind_input(t, 0, 0, "a").unwrap();
        a.bind_input(t, 1, 0, "b").unwrap();
        let mut b = Fabric::new(FabricParams::default()).unwrap();
        b.bind_input(t, 0, 0, "a").unwrap();
        b.bind_output(t, 1, 0, "b").unwrap();
        assert_ne!(a.context_digest(0).unwrap(), b.context_digest(0).unwrap());
    }

    #[test]
    fn layout_ids_are_disjoint_and_dense() {
        let p = FabricParams::default();
        let layout = ResourceLayout::new(&p);
        let mut seen = vec![false; layout.total()];
        let mut mark = |id: ResourceId| {
            assert!(!seen[id as usize], "duplicate id {id}");
            seen[id as usize] = true;
        };
        for y in 0..p.height {
            for x in 0..p.width {
                let t = TileCoord { x, y };
                for dir in Dir::ALL {
                    for w in 0..p.channel_width {
                        mark(layout.wire(t, dir, w));
                    }
                }
                mark(layout.lut_out(t));
                for i in 0..p.io_in {
                    mark(layout.io_in(t, i));
                }
                for o in 0..p.io_out {
                    mark(layout.io_out(t, o));
                }
            }
        }
        assert!(seen.into_iter().all(|b| b), "arena has holes");
    }

    #[test]
    fn rebased_plane_evaluates_identically_from_any_slot() {
        let nl = generators::parity_tree(3).unwrap();
        let mut f = Fabric::new(FabricParams::default()).unwrap();
        implement_netlist(&mut f, &nl, 1, 5).unwrap();
        let compiled = CompiledFabric::compile_context(&f, 1).unwrap();
        assert_eq!(compiled.compiled_context(), Some(1));
        let ins: Vec<(&str, u64)> = vec![("x0", 0xF0F0), ("x1", 0xFF00), ("x2", 0xAAAA)];
        let want = compiled.eval_batch_sorted(1, &ins).unwrap();
        for dst in 0..4 {
            let moved = compiled.rebase_context(dst).unwrap();
            assert_eq!(moved.compiled_context(), Some(dst));
            assert_eq!(
                moved.eval_batch_sorted(dst, &ins).unwrap(),
                want,
                "dst {dst}"
            );
            if dst != 1 {
                assert!(moved.eval_batch(1, &ins).is_err(), "old slot must refuse");
            }
        }
        assert!(compiled.rebase_context(99).is_err());
        assert!(CompiledFabric::compile(&f)
            .unwrap()
            .rebase_context(0)
            .is_err());
    }

    #[test]
    fn rebase_onto_larger_geometry_is_bit_identical() {
        // an 8x8 plane pad-and-remapped onto 10x10 must evaluate
        // bit-for-bit identically from every destination slot
        let nl = generators::parity_tree(3).unwrap();
        let small = FabricParams {
            width: 8,
            height: 8,
            ..FabricParams::default()
        };
        let big = FabricParams {
            width: 10,
            height: 10,
            contexts: 6,
            ..FabricParams::default()
        };
        let mut f = Fabric::new(small).unwrap();
        implement_netlist(&mut f, &nl, 2, 5).unwrap();
        let compiled = CompiledFabric::compile_context(&f, 2).unwrap();
        let ins: Vec<(&str, u64)> = vec![("x0", 0xF0F0), ("x1", 0xFF00), ("x2", 0xAAAA)];
        let want = compiled.eval_batch_sorted(2, &ins).unwrap();
        for dst in 0..big.contexts {
            let moved = compiled.rebase_onto(big, dst).unwrap();
            assert_eq!(moved.params(), &big);
            assert_eq!(moved.compiled_context(), Some(dst));
            assert_eq!(
                moved.eval_batch_sorted(dst, &ins).unwrap(),
                want,
                "dst {dst}"
            );
        }
        // same-geometry calls fall through to rebase_context
        let same = compiled.rebase_onto(small, 0).unwrap();
        assert_eq!(same.eval_batch_sorted(0, &ins).unwrap(), want);
        // out-of-range destination context
        assert!(compiled.rebase_onto(big, big.contexts).is_err());
        // full compilations have nothing to move
        assert!(CompiledFabric::compile(&f)
            .unwrap()
            .rebase_onto(big, 0)
            .is_err());
    }

    #[test]
    fn rebase_onto_rejects_incompatible_geometry() {
        let nl = generators::parity_tree(2).unwrap();
        let mut f = Fabric::new(FabricParams::default()).unwrap();
        implement_netlist(&mut f, &nl, 0, 5).unwrap();
        let compiled = CompiledFabric::compile_context(&f, 0).unwrap();
        let d = FabricParams::default();
        let narrower = FabricParams { width: 3, ..d };
        let shorter = FabricParams { height: 3, ..d };
        let fatter_channel = FabricParams {
            width: 10,
            height: 10,
            channel_width: d.channel_width + 1,
            ..d
        };
        let bigger_lut = FabricParams {
            width: 10,
            height: 10,
            lut_k: d.lut_k + 1,
            ..d
        };
        let other_arch = FabricParams {
            width: 10,
            height: 10,
            arch: mcfpga_core::ArchKind::Sram,
            ..d
        };
        for bad in [narrower, shorter, fatter_channel, bigger_lut, other_arch] {
            assert!(
                matches!(compiled.rebase_onto(bad, 0), Err(FabricError::BadParams(_))),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn lane_batch_parts_round_trip() {
        let mut batch = LaneBatch::new();
        batch.ensure_name("a");
        batch.push(&[("a", true), ("b", false)]).unwrap();
        batch.push(&[("a", false), ("b", true)]).unwrap();
        let lanes = batch.len();
        let inputs: Vec<(String, LaneChunk)> = batch
            .lane_inputs()
            .into_iter()
            .map(|(n, v)| (n.to_string(), v))
            .collect();
        let rebuilt = LaneBatch::from_parts(LANES, lanes, inputs).unwrap();
        assert_eq!(rebuilt.len(), batch.len());
        assert_eq!(rebuilt.width(), LANES);
        assert_eq!(rebuilt.lane_inputs(), batch.lane_inputs());
        assert_eq!(rebuilt.name_index("b"), Some(1));
        assert_eq!(rebuilt.name_index("zz"), None);
        assert!(LaneBatch::from_parts(LANES, LANES + 1, Vec::new()).is_err());
        assert!(LaneBatch::from_parts(MAX_LANES, LANES + 1, Vec::new()).is_ok());
        // stray bits beyond the occupied lanes would leak into the next
        // pushed request's lane — refused, in any word
        assert!(
            LaneBatch::from_parts(LANES, 2, vec![("a".to_string(), chunk_of_word(0b100))]).is_err()
        );
        assert!(
            LaneBatch::from_parts(MAX_LANES, 66, vec![("a".to_string(), [0, 0b100, 0, 0])])
                .is_err()
        );
        assert!(LaneBatch::from_parts(
            LANES,
            LANES,
            vec![("a".to_string(), chunk_of_word(u64::MAX))]
        )
        .is_ok());
        assert!(LaneBatch::from_parts(
            MAX_LANES,
            MAX_LANES,
            vec![("a".to_string(), [u64::MAX; LANE_WORDS])]
        )
        .is_ok());
        // occupied lanes within a wider word budget keep their bits
        let wide =
            LaneBatch::from_parts(MAX_LANES, 66, vec![("a".to_string(), [!0u64, 0b11, 0, 0])])
                .unwrap();
        assert_eq!(wide.words(), 2);
    }
}
