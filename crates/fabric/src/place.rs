//! Simulated-annealing placement of LUT nodes onto fabric tiles.
//!
//! Cost = total half-perimeter wirelength over nets (each LUT's fanin edges,
//! with primary inputs ignored since their sites are chosen later). One LUT
//! per tile per context.

use crate::array::{FabricParams, TileCoord};
use crate::netlist_ir::{LogicNetlist, Node, NodeId};
use crate::FabricError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// Places every LUT node of `netlist` on a distinct tile.
pub fn place_luts(
    netlist: &LogicNetlist,
    params: &FabricParams,
    seed: u64,
) -> Result<HashMap<NodeId, TileCoord>, FabricError> {
    let luts = netlist.lut_ids();
    let capacity = params.width * params.height;
    if luts.len() > capacity {
        return Err(FabricError::PlacementFailed(format!(
            "{} LUTs > {capacity} tiles",
            luts.len()
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // initial: random assignment over shuffled tiles
    let mut tiles: Vec<TileCoord> = (0..capacity)
        .map(|i| TileCoord {
            x: i % params.width,
            y: i / params.width,
        })
        .collect();
    tiles.shuffle(&mut rng);
    let mut pos: HashMap<NodeId, TileCoord> = luts
        .iter()
        .zip(tiles.iter())
        .map(|(n, t)| (*n, *t))
        .collect();

    if luts.len() <= 1 {
        return Ok(pos);
    }

    // edges between placeable nodes
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for id in &luts {
        if let Node::Lut { fanin, .. } = netlist.node(*id) {
            for f in fanin {
                if matches!(netlist.node(*f), Node::Lut { .. }) {
                    edges.push((*f, *id));
                }
            }
        }
    }
    let cost = |pos: &HashMap<NodeId, TileCoord>| -> usize {
        edges
            .iter()
            .map(|(a, b)| {
                let (ta, tb) = (pos[a], pos[b]);
                ta.x.abs_diff(tb.x) + ta.y.abs_diff(tb.y)
            })
            .sum()
    };

    let mut cur_cost = cost(&pos);
    let mut temp = 2.0 * (cur_cost.max(1) as f64) / edges.len().max(1) as f64;
    let moves_per_temp = 16 * luts.len();
    let occupied: Vec<NodeId> = luts.clone();
    while temp > 0.01 {
        for _ in 0..moves_per_temp {
            // swap a LUT with another LUT's tile or a free tile
            let a = occupied[rng.random_range(0..occupied.len())];
            let target_tile = tiles[rng.random_range(0..tiles.len())];
            let b = pos
                .iter()
                .find(|(_, t)| **t == target_tile)
                .map(|(n, _)| *n);
            if b == Some(a) {
                continue;
            }
            let old_a = pos[&a];
            pos.insert(a, target_tile);
            if let Some(b) = b {
                pos.insert(b, old_a);
            }
            let new_cost = cost(&pos);
            let delta = new_cost as f64 - cur_cost as f64;
            let accept = delta <= 0.0 || rng.random_range(0.0..1.0) < (-delta / temp).exp();
            if accept {
                cur_cost = new_cost;
            } else {
                pos.insert(a, old_a);
                if let Some(b) = b {
                    pos.insert(b, target_tile);
                }
            }
        }
        temp *= 0.8;
    }
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist_ir::generators;

    fn params(w: usize, h: usize) -> FabricParams {
        FabricParams {
            width: w,
            height: h,
            ..FabricParams::default()
        }
    }

    #[test]
    fn placement_is_injective() {
        let nl = generators::ripple_adder(4).unwrap();
        let p = params(4, 4);
        let pos = place_luts(&nl, &p, 3).unwrap();
        assert_eq!(pos.len(), nl.lut_count());
        let mut seen: Vec<TileCoord> = pos.values().copied().collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), pos.len(), "one LUT per tile");
    }

    #[test]
    fn too_many_luts_fails() {
        let nl = generators::ripple_adder(8).unwrap(); // 16 LUTs
        let p = params(2, 2);
        assert!(matches!(
            place_luts(&nl, &p, 0),
            Err(FabricError::PlacementFailed(_))
        ));
    }

    #[test]
    fn annealing_beats_random_on_chains() {
        // long carry chain: SA should pull connected LUTs together
        let nl = generators::ripple_adder(6).unwrap();
        let p = params(6, 6);
        let pos = place_luts(&nl, &p, 11).unwrap();
        // recompute cost
        let mut cost = 0usize;
        for id in nl.lut_ids() {
            if let crate::netlist_ir::Node::Lut { fanin, .. } = nl.node(id) {
                for f in fanin {
                    if matches!(nl.node(*f), crate::netlist_ir::Node::Lut { .. }) {
                        let (a, b) = (pos[f], pos[&id]);
                        cost += a.x.abs_diff(b.x) + a.y.abs_diff(b.y);
                    }
                }
            }
        }
        // 11 edges on a 6x6 grid: random placement averages ~4 per edge (44);
        // annealed should be far tighter.
        assert!(cost <= 30, "cost {cost}");
    }

    #[test]
    fn single_lut_trivial() {
        let nl = generators::wire_lanes(1).unwrap();
        let pos = place_luts(&nl, &params(2, 2), 5).unwrap();
        assert_eq!(pos.len(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let nl = generators::parity_tree(8).unwrap();
        let p = params(4, 4);
        assert_eq!(
            place_luts(&nl, &p, 9).unwrap(),
            place_luts(&nl, &p, 9).unwrap()
        );
    }
}
