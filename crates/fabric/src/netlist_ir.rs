//! Technology-mapped logic netlists (LUT DAGs).
//!
//! The front-end IR the mapper consumes: primary inputs, LUT nodes with
//! truth tables, primary outputs. Includes reference evaluation (the golden
//! model the fabric simulation is checked against), level analysis for
//! temporal partitioning, and generators for the workloads the examples and
//! benches use (ripple-carry adders, parity trees, mux trees).

use crate::lut::tables;
use crate::FabricError;

/// Node identifier within a [`LogicNetlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A node: primary input or LUT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Primary input with a name.
    Input {
        /// Port name.
        name: String,
    },
    /// A K-LUT over up to `k` fanins.
    Lut {
        /// Debug name.
        name: String,
        /// Fanin nodes (pin order = bit order).
        fanin: Vec<NodeId>,
        /// Truth table (LSB = all-zero input row).
        table: u64,
    },
}

/// A combinational LUT netlist.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LogicNetlist {
    nodes: Vec<Node>,
    outputs: Vec<(String, NodeId)>,
}

impl LogicNetlist {
    /// Empty netlist.
    #[must_use]
    pub fn new() -> Self {
        LogicNetlist::default()
    }

    /// Adds a primary input.
    pub fn add_input(&mut self, name: &str) -> NodeId {
        self.nodes.push(Node::Input {
            name: name.to_string(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a LUT node. Fanins must already exist (DAG by construction).
    pub fn add_lut(
        &mut self,
        name: &str,
        fanin: &[NodeId],
        table: u64,
    ) -> Result<NodeId, FabricError> {
        if fanin.is_empty() || fanin.len() > 6 {
            return Err(FabricError::BadNetlist(format!(
                "lut {name} has {} fanins",
                fanin.len()
            )));
        }
        for f in fanin {
            if f.0 >= self.nodes.len() {
                return Err(FabricError::BadNetlist(format!(
                    "lut {name} references missing node {}",
                    f.0
                )));
            }
        }
        self.nodes.push(Node::Lut {
            name: name.to_string(),
            fanin: fanin.to_vec(),
            table,
        });
        Ok(NodeId(self.nodes.len() - 1))
    }

    /// Marks a node as a primary output.
    pub fn add_output(&mut self, name: &str, node: NodeId) -> Result<(), FabricError> {
        if node.0 >= self.nodes.len() {
            return Err(FabricError::BadNetlist(format!(
                "output {name} references missing node {}",
                node.0
            )));
        }
        self.outputs.push((name.to_string(), node));
        Ok(())
    }

    /// All nodes.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node by id.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Primary outputs `(name, node)`.
    #[must_use]
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Ids of primary inputs, in insertion order.
    #[must_use]
    pub fn input_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| matches!(n, Node::Input { .. }).then_some(NodeId(i)))
            .collect()
    }

    /// Ids of LUT nodes, in insertion (topological) order.
    #[must_use]
    pub fn lut_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| matches!(n, Node::Lut { .. }).then_some(NodeId(i)))
            .collect()
    }

    /// Number of LUT nodes.
    #[must_use]
    pub fn lut_count(&self) -> usize {
        self.lut_ids().len()
    }

    /// Reference evaluation: input name → value. Returns output name → value.
    pub fn eval(&self, inputs: &[(&str, bool)]) -> Result<Vec<(String, bool)>, FabricError> {
        let mut values: Vec<Option<bool>> = vec![None; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            match n {
                Node::Input { name } => {
                    let v = inputs
                        .iter()
                        .find(|(n2, _)| n2 == name)
                        .map(|(_, v)| *v)
                        .ok_or_else(|| {
                            FabricError::Unresolved(format!("input {name} not driven"))
                        })?;
                    values[i] = Some(v);
                }
                Node::Lut { fanin, table, .. } => {
                    let mut row = 0usize;
                    for (pin, f) in fanin.iter().enumerate() {
                        let fv = values[f.0].ok_or_else(|| {
                            FabricError::BadNetlist("fanin after node (not a DAG)".into())
                        })?;
                        if fv {
                            row |= 1 << pin;
                        }
                    }
                    values[i] = Some((table >> row) & 1 == 1);
                }
            }
        }
        Ok(self
            .outputs
            .iter()
            .map(|(name, id)| (name.clone(), values[id.0].expect("evaluated")))
            .collect())
    }

    /// ASAP level of every node (inputs are level 0).
    #[must_use]
    pub fn levels(&self) -> Vec<usize> {
        let mut lv = vec![0usize; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if let Node::Lut { fanin, .. } = n {
                lv[i] = fanin.iter().map(|f| lv[f.0] + 1).max().unwrap_or(0);
            }
        }
        lv
    }

    /// Depth of the netlist (max level).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels().into_iter().max().unwrap_or(0)
    }
}

/// Workload generators.
pub mod generators {
    use super::*;

    /// `width`-bit ripple-carry adder: inputs `a0..`, `b0..`, `cin`;
    /// outputs `s0..`, `cout`. Uses 4-LUTs (xor3 for sum, maj3 for carry).
    pub fn ripple_adder(width: usize) -> Result<LogicNetlist, FabricError> {
        let mut nl = LogicNetlist::new();
        let a: Vec<NodeId> = (0..width).map(|i| nl.add_input(&format!("a{i}"))).collect();
        let b: Vec<NodeId> = (0..width).map(|i| nl.add_input(&format!("b{i}"))).collect();
        let mut carry = nl.add_input("cin");
        for i in 0..width {
            let sum = nl.add_lut(&format!("sum{i}"), &[a[i], b[i], carry], tables::xor(3))?;
            let cout = nl.add_lut(&format!("carry{i}"), &[a[i], b[i], carry], tables::maj3(3))?;
            nl.add_output(&format!("s{i}"), sum)?;
            carry = cout;
        }
        nl.add_output("cout", carry)?;
        Ok(nl)
    }

    /// Parity (XOR reduction) tree over `width` inputs `x0..`.
    pub fn parity_tree(width: usize) -> Result<LogicNetlist, FabricError> {
        let mut nl = LogicNetlist::new();
        let mut layer: Vec<NodeId> = (0..width).map(|i| nl.add_input(&format!("x{i}"))).collect();
        let mut stage = 0;
        while layer.len() > 1 {
            let mut next = Vec::new();
            for (j, pair) in layer.chunks(2).enumerate() {
                if pair.len() == 2 {
                    next.push(nl.add_lut(
                        &format!("p{stage}_{j}"),
                        &[pair[0], pair[1]],
                        tables::xor(2),
                    )?);
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
            stage += 1;
        }
        nl.add_output("parity", layer[0])?;
        Ok(nl)
    }

    /// Balanced 2:1 mux tree selecting one of `2^sel_bits` data inputs.
    pub fn mux_tree(sel_bits: usize) -> Result<LogicNetlist, FabricError> {
        let mut nl = LogicNetlist::new();
        let n = 1usize << sel_bits;
        let sels: Vec<NodeId> = (0..sel_bits)
            .map(|i| nl.add_input(&format!("sel{i}")))
            .collect();
        let mut layer: Vec<NodeId> = (0..n).map(|i| nl.add_input(&format!("d{i}"))).collect();
        for (bit, sel) in sels.iter().enumerate() {
            let mut next = Vec::new();
            for (j, pair) in layer.chunks_exact(2).enumerate() {
                next.push(nl.add_lut(
                    &format!("m{bit}_{j}"),
                    &[pair[0], pair[1], *sel],
                    tables::mux2(3),
                )?);
            }
            layer = next;
        }
        nl.add_output("out", layer[0])?;
        Ok(nl)
    }

    /// A small "crossbar traffic" netlist: `lanes` independent buffers,
    /// exercising pure routing with no logic depth.
    pub fn wire_lanes(lanes: usize) -> Result<LogicNetlist, FabricError> {
        let mut nl = LogicNetlist::new();
        for i in 0..lanes {
            let x = nl.add_input(&format!("in{i}"));
            let b = nl.add_lut(&format!("buf{i}"), &[x], tables::buf(1))?;
            nl.add_output(&format!("out{i}"), b)?;
        }
        Ok(nl)
    }

    /// `width`-bit equality comparator: inputs `a*`, `b*`; output `eq`.
    /// XNOR per bit, AND-reduced in a tree.
    pub fn equality_comparator(width: usize) -> Result<LogicNetlist, FabricError> {
        let mut nl = LogicNetlist::new();
        let a: Vec<NodeId> = (0..width).map(|i| nl.add_input(&format!("a{i}"))).collect();
        let b: Vec<NodeId> = (0..width).map(|i| nl.add_input(&format!("b{i}"))).collect();
        // xnor(2) = !xor
        let xnor2: u64 = !tables::xor(2) & 0b1111;
        let mut layer: Vec<NodeId> = (0..width)
            .map(|i| nl.add_lut(&format!("xnor{i}"), &[a[i], b[i]], xnor2))
            .collect::<Result<_, _>>()?;
        let mut stage = 0;
        while layer.len() > 1 {
            let mut next = Vec::new();
            for (j, pair) in layer.chunks(2).enumerate() {
                if pair.len() == 2 {
                    next.push(nl.add_lut(
                        &format!("and{stage}_{j}"),
                        &[pair[0], pair[1]],
                        tables::and(2),
                    )?);
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
            stage += 1;
        }
        nl.add_output("eq", layer[0])?;
        Ok(nl)
    }

    /// 4-input population count: inputs `x0..x3`; outputs `c0..c2`
    /// (binary count of set bits). Built from two half-adders plus merge
    /// LUTs — a denser routing workload than parity.
    pub fn popcount4() -> Result<LogicNetlist, FabricError> {
        let mut nl = LogicNetlist::new();
        let x: Vec<NodeId> = (0..4).map(|i| nl.add_input(&format!("x{i}"))).collect();
        // half adders on (x0,x1) and (x2,x3)
        let s0 = nl.add_lut("ha0_s", &[x[0], x[1]], tables::xor(2))?;
        let c0 = nl.add_lut("ha0_c", &[x[0], x[1]], tables::and(2))?;
        let s1 = nl.add_lut("ha1_s", &[x[2], x[3]], tables::xor(2))?;
        let c1 = nl.add_lut("ha1_c", &[x[2], x[3]], tables::and(2))?;
        // sum bit 0 = s0 xor s1; carry into bit 1 = s0 and s1
        let bit0 = nl.add_lut("bit0", &[s0, s1], tables::xor(2))?;
        let mid = nl.add_lut("mid_c", &[s0, s1], tables::and(2))?;
        // bit1 = c0 xor c1 xor mid; bit2 = majority(c0, c1, mid)
        let bit1 = nl.add_lut("bit1", &[c0, c1, mid], tables::xor(3))?;
        let bit2 = nl.add_lut("bit2", &[c0, c1, mid], tables::maj3(3))?;
        nl.add_output("c0", bit0)?;
        nl.add_output("c1", bit1)?;
        nl.add_output("c2", bit2)?;
        Ok(nl)
    }
}

#[cfg(test)]
mod tests {
    use super::generators::*;
    use super::*;

    #[test]
    fn adder_is_correct_exhaustively_4bit() {
        let nl = ripple_adder(4).unwrap();
        for a in 0..16u32 {
            for b in 0..16u32 {
                for cin in 0..2u32 {
                    let mut ins: Vec<(String, bool)> = Vec::new();
                    for i in 0..4 {
                        ins.push((format!("a{i}"), (a >> i) & 1 == 1));
                        ins.push((format!("b{i}"), (b >> i) & 1 == 1));
                    }
                    ins.push(("cin".to_string(), cin == 1));
                    let ins_ref: Vec<(&str, bool)> =
                        ins.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                    let out = nl.eval(&ins_ref).unwrap();
                    let mut got = 0u32;
                    for (name, v) in &out {
                        if let Some(i) = name.strip_prefix('s') {
                            if *v {
                                got |= 1 << i.parse::<u32>().unwrap();
                            }
                        } else if name == "cout" && *v {
                            got |= 1 << 4;
                        }
                    }
                    assert_eq!(got, a + b + cin, "a={a} b={b} cin={cin}");
                }
            }
        }
    }

    #[test]
    fn parity_matches_popcount() {
        let nl = parity_tree(8).unwrap();
        for x in 0..256u32 {
            let ins: Vec<(String, bool)> = (0..8)
                .map(|i| (format!("x{i}"), (x >> i) & 1 == 1))
                .collect();
            let ins_ref: Vec<(&str, bool)> = ins.iter().map(|(n, v)| (n.as_str(), *v)).collect();
            let out = nl.eval(&ins_ref).unwrap();
            assert_eq!(out[0].1, x.count_ones() % 2 == 1, "x={x}");
        }
    }

    #[test]
    fn mux_tree_selects() {
        let nl = mux_tree(2).unwrap();
        for sel in 0..4usize {
            for data in 0..16usize {
                let mut ins: Vec<(String, bool)> = (0..4)
                    .map(|i| (format!("d{i}"), (data >> i) & 1 == 1))
                    .collect();
                ins.push(("sel0".into(), sel & 1 == 1));
                ins.push(("sel1".into(), sel & 2 == 2));
                let ins_ref: Vec<(&str, bool)> =
                    ins.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                let out = nl.eval(&ins_ref).unwrap();
                assert_eq!(out[0].1, (data >> sel) & 1 == 1, "sel={sel} data={data}");
            }
        }
    }

    #[test]
    fn levels_and_depth() {
        let nl = parity_tree(8).unwrap();
        assert_eq!(nl.depth(), 3);
        let nl = ripple_adder(4).unwrap();
        assert_eq!(nl.depth(), 4, "carry chain dominates");
    }

    #[test]
    fn bad_references_rejected() {
        let mut nl = LogicNetlist::new();
        let x = nl.add_input("x");
        assert!(nl.add_lut("l", &[NodeId(5)], 0).is_err());
        assert!(nl.add_lut("l", &[], 0).is_err());
        assert!(nl.add_output("o", NodeId(9)).is_err());
        assert!(nl.add_output("o", x).is_ok());
    }

    #[test]
    fn missing_input_is_unresolved() {
        let nl = wire_lanes(1).unwrap();
        assert!(matches!(nl.eval(&[]), Err(FabricError::Unresolved(_))));
    }

    #[test]
    fn comparator_matches_equality() {
        let nl = equality_comparator(4).unwrap();
        for a in 0..16u32 {
            for b in 0..16u32 {
                let mut ins: Vec<(String, bool)> = Vec::new();
                for i in 0..4 {
                    ins.push((format!("a{i}"), (a >> i) & 1 == 1));
                    ins.push((format!("b{i}"), (b >> i) & 1 == 1));
                }
                let ins_ref: Vec<(&str, bool)> =
                    ins.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                let out = nl.eval(&ins_ref).unwrap();
                assert_eq!(out[0].1, a == b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn popcount4_counts_bits() {
        let nl = popcount4().unwrap();
        for x in 0..16u32 {
            let ins: Vec<(String, bool)> = (0..4)
                .map(|i| (format!("x{i}"), (x >> i) & 1 == 1))
                .collect();
            let ins_ref: Vec<(&str, bool)> = ins.iter().map(|(n, v)| (n.as_str(), *v)).collect();
            let out = nl.eval(&ins_ref).unwrap();
            let mut got = 0u32;
            for (name, v) in &out {
                if *v {
                    got |= 1 << name.strip_prefix('c').unwrap().parse::<u32>().unwrap();
                }
            }
            assert_eq!(got, x.count_ones(), "x={x}");
        }
    }
}
