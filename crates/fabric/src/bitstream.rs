//! Bitstream: serialising configuration planes.
//!
//! The wire format is deliberately simple: a header (magic, version,
//! geometry), then per tile the LUT planes and the switch-block assignment
//! table. Packing uses `bytes`; the self-describing header lets a loader
//! reject mismatched fabrics instead of silently misconfiguring contexts.

use crate::array::{Fabric, FabricParams};
use crate::FabricError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mcfpga_core::ArchKind;

const MAGIC: u32 = 0x4D43_4647; // "MCFG"
const VERSION: u16 = 1;

fn arch_code(a: ArchKind) -> u8 {
    match a {
        ArchKind::Sram => 0,
        ArchKind::MvFgfp => 1,
        ArchKind::Hybrid => 2,
    }
}

fn arch_from(c: u8) -> Result<ArchKind, FabricError> {
    Ok(match c {
        0 => ArchKind::Sram,
        1 => ArchKind::MvFgfp,
        2 => ArchKind::Hybrid,
        _ => return Err(FabricError::BadBitstream(format!("arch code {c}"))),
    })
}

/// Serialises the complete configuration of `fabric`.
#[must_use]
pub fn pack(fabric: &Fabric) -> Bytes {
    let p = fabric.params();
    let mut b = BytesMut::new();
    b.put_u32(MAGIC);
    b.put_u16(VERSION);
    b.put_u8(arch_code(p.arch));
    b.put_u8(p.lut_k as u8);
    b.put_u16(p.width as u16);
    b.put_u16(p.height as u16);
    b.put_u16(p.channel_width as u16);
    b.put_u16(p.contexts as u16);
    b.put_u8(p.io_in as u8);
    b.put_u8(p.io_out as u8);
    for t in fabric.tiles() {
        let tc = fabric.tile(t).expect("tile iterated");
        for ctx in 0..p.contexts {
            b.put_u64(tc.lut.table(ctx).expect("ctx in range"));
        }
        for ctx in 0..p.contexts {
            let row = &tc.sb[ctx];
            b.put_u16(row.len() as u16);
            for slot in row {
                match slot {
                    Some(s) => b.put_u16(*s + 1),
                    None => b.put_u16(0),
                }
            }
        }
    }
    // io bindings
    let put_binds =
        |b: &mut BytesMut, binds: &[(crate::array::TileCoord, usize, usize, String)]| {
            b.put_u32(binds.len() as u32);
            for (t, port, ctx, name) in binds {
                b.put_u16(t.x as u16);
                b.put_u16(t.y as u16);
                b.put_u8(*port as u8);
                b.put_u16(*ctx as u16);
                b.put_u16(name.len() as u16);
                b.put_slice(name.as_bytes());
            }
        };
    put_binds(&mut b, fabric.input_binds());
    put_binds(&mut b, fabric.output_binds());
    b.freeze()
}

/// Reconstructs a fabric (geometry + full configuration) from a bitstream.
pub fn unpack(mut data: Bytes) -> Result<Fabric, FabricError> {
    let need = |data: &Bytes, n: usize| -> Result<(), FabricError> {
        if data.remaining() < n {
            Err(FabricError::BadBitstream("truncated".into()))
        } else {
            Ok(())
        }
    };
    need(&data, 4 + 2 + 2 + 8 + 2)?;
    if data.get_u32() != MAGIC {
        return Err(FabricError::BadBitstream("bad magic".into()));
    }
    if data.get_u16() != VERSION {
        return Err(FabricError::BadBitstream("bad version".into()));
    }
    let arch = arch_from(data.get_u8())?;
    let lut_k = data.get_u8() as usize;
    let width = data.get_u16() as usize;
    let height = data.get_u16() as usize;
    let channel_width = data.get_u16() as usize;
    let contexts = data.get_u16() as usize;
    let io_in = data.get_u8() as usize;
    let io_out = data.get_u8() as usize;
    let params = FabricParams {
        width,
        height,
        channel_width,
        lut_k,
        contexts,
        io_in,
        io_out,
        arch,
    };
    let mut fabric = Fabric::new(params)?;
    let tiles: Vec<_> = fabric.tiles().collect();
    for t in tiles {
        for ctx in 0..contexts {
            need(&data, 8)?;
            let table = data.get_u64();
            fabric.tile_mut(t)?.lut.program(ctx, table)?;
        }
        for ctx in 0..contexts {
            need(&data, 2)?;
            let n = data.get_u16() as usize;
            let expect = fabric.sinks(t).len();
            if n != expect {
                return Err(FabricError::BadBitstream(format!(
                    "tile {t} ctx {ctx}: {n} sinks, expected {expect}"
                )));
            }
            for sink_idx in 0..n {
                need(&data, 2)?;
                let raw = data.get_u16();
                let tcfg = fabric.tile_mut(t)?;
                tcfg.sb[ctx][sink_idx] = raw.checked_sub(1);
            }
        }
    }
    type RawBind = (usize, usize, usize, usize, String);
    let read_binds = |data: &mut Bytes| -> Result<Vec<RawBind>, FabricError> {
        need(data, 4)?;
        let n = data.get_u32() as usize;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            need(data, 2 + 2 + 1 + 2 + 2)?;
            let x = data.get_u16() as usize;
            let y = data.get_u16() as usize;
            let port = data.get_u8() as usize;
            let ctx = data.get_u16() as usize;
            let len = data.get_u16() as usize;
            need(data, len)?;
            let raw = data.copy_to_bytes(len);
            let name = String::from_utf8(raw.to_vec())
                .map_err(|_| FabricError::BadBitstream("bad utf8 name".into()))?;
            v.push((x, y, port, ctx, name));
        }
        Ok(v)
    };
    for (x, y, port, ctx, name) in read_binds(&mut data)? {
        fabric.bind_input(crate::array::TileCoord { x, y }, port, ctx, &name)?;
    }
    for (x, y, port, ctx, name) in read_binds(&mut data)? {
        fabric.bind_output(crate::array::TileCoord { x, y }, port, ctx, &name)?;
    }
    Ok(fabric)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist_ir::generators;
    use crate::route::implement_netlist;
    use crate::sim::evaluate_sorted;

    #[test]
    fn roundtrip_preserves_behaviour() {
        let nl = generators::parity_tree(4).unwrap();
        let mut f = Fabric::new(FabricParams::default()).unwrap();
        implement_netlist(&mut f, &nl, 0, 5).unwrap();
        let bits = pack(&f);
        let g = unpack(bits).unwrap();
        for x in 0..16u32 {
            let ins: Vec<(String, bool)> = (0..4)
                .map(|i| (format!("x{i}"), (x >> i) & 1 == 1))
                .collect();
            let ins_ref: Vec<(&str, bool)> = ins.iter().map(|(n, v)| (n.as_str(), *v)).collect();
            assert_eq!(
                evaluate_sorted(&f, 0, &ins_ref).unwrap(),
                evaluate_sorted(&g, 0, &ins_ref).unwrap(),
                "x={x}"
            );
        }
    }

    #[test]
    fn truncated_rejected() {
        let f = Fabric::new(FabricParams::default()).unwrap();
        let bits = pack(&f);
        let cut = bits.slice(0..bits.len() / 2);
        assert!(matches!(unpack(cut), Err(FabricError::BadBitstream(_))));
    }

    #[test]
    fn bad_magic_rejected() {
        let f = Fabric::new(FabricParams::default()).unwrap();
        let mut raw = pack(&f).to_vec();
        raw[0] ^= 0xFF;
        assert!(matches!(
            unpack(Bytes::from(raw)),
            Err(FabricError::BadBitstream(_))
        ));
    }

    #[test]
    fn header_geometry_roundtrip() {
        let p = FabricParams {
            width: 5,
            height: 3,
            channel_width: 4,
            lut_k: 3,
            contexts: 8,
            io_in: 1,
            io_out: 3,
            arch: ArchKind::MvFgfp,
        };
        let f = Fabric::new(p).unwrap();
        let g = unpack(pack(&f)).unwrap();
        assert_eq!(*g.params(), p);
    }
}
