//! Context sequencing and switching-energy accounting.
//!
//! Wraps a [`mcfpga_css::Schedule`] around a fabric: every step switches the
//! broadcast CSS and charges the energy model — binary word toggles for the
//! SRAM architecture, hybrid line toggles for the proposed one.

use crate::FabricError;
use mcfpga_core::ArchKind;
use mcfpga_css::{BinaryCss, HybridCssGen, Schedule};
use mcfpga_device::TechParams;

/// Energy/latency statistics for replaying a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceStats {
    /// Steps replayed.
    pub steps: usize,
    /// Steps where the context actually changed.
    pub switches: usize,
    /// Total broadcast-wire toggles.
    pub wire_toggles: usize,
    /// Dynamic energy spent toggling broadcast wires (joules).
    pub dynamic_energy_j: f64,
}

/// Replays `schedule` against the CSS machinery of `arch`, counting
/// broadcast toggles. (The fabric's switches respond combinationally; what
/// costs energy at switch time is the broadcast network.)
pub fn replay_schedule(
    arch: ArchKind,
    contexts: usize,
    schedule: &Schedule,
    params: &TechParams,
) -> Result<SequenceStats, FabricError> {
    let mut stats = SequenceStats {
        steps: 0,
        switches: 0,
        wire_toggles: 0,
        dynamic_energy_j: 0.0,
    };
    match arch {
        ArchKind::Sram => {
            let mut css = BinaryCss::new(contexts.next_power_of_two().max(2))
                .map_err(mcfpga_core::CoreError::Css)?;
            for ctx in schedule.iter() {
                stats.steps += 1;
                let t = css.hamming_to(ctx);
                if t > 0 {
                    stats.switches += 1;
                }
                stats.wire_toggles += t;
                css.switch_to(ctx).map_err(mcfpga_core::CoreError::Css)?;
            }
        }
        ArchKind::MvFgfp | ArchKind::Hybrid => {
            let gen = HybridCssGen::new(contexts).map_err(mcfpga_core::CoreError::Css)?;
            let mut cur = 0usize;
            for ctx in schedule.iter() {
                stats.steps += 1;
                let t = gen
                    .toggles_between(cur, ctx)
                    .map_err(mcfpga_core::CoreError::Css)?;
                if ctx != cur {
                    stats.switches += 1;
                }
                stats.wire_toggles += t;
                cur = ctx;
            }
        }
    }
    stats.dynamic_energy_j = stats.wire_toggles as f64 * params.css_toggle_energy_j;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_toggle_counts() {
        let sched = Schedule::round_robin(4, 4).unwrap();
        let p = TechParams::default();
        let sram = replay_schedule(ArchKind::Sram, 4, &sched, &p).unwrap();
        let hybrid = replay_schedule(ArchKind::Hybrid, 4, &sched, &p).unwrap();
        assert_eq!(sram.steps, 16);
        assert_eq!(sram.switches, 15, "first step lands on ctx 0 (no change)");
        assert!(sram.wire_toggles > 0);
        assert!(hybrid.wire_toggles > 0);
        assert!(hybrid.dynamic_energy_j > 0.0);
    }

    #[test]
    fn idle_schedule_costs_nothing() {
        let sched = Schedule::explicit(4, vec![0, 0, 0, 0]).unwrap();
        let p = TechParams::default();
        for arch in ArchKind::all() {
            let s = replay_schedule(arch, 4, &sched, &p).unwrap();
            assert_eq!(s.switches, 0);
            assert_eq!(s.wire_toggles, 0);
            assert_eq!(s.dynamic_energy_j, 0.0);
        }
    }

    #[test]
    fn bursty_cheaper_than_random() {
        let p = TechParams::default();
        let bursty = Schedule::bursty(4, 256, 16, 5).unwrap();
        let random = Schedule::random(4, 256, 5).unwrap();
        for arch in [ArchKind::Sram, ArchKind::Hybrid] {
            let b = replay_schedule(arch, 4, &bursty, &p).unwrap();
            let r = replay_schedule(arch, 4, &random, &p).unwrap();
            assert!(b.wire_toggles < r.wire_toggles, "{arch:?}");
        }
    }
}
