//! Context sequencing and switching-energy accounting.
//!
//! A [`ContextSequencer`] owns the CSS generator state for one fabric
//! architecture — built once, replayed many times — and charges the energy
//! model per step: binary word toggles for the SRAM architecture, hybrid
//! line toggles for the proposed one. [`run_schedule`] drives a whole
//! schedule through a [`CompiledFabric`], swapping the per-context compiled
//! plane at every CSS switch while keeping the energy accounting identical
//! to the plain replay.
//!
//! ```
//! use mcfpga_core::ArchKind;
//! use mcfpga_css::Schedule;
//! use mcfpga_device::TechParams;
//! use mcfpga_fabric::compiled::CompiledFabric;
//! use mcfpga_fabric::context::{run_schedule, ContextSequencer};
//! use mcfpga_fabric::netlist_ir::generators;
//! use mcfpga_fabric::route::implement_netlist;
//! use mcfpga_fabric::{Fabric, FabricParams};
//!
//! // A wire in context 0; replay an explicit 0,0,0 schedule through it.
//! let mut fabric = Fabric::new(FabricParams::default())?;
//! implement_netlist(&mut fabric, &generators::wire_lanes(1)?, 0, 1)?;
//! let compiled = CompiledFabric::compile(&fabric)?;
//! let mut seq = ContextSequencer::new(ArchKind::Hybrid, 4)?;
//! let schedule = Schedule::explicit(4, vec![0, 0, 0]).map_err(mcfpga_core::CoreError::Css)?;
//! let run = run_schedule(&compiled, &mut seq, &schedule, &[("in0", 0b101)], &TechParams::default())?;
//! assert_eq!(run.stats.steps, 3);
//! assert_eq!(run.stats.switches, 0); // never leaves context 0
//! assert_eq!(run.steps[0].1[0].1, 0b101); // lanes pass straight through
//! # Ok::<(), mcfpga_fabric::FabricError>(())
//! ```

use crate::compiled::CompiledFabric;
use crate::FabricError;
use mcfpga_core::ArchKind;
use mcfpga_css::optimize::{optimize_sweep, CostMatrix, OptimizeMode};
use mcfpga_css::{BinaryCss, HybridCssGen, Schedule};
use mcfpga_device::TechParams;

/// Energy/latency statistics for replaying a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceStats {
    /// Steps replayed.
    pub steps: usize,
    /// Steps where the context actually changed.
    pub switches: usize,
    /// Total broadcast-wire toggles.
    pub wire_toggles: usize,
    /// Dynamic energy spent toggling broadcast wires (joules).
    pub dynamic_energy_j: f64,
}

impl SequenceStats {
    fn zero() -> Self {
        SequenceStats {
            steps: 0,
            switches: 0,
            wire_toggles: 0,
            dynamic_energy_j: 0.0,
        }
    }
}

/// CSS generator state for one architecture, reusable across replays.
///
/// The original `replay_schedule` rebuilt `BinaryCss`/`HybridCssGen` from
/// scratch on every call; a sequencer is built once and [`reset`] between
/// replays, so repeated schedule replays pay no setup cost.
///
/// [`reset`]: ContextSequencer::reset
#[derive(Debug, Clone)]
pub struct ContextSequencer {
    arch: ArchKind,
    contexts: usize,
    css: CssState,
    cur: usize,
}

#[derive(Debug, Clone)]
enum CssState {
    Binary(BinaryCss),
    Hybrid(HybridCssGen),
}

impl ContextSequencer {
    /// Builds the CSS machinery for `arch` over `contexts` contexts.
    pub fn new(arch: ArchKind, contexts: usize) -> Result<Self, FabricError> {
        let css = match arch {
            ArchKind::Sram => CssState::Binary(
                BinaryCss::new(contexts.next_power_of_two().max(2))
                    .map_err(mcfpga_core::CoreError::Css)?,
            ),
            ArchKind::MvFgfp | ArchKind::Hybrid => {
                CssState::Hybrid(HybridCssGen::new(contexts).map_err(mcfpga_core::CoreError::Css)?)
            }
        };
        Ok(ContextSequencer {
            arch,
            contexts,
            css,
            cur: 0,
        })
    }

    /// The architecture this sequencer models.
    #[must_use]
    pub fn arch(&self) -> ArchKind {
        self.arch
    }

    /// Number of contexts in the domain.
    #[must_use]
    pub fn contexts(&self) -> usize {
        self.contexts
    }

    /// The currently broadcast context.
    #[must_use]
    pub fn current(&self) -> usize {
        self.cur
    }

    /// The pairwise context-transition cost matrix of this sequencer's CSS
    /// — exactly the toggles [`step_to`](Self::step_to) charges per switch
    /// (binary-word Hamming distance for the SRAM architecture, hybrid
    /// broadcast-line toggles for the MV families). This is the matrix the
    /// sweep optimizer ([`mcfpga_css::optimize`]) minimizes against.
    #[must_use]
    pub fn cost_matrix(&self) -> CostMatrix {
        match &self.css {
            CssState::Binary(_) => {
                CostMatrix::from_fn(self.contexts, |a, b| (a ^ b).count_ones() as usize)
            }
            CssState::Hybrid(gen) => CostMatrix::from_fn(self.contexts, |a, b| {
                gen.toggles_between(a, b)
                    .expect("domain enumerated from the sequencer")
            }),
        }
        .expect("sequencer context count validated at construction")
    }

    /// Orders `sweep` for execution from the sequencer's *current* context:
    /// a no-op under [`OptimizeMode::Naive`], a minimum-toggle reordering
    /// (via [`optimize_sweep`] over [`cost_matrix`](Self::cost_matrix))
    /// under [`OptimizeMode::Optimized`]. The plan is advisory — replaying
    /// either order produces identical per-context outputs; the optimized
    /// one never costs more broadcast toggles.
    ///
    /// Builds a fresh cost matrix per call; replay-heavy callers should
    /// compute [`cost_matrix`](Self::cost_matrix) once and use
    /// [`plan_sweep_with`](Self::plan_sweep_with).
    pub fn plan_sweep(
        &self,
        sweep: &Schedule,
        mode: OptimizeMode,
    ) -> Result<Schedule, FabricError> {
        self.plan_sweep_with(sweep, mode, &self.cost_matrix())
    }

    /// [`plan_sweep`](Self::plan_sweep) against a caller-cached cost
    /// matrix — the hot-path form: the matrix never changes for a given
    /// sequencer, so a service flushing many sweeps computes it once.
    pub fn plan_sweep_with(
        &self,
        sweep: &Schedule,
        mode: OptimizeMode,
        matrix: &CostMatrix,
    ) -> Result<Schedule, FabricError> {
        match mode {
            OptimizeMode::Naive => Ok(sweep.clone()),
            OptimizeMode::Optimized => Ok(optimize_sweep(sweep, matrix, Some(self.cur))
                .map_err(mcfpga_core::CoreError::Css)?
                .schedule),
        }
    }

    /// Returns the sequencer to context 0 without charging toggles, so the
    /// next replay starts from the same state a fresh sequencer would.
    pub fn reset(&mut self) -> Result<(), FabricError> {
        self.resume_at(0)
    }

    /// Parks the broadcast on `ctx` without charging toggles — the
    /// restore half of sweep-position capture ([`current`](Self::current)
    /// being the capture half). A checkpoint records where a shard's
    /// broadcast sat at the context-switch boundary; rebuilding that shard
    /// resumes the sequencer here so subsequent sweeps are planned and
    /// charged from the same position, not from a fictitious context 0.
    pub fn resume_at(&mut self, ctx: usize) -> Result<(), FabricError> {
        if ctx >= self.contexts {
            return Err(FabricError::ContextOutOfRange {
                ctx,
                contexts: self.contexts,
            });
        }
        if let CssState::Binary(css) = &mut self.css {
            css.switch_to(ctx).map_err(mcfpga_core::CoreError::Css)?;
        }
        self.cur = ctx;
        Ok(())
    }

    /// One accounted schedule step: switches to `ctx` and charges `stats`.
    /// SRAM counts a switch when any word bit toggles; the hybrid families
    /// count context changes — preserved from the original replay.
    fn charge_step(&mut self, ctx: usize, stats: &mut SequenceStats) -> Result<(), FabricError> {
        let changed = ctx != self.cur;
        let t = self.step_to(ctx)?;
        stats.steps += 1;
        let switched = match self.arch {
            ArchKind::Sram => t > 0,
            ArchKind::MvFgfp | ArchKind::Hybrid => changed,
        };
        if switched {
            stats.switches += 1;
        }
        stats.wire_toggles += t;
        Ok(())
    }

    /// Switches the broadcast to `ctx`, returning the broadcast-wire
    /// toggles that cost.
    pub fn step_to(&mut self, ctx: usize) -> Result<usize, FabricError> {
        let toggles = match &mut self.css {
            CssState::Binary(css) => {
                let t = css.hamming_to(ctx);
                css.switch_to(ctx).map_err(mcfpga_core::CoreError::Css)?;
                t
            }
            CssState::Hybrid(gen) => gen
                .toggles_between(self.cur, ctx)
                .map_err(mcfpga_core::CoreError::Css)?,
        };
        self.cur = ctx;
        Ok(toggles)
    }

    /// Replays `schedule` from a reset state, counting broadcast toggles.
    /// (The fabric's switches respond combinationally; what costs energy at
    /// switch time is the broadcast network.)
    pub fn replay(
        &mut self,
        schedule: &Schedule,
        params: &TechParams,
    ) -> Result<SequenceStats, FabricError> {
        self.reset()?;
        let mut stats = SequenceStats::zero();
        for ctx in schedule.iter() {
            self.charge_step(ctx, &mut stats)?;
        }
        stats.dynamic_energy_j = stats.wire_toggles as f64 * params.css_toggle_energy_j;
        Ok(stats)
    }
}

/// Replays `schedule` against the CSS machinery of `arch`, counting
/// broadcast toggles. Convenience wrapper building a throwaway
/// [`ContextSequencer`]; replay-heavy callers should build the sequencer
/// once and call [`ContextSequencer::replay`] directly.
pub fn replay_schedule(
    arch: ArchKind,
    contexts: usize,
    schedule: &Schedule,
    params: &TechParams,
) -> Result<SequenceStats, FabricError> {
    ContextSequencer::new(arch, contexts)?.replay(schedule, params)
}

/// Outcome of driving a schedule through a compiled fabric.
#[derive(Debug, Clone)]
pub struct ScheduleRun {
    /// Energy/switch accounting, identical to [`replay_schedule`].
    pub stats: SequenceStats,
    /// Per step: the context executed and its named output lanes
    /// (64 input vectors wide, bit `l` = vector `l`).
    pub steps: Vec<(usize, Vec<(String, u64)>)>,
}

/// Replays `schedule` by actually executing each scheduled context on
/// `compiled` with the given 64-lane input batch, while `seq` charges the
/// broadcast-network energy of every switch.
///
/// `inputs` is the union of all contexts' bound input signals; each plane
/// picks the names it binds. The sequencer is reset first, so repeated
/// runs of the same schedule are reproducible.
pub fn run_schedule(
    compiled: &CompiledFabric,
    seq: &mut ContextSequencer,
    schedule: &Schedule,
    inputs: &[(&str, u64)],
    params: &TechParams,
) -> Result<ScheduleRun, FabricError> {
    seq.reset()?;
    let mut stats = SequenceStats::zero();
    let mut steps = Vec::with_capacity(schedule.len());
    let mut scratch = compiled.new_state();
    for ctx in schedule.iter() {
        seq.charge_step(ctx, &mut stats)?;
        // the CSS has swapped the active plane; execute it bit-parallel
        let outs = compiled.eval_batch_into(ctx, inputs, &mut scratch)?;
        steps.push((ctx, outs));
    }
    stats.dynamic_energy_j = stats.wire_toggles as f64 * params.css_toggle_energy_j;
    Ok(ScheduleRun { stats, steps })
}

// Each shard engine owns one sequencer and may run on any worker thread.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ContextSequencer>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::{Fabric, FabricParams};
    use crate::netlist_ir::generators;
    use crate::route::implement_netlist;

    #[test]
    fn round_robin_toggle_counts() {
        let sched = Schedule::round_robin(4, 4).unwrap();
        let p = TechParams::default();
        let sram = replay_schedule(ArchKind::Sram, 4, &sched, &p).unwrap();
        let hybrid = replay_schedule(ArchKind::Hybrid, 4, &sched, &p).unwrap();
        assert_eq!(sram.steps, 16);
        assert_eq!(sram.switches, 15, "first step lands on ctx 0 (no change)");
        assert!(sram.wire_toggles > 0);
        assert!(hybrid.wire_toggles > 0);
        assert!(hybrid.dynamic_energy_j > 0.0);
    }

    #[test]
    fn idle_schedule_costs_nothing() {
        let sched = Schedule::explicit(4, vec![0, 0, 0, 0]).unwrap();
        let p = TechParams::default();
        for arch in ArchKind::all() {
            let s = replay_schedule(arch, 4, &sched, &p).unwrap();
            assert_eq!(s.switches, 0);
            assert_eq!(s.wire_toggles, 0);
            assert_eq!(s.dynamic_energy_j, 0.0);
        }
    }

    #[test]
    fn bursty_cheaper_than_random() {
        let p = TechParams::default();
        let bursty = Schedule::bursty(4, 256, 16, 5).unwrap();
        let random = Schedule::random(4, 256, 5).unwrap();
        for arch in [ArchKind::Sram, ArchKind::Hybrid] {
            let b = replay_schedule(arch, 4, &bursty, &p).unwrap();
            let r = replay_schedule(arch, 4, &random, &p).unwrap();
            assert!(b.wire_toggles < r.wire_toggles, "{arch:?}");
        }
    }

    #[test]
    fn cached_sequencer_matches_fresh_replays() {
        let p = TechParams::default();
        let scheds = [
            Schedule::round_robin(4, 8).unwrap(),
            Schedule::random(4, 64, 3).unwrap(),
            Schedule::bursty(4, 64, 8, 9).unwrap(),
        ];
        for arch in ArchKind::all() {
            let mut seq = ContextSequencer::new(arch, 4).unwrap();
            for sched in &scheds {
                let cached = seq.replay(sched, &p).unwrap();
                let fresh = replay_schedule(arch, 4, sched, &p).unwrap();
                assert_eq!(cached, fresh, "{arch:?}");
                // replaying again from the cached sequencer is idempotent
                assert_eq!(seq.replay(sched, &p).unwrap(), fresh, "{arch:?} repeat");
            }
        }
    }

    #[test]
    fn run_schedule_executes_every_context() {
        // parity in ctx 0, wire lane in ctx 1
        let mut f = Fabric::new(FabricParams::default()).unwrap();
        implement_netlist(&mut f, &generators::parity_tree(3).unwrap(), 0, 2).unwrap();
        implement_netlist(&mut f, &generators::wire_lanes(1).unwrap(), 1, 3).unwrap();
        let compiled = CompiledFabric::compile(&f).unwrap();
        let mut seq = ContextSequencer::new(ArchKind::Hybrid, 4).unwrap();
        let sched = Schedule::explicit(4, vec![0, 1, 0, 1]).unwrap();
        let p = TechParams::default();
        // lanes: x0 = 0b01, x1 = 0b11, x2 = 0; in0 = 0b10
        let inputs = [("x0", 0b01u64), ("x1", 0b11), ("x2", 0), ("in0", 0b10)];
        let run = run_schedule(&compiled, &mut seq, &sched, &inputs, &p).unwrap();
        assert_eq!(run.steps.len(), 4);
        assert_eq!(run.stats.steps, 4);
        assert_eq!(run.stats.switches, 3, "0→1, 1→0, 0→1");
        // ctx 0: parity(x0,x1,x2): lane0 = parity(1,1,0)=0, lane1 = parity(0,1,0)=1
        let (ctx0, outs0) = &run.steps[0];
        assert_eq!(*ctx0, 0);
        assert_eq!(outs0[0].1 & 0b11, 0b10);
        // ctx 1: wire lane passes in0 through
        let (ctx1, outs1) = &run.steps[1];
        assert_eq!(*ctx1, 1);
        assert_eq!(outs1[0].1, 0b10);
        // energy accounting matches the plain replay exactly
        let plain = replay_schedule(ArchKind::Hybrid, 4, &sched, &p).unwrap();
        assert_eq!(run.stats, plain);
    }

    /// `resume_at` parks the broadcast without charging, and subsequent
    /// steps charge exactly as if the sequencer had stepped there.
    #[test]
    fn resume_at_restores_position_without_charging() {
        for arch in ArchKind::all() {
            let mut walked = ContextSequencer::new(arch, 4).unwrap();
            walked.step_to(3).unwrap();
            let mut resumed = ContextSequencer::new(arch, 4).unwrap();
            resumed.resume_at(3).unwrap();
            assert_eq!(resumed.current(), 3, "{arch:?}");
            for next in 0..4 {
                let mut a = walked.clone();
                let mut b = resumed.clone();
                assert_eq!(
                    a.step_to(next).unwrap(),
                    b.step_to(next).unwrap(),
                    "{arch:?}"
                );
            }
            assert!(resumed.resume_at(4).is_err());
        }
    }

    /// The cost matrix must model exactly what `step_to` charges — for
    /// every architecture and every ordered context pair.
    #[test]
    fn cost_matrix_matches_step_to_charges() {
        for arch in ArchKind::all() {
            let mut seq = ContextSequencer::new(arch, 8).unwrap();
            let m = seq.cost_matrix();
            for a in 0..8 {
                for b in 0..8 {
                    seq.reset().unwrap();
                    seq.step_to(a).unwrap();
                    let charged = seq.step_to(b).unwrap();
                    assert_eq!(m.cost(a, b).unwrap(), charged, "{arch:?} {a}->{b}");
                }
            }
        }
    }

    #[test]
    fn plan_sweep_replays_cheaper_never_worse() {
        let p = TechParams::default();
        for arch in ArchKind::all() {
            let mut seq = ContextSequencer::new(arch, 8).unwrap();
            let naive = Schedule::active_sweep(8, &(0..8).collect::<Vec<_>>()).unwrap();
            // Naive mode is the identity
            assert_eq!(seq.plan_sweep(&naive, OptimizeMode::Naive).unwrap(), naive);
            let planned = seq.plan_sweep(&naive, OptimizeMode::Optimized).unwrap();
            let cost_naive = seq.replay(&naive, &p).unwrap().wire_toggles;
            let cost_planned = seq.replay(&planned, &p).unwrap().wire_toggles;
            assert!(cost_planned <= cost_naive, "{arch:?}");
            let mut visited = planned.as_slice().to_vec();
            visited.sort_unstable();
            assert_eq!(visited, (0..8).collect::<Vec<_>>(), "{arch:?}");
        }
        // the hybrid full sweep is the paper's headline case: strictly cheaper
        let seq = ContextSequencer::new(ArchKind::Hybrid, 4).unwrap();
        let naive = Schedule::active_sweep(4, &[0, 1, 2, 3]).unwrap();
        let planned = seq.plan_sweep(&naive, OptimizeMode::Optimized).unwrap();
        let m = seq.cost_matrix();
        assert!(
            m.path_cost(Some(0), planned.as_slice()).unwrap()
                < m.path_cost(Some(0), naive.as_slice()).unwrap()
        );
    }

    /// Plans account for where the broadcast currently sits: after stepping
    /// to the last context, the next sweep is planned from *there*.
    #[test]
    fn plan_sweep_starts_from_current_context() {
        let mut seq = ContextSequencer::new(ArchKind::Hybrid, 4).unwrap();
        seq.step_to(3).unwrap();
        let sweep = Schedule::active_sweep(4, &[0, 1, 2, 3]).unwrap();
        let planned = seq.plan_sweep(&sweep, OptimizeMode::Optimized).unwrap();
        let m = seq.cost_matrix();
        // from ctx 3 the optimal tour re-enters 3 first (free), e.g.
        // 3→1→0→2 = 0+2+4+2 = 8; the plan must cost exactly that
        assert_eq!(m.path_cost(Some(3), planned.as_slice()).unwrap(), 8);
        assert_eq!(planned.as_slice()[0], 3, "current context rides free");
    }
}
