//! Maze routing through the multi-context switch blocks, and the full
//! netlist→fabric mapping flow for one context.

use crate::array::{Dir, Fabric, Sink, Source, TileCoord};
use crate::netlist_ir::{LogicNetlist, Node, NodeId};
use crate::place::place_luts;
use crate::FabricError;
use std::collections::{HashMap, VecDeque};

/// A routing-resource node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RRNode {
    /// Output wire of `tile` toward `dir`, index `w` (terminates at the
    /// neighbour).
    Wire {
        /// Producing tile.
        tile: TileCoord,
        /// Direction of travel.
        dir: Dir,
        /// Channel index.
        w: usize,
    },
    /// LUT input pin.
    LutIn {
        /// Tile.
        tile: TileCoord,
        /// Pin.
        pin: usize,
    },
    /// LUT output.
    LutOut {
        /// Tile.
        tile: TileCoord,
    },
    /// External input port.
    IoIn {
        /// Tile.
        tile: TileCoord,
        /// Port.
        port: usize,
    },
    /// External output port.
    IoOut {
        /// Tile.
        tile: TileCoord,
        /// Port.
        port: usize,
    },
}

impl RRNode {
    /// The tile at which this node can act as a crossbar **source**.
    fn source_site(&self, fabric: &Fabric) -> Option<TileCoord> {
        match *self {
            RRNode::Wire { tile, dir, .. } => fabric.neighbor(tile, dir),
            RRNode::LutOut { tile } => Some(tile),
            RRNode::IoIn { tile, .. } => Some(tile),
            _ => None,
        }
    }

    /// The crossbar `Source` this node presents at its source site.
    fn as_source(&self, site: TileCoord) -> Source {
        match *self {
            RRNode::Wire { dir, w, .. } => Source::WireFrom {
                dir: dir.opposite(),
                w,
            },
            RRNode::LutOut { .. } => Source::LutOut,
            RRNode::IoIn { port, .. } => Source::IoIn(port),
            _ => unreachable!("sink nodes are not sources at {site}"),
        }
    }
}

/// Per-context router: owns sink occupancy so nets cannot collide.
#[derive(Debug, Default)]
pub struct Router {
    /// sink-capable resource → owning net.
    occupancy: HashMap<RRNode, usize>,
}

impl Router {
    /// Fresh router (empty context plane).
    #[must_use]
    pub fn new() -> Self {
        Router::default()
    }

    /// Owner of a resource, if claimed.
    #[must_use]
    pub fn owner(&self, n: &RRNode) -> Option<usize> {
        self.occupancy.get(n).copied()
    }

    /// Routes `net` from `source` to `target`, writing switch configuration
    /// into `fabric` for context `ctx`. Returns the number of new hops.
    ///
    /// Wires already owned by the same net are free branch points (fanout
    /// from one crossbar row to many columns).
    pub fn route(
        &mut self,
        fabric: &mut Fabric,
        ctx: usize,
        net: usize,
        source: RRNode,
        target: RRNode,
    ) -> Result<usize, FabricError> {
        let mut pred: HashMap<RRNode, RRNode> = HashMap::new();
        let mut queue: VecDeque<RRNode> = VecDeque::new();
        // start set: the source plus every wire this net already owns
        queue.push_back(source);
        for (node, owner) in &self.occupancy {
            if *owner == net && matches!(node, RRNode::Wire { .. }) {
                queue.push_back(*node);
            }
        }
        let mut seen: HashMap<RRNode, ()> = queue.iter().map(|n| (*n, ())).collect();
        let mut found = false;
        while let Some(cur) = queue.pop_front() {
            let Some(site) = cur.source_site(fabric) else {
                continue;
            };
            for sink in fabric.sinks(site) {
                let cand = match sink {
                    Sink::WireTo { dir, w } => RRNode::Wire { tile: site, dir, w },
                    Sink::LutIn(pin) => RRNode::LutIn { tile: site, pin },
                    Sink::IoOut(port) => RRNode::IoOut { tile: site, port },
                };
                if seen.contains_key(&cand) {
                    continue;
                }
                match self.occupancy.get(&cand) {
                    Some(owner) if *owner != net => continue, // taken by another net
                    _ => {}
                }
                if cand == target {
                    pred.insert(cand, cur);
                    found = true;
                    queue.clear();
                    break;
                }
                // only wires continue the search; pin sinks are terminal
                if matches!(cand, RRNode::Wire { .. }) {
                    seen.insert(cand, ());
                    pred.insert(cand, cur);
                    queue.push_back(cand);
                }
            }
            if found {
                break;
            }
        }
        if !found {
            return Err(FabricError::RoutingFailed {
                net: format!("net {net} to {target:?}"),
                ctx,
            });
        }
        // walk back, writing configuration for hops not yet owned
        let mut hops = 0;
        let mut cur = target;
        while let Some(&prev) = pred.get(&cur) {
            if self.occupancy.get(&cur) != Some(&net) {
                let site = prev
                    .source_site(fabric)
                    .expect("prev expanded from a source site");
                let sink = match cur {
                    RRNode::Wire { dir, w, .. } => Sink::WireTo { dir, w },
                    RRNode::LutIn { pin, .. } => Sink::LutIn(pin),
                    RRNode::IoOut { port, .. } => Sink::IoOut(port),
                    _ => unreachable!("sources cannot be sinks"),
                };
                fabric.set_route(site, ctx, sink, Some(prev.as_source(site)))?;
                self.occupancy.insert(cur, net);
                hops += 1;
            }
            if cur == source {
                break;
            }
            cur = prev;
        }
        Ok(hops)
    }
}

/// Expands a truth table over `f` fanins to a K-input LUT table (upper pins
/// don't-care).
#[must_use]
pub fn expand_table(table: u64, fanins: usize, k: usize) -> u64 {
    let rows = 1usize << k;
    let mask = (1usize << fanins) - 1;
    let mut out = 0u64;
    for row in 0..rows {
        if (table >> (row & mask)) & 1 == 1 {
            out |= 1 << row;
        }
    }
    out
}

/// Where each primary input/output of a mapped design landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortMap {
    /// Signal name.
    pub name: String,
    /// Tile hosting the port.
    pub tile: TileCoord,
    /// Port index on the tile.
    pub port: usize,
}

/// Summary of one context's mapping.
#[derive(Debug, Clone)]
pub struct RoutedDesign {
    /// Context the design occupies.
    pub ctx: usize,
    /// LUT placement.
    pub placement: HashMap<NodeId, TileCoord>,
    /// Primary input ports.
    pub inputs: Vec<PortMap>,
    /// Primary output ports.
    pub outputs: Vec<PortMap>,
    /// Total routed hops (wirelength proxy).
    pub wirelength: usize,
}

/// Full flow: place `netlist`, route every net, program LUT planes and bind
/// IO — all within context `ctx` of `fabric`.
pub fn implement_netlist(
    fabric: &mut Fabric,
    netlist: &LogicNetlist,
    ctx: usize,
    seed: u64,
) -> Result<RoutedDesign, FabricError> {
    let params = *fabric.params();
    if ctx >= params.contexts {
        return Err(FabricError::ContextOutOfRange {
            ctx,
            contexts: params.contexts,
        });
    }
    let placement = place_luts(netlist, &params, seed)?;

    // ---- assign primary inputs to IoIn ports, round-robin over tiles ----
    let tiles: Vec<TileCoord> = fabric.tiles().collect();
    let mut in_ports_free: HashMap<TileCoord, usize> = HashMap::new();
    let mut input_sites: HashMap<NodeId, (TileCoord, usize)> = HashMap::new();
    let mut inputs = Vec::new();
    let mut tile_cursor = 0usize;
    for id in netlist.input_ids() {
        let Node::Input { name } = netlist.node(id) else {
            unreachable!()
        };
        // find next tile with a free input port
        let mut assigned = None;
        for _ in 0..tiles.len() {
            let t = tiles[tile_cursor % tiles.len()];
            tile_cursor += 1;
            let used = in_ports_free.entry(t).or_insert(0);
            if *used < params.io_in {
                assigned = Some((t, *used));
                *used += 1;
                break;
            }
        }
        let (t, port) = assigned.ok_or_else(|| {
            FabricError::PlacementFailed(format!("no free input port for {name}"))
        })?;
        fabric.bind_input(t, port, ctx, name)?;
        input_sites.insert(id, (t, port));
        inputs.push(PortMap {
            name: name.clone(),
            tile: t,
            port,
        });
    }

    // ---- program LUT planes ----
    for id in netlist.lut_ids() {
        let Node::Lut { fanin, table, .. } = netlist.node(id) else {
            unreachable!()
        };
        let t = placement[&id];
        let expanded = expand_table(*table, fanin.len(), params.lut_k);
        fabric.tile_mut(t)?.lut.program(ctx, expanded)?;
    }

    // ---- route nets: every LUT fanin pin, then primary outputs ----
    let mut router = Router::new();
    let mut wirelength = 0usize;
    let source_of = |id: NodeId| -> RRNode {
        match netlist.node(id) {
            Node::Input { .. } => {
                let (t, port) = input_sites[&id];
                RRNode::IoIn { tile: t, port }
            }
            Node::Lut { .. } => RRNode::LutOut {
                tile: placement[&id],
            },
        }
    };
    for id in netlist.lut_ids() {
        let Node::Lut { fanin, .. } = netlist.node(id) else {
            unreachable!()
        };
        let t = placement[&id];
        for (pin, f) in fanin.iter().enumerate() {
            wirelength += router.route(
                fabric,
                ctx,
                f.0,
                source_of(*f),
                RRNode::LutIn { tile: t, pin },
            )?;
        }
    }

    // ---- primary outputs: claim an IoOut near the driver ----
    let mut out_ports_free: HashMap<TileCoord, usize> = HashMap::new();
    let mut outputs = Vec::new();
    for (name, driver) in netlist.outputs() {
        let prefer = match netlist.node(*driver) {
            Node::Lut { .. } => placement[driver],
            Node::Input { .. } => input_sites[driver].0,
        };
        // scan tiles by manhattan distance from the driver for a free port
        let mut order: Vec<TileCoord> = tiles.clone();
        order.sort_by_key(|t| t.x.abs_diff(prefer.x) + t.y.abs_diff(prefer.y));
        let mut routed = false;
        for t in order {
            let used = out_ports_free.entry(t).or_insert(0);
            if *used >= params.io_out {
                continue;
            }
            let target = RRNode::IoOut {
                tile: t,
                port: *used,
            };
            match router.route(fabric, ctx, driver.0, source_of(*driver), target) {
                Ok(h) => {
                    fabric.bind_output(t, *used, ctx, name)?;
                    outputs.push(PortMap {
                        name: name.clone(),
                        tile: t,
                        port: *used,
                    });
                    *used += 1;
                    wirelength += h;
                    routed = true;
                    break;
                }
                Err(FabricError::RoutingFailed { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        if !routed {
            return Err(FabricError::RoutingFailed {
                net: format!("output {name}"),
                ctx,
            });
        }
    }

    Ok(RoutedDesign {
        ctx,
        placement,
        inputs,
        outputs,
        wirelength,
    })
}

/// [`implement_netlist`] with placement-seed retries: maze routing on a
/// congested grid can fail for an unlucky placement; re-seeding the
/// annealer usually resolves it. Clears the context and retries up to
/// `attempts` times before giving up with the last routing error.
pub fn implement_netlist_robust(
    fabric: &mut Fabric,
    netlist: &LogicNetlist,
    ctx: usize,
    seed: u64,
    attempts: usize,
) -> Result<RoutedDesign, FabricError> {
    let mut last = None;
    for k in 0..attempts.max(1) {
        match implement_netlist(fabric, netlist, ctx, seed.wrapping_add(k as u64 * 0x9E37)) {
            Ok(d) => return Ok(d),
            Err(e @ (FabricError::RoutingFailed { .. } | FabricError::PlacementFailed(_))) => {
                fabric.clear_context(ctx)?;
                last = Some(e);
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("at least one attempt"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::FabricParams;
    use crate::netlist_ir::generators;

    fn fabric(w: usize, h: usize) -> Fabric {
        Fabric::new(FabricParams {
            width: w,
            height: h,
            channel_width: 2,
            ..FabricParams::default()
        })
        .unwrap()
    }

    #[test]
    fn expand_table_examples() {
        // xor over 2 fanins into a 4-LUT: repeats every 4 rows
        let e = expand_table(0b0110, 2, 4);
        for row in 0..16usize {
            assert_eq!((e >> row) & 1, ((0b0110 >> (row & 3)) & 1) as u64);
        }
    }

    #[test]
    fn route_single_hop() {
        let mut f = fabric(2, 1);
        let mut r = Router::new();
        let a = TileCoord { x: 0, y: 0 };
        let b = TileCoord { x: 1, y: 0 };
        let hops = r
            .route(
                &mut f,
                0,
                7,
                RRNode::LutOut { tile: a },
                RRNode::LutIn { tile: b, pin: 0 },
            )
            .unwrap();
        // lutout(a) -> wire(a,E) -> lutin(b): 2 configured sinks
        assert_eq!(hops, 2);
        // config written: wire East of a driven by LutOut
        assert_eq!(
            f.route_of(
                a,
                0,
                Sink::WireTo {
                    dir: Dir::East,
                    w: 0
                }
            )
            .unwrap(),
            Some(Source::LutOut)
        );
    }

    #[test]
    fn fanout_reuses_wires() {
        let mut f = fabric(3, 1);
        let mut r = Router::new();
        let a = TileCoord { x: 0, y: 0 };
        let b = TileCoord { x: 1, y: 0 };
        let c = TileCoord { x: 2, y: 0 };
        let src = RRNode::LutOut { tile: a };
        let h1 = r
            .route(&mut f, 0, 1, src, RRNode::LutIn { tile: c, pin: 0 })
            .unwrap();
        // branch to b: reuse the a→b wire, just one extra sink hop
        let h2 = r
            .route(&mut f, 0, 1, src, RRNode::LutIn { tile: b, pin: 1 })
            .unwrap();
        assert!(h2 < h1, "branch ({h2}) cheaper than trunk ({h1})");
        assert_eq!(h2, 1);
    }

    #[test]
    fn occupancy_blocks_other_nets() {
        let mut f = Fabric::new(FabricParams {
            width: 2,
            height: 1,
            channel_width: 1,
            ..FabricParams::default()
        })
        .unwrap();
        let mut r = Router::new();
        let a = TileCoord { x: 0, y: 0 };
        let b = TileCoord { x: 1, y: 0 };
        r.route(
            &mut f,
            0,
            1,
            RRNode::LutOut { tile: a },
            RRNode::LutIn { tile: b, pin: 0 },
        )
        .unwrap();
        // second net from a's IoIn must fail east: only 1 wire and it's taken
        let err = r.route(
            &mut f,
            0,
            2,
            RRNode::IoIn { tile: a, port: 0 },
            RRNode::LutIn { tile: b, pin: 1 },
        );
        assert!(matches!(err, Err(FabricError::RoutingFailed { .. })));
    }

    #[test]
    fn implement_wire_lanes() {
        let nl = generators::wire_lanes(3).unwrap();
        let mut f = fabric(3, 3);
        let d = implement_netlist(&mut f, &nl, 0, 42).unwrap();
        assert_eq!(d.inputs.len(), 3);
        assert_eq!(d.outputs.len(), 3);
        assert!(d.wirelength > 0);
    }

    #[test]
    fn implement_parity_tree() {
        let nl = generators::parity_tree(4).unwrap();
        let mut f = fabric(3, 3);
        let d = implement_netlist(&mut f, &nl, 2, 7).unwrap();
        assert_eq!(d.ctx, 2);
        assert_eq!(d.placement.len(), 3, "three XOR luts");
    }

    #[test]
    fn robust_implement_retries_to_success() {
        // a tight grid where some placements fail to route: the robust
        // variant must find a working seed
        let nl = generators::ripple_adder(3).unwrap(); // 6 LUTs
        let mut f = Fabric::new(FabricParams {
            width: 3,
            height: 3,
            channel_width: 2,
            ..FabricParams::default()
        })
        .unwrap();
        let d = implement_netlist_robust(&mut f, &nl, 0, 0, 16).unwrap();
        assert_eq!(d.placement.len(), 6);
    }

    #[test]
    fn robust_implement_propagates_hard_errors() {
        let nl = generators::ripple_adder(8).unwrap(); // 16 LUTs > 4 tiles
        let mut f = fabric(2, 2);
        assert!(matches!(
            implement_netlist_robust(&mut f, &nl, 0, 0, 3),
            Err(FabricError::PlacementFailed(_))
        ));
    }
}
