//! Fabric-level area and static-power roll-up.
//!
//! The paper's §4 claim: "The use of FGFPs will be efficient in static power
//! consumption in comparison with the SRAM-based one because no supply
//! voltage is required to keep the storage." Here that becomes a number per
//! architecture for an entire fabric's routing configuration storage.

use crate::array::Fabric;
use mcfpga_core::ArchKind;
use mcfpga_device::TechParams;

/// Static power and storage census of the routing fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// Architecture assessed.
    pub arch: ArchKind,
    /// Total MC-switch cross-points.
    pub crosspoints: usize,
    /// Routing transistors (Table 1/2 accounting extended to the fabric).
    pub routing_transistors: usize,
    /// Volatile configuration bits kept alive by the supply.
    pub volatile_bits: usize,
    /// Static power of routing configuration storage (watts).
    pub static_power_w: f64,
}

/// Computes the routing storage power report for `fabric`.
#[must_use]
pub fn routing_power(fabric: &Fabric, params: &TechParams) -> PowerReport {
    let p = fabric.params();
    let crosspoints = fabric.crosspoint_count();
    let routing_transistors = fabric.routing_transistor_count();
    let (volatile_bits, static_power_w) = match p.arch {
        // every cross-point holds C SRAM bits that leak while powered
        ArchKind::Sram => {
            let bits = crosspoints * p.contexts;
            (bits, bits as f64 * params.sram_leak_w)
        }
        // FGFP storage is charge on floating gates: no supply needed
        ArchKind::MvFgfp | ArchKind::Hybrid => {
            let devices = match p.arch {
                ArchKind::MvFgfp => crosspoints * (3 * p.contexts / 2 - 2),
                _ => crosspoints * p.contexts / 2,
            };
            (0, devices as f64 * params.fgmos_leak_w)
        }
    };
    PowerReport {
        arch: p.arch,
        crosspoints,
        routing_transistors,
        volatile_bits,
        static_power_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::FabricParams;

    fn fabric(arch: ArchKind) -> Fabric {
        Fabric::new(FabricParams {
            arch,
            ..FabricParams::default()
        })
        .unwrap()
    }

    #[test]
    fn sram_leaks_fgfp_does_not() {
        let p = TechParams::default();
        let sram = routing_power(&fabric(ArchKind::Sram), &p);
        let hybrid = routing_power(&fabric(ArchKind::Hybrid), &p);
        assert!(sram.volatile_bits > 0);
        assert_eq!(hybrid.volatile_bits, 0);
        assert!(sram.static_power_w > hybrid.static_power_w * 1e3);
    }

    #[test]
    fn crosspoints_consistent_across_archs() {
        let p = TechParams::default();
        let a = routing_power(&fabric(ArchKind::Sram), &p);
        let b = routing_power(&fabric(ArchKind::Hybrid), &p);
        assert_eq!(a.crosspoints, b.crosspoints);
        assert!(a.routing_transistors > b.routing_transistors);
    }
}
