//! Property tests for the switch-level simulator: conduction must be a
//! proper equivalence relation, and series/parallel compositions must follow
//! AND/OR semantics for arbitrary chains.

use mcfpga_device::TechParams;
use mcfpga_netlist::{ControlKind, DeviceKind, Netlist, SwitchSim};
use proptest::prelude::*;

/// Builds a chain of `n` pass transistors with independent controls between
/// net 0 and net n.
fn chain(n: usize) -> Netlist {
    let mut nl = Netlist::new();
    let mut prev = nl.add_net("n0");
    for i in 0..n {
        let next = nl.add_net(&format!("n{}", i + 1));
        let e = nl.add_control(&format!("e{i}"), ControlKind::Binary);
        nl.add_device(DeviceKind::NmosPass, prev, next, e, None)
            .unwrap();
        prev = next;
    }
    nl
}

proptest! {
    /// A series chain conducts end-to-end iff every gate is high (wired-AND).
    #[test]
    fn series_chain_is_and(gates in prop::collection::vec(any::<bool>(), 1..12)) {
        let nl = chain(gates.len());
        let mut sim = SwitchSim::new(&nl, TechParams::default());
        for (i, g) in gates.iter().enumerate() {
            sim.bind_bin_named(&format!("e{i}"), *g).unwrap();
        }
        sim.evaluate().unwrap();
        let a = nl.find_net("n0").unwrap();
        let b = nl.find_net(&format!("n{}", gates.len())).unwrap();
        prop_assert_eq!(sim.connected(a, b), gates.iter().all(|g| *g));
    }

    /// Parallel branches conduct iff any gate is high (wired-OR).
    #[test]
    fn parallel_branches_are_or(gates in prop::collection::vec(any::<bool>(), 1..12)) {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        for (i, _) in gates.iter().enumerate() {
            let e = nl.add_control(&format!("e{i}"), ControlKind::Binary);
            nl.add_device(DeviceKind::NmosPass, a, b, e, None).unwrap();
        }
        let mut sim = SwitchSim::new(&nl, TechParams::default());
        for (i, g) in gates.iter().enumerate() {
            sim.bind_bin_named(&format!("e{i}"), *g).unwrap();
        }
        sim.evaluate().unwrap();
        prop_assert_eq!(sim.connected(a, b), gates.iter().any(|g| *g));
    }

    /// Connectivity is reflexive, symmetric and transitive under any gate
    /// assignment of a random ladder network.
    #[test]
    fn connectivity_is_equivalence(
        gates in prop::collection::vec(any::<bool>(), 3..10),
    ) {
        let nl = chain(gates.len());
        let mut sim = SwitchSim::new(&nl, TechParams::default());
        for (i, g) in gates.iter().enumerate() {
            sim.bind_bin_named(&format!("e{i}"), *g).unwrap();
        }
        sim.evaluate().unwrap();
        let nets: Vec<_> = (0..=gates.len())
            .map(|i| nl.find_net(&format!("n{i}")).unwrap())
            .collect();
        for &x in &nets {
            prop_assert!(sim.connected(x, x));
            for &y in &nets {
                prop_assert_eq!(sim.connected(x, y), sim.connected(y, x));
                for &z in &nets {
                    if sim.connected(x, y) && sim.connected(y, z) {
                        prop_assert!(sim.connected(x, z));
                    }
                }
            }
        }
    }

    /// A driven value is observable exactly on the driver's component.
    #[test]
    fn value_propagates_with_connectivity(
        gates in prop::collection::vec(any::<bool>(), 1..10),
        v in any::<bool>(),
    ) {
        let nl = chain(gates.len());
        let mut sim = SwitchSim::new(&nl, TechParams::default());
        for (i, g) in gates.iter().enumerate() {
            sim.bind_bin_named(&format!("e{i}"), *g).unwrap();
        }
        let a = nl.find_net("n0").unwrap();
        sim.drive(a, v);
        sim.evaluate().unwrap();
        for i in 0..=gates.len() {
            let n = nl.find_net(&format!("n{i}")).unwrap();
            let want = if sim.connected(a, n) { Some(v) } else { None };
            prop_assert_eq!(sim.read(n), want, "net n{}", i);
        }
    }

    /// Contention appears exactly when two opposite drivers join one
    /// component.
    #[test]
    fn contention_iff_joined_opposite_drivers(
        gates in prop::collection::vec(any::<bool>(), 1..10),
        va in any::<bool>(),
        vb in any::<bool>(),
    ) {
        let nl = chain(gates.len());
        let mut sim = SwitchSim::new(&nl, TechParams::default());
        for (i, g) in gates.iter().enumerate() {
            sim.bind_bin_named(&format!("e{i}"), *g).unwrap();
        }
        let a = nl.find_net("n0").unwrap();
        let b = nl.find_net(&format!("n{}", gates.len())).unwrap();
        sim.drive(a, va);
        sim.drive(b, vb);
        let rep = sim.evaluate().unwrap();
        let joined = gates.iter().all(|g| *g);
        prop_assert_eq!(!rep.contentions.is_empty(), joined && va != vb);
    }
}
