//! Structural netlist: nets, control inputs, devices, regions.

use crate::NetlistError;
use mcfpga_device::{Fgmos, FgmosMode, TechParams};
use mcfpga_mvl::{Level, Radix};

/// Identifier of an electrical net (channel-side node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

/// Identifier of a device instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub(crate) u32);

/// Identifier of a named control input (binary wire or MV rail).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ControlId(pub(crate) u32);

/// Identifier of a hierarchical region (for per-block accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub(crate) u32);

impl NetId {
    /// Raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl DeviceId {
    /// Raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ControlId {
    /// Raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `ControlId` from a raw index. The caller must ensure the
    /// index refers to an existing control of the target netlist; all
    /// netlist entry points re-validate on use.
    #[must_use]
    pub fn from_index(i: usize) -> Self {
        ControlId(u32::try_from(i).expect("control index fits u32"))
    }
}

/// What kind of value a control input carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlKind {
    /// Binary wire (`bool`).
    Binary,
    /// Multiple-valued rail ([`Level`]).
    Mv,
}

/// Device species in the conduction path.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceKind {
    /// n-channel pass transistor: conducts when its binary gate is high.
    NmosPass,
    /// p-channel pass transistor: conducts when its binary gate is low.
    PmosPass,
    /// Transmission gate (2 transistors): conducts when enable is high.
    TransmissionGate,
    /// Floating-gate functional pass gate with behavioural device state.
    Fgmos(Fgmos),
}

impl DeviceKind {
    /// Physical transistors in this device.
    #[must_use]
    pub fn transistor_count(&self) -> usize {
        match self {
            DeviceKind::NmosPass | DeviceKind::PmosPass => 1,
            DeviceKind::TransmissionGate => 2,
            DeviceKind::Fgmos(d) => d.transistor_count(),
        }
    }

    /// Control kind this device's gate expects.
    #[must_use]
    pub fn expected_control(&self) -> ControlKind {
        match self {
            DeviceKind::Fgmos(_) => ControlKind::Mv,
            _ => ControlKind::Binary,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct DeviceInst {
    pub kind: DeviceKind,
    pub a: NetId,
    pub b: NetId,
    pub gate: ControlId,
    pub region: Option<RegionId>,
}

#[derive(Debug, Clone)]
pub(crate) struct ControlInfo {
    pub name: String,
    pub kind: ControlKind,
}

/// A structural pass-transistor netlist.
///
/// * **Nets** are channel-side nodes (sources/drains).
/// * **Controls** are named gate-side inputs, bound at simulation time.
/// * **Devices** connect two nets and watch one control.
/// * **Regions** tag devices for hierarchical transistor accounting; SRAM
///   configuration cells live *outside* the conduction path, so the netlist
///   tracks them as per-region storage counts.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    pub(crate) nets: Vec<String>,
    pub(crate) controls: Vec<ControlInfo>,
    pub(crate) devices: Vec<DeviceInst>,
    pub(crate) regions: Vec<String>,
    /// (region, sram cell count) pairs for storage accounting.
    pub(crate) sram_cells: Vec<(Option<RegionId>, usize)>,
    /// (region, label, transistor count) for gate-side support logic that is
    /// not in the conduction path (config MUX trees, decoders, inverters).
    pub(crate) support: Vec<(Option<RegionId>, String, usize)>,
}

impl Netlist {
    /// Empty netlist.
    #[must_use]
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Adds a named net; returns its id.
    pub fn add_net(&mut self, name: &str) -> NetId {
        let id = NetId(u32::try_from(self.nets.len()).expect("net count fits u32"));
        self.nets.push(name.to_string());
        id
    }

    /// Adds a named control input.
    pub fn add_control(&mut self, name: &str, kind: ControlKind) -> ControlId {
        let id = ControlId(u32::try_from(self.controls.len()).expect("control count fits u32"));
        self.controls.push(ControlInfo {
            name: name.to_string(),
            kind,
        });
        id
    }

    /// Declares a region for hierarchical accounting.
    pub fn add_region(&mut self, name: &str) -> RegionId {
        let id = RegionId(u32::try_from(self.regions.len()).expect("region count fits u32"));
        self.regions.push(name.to_string());
        id
    }

    /// Adds a device between nets `a` and `b`, gated by `gate`.
    pub fn add_device(
        &mut self,
        kind: DeviceKind,
        a: NetId,
        b: NetId,
        gate: ControlId,
        region: Option<RegionId>,
    ) -> Result<DeviceId, NetlistError> {
        self.check_net(a)?;
        self.check_net(b)?;
        let info = self
            .controls
            .get(gate.index())
            .ok_or(NetlistError::BadControl(gate.0))?;
        if info.kind != kind.expected_control() {
            return Err(NetlistError::ControlKindMismatch {
                control: gate.0,
                expected: match kind.expected_control() {
                    ControlKind::Binary => "binary",
                    ControlKind::Mv => "mv",
                },
            });
        }
        let id = DeviceId(u32::try_from(self.devices.len()).expect("device count fits u32"));
        self.devices.push(DeviceInst {
            kind,
            a,
            b,
            gate,
            region,
        });
        Ok(id)
    }

    /// Registers `count` 6T SRAM cells against a region (storage accounting
    /// only; cells drive gates, they are not in the conduction path).
    pub fn add_sram_cells(&mut self, region: Option<RegionId>, count: usize) {
        self.sram_cells.push((region, count));
    }

    /// Registers gate-side support logic (config MUX tree, decoder, inverter)
    /// that contributes `transistors` to the area but is not simulated in the
    /// conduction path.
    pub fn add_support(&mut self, region: Option<RegionId>, label: &str, transistors: usize) {
        self.support.push((region, label.to_string(), transistors));
    }

    fn check_net(&self, n: NetId) -> Result<(), NetlistError> {
        if n.index() < self.nets.len() {
            Ok(())
        } else {
            Err(NetlistError::BadNet(n.0))
        }
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of devices.
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Number of control inputs.
    #[must_use]
    pub fn control_count(&self) -> usize {
        self.controls.len()
    }

    /// Net name.
    pub fn net_name(&self, n: NetId) -> Result<&str, NetlistError> {
        self.nets
            .get(n.index())
            .map(String::as_str)
            .ok_or(NetlistError::BadNet(n.0))
    }

    /// Control name.
    pub fn control_name(&self, c: ControlId) -> Result<&str, NetlistError> {
        self.controls
            .get(c.index())
            .map(|i| i.name.as_str())
            .ok_or(NetlistError::BadControl(c.0))
    }

    /// Control kind.
    pub fn control_kind(&self, c: ControlId) -> Result<ControlKind, NetlistError> {
        self.controls
            .get(c.index())
            .map(|i| i.kind)
            .ok_or(NetlistError::BadControl(c.0))
    }

    /// Finds a net by name.
    #[must_use]
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n == name)
            .map(|i| NetId(i as u32))
    }

    /// Finds a control by name.
    #[must_use]
    pub fn find_control(&self, name: &str) -> Option<ControlId> {
        self.controls
            .iter()
            .position(|c| c.name == name)
            .map(|i| ControlId(i as u32))
    }

    /// Mutable access to an FGMOS device (for programming).
    pub fn fgmos_mut(&mut self, d: DeviceId) -> Result<&mut Fgmos, NetlistError> {
        match self
            .devices
            .get_mut(d.index())
            .ok_or(NetlistError::BadDevice(d.0))?
        {
            DeviceInst {
                kind: DeviceKind::Fgmos(f),
                ..
            } => Ok(f),
            _ => Err(NetlistError::BadDevice(d.0)),
        }
    }

    /// Shared access to an FGMOS device.
    pub fn fgmos(&self, d: DeviceId) -> Result<&Fgmos, NetlistError> {
        match self
            .devices
            .get(d.index())
            .ok_or(NetlistError::BadDevice(d.0))?
        {
            DeviceInst {
                kind: DeviceKind::Fgmos(f),
                ..
            } => Ok(f),
            _ => Err(NetlistError::BadDevice(d.0)),
        }
    }

    /// Convenience: adds an FGMOS programmed (ideally) to literal bound `t`.
    #[allow(clippy::too_many_arguments)]
    pub fn add_programmed_fgmos(
        &mut self,
        mode: FgmosMode,
        t: Level,
        radix: Radix,
        params: &TechParams,
        a: NetId,
        b: NetId,
        gate: ControlId,
        region: Option<RegionId>,
    ) -> Result<DeviceId, NetlistError> {
        let mut f = Fgmos::new(mode);
        f.program_ideal(t, radix, params)
            .map_err(|_| NetlistError::BadControl(gate.0))?;
        self.add_device(DeviceKind::Fgmos(f), a, b, gate, region)
    }

    /// Total transistors: conduction-path devices, 6T per SRAM cell, and
    /// registered support logic.
    #[must_use]
    pub fn transistor_count(&self) -> usize {
        let path: usize = self.devices.iter().map(|d| d.kind.transistor_count()).sum();
        let sram: usize = self.sram_cells.iter().map(|(_, n)| n * 6).sum();
        let support: usize = self.support.iter().map(|(_, _, n)| n).sum();
        path + sram + support
    }

    /// Transistors attributed to one region (devices + SRAM + support).
    #[must_use]
    pub fn region_transistor_count(&self, region: RegionId) -> usize {
        let path: usize = self
            .devices
            .iter()
            .filter(|d| d.region == Some(region))
            .map(|d| d.kind.transistor_count())
            .sum();
        let sram: usize = self
            .sram_cells
            .iter()
            .filter(|(r, _)| *r == Some(region))
            .map(|(_, n)| n * 6)
            .sum();
        let support: usize = self
            .support
            .iter()
            .filter(|(r, _, _)| *r == Some(region))
            .map(|(_, _, n)| n)
            .sum();
        path + sram + support
    }

    /// Total support transistors registered.
    #[must_use]
    pub fn support_transistor_count(&self) -> usize {
        self.support.iter().map(|(_, _, n)| n).sum()
    }

    /// Per-kind device census `(nmos, pmos, tgate, fgmos)`.
    #[must_use]
    pub fn device_census(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for d in &self.devices {
            match d.kind {
                DeviceKind::NmosPass => c.0 += 1,
                DeviceKind::PmosPass => c.1 += 1,
                DeviceKind::TransmissionGate => c.2 += 1,
                DeviceKind::Fgmos(_) => c.3 += 1,
            }
        }
        c
    }

    /// Total SRAM cells registered.
    #[must_use]
    pub fn sram_cell_count(&self) -> usize {
        self.sram_cells.iter().map(|(_, n)| n).sum()
    }

    /// Iterates `(device id, net a, net b, gate)` tuples.
    pub fn devices(&self) -> impl Iterator<Item = (DeviceId, NetId, NetId, ControlId)> + '_ {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, d)| (DeviceId(i as u32), d.a, d.b, d.gate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> TechParams {
        TechParams::default()
    }

    #[test]
    fn build_small_netlist() {
        let mut nl = Netlist::new();
        let a = nl.add_net("in");
        let b = nl.add_net("out");
        let g = nl.add_control("en", ControlKind::Binary);
        let d = nl.add_device(DeviceKind::NmosPass, a, b, g, None).unwrap();
        assert_eq!(nl.net_count(), 2);
        assert_eq!(nl.device_count(), 1);
        assert_eq!(nl.transistor_count(), 1);
        assert_eq!(d.index(), 0);
        assert_eq!(nl.net_name(a).unwrap(), "in");
        assert_eq!(nl.control_name(g).unwrap(), "en");
        assert_eq!(nl.find_control("en"), Some(g));
        assert_eq!(nl.find_control("nope"), None);
    }

    #[test]
    fn control_kind_checked() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let mv = nl.add_control("rail", ControlKind::Mv);
        // a plain pass transistor cannot be gated by an MV rail
        let err = nl
            .add_device(DeviceKind::NmosPass, a, b, mv, None)
            .unwrap_err();
        assert!(matches!(err, NetlistError::ControlKindMismatch { .. }));
        // and an FGMOS cannot be gated by a binary wire
        let bw = nl.add_control("bin", ControlKind::Binary);
        let err = nl
            .add_device(
                DeviceKind::Fgmos(Fgmos::new(FgmosMode::UpLiteral)),
                a,
                b,
                bw,
                None,
            )
            .unwrap_err();
        assert!(matches!(err, NetlistError::ControlKindMismatch { .. }));
    }

    #[test]
    fn transistor_accounting_with_regions_and_sram() {
        let mut nl = Netlist::new();
        let r1 = nl.add_region("switch0");
        let r2 = nl.add_region("switch1");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let g = nl.add_control("en", ControlKind::Binary);
        nl.add_device(DeviceKind::NmosPass, a, b, g, Some(r1))
            .unwrap();
        nl.add_device(DeviceKind::TransmissionGate, a, b, g, Some(r2))
            .unwrap();
        nl.add_sram_cells(Some(r1), 4);
        assert_eq!(nl.transistor_count(), 1 + 2 + 24);
        assert_eq!(nl.region_transistor_count(r1), 1 + 24);
        assert_eq!(nl.region_transistor_count(r2), 2);
        assert_eq!(nl.sram_cell_count(), 4);
    }

    #[test]
    fn programmed_fgmos_helper() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let rail = nl.add_control("vs", ControlKind::Mv);
        let d = nl
            .add_programmed_fgmos(
                FgmosMode::UpLiteral,
                Level::new(2),
                Radix::FIVE,
                &p(),
                a,
                b,
                rail,
                None,
            )
            .unwrap();
        let f = nl.fgmos(d).unwrap();
        assert_eq!(f.programmed_bound(), Some(Level::new(2)));
        assert_eq!(nl.device_census(), (0, 0, 0, 1));
    }

    #[test]
    fn bad_references_rejected() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let g = nl.add_control("en", ControlKind::Binary);
        let bogus = NetId(99);
        assert_eq!(
            nl.add_device(DeviceKind::NmosPass, a, bogus, g, None),
            Err(NetlistError::BadNet(99))
        );
        assert!(nl.fgmos(DeviceId(0)).is_err());
    }
}
