//! Switch-level simulation.
//!
//! Binding control values makes each device ON or OFF; the conducting
//! devices induce an equivalence relation over nets (computed by
//! union-find). Driven nets then propagate their values across components;
//! a component with two different drivers is in **contention**, one with no
//! driver is **floating**.

use crate::graph::{ControlId, ControlKind, DeviceId, DeviceKind, NetId, Netlist};
use crate::union_find::UnionFind;
use crate::NetlistError;
use mcfpga_device::TechParams;
use mcfpga_mvl::Level;

/// A contention record: two drivers disagree within one component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Contention {
    /// A driven net in the component.
    pub net_a: NetId,
    /// Another driven net in the same component with the opposite value.
    pub net_b: NetId,
}

/// Result of one switch-level evaluation.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Devices that conducted.
    pub on_devices: Vec<DeviceId>,
    /// Contentions discovered (empty for a well-formed configuration).
    pub contentions: Vec<Contention>,
}

/// Switch-level simulator over a [`Netlist`].
///
/// The simulator borrows the netlist immutably; control bindings and driver
/// values live in the simulator so one netlist can be evaluated under many
/// scenarios cheaply.
#[derive(Debug, Clone)]
pub struct SwitchSim<'n> {
    netlist: &'n Netlist,
    params: TechParams,
    bin: Vec<Option<bool>>,
    mv: Vec<Option<Level>>,
    drivers: Vec<Option<bool>>,
    uf: Option<UnionFind>,
    on: Vec<DeviceId>,
}

impl<'n> SwitchSim<'n> {
    /// Creates a simulator with all controls unbound and no drivers.
    #[must_use]
    pub fn new(netlist: &'n Netlist, params: TechParams) -> Self {
        SwitchSim {
            netlist,
            params,
            bin: vec![None; netlist.control_count()],
            mv: vec![None; netlist.control_count()],
            drivers: vec![None; netlist.net_count()],
            uf: None,
            on: Vec::new(),
        }
    }

    /// Binds a binary control.
    pub fn bind_bin(&mut self, c: ControlId, v: bool) -> Result<(), NetlistError> {
        match self.netlist.control_kind(c)? {
            ControlKind::Binary => {
                self.bin[c.index()] = Some(v);
                self.uf = None;
                Ok(())
            }
            ControlKind::Mv => Err(NetlistError::ControlKindMismatch {
                control: c.index() as u32,
                expected: "binary",
            }),
        }
    }

    /// Binds an MV control rail.
    pub fn bind_mv(&mut self, c: ControlId, v: Level) -> Result<(), NetlistError> {
        match self.netlist.control_kind(c)? {
            ControlKind::Mv => {
                self.mv[c.index()] = Some(v);
                self.uf = None;
                Ok(())
            }
            ControlKind::Binary => Err(NetlistError::ControlKindMismatch {
                control: c.index() as u32,
                expected: "mv",
            }),
        }
    }

    /// Binds a control by name (binary).
    pub fn bind_bin_named(&mut self, name: &str, v: bool) -> Result<(), NetlistError> {
        let c = self
            .netlist
            .find_control(name)
            .ok_or_else(|| NetlistError::UnboundControl {
                name: name.to_string(),
            })?;
        self.bind_bin(c, v)
    }

    /// Binds a control by name (MV).
    pub fn bind_mv_named(&mut self, name: &str, v: Level) -> Result<(), NetlistError> {
        let c = self
            .netlist
            .find_control(name)
            .ok_or_else(|| NetlistError::UnboundControl {
                name: name.to_string(),
            })?;
        self.bind_mv(c, v)
    }

    /// Drives a net with a logic value (e.g. the routed signal source).
    pub fn drive(&mut self, n: NetId, v: bool) {
        self.drivers[n.index()] = Some(v);
    }

    /// Removes a driver.
    pub fn undrive(&mut self, n: NetId) {
        self.drivers[n.index()] = None;
    }

    /// Evaluates conduction for the current bindings.
    ///
    /// Errors if any control watched by a device is unbound, or if an FGMOS
    /// is unprogrammed.
    pub fn evaluate(&mut self) -> Result<SimReport, NetlistError> {
        let mut uf = UnionFind::new(self.netlist.net_count());
        let mut on = Vec::new();
        for (i, dev) in self.netlist.devices.iter().enumerate() {
            let gid = dev.gate.index();
            let conducting = match &dev.kind {
                DeviceKind::NmosPass => self.need_bin(gid)?,
                DeviceKind::PmosPass => !self.need_bin(gid)?,
                DeviceKind::TransmissionGate => self.need_bin(gid)?,
                DeviceKind::Fgmos(f) => {
                    let level = self.need_mv(gid)?;
                    f.conducts(level, &self.params)
                        .map_err(|_| NetlistError::UnprogrammedDevice(i as u32))?
                }
            };
            if conducting {
                uf.union(dev.a.index(), dev.b.index());
                on.push(DeviceId(i as u32));
            }
        }
        // contention scan: for every pair of drivers in one component with
        // different values, report once per (first, offending) pair.
        let mut contentions = Vec::new();
        let mut seen: Vec<Option<(usize, bool)>> = vec![None; self.netlist.net_count()];
        for (ni, drv) in self.drivers.iter().enumerate() {
            if let Some(v) = drv {
                let root = uf.find(ni);
                match seen[root] {
                    None => seen[root] = Some((ni, *v)),
                    Some((first, fv)) => {
                        if fv != *v {
                            contentions.push(Contention {
                                net_a: NetId(first as u32),
                                net_b: NetId(ni as u32),
                            });
                        }
                    }
                }
            }
        }
        self.on = on.clone();
        self.uf = Some(uf);
        Ok(SimReport {
            on_devices: on,
            contentions,
        })
    }

    fn need_bin(&self, gid: usize) -> Result<bool, NetlistError> {
        self.bin[gid].ok_or_else(|| NetlistError::UnboundControl {
            name: self.netlist.controls[gid].name.clone(),
        })
    }

    fn need_mv(&self, gid: usize) -> Result<Level, NetlistError> {
        self.mv[gid].ok_or_else(|| NetlistError::UnboundControl {
            name: self.netlist.controls[gid].name.clone(),
        })
    }

    /// Are two nets connected under the most recent [`SwitchSim::evaluate`]?
    ///
    /// # Panics
    /// Panics if called before `evaluate`.
    pub fn connected(&mut self, a: NetId, b: NetId) -> bool {
        self.uf
            .as_mut()
            .expect("evaluate() before connected()")
            .connected(a.index(), b.index())
    }

    /// The logic value observable at `n`: the value of any driver in its
    /// component (`None` = floating). Contention reporting is in the
    /// [`SimReport`]; here the first driver wins, mirroring a fight where
    /// the stronger/first driver dominates.
    pub fn read(&mut self, n: NetId) -> Option<bool> {
        let uf = self.uf.as_mut().expect("evaluate() before read()");
        let root = uf.find(n.index());
        for (ni, drv) in self.drivers.iter().enumerate() {
            if drv.is_some() && uf.find(ni) == root {
                return *drv;
            }
        }
        None
    }

    /// Devices that conducted in the last evaluation.
    #[must_use]
    pub fn on_devices(&self) -> &[DeviceId] {
        &self.on
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ControlKind;
    use mcfpga_device::{Fgmos, FgmosMode};
    use mcfpga_mvl::Radix;

    fn params() -> TechParams {
        TechParams::default()
    }

    /// in —[nmos en]— out
    fn single_switch() -> (Netlist, NetId, NetId, ControlId) {
        let mut nl = Netlist::new();
        let a = nl.add_net("in");
        let b = nl.add_net("out");
        let en = nl.add_control("en", ControlKind::Binary);
        nl.add_device(DeviceKind::NmosPass, a, b, en, None).unwrap();
        (nl, a, b, en)
    }

    #[test]
    fn pass_transistor_connects_when_enabled() {
        let (nl, a, b, en) = single_switch();
        let mut sim = SwitchSim::new(&nl, params());
        sim.bind_bin(en, true).unwrap();
        sim.drive(a, true);
        let rep = sim.evaluate().unwrap();
        assert_eq!(rep.on_devices.len(), 1);
        assert!(sim.connected(a, b));
        assert_eq!(sim.read(b), Some(true));
    }

    #[test]
    fn pass_transistor_isolates_when_disabled() {
        let (nl, a, b, en) = single_switch();
        let mut sim = SwitchSim::new(&nl, params());
        sim.bind_bin(en, false).unwrap();
        sim.drive(a, true);
        sim.evaluate().unwrap();
        assert!(!sim.connected(a, b));
        assert_eq!(sim.read(b), None, "output floats when isolated");
    }

    #[test]
    fn unbound_control_is_an_error() {
        let (nl, _, _, _) = single_switch();
        let mut sim = SwitchSim::new(&nl, params());
        let err = sim.evaluate().unwrap_err();
        assert!(matches!(err, NetlistError::UnboundControl { .. }));
    }

    #[test]
    fn fgmos_series_chain_is_wired_and() {
        // window literal = up(t1) in series with down(t2)
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let m = nl.add_net("m");
        let b = nl.add_net("b");
        let rail = nl.add_control("vs", ControlKind::Mv);
        let p = params();
        nl.add_programmed_fgmos(
            FgmosMode::UpLiteral,
            Level::new(2),
            Radix::FIVE,
            &p,
            a,
            m,
            rail,
            None,
        )
        .unwrap();
        nl.add_programmed_fgmos(
            FgmosMode::DownLiteral,
            Level::new(3),
            Radix::FIVE,
            &p,
            m,
            b,
            rail,
            None,
        )
        .unwrap();
        let mut sim = SwitchSim::new(&nl, p);
        for v in 0..5u8 {
            sim.bind_mv(rail, Level::new(v)).unwrap();
            sim.evaluate().unwrap();
            let want = (2..=3).contains(&v); // window [2,3]
            assert_eq!(sim.connected(a, b), want, "level {v}");
        }
    }

    #[test]
    fn parallel_branches_are_wired_or() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let e1 = nl.add_control("e1", ControlKind::Binary);
        let e2 = nl.add_control("e2", ControlKind::Binary);
        nl.add_device(DeviceKind::NmosPass, a, b, e1, None).unwrap();
        nl.add_device(DeviceKind::NmosPass, a, b, e2, None).unwrap();
        let mut sim = SwitchSim::new(&nl, params());
        for (v1, v2) in [(false, false), (false, true), (true, false), (true, true)] {
            sim.bind_bin(e1, v1).unwrap();
            sim.bind_bin(e2, v2).unwrap();
            sim.evaluate().unwrap();
            assert_eq!(sim.connected(a, b), v1 || v2);
        }
    }

    #[test]
    fn contention_detected() {
        let (nl, a, b, en) = single_switch();
        let mut sim = SwitchSim::new(&nl, params());
        sim.bind_bin(en, true).unwrap();
        sim.drive(a, true);
        sim.drive(b, false);
        let rep = sim.evaluate().unwrap();
        assert_eq!(rep.contentions.len(), 1);
        // and with the switch open, no contention
        sim.bind_bin(en, false).unwrap();
        let rep = sim.evaluate().unwrap();
        assert!(rep.contentions.is_empty());
    }

    #[test]
    fn pmos_inverts_enable_sense() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let en = nl.add_control("en", ControlKind::Binary);
        nl.add_device(DeviceKind::PmosPass, a, b, en, None).unwrap();
        let mut sim = SwitchSim::new(&nl, params());
        sim.bind_bin(en, false).unwrap();
        sim.evaluate().unwrap();
        assert!(sim.connected(a, b));
        sim.bind_bin(en, true).unwrap();
        sim.evaluate().unwrap();
        assert!(!sim.connected(a, b));
    }

    #[test]
    fn unprogrammed_fgmos_is_an_error() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let rail = nl.add_control("vs", ControlKind::Mv);
        nl.add_device(
            DeviceKind::Fgmos(Fgmos::new(FgmosMode::UpLiteral)),
            a,
            b,
            rail,
            None,
        )
        .unwrap();
        let mut sim = SwitchSim::new(&nl, params());
        sim.bind_mv(rail, Level::new(1)).unwrap();
        assert!(matches!(
            sim.evaluate(),
            Err(NetlistError::UnprogrammedDevice(0))
        ));
    }

    #[test]
    fn read_through_transitive_path() {
        // a -[e]- m -[e]- b : value propagates across two hops
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let m = nl.add_net("m");
        let b = nl.add_net("b");
        let e = nl.add_control("e", ControlKind::Binary);
        nl.add_device(DeviceKind::NmosPass, a, m, e, None).unwrap();
        nl.add_device(DeviceKind::TransmissionGate, m, b, e, None)
            .unwrap();
        let mut sim = SwitchSim::new(&nl, params());
        sim.bind_bin(e, true).unwrap();
        sim.drive(a, false);
        sim.evaluate().unwrap();
        assert_eq!(sim.read(b), Some(false));
    }
}
