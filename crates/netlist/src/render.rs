//! Human-readable netlist dumps: a SPICE-flavoured device listing plus
//! per-region transistor accounting. Used by examples, docs and debugging
//! sessions; stable enough to assert against in tests.

use crate::graph::{DeviceKind, Netlist};

/// Renders the device listing, one line per device:
/// `D<i> <kind> <netA> <netB> gate=<control> [region]`.
#[must_use]
pub fn render_devices(nl: &Netlist) -> String {
    let mut out = String::new();
    for (i, dev) in nl.devices.iter().enumerate() {
        let kind = match &dev.kind {
            DeviceKind::NmosPass => "nmos ".to_string(),
            DeviceKind::PmosPass => "pmos ".to_string(),
            DeviceKind::TransmissionGate => "tgate".to_string(),
            DeviceKind::Fgmos(f) => match f.threshold_volts() {
                Some(v) => format!("fgmos(vth={v:.2}V)"),
                None => "fgmos(unprogrammed)".to_string(),
            },
        };
        let region = dev
            .region
            .map(|r| format!(" [{}]", nl.regions[r.index()]))
            .unwrap_or_default();
        out.push_str(&format!(
            "D{i} {kind} {} {} gate={}{}\n",
            nl.nets[dev.a.index()],
            nl.nets[dev.b.index()],
            nl.controls[dev.gate.index()].name,
            region,
        ));
    }
    out
}

/// Renders a summary: net/control/device counts, census by kind, SRAM and
/// support transistors, and per-region transistor totals.
#[must_use]
pub fn render_summary(nl: &Netlist) -> String {
    let (n, p, t, f) = nl.device_census();
    let mut out = format!(
        "nets: {}  controls: {}  devices: {}\n\
         census: {n} nmos, {p} pmos, {t} tgate, {f} fgmos\n\
         sram cells: {} ({} T)  support: {} T\n\
         total transistors: {}\n",
        nl.net_count(),
        nl.control_count(),
        nl.device_count(),
        nl.sram_cell_count(),
        nl.sram_cell_count() * 6,
        nl.support_transistor_count(),
        nl.transistor_count(),
    );
    for (i, name) in nl.regions.iter().enumerate() {
        let r = crate::graph::RegionId(i as u32);
        out.push_str(&format!(
            "region '{}': {} T\n",
            name,
            nl.region_transistor_count(r)
        ));
    }
    out
}

impl crate::graph::RegionId {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ControlKind;
    use mcfpga_device::{Fgmos, FgmosMode, TechParams};
    use mcfpga_mvl::{Level, Radix};

    fn sample() -> Netlist {
        let mut nl = Netlist::new();
        let r = nl.add_region("demo");
        let a = nl.add_net("in");
        let b = nl.add_net("out");
        let en = nl.add_control("en", ControlKind::Binary);
        let rail = nl.add_control("vs", ControlKind::Mv);
        nl.add_device(DeviceKind::NmosPass, a, b, en, Some(r))
            .unwrap();
        let mut f = Fgmos::new(FgmosMode::UpLiteral);
        f.program_ideal(Level::new(2), Radix::FIVE, &TechParams::default())
            .unwrap();
        nl.add_device(DeviceKind::Fgmos(f), a, b, rail, Some(r))
            .unwrap();
        nl.add_sram_cells(Some(r), 2);
        nl.add_support(Some(r), "mux", 6);
        nl
    }

    #[test]
    fn device_listing_shape() {
        let s = render_devices(&sample());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("D0 nmos  in out gate=en [demo]"));
        assert!(lines[1].contains("fgmos(vth=1.50V)"));
    }

    #[test]
    fn summary_counts() {
        let s = render_summary(&sample());
        assert!(s.contains("devices: 2"));
        assert!(s.contains("sram cells: 2 (12 T)"));
        assert!(s.contains("support: 6 T"));
        // 1 nmos + 1 fgmos + 12 sram + 6 support = 20
        assert!(s.contains("total transistors: 20"));
        assert!(s.contains("region 'demo': 20 T"));
    }

    #[test]
    fn unprogrammed_fgmos_rendered() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let rail = nl.add_control("vs", ControlKind::Mv);
        nl.add_device(
            DeviceKind::Fgmos(Fgmos::new(FgmosMode::DownLiteral)),
            a,
            b,
            rail,
            None,
        )
        .unwrap();
        assert!(render_devices(&nl).contains("unprogrammed"));
    }
}
