//! Structural validation of netlists.
//!
//! * every control is watched by at least one device (no dead inputs);
//! * every net touches at least one device (no dangling nets);
//! * **exclusive-ON** assertions: the paper's hybrid MC-switch guarantees at
//!   most one FGMOS conducts for any context — [`check_exclusive_on`] turns
//!   that architectural claim into a checkable predicate over device groups.

use crate::graph::{DeviceId, Netlist};
use crate::simulate::SwitchSim;
use crate::NetlistError;

/// A structural finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finding {
    /// Control input never referenced by a device gate.
    UnusedControl {
        /// Control name.
        name: String,
    },
    /// Net not connected to any device terminal.
    DanglingNet {
        /// Net name.
        name: String,
    },
}

/// Runs structural lint over a netlist.
#[must_use]
pub fn lint(netlist: &Netlist) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut control_used = vec![false; netlist.control_count()];
    let mut net_used = vec![false; netlist.net_count()];
    for (_, a, b, g) in netlist.devices() {
        control_used[g.index()] = true;
        net_used[a.index()] = true;
        net_used[b.index()] = true;
    }
    for (i, used) in control_used.iter().enumerate() {
        if !used {
            findings.push(Finding::UnusedControl {
                name: netlist.controls[i].name.clone(),
            });
        }
    }
    for (i, used) in net_used.iter().enumerate() {
        if !used {
            findings.push(Finding::DanglingNet {
                name: netlist.nets[i].clone(),
            });
        }
    }
    findings
}

/// Checks that **at most one** device of `group` conducts under the current
/// bindings of `sim`. Returns the conducting subset on success so callers can
/// assert stronger properties (e.g. "exactly one").
pub fn check_exclusive_on(
    sim: &mut SwitchSim<'_>,
    group: &[DeviceId],
) -> Result<Vec<DeviceId>, NetlistError> {
    let report = sim.evaluate()?;
    let on: Vec<DeviceId> = group
        .iter()
        .copied()
        .filter(|d| report.on_devices.contains(d))
        .collect();
    Ok(on)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ControlKind, DeviceKind, Netlist};
    use mcfpga_device::TechParams;

    #[test]
    fn lint_flags_unused_and_dangling() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let _lonely = nl.add_net("lonely");
        let en = nl.add_control("en", ControlKind::Binary);
        let _dead = nl.add_control("dead", ControlKind::Binary);
        nl.add_device(DeviceKind::NmosPass, a, b, en, None).unwrap();
        let findings = lint(&nl);
        assert!(findings.contains(&Finding::UnusedControl {
            name: "dead".into()
        }));
        assert!(findings.contains(&Finding::DanglingNet {
            name: "lonely".into()
        }));
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn lint_clean_netlist() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let en = nl.add_control("en", ControlKind::Binary);
        nl.add_device(DeviceKind::NmosPass, a, b, en, None).unwrap();
        assert!(lint(&nl).is_empty());
    }

    #[test]
    fn exclusive_on_reports_conducting_subset() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let e1 = nl.add_control("e1", ControlKind::Binary);
        let e2 = nl.add_control("e2", ControlKind::Binary);
        let d1 = nl.add_device(DeviceKind::NmosPass, a, b, e1, None).unwrap();
        let d2 = nl.add_device(DeviceKind::NmosPass, a, b, e2, None).unwrap();
        let mut sim = SwitchSim::new(&nl, TechParams::default());
        sim.bind_bin(e1, true).unwrap();
        sim.bind_bin(e2, false).unwrap();
        let on = check_exclusive_on(&mut sim, &[d1, d2]).unwrap();
        assert_eq!(on, vec![d1]);
        sim.bind_bin(e2, true).unwrap();
        let on = check_exclusive_on(&mut sim, &[d1, d2]).unwrap();
        assert_eq!(on.len(), 2, "violation is visible to the caller");
    }
}
