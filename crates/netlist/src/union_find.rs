//! Union-find (disjoint set union) with path halving and union by size.
//!
//! The conducting subnetwork of a pass-transistor circuit is an equivalence
//! relation over nets; union-find gives near-O(1) merged-component queries
//! for the simulator's inner loop.

/// Disjoint-set forest over `0..len`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `len` singleton components.
    #[must_use]
    pub fn new(len: usize) -> Self {
        UnionFind {
            parent: (0..len as u32).collect(),
            size: vec![1; len],
            components: len,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of components.
    #[must_use]
    pub fn components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s component (path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x as usize
    }

    /// Merges the components of `a` and `b`; returns true if they were
    /// separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Are `a` and `b` in the same component?
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the component containing `x`.
    pub fn component_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.components(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.component_size(2), 1);
    }

    #[test]
    fn union_and_transitivity() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.components(), 3);
        assert_eq!(uf.component_size(1), 3);
    }

    #[test]
    fn symmetric() {
        let mut uf = UnionFind::new(3);
        uf.union(2, 0);
        assert!(uf.connected(0, 2));
        assert!(uf.connected(2, 0));
    }

    #[test]
    fn large_chain() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.components(), 1);
        assert!(uf.connected(0, n - 1));
    }
}
