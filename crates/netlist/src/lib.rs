//! # mcfpga-netlist — structural netlists and a switch-level simulator
//!
//! The paper's circuits (Figs. 2, 5, 6, 8, 9, 10, 11) are pass-transistor
//! networks: configuration logic drives transistor *gates*, and the routed
//! data signal flows through the *channels* of whatever devices conduct.
//! This crate provides:
//!
//! * [`graph::Netlist`] — nets, devices (pass transistors, transmission
//!   gates, FGMOS functional pass gates), named control inputs (binary wires
//!   and MV rails), and hierarchical region tags for per-block transistor
//!   accounting.
//! * [`simulate::SwitchSim`] — switch-level evaluation: bind control values,
//!   determine the ON set, union-find the conducting components, propagate
//!   driven logic values, and report connectivity, floating nets and
//!   contention.
//! * [`validate`] — structural checks (undriven gates, dangling nets,
//!   exclusive-ON assertions over device groups).
//! * [`event`] — a small time-stepped engine that replays a schedule of
//!   control changes and records waveforms (used for the Fig. 7
//!   reproduction and context-switch latency measurements).
//!
//! The simulator is deliberately *strength-free* (no charge sharing): the
//! architecture under study never relies on ratioed or dynamic behaviour,
//! so conduction is a clean equivalence relation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod graph;
pub mod render;
pub mod simulate;
pub mod union_find;
pub mod validate;

pub use graph::{ControlId, ControlKind, DeviceId, DeviceKind, NetId, Netlist, RegionId};
pub use simulate::{Contention, SimReport, SwitchSim};
pub use union_find::UnionFind;

/// Errors from netlist construction and simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// Referenced a net that does not exist.
    BadNet(u32),
    /// Referenced a device that does not exist.
    BadDevice(u32),
    /// Referenced a control input that does not exist.
    BadControl(u32),
    /// A control was bound with the wrong kind of value (binary vs MV).
    ControlKindMismatch {
        /// The control's index.
        control: u32,
        /// What the netlist expected.
        expected: &'static str,
    },
    /// Simulation ran with at least one unbound control input.
    UnboundControl {
        /// Name of the unbound control.
        name: String,
    },
    /// An FGMOS device was evaluated before being programmed.
    UnprogrammedDevice(u32),
}

impl std::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetlistError::BadNet(i) => write!(f, "unknown net id {i}"),
            NetlistError::BadDevice(i) => write!(f, "unknown device id {i}"),
            NetlistError::BadControl(i) => write!(f, "unknown control id {i}"),
            NetlistError::ControlKindMismatch { control, expected } => {
                write!(f, "control {control} expected a {expected} value")
            }
            NetlistError::UnboundControl { name } => {
                write!(f, "control '{name}' unbound at simulation time")
            }
            NetlistError::UnprogrammedDevice(i) => {
                write!(f, "FGMOS device {i} evaluated before programming")
            }
        }
    }
}

impl std::error::Error for NetlistError {}
