//! Time-stepped replay of control schedules.
//!
//! Context switching is a *broadcast* event: the CSS generator changes the
//! shared control signals and every MC-switch re-evaluates. This module
//! replays a schedule of control changes against a netlist and records, per
//! step, the connectivity of watched net pairs — producing the data behind
//! the Fig. 7-style waveforms and the context-switch latency model.

use crate::graph::{ControlId, NetId, Netlist};
use crate::simulate::SwitchSim;
use crate::NetlistError;
use mcfpga_device::TechParams;
use mcfpga_mvl::Level;

/// One control change applied at a step boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlEvent {
    /// Set a binary control.
    Bin(ControlId, bool),
    /// Set an MV rail.
    Mv(ControlId, Level),
}

/// A step = a batch of simultaneous control changes (one context switch).
#[derive(Debug, Clone, Default)]
pub struct Step {
    /// Control changes applied at this step.
    pub events: Vec<ControlEvent>,
}

/// Recorded connectivity of one watched pair across all steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairTrace {
    /// The watched pair.
    pub pair: (NetId, NetId),
    /// Connectivity at each step.
    pub connected: Vec<bool>,
}

/// Replays `steps` against `netlist`, watching `pairs`.
///
/// Returns one [`PairTrace`] per watched pair. All controls referenced by
/// devices must be bound by the first step (or earlier via `initial`).
pub fn replay(
    netlist: &Netlist,
    params: TechParams,
    initial: &[ControlEvent],
    steps: &[Step],
    pairs: &[(NetId, NetId)],
) -> Result<Vec<PairTrace>, NetlistError> {
    let mut sim = SwitchSim::new(netlist, params);
    for ev in initial {
        apply(&mut sim, ev)?;
    }
    let mut traces: Vec<PairTrace> = pairs
        .iter()
        .map(|&pair| PairTrace {
            pair,
            connected: Vec::with_capacity(steps.len()),
        })
        .collect();
    for step in steps {
        for ev in &step.events {
            apply(&mut sim, ev)?;
        }
        sim.evaluate()?;
        for t in traces.iter_mut() {
            let c = sim.connected(t.pair.0, t.pair.1);
            t.connected.push(c);
        }
    }
    Ok(traces)
}

fn apply(sim: &mut SwitchSim<'_>, ev: &ControlEvent) -> Result<(), NetlistError> {
    match ev {
        ControlEvent::Bin(c, v) => sim.bind_bin(*c, *v),
        ControlEvent::Mv(c, v) => sim.bind_mv(*c, *v),
    }
}

/// Counts, across a replay, how many watched pairs changed connectivity at
/// each step — a proxy for switching activity (dynamic power) during context
/// switches.
#[must_use]
#[allow(clippy::needless_range_loop)] // index couples two arrays
pub fn toggle_counts(traces: &[PairTrace]) -> Vec<usize> {
    if traces.is_empty() {
        return Vec::new();
    }
    let steps = traces[0].connected.len();
    let mut counts = vec![0usize; steps];
    for t in traces {
        for s in 1..steps {
            if t.connected[s] != t.connected[s - 1] {
                counts[s] += 1;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ControlKind, DeviceKind};

    #[test]
    fn replay_records_connectivity_waveform() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let en = nl.add_control("en", ControlKind::Binary);
        nl.add_device(DeviceKind::NmosPass, a, b, en, None).unwrap();
        let steps: Vec<Step> = [true, false, true, true]
            .iter()
            .map(|&v| Step {
                events: vec![ControlEvent::Bin(en, v)],
            })
            .collect();
        let traces = replay(&nl, TechParams::default(), &[], &steps, &[(a, b)]).unwrap();
        assert_eq!(traces[0].connected, vec![true, false, true, true]);
    }

    #[test]
    fn toggle_counting() {
        let traces = vec![
            PairTrace {
                pair: (NetId(0), NetId(1)),
                connected: vec![true, false, false, true],
            },
            PairTrace {
                pair: (NetId(0), NetId(1)),
                connected: vec![false, false, true, true],
            },
        ];
        assert_eq!(toggle_counts(&traces), vec![0, 1, 1, 1]);
        assert!(toggle_counts(&[]).is_empty());
    }

    #[test]
    fn replay_with_initial_bindings() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let en = nl.add_control("en", ControlKind::Binary);
        let en2 = nl.add_control("en2", ControlKind::Binary);
        nl.add_device(DeviceKind::NmosPass, a, b, en, None).unwrap();
        nl.add_device(DeviceKind::NmosPass, a, b, en2, None)
            .unwrap();
        // en2 held low for the whole replay via initial bindings
        let steps: Vec<Step> = [false, true]
            .iter()
            .map(|&v| Step {
                events: vec![ControlEvent::Bin(en, v)],
            })
            .collect();
        let traces = replay(
            &nl,
            TechParams::default(),
            &[ControlEvent::Bin(en2, false)],
            &steps,
            &[(a, b)],
        )
        .unwrap();
        assert_eq!(traces[0].connected, vec![false, true]);
    }
}
