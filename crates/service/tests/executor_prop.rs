//! Property test of the work-stealing pool's exactly-once contract under
//! adversarial skew: whatever the task count, pool width, per-task
//! runtime spread, and affinity pattern (including every task pinned to
//! one worker's injector segment), `run_owned` returns **every task's
//! result exactly once, in task order**, and the pool's own counters
//! agree — the executed-per-worker histogram sums to the task total.

use mcfpga_service::{
    ParallelExecutor, SPAWN_EVENTS_METRIC, TASKS_EXECUTED_METRIC, TASKS_TOTAL_METRIC,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Affinity patterns chosen to stress the stealing paths differently:
/// all-on-one-segment forces every other worker to steal, round-robin
/// never requires a steal, and the hash spread lands unevenly.
fn affinity(pattern: u8, idx: usize, workers: usize) -> usize {
    match pattern % 3 {
        0 => 0,                                   // fully skewed
        1 => idx % workers,                       // perfectly spread
        _ => (idx.wrapping_mul(0x9E37_79B9)) % 7, // lumpy
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_task_runs_exactly_once_in_order(
        threads in 2usize..9,
        tasks in 0usize..120,
        pattern in any::<u8>(),
        spin in 0u32..200,
    ) {
        let mut pool = ParallelExecutor::new(threads);
        // two rounds on the same pool: reuse must not leak or re-run work
        for round in 0..2u64 {
            let input: Vec<(usize, u64)> = (0..tasks)
                .map(|i| (affinity(pattern, i, threads), round * 10_000 + i as u64))
                .collect();
            let expect: Vec<u64> = input.iter().map(|(_, v)| v * 3 + 1).collect();
            let got = pool.run_owned(
                input,
                Arc::new(move |v: u64| {
                    // uneven busy-work widens the completion-order spread
                    for _ in 0..(v % u64::from(spin + 1)) {
                        std::hint::spin_loop();
                    }
                    v * 3 + 1
                }),
            );
            prop_assert_eq!(&got, &expect, "results must land in task order");
        }
        let registry = pool.registry();
        prop_assert_eq!(
            registry.counter_value(TASKS_TOTAL_METRIC),
            Some(2 * tasks as u64)
        );
        let executed: u64 = registry
            .counter_cells(TASKS_EXECUTED_METRIC)
            .expect("executed histogram registered")
            .iter()
            .sum();
        let pooled = if tasks > 1 { 2 * tasks as u64 } else { 0 };
        prop_assert_eq!(
            executed, pooled,
            "worker histogram must account for every pooled task"
        );
        prop_assert!(
            registry.counter_value(SPAWN_EVENTS_METRIC) <= Some(1),
            "one pool serves both rounds"
        );
    }
}
