//! Deadline-boundary and configuration edge cases of the QoS front-end,
//! isolated from the main behavioral suite (`frontend_qos.rs`) so each
//! boundary is pinned by exactly one small test:
//!
//! * `deadline == now` is *alive*: it flushes immediately, never expires;
//! * `deadline < now` at the offer is dead on arrival: typed rejection;
//! * a pump over empty streams is a pure no-op;
//! * `set_lane_width` is refused while front-end queues are non-empty —
//!   from both the front-end's own guard and the service's.

use mcfpga_device::TechParams;
use mcfpga_fabric::netlist_ir::generators;
use mcfpga_fabric::FabricParams;
use mcfpga_service::frontend::{
    FrontendDriver, FrontendError, FrontendEvent, RejectReason, StreamPolicy,
};
use mcfpga_service::{ShardedService, TenantId};

fn frontend(lanes: usize) -> (FrontendDriver, TenantId) {
    let svc = ShardedService::new(
        1,
        FabricParams {
            width: 5,
            height: 5,
            channel_width: 3,
            ..FabricParams::default()
        },
        TechParams::default(),
    )
    .expect("service");
    let mut fe = FrontendDriver::new(svc);
    fe.set_lane_width(lanes).expect("queues are empty");
    let t = fe
        .admit("wire", &generators::wire_lanes(1).unwrap())
        .expect("admit");
    (fe, t)
}

#[test]
fn deadline_equal_to_now_flushes_immediately() {
    let (mut fe, t) = frontend(8);
    fe.open_stream(t, StreamPolicy::latency_sensitive(8, 100))
        .unwrap();
    fe.advance(42);
    // an explicit deadline of exactly `now`: the request has zero slack,
    // so the very next pump must flush it — on its deadline, not past it
    let ticket = fe.offer(t, &[("in0", true)], Some(42)).expect("admitted");
    let events = fe.pump().expect("pump");
    match &events[..] {
        [FrontendEvent::Completed {
            ticket: tk,
            latency,
            flushed,
            outputs,
            ..
        }] => {
            assert_eq!(*tk, ticket);
            assert_eq!(*latency, 0, "zero-slack requests serve with zero latency");
            assert_eq!(*flushed, 42, "flushed exactly on the deadline cycle");
            assert!(outputs[0].1);
        }
        other => panic!("expected one immediate completion, got {other:?}"),
    }
    assert_eq!(fe.frontend_usage(t).unwrap().expired, 0);
}

#[test]
fn deadline_equal_to_now_is_not_expired_by_the_same_pump() {
    // the boundary from the expiry side: expiry is strictly `< now`, so
    // a deadline-of-now request on a *throughput* stream (which never
    // early-flushes) survives the pump still queued
    let (mut fe, t) = frontend(8);
    fe.open_stream(t, StreamPolicy::throughput(8)).unwrap();
    fe.advance(7);
    fe.offer(t, &[("in0", true)], Some(7)).expect("admitted");
    assert!(fe.pump().unwrap().is_empty(), "alive and below batch width");
    assert_eq!(fe.queued_requests(), 1);
    // one cycle later it is overdue and expires with the typed event
    fe.advance(1);
    let events = fe.pump().unwrap();
    assert!(
        matches!(
            events[..],
            [FrontendEvent::Expired {
                deadline: 7,
                now: 8,
                ..
            }]
        ),
        "got {events:?}"
    );
}

#[test]
fn deadline_in_the_past_rejects_with_typed_error() {
    let (mut fe, t) = frontend(8);
    fe.open_stream(t, StreamPolicy::latency_sensitive(8, 100))
        .unwrap();
    fe.advance(10);
    let err = fe.offer(t, &[("in0", true)], Some(9)).unwrap_err();
    assert_eq!(
        err,
        FrontendError::Rejected {
            tenant: t,
            reason: RejectReason::DeadlinePassed {
                deadline: 9,
                now: 10
            },
        }
    );
    // rejection left no trace in the queue, and the counter is typed too
    assert_eq!(fe.queued_requests(), 0);
    let u = fe.frontend_usage(t).unwrap();
    assert_eq!(u.rejected_deadline, 1);
    assert_eq!(u.admitted, 0);
    // a default-budget offer at the same instant is fine (budget ≥ 0
    // always lands at or after now)
    fe.offer(t, &[("in0", true)], None)
        .expect("budget deadline is alive");
}

#[test]
fn empty_queue_pump_is_a_no_op() {
    let (mut fe, t) = frontend(8);
    fe.open_stream(t, StreamPolicy::latency_sensitive(8, 5))
        .unwrap();
    let before_passes = fe.service().usage(t).unwrap().passes;
    let before_billing = fe.service().billing_report();
    let before_fe_billing = fe.frontend_billing_report();
    for _ in 0..10 {
        assert!(
            fe.pump().expect("pump").is_empty(),
            "no events from nothing"
        );
        fe.advance(1);
    }
    // no service pass ran, no billing moved, no clock-driven side effects
    assert_eq!(fe.service().usage(t).unwrap().passes, before_passes);
    assert_eq!(fe.service().billing_report(), before_billing);
    assert_eq!(fe.frontend_billing_report(), before_fe_billing);
    assert_eq!(fe.service().pending_requests(), 0);
}

#[test]
fn set_lane_width_refused_while_frontend_queues_nonempty() {
    let (mut fe, t) = frontend(8);
    fe.open_stream(t, StreamPolicy::throughput(4)).unwrap();
    fe.offer(t, &[("in0", true)], None).unwrap();
    fe.offer(t, &[("in0", false)], None).unwrap();
    let err = fe.set_lane_width(64).unwrap_err();
    assert_eq!(err, FrontendError::QueuesNotEmpty { queued: 2 });
    assert_eq!(fe.service().lane_width(), 8, "refusal changed nothing");
    // draining the queues (here: expiring is not possible — no
    // deadlines — so flush) re-enables the knob
    let events = fe.flush_all().unwrap();
    assert_eq!(events.len(), 2);
    fe.set_lane_width(64).expect("empty front-end queues");
    assert_eq!(fe.service().lane_width(), 64);
}

#[test]
fn set_lane_width_also_guarded_by_the_service_queue() {
    // requests already *flushed into the service* (a faulted slot keeps
    // them there) block the width change at the service layer even when
    // the front-end's own queues are empty
    let (mut fe, t) = frontend(8);
    fe.open_stream(t, StreamPolicy::latency_sensitive(8, 100))
        .unwrap();
    fe.offer(t, &[("in0", true)], None).unwrap();
    fe.service_mut().inject_plane_fault(t).unwrap();
    fe.pump().unwrap(); // flushes into the service; the pass faults
    assert_eq!(fe.queued_requests(), 0, "front-end queue is empty");
    assert_eq!(fe.inflight_requests(), 1, "…but the service still holds it");
    assert!(
        matches!(fe.set_lane_width(64), Err(FrontendError::Service(_))),
        "the service's own guard refuses"
    );
    // repair, serve, and the knob works again
    fe.service_mut().repair_plane(t).unwrap();
    fe.take_faults();
    let events = fe.pump().unwrap();
    assert_eq!(events.len(), 1);
    fe.set_lane_width(64).expect("all queues empty now");
}

#[test]
fn zero_deadline_budget_means_flush_every_pump() {
    // budget 0: every request's deadline is its arrival cycle — the
    // degenerate latency-sensitive stream that never batches
    let (mut fe, t) = frontend(8);
    fe.open_stream(t, StreamPolicy::latency_sensitive(8, 0))
        .unwrap();
    for i in 0..3 {
        fe.offer(t, &[("in0", i % 2 == 0)], None).unwrap();
        let events = fe.pump().unwrap();
        assert_eq!(events.len(), 1, "each request flushes on its own pump");
        assert!(matches!(
            events[0],
            FrontendEvent::Completed { latency: 0, .. }
        ));
        fe.advance(5);
    }
    assert_eq!(
        fe.service().usage(t).unwrap().passes,
        3,
        "zero batching: one pass per request"
    );
}
