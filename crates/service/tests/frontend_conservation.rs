//! Property test of the QoS front-end's conservation contract, extending
//! the queue-conservation pattern of `stress_replay.rs` to admission
//! control: on random seeded traffic,
//!
//! 1. every **admitted** request resolves **exactly once** — completed
//!    XOR expired XOR failed — and every refused offer resolves zero
//!    times (backpressure/rejection enqueue nothing);
//! 2. the responses of the surviving (completed) requests are
//!    **bit-for-bit identical** to a QoS-free reference run that submits
//!    exactly those requests straight into a plain `ShardedService` —
//!    queueing, early partial flushes, rate limiting, and expiry may
//!    decide *which* requests get served and *when*, but never change
//!    *what* a served request computes.

use mcfpga_device::TechParams;
use mcfpga_fabric::netlist_ir::{generators, LogicNetlist};
use mcfpga_fabric::FabricParams;
use mcfpga_service::frontend::{FrontendDriver, FrontendEvent, RateLimit, StreamPolicy, Ticket};
use mcfpga_service::ShardedService;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// A completed ticket with its demuxed outputs, in completion order.
type CompletedOutputs = Vec<(Ticket, Vec<(Arc<str>, bool)>)>;
/// Combinational designs only: lanes are independent, so a request's
/// outputs depend on nothing but its own inputs — the precondition for
/// comparing against a reference run that serves a *subset* in
/// different batches. (Stateful `reg:*` tenants are exercised by the
/// chaos replay, not here.)
fn designs() -> Vec<(&'static str, LogicNetlist)> {
    vec![
        ("wire", generators::wire_lanes(1).unwrap()),
        ("parity3", generators::parity_tree(3).unwrap()),
        ("cmp2", generators::equality_comparator(2).unwrap()),
        ("pop4", generators::popcount4().unwrap()),
    ]
}

/// Input names of a netlist, declaration order.
fn input_names(nl: &LogicNetlist) -> Vec<String> {
    nl.input_ids()
        .into_iter()
        .map(|id| match nl.node(id) {
            mcfpga_fabric::netlist_ir::Node::Input { name } => name.clone(),
            _ => unreachable!("input ids are inputs"),
        })
        .collect()
}

fn service(shards: usize, lanes: usize) -> ShardedService {
    let mut svc = ShardedService::new(
        shards,
        FabricParams {
            width: 5,
            height: 5,
            channel_width: 3,
            ..FabricParams::default()
        },
        TechParams::default(),
    )
    .expect("service");
    svc.set_lane_width(lanes).expect("no pending requests");
    svc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn admitted_requests_resolve_exactly_once_and_match_reference(
        seed in any::<u64>(),
        lanes in prop::sample::select(vec![2usize, 4, 8, 16]),
        steps in 60u64..220,
        offer_density in 1u32..4,
        pump_every in 1u64..4,
        chaos in any::<bool>(),
    ) {
        let designs = designs();
        let mut fe = FrontendDriver::new(service(2, lanes));
        let tenants: Vec<_> = designs
            .iter()
            .map(|(name, nl)| fe.admit(name, nl).unwrap())
            .collect();
        let names: Vec<Vec<String>> = designs.iter().map(|(_, nl)| input_names(nl)).collect();
        // a deliberately adversarial policy mix: tight and loose
        // deadlines, tiny and roomy queues, one rate-limited stream
        let policies = [
            StreamPolicy::latency_sensitive(3, 4),
            StreamPolicy::throughput(6),
            StreamPolicy::latency_sensitive(8, 12)
                .with_rate(RateLimit::per_cycles(1, 3, 2)),
            StreamPolicy::throughput(2),
        ];
        for (i, &t) in tenants.iter().enumerate() {
            fe.open_stream(t, policies[i % policies.len()]).unwrap();
        }

        let mut rng = StdRng::seed_from_u64(seed);
        // per-ticket ground truth: which tenant, which input payload
        let mut payloads: HashMap<Ticket, (usize, Vec<(String, bool)>)> = HashMap::new();
        // per-ticket resolution count — the conservation ledger
        let mut resolved: HashMap<Ticket, u32> = HashMap::new();
        let mut completed_outputs: CompletedOutputs = Vec::new();
        let mut refusals = 0usize;
        let mut faulted: Option<usize> = None;

        let absorb = |events: Vec<FrontendEvent>,
                          resolved: &mut HashMap<Ticket, u32>,
                          completed: &mut CompletedOutputs| {
            for e in events {
                match e {
                    FrontendEvent::Completed { ticket, outputs, .. } => {
                        *resolved.entry(ticket).or_insert(0) += 1;
                        completed.push((ticket, outputs));
                    }
                    FrontendEvent::Expired { ticket, deadline, now, .. } => {
                        *resolved.entry(ticket).or_insert(0) += 1;
                        prop_assert!(deadline < now, "expiry is strictly overdue");
                    }
                    FrontendEvent::Failed { ticket, .. } => {
                        *resolved.entry(ticket).or_insert(0) += 1;
                    }
                    FrontendEvent::PassThrough { .. } => {
                        prop_assert!(false, "no direct submissions in this test");
                    }
                }
            }
            Ok(())
        };

        for step in 0..steps {
            for _ in 0..offer_density {
                let which = rng.random_range(0..tenants.len());
                let scalar: Vec<(String, bool)> = names[which]
                    .iter()
                    .map(|n| (n.clone(), rng.random_bool()))
                    .collect();
                let refs: Vec<(&str, bool)> =
                    scalar.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                // a third of offers carry an explicit (sometimes very
                // tight) deadline instead of the policy default
                let deadline = if rng.random_range(0..3u32) == 0 {
                    Some(fe.now() + rng.random_range(0..6u64))
                } else {
                    None
                };
                match fe.offer(tenants[which], &refs, deadline) {
                    Ok(ticket) => {
                        payloads.insert(ticket, (which, scalar));
                    }
                    Err(_) => refusals += 1,
                }
            }
            // chaos: poison one tenant's plane for a window mid-run so
            // the retry path is part of the conserved behavior
            if chaos {
                if step == steps / 3 && faulted.is_none() {
                    let which = rng.random_range(0..tenants.len());
                    fe.service_mut().inject_plane_fault(tenants[which]).unwrap();
                    faulted = Some(which);
                }
                if step == (2 * steps) / 3 {
                    if let Some(which) = faulted.take() {
                        fe.service_mut().repair_plane(tenants[which]).unwrap();
                    }
                }
            }
            if step % pump_every == 0 {
                let events = fe.pump().unwrap();
                fe.take_faults();
                absorb(events, &mut resolved, &mut completed_outputs)?;
            }
            fe.advance(1);
        }
        if let Some(which) = faulted.take() {
            fe.service_mut().repair_plane(tenants[which]).unwrap();
        }
        let events = fe.flush_all().unwrap();
        fe.take_faults();
        absorb(events, &mut resolved, &mut completed_outputs)?;

        // -- conservation: admitted XOR'd into exactly one resolution --
        prop_assert_eq!(fe.queued_requests(), 0, "flush_all left work queued");
        prop_assert_eq!(fe.inflight_requests(), 0, "flush_all left work in flight");
        for (ticket, count) in &resolved {
            prop_assert_eq!(
                *count, 1u32,
                "ticket {} resolved {} times", ticket, count
            );
            prop_assert!(
                payloads.contains_key(ticket),
                "resolved a ticket that was never admitted: {}", ticket
            );
        }
        prop_assert_eq!(
            resolved.len(),
            payloads.len(),
            "every admitted ticket must resolve (admitted {}, resolved {})",
            payloads.len(),
            resolved.len()
        );
        // the per-stream counters tell the same story in aggregate
        let mut usage_admitted = 0;
        let mut usage_resolved = 0;
        let mut usage_rejected = 0;
        for &t in &tenants {
            let u = fe.frontend_usage(t).unwrap();
            usage_admitted += u.admitted;
            usage_resolved += u.resolved();
            usage_rejected += u.rejected();
        }
        prop_assert_eq!(usage_admitted, payloads.len());
        prop_assert_eq!(usage_resolved, payloads.len());
        prop_assert_eq!(usage_rejected, refusals);

        // -- bit-identity against a QoS-free reference run --
        // replay exactly the surviving requests, in completion order, on
        // a plain service with no front-end, then compare every output
        let mut reference = service(2, lanes);
        let ref_tenants: Vec<_> = designs
            .iter()
            .map(|(name, nl)| reference.admit(name, nl).unwrap())
            .collect();
        let mut id_to_ticket = HashMap::new();
        for (ticket, _) in &completed_outputs {
            let (which, scalar) = &payloads[ticket];
            let refs: Vec<(&str, bool)> =
                scalar.iter().map(|(n, v)| (n.as_str(), *v)).collect();
            let id = reference.submit(ref_tenants[*which], &refs).unwrap();
            id_to_ticket.insert(id, *ticket);
            // drain in submission chunks so huge cases can't overflow a
            // tiny reference queue partition
            if id_to_ticket.len() % 2 == 0 {
                for resp in reference.drain().unwrap() {
                    let ticket = id_to_ticket[&resp.request];
                    let qos = completed_outputs
                        .iter()
                        .find(|(t, _)| *t == ticket)
                        .map(|(_, o)| o.clone())
                        .unwrap();
                    prop_assert_eq!(
                        &qos, &resp.outputs,
                        "QoS-served outputs differ from the reference for {}", ticket
                    );
                }
            }
        }
        for resp in reference.drain().unwrap() {
            let ticket = id_to_ticket[&resp.request];
            let qos = completed_outputs
                .iter()
                .find(|(t, _)| *t == ticket)
                .map(|(_, o)| o.clone())
                .unwrap();
            prop_assert_eq!(
                &qos, &resp.outputs,
                "QoS-served outputs differ from the reference for {}", ticket
            );
        }
        // the traffic actually exercised the machinery
        prop_assert!(!payloads.is_empty(), "no request was ever admitted");
    }
}
