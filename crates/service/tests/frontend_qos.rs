//! End-to-end tests of the QoS streaming front-end
//! (`mcfpga_service::frontend`): admission control ordering, typed
//! backpressure and rejection errors, token-bucket rate limits,
//! deadline-driven early partial flushes vs. lane-full throughput
//! batching, expiry semantics, fault retry, pass-through responses,
//! billing counters, and bit-for-bit determinism of the whole event
//! stream across executor thread widths.
//!
//! Everything runs on the virtual clock — no test reads wall time.

use mcfpga_device::TechParams;
use mcfpga_fabric::netlist_ir::generators;
use mcfpga_fabric::FabricParams;
use mcfpga_service::frontend::{
    FrontendDriver, FrontendError, FrontendEvent, QosClass, RateLimit, RejectReason, StreamPolicy,
    Ticket,
};
use mcfpga_service::{ServiceError, ShardedService, TenantId};

/// A small fabric so routing/compilation stays fast; identical to the
/// one the integration and stress suites use.
fn service(shards: usize) -> ShardedService {
    ShardedService::new(
        shards,
        FabricParams {
            width: 5,
            height: 5,
            channel_width: 3,
            ..FabricParams::default()
        },
        TechParams::default(),
    )
    .expect("service")
}

/// A front-end over a fresh service with `shards` shards and lane width
/// `lanes` (narrow lanes keep batch-fill tests short).
fn frontend(shards: usize, lanes: usize) -> FrontendDriver {
    let mut fe = FrontendDriver::new(service(shards));
    fe.set_lane_width(lanes).expect("queues are empty");
    fe
}

/// Admits a 1-lane wire design (input `in0`, output `out0`) — the
/// simplest request payload: out0 == in0.
fn admit_wire(fe: &mut FrontendDriver) -> TenantId {
    fe.admit("wire", &generators::wire_lanes(1).unwrap())
        .expect("admit")
}

/// Offers `in0 = value` on `tenant`, panicking on refusal.
fn offer_ok(
    fe: &mut FrontendDriver,
    tenant: TenantId,
    value: bool,
    deadline: Option<u64>,
) -> Ticket {
    fe.offer(tenant, &[("in0", value)], deadline)
        .expect("offer")
}

/// The completions in `events`, as `(ticket, out0, latency, flushed)`.
fn completions(events: &[FrontendEvent]) -> Vec<(Ticket, bool, u64, u64)> {
    events
        .iter()
        .filter_map(|e| match e {
            FrontendEvent::Completed {
                ticket,
                outputs,
                latency,
                flushed,
                ..
            } => Some((*ticket, outputs[0].1, *latency, *flushed)),
            _ => None,
        })
        .collect()
}

/// Nearest-rank percentile (p in [0, 100]) of a latency sample.
fn percentile(samples: &mut [u64], p: f64) -> u64 {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

// ---------------------------------------------------------------------
// stream lifecycle & policy validation
// ---------------------------------------------------------------------

#[test]
fn open_stream_requires_known_tenant_and_refuses_double_open() {
    // a tenant id from a *different* service's registry: structurally
    // valid, never issued here (this registry is empty)
    let ghost = {
        let mut other = FrontendDriver::new(service(1));
        admit_wire(&mut other)
    };
    let mut fe = frontend(1, 8);
    match fe.open_stream(ghost, StreamPolicy::throughput(4)) {
        Err(FrontendError::Service(ServiceError::UnknownTenant(id))) => {
            assert_eq!(id, ghost.index());
        }
        other => panic!("expected UnknownTenant, got {other:?}"),
    }
    // double-open is refused with a typed error
    let t = admit_wire(&mut fe);
    fe.open_stream(t, StreamPolicy::throughput(4)).unwrap();
    assert_eq!(
        fe.open_stream(t, StreamPolicy::throughput(4)),
        Err(FrontendError::StreamExists(t))
    );
}

#[test]
fn open_stream_rejects_bad_policies() {
    let mut fe = frontend(1, 8);
    let t = admit_wire(&mut fe);
    match fe.open_stream(t, StreamPolicy::throughput(0)) {
        Err(FrontendError::BadPolicy(msg)) => assert!(msg.contains("capacity")),
        other => panic!("expected BadPolicy, got {other:?}"),
    }
    match fe.open_stream(
        t,
        StreamPolicy::throughput(4).with_rate(RateLimit::per_cycles(1, 0, 1)),
    ) {
        Err(FrontendError::BadPolicy(msg)) => assert!(msg.contains("refill")),
        other => panic!("expected BadPolicy, got {other:?}"),
    }
    // the failed opens left no stream behind
    assert!(fe.stream_policy(t).is_none());
    match fe.offer(t, &[("in0", true)], None) {
        Err(FrontendError::NoStream(tenant)) => assert_eq!(tenant, t),
        other => panic!("expected NoStream, got {other:?}"),
    }
}

#[test]
fn stream_policy_is_inspectable() {
    let mut fe = frontend(1, 8);
    let t = admit_wire(&mut fe);
    let policy = StreamPolicy::latency_sensitive(16, 12).with_rate(RateLimit::per_cycles(2, 5, 3));
    fe.open_stream(t, policy).unwrap();
    let seen = fe.stream_policy(t).expect("open stream");
    assert_eq!(seen.class, QosClass::LatencySensitive);
    assert_eq!(seen.capacity, 16);
    assert_eq!(seen.deadline_budget, Some(12));
    assert_eq!(
        seen.rate,
        Some(RateLimit {
            burst: 3,
            refill_num: 2,
            refill_den: 5
        })
    );
    assert_eq!(format!("{}", seen.class), "latency-sensitive");
    assert_eq!(format!("{}", QosClass::Throughput), "throughput");
}

// ---------------------------------------------------------------------
// basic serving: latency-sensitive vs throughput flush timing
// ---------------------------------------------------------------------

#[test]
fn latency_sensitive_single_request_flushes_on_first_pump() {
    let mut fe = frontend(1, 8);
    let t = admit_wire(&mut fe);
    fe.open_stream(t, StreamPolicy::latency_sensitive(8, 10))
        .unwrap();
    let ticket = offer_ok(&mut fe, t, true, None);
    // no observed arrival rate yet → the driver cannot predict when more
    // lanes would arrive, so it flushes the 1-lane partial immediately
    let events = fe.pump().expect("pump");
    let done = completions(&events);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].0, ticket);
    assert!(done[0].1, "wire echoes in0 = true");
    assert_eq!(done[0].2, 0, "served on the arrival cycle");
    assert_eq!(done[0].3, 0, "flushed at virtual cycle 0");
    assert_eq!(fe.queued_requests(), 0);
    assert_eq!(fe.inflight_requests(), 0);
}

#[test]
fn throughput_stream_waits_for_full_batch() {
    let mut fe = frontend(1, 4);
    let t = admit_wire(&mut fe);
    fe.open_stream(t, StreamPolicy::throughput(16)).unwrap();
    for i in 0..3 {
        offer_ok(&mut fe, t, i % 2 == 0, None);
        fe.advance(1);
        let events = fe.pump().expect("pump");
        assert!(
            events.is_empty(),
            "a {}/4-full throughput batch must keep accumulating",
            i + 1
        );
    }
    assert_eq!(fe.queued_requests(), 3);
    // the 4th request fills the lane-width batch → one pass serves all 4
    offer_ok(&mut fe, t, true, None);
    let events = fe.pump().expect("pump");
    let done = completions(&events);
    assert_eq!(done.len(), 4);
    assert_eq!(
        fe.service().usage(t).unwrap().passes,
        1,
        "all four vectors rode one fabric pass"
    );
    // latencies reflect arrival cycles: 3, 2, 1, 0
    assert_eq!(
        done.iter().map(|c| c.2).collect::<Vec<_>>(),
        vec![3, 2, 1, 0]
    );
}

#[test]
fn throughput_batch_is_capped_by_stream_capacity() {
    // capacity 2 < lane width 8: the stream must flush at 2, not wait
    // for an 8-lane fill it can never reach (livelock guard)
    let mut fe = frontend(1, 8);
    let t = admit_wire(&mut fe);
    fe.open_stream(t, StreamPolicy::throughput(2)).unwrap();
    offer_ok(&mut fe, t, true, None);
    assert!(fe.pump().unwrap().is_empty(), "1/2: keeps accumulating");
    offer_ok(&mut fe, t, false, None);
    let done = completions(&fe.pump().unwrap());
    assert_eq!(done.len(), 2, "flushes at min(lane width, capacity)");
}

#[test]
fn latency_sensitive_flushes_partial_batch_before_deadline() {
    let mut fe = frontend(1, 8);
    let t = admit_wire(&mut fe);
    // budget 40 cycles; arrivals every 2 cycles teach the EWMA a gap of 2
    fe.open_stream(t, StreamPolicy::latency_sensitive(64, 40))
        .unwrap();
    let mut tickets = Vec::new();
    let mut completed = Vec::new();
    for _ in 0..4 {
        tickets.push(offer_ok(&mut fe, t, true, None));
        completed.extend(completions(&fe.pump().unwrap()));
        fe.advance(2);
    }
    // the first pump had no rate estimate and flushed immediately; from
    // then on the predicted fill wait (≈ 2 cycles/lane × missing lanes)
    // is far below the 40-cycle budget, so requests keep accumulating
    assert_eq!(completed.len(), 1, "only the estimator-cold first request");
    assert_eq!(fe.queued_requests(), 3);
    // arrivals stop; pump every 2 cycles. Well before the head's
    // deadline the predicted wait for 5 more lanes (≈10 cycles) can no
    // longer fit, and the driver flushes the 3-lane partial batch.
    let mut flush_now = None;
    for _ in 0..40 {
        fe.advance(2);
        let events = fe.pump().unwrap();
        for e in &events {
            assert!(
                matches!(e, FrontendEvent::Completed { .. }),
                "no request may expire: {e:?}"
            );
        }
        let done = completions(&events);
        if !done.is_empty() {
            assert_eq!(done.len(), 3, "the partial batch flushes whole");
            for (_, _, _, flushed) in &done {
                flush_now = Some(*flushed);
            }
            break;
        }
    }
    let flushed = flush_now.expect("partial batch must flush before expiry");
    // head arrived at cycle 2 with budget 40 → absolute deadline 42; an
    // early *partial* flush lands at or before it, and strictly after
    // the arrivals stopped (it waited at least one pump)
    assert!(flushed <= 42, "flushed at {flushed}, deadline 42");
    assert!(flushed > 8, "flush waited for possible arrivals");
    assert_eq!(fe.queued_requests(), 0);
}

#[test]
fn latency_sensitive_head_without_deadline_flushes_immediately() {
    let mut fe = frontend(1, 8);
    let t = admit_wire(&mut fe);
    // no default budget: requests carry no deadline at all
    fe.open_stream(
        t,
        StreamPolicy {
            class: QosClass::LatencySensitive,
            capacity: 8,
            deadline_budget: None,
            rate: None,
        },
    )
    .unwrap();
    // teach the estimator a 1-cycle gap so "unknown rate" can't explain
    // the flush — the deadline-free head itself must force it
    offer_ok(&mut fe, t, true, None);
    fe.pump().unwrap();
    fe.advance(1);
    offer_ok(&mut fe, t, true, None);
    let done = completions(&fe.pump().unwrap());
    assert_eq!(
        done.len(),
        1,
        "a latency-sensitive request with no deadline never waits"
    );
}

// ---------------------------------------------------------------------
// admission control: ordering, backpressure, rejection
// ---------------------------------------------------------------------

#[test]
fn backpressure_is_typed_and_recoverable() {
    let mut fe = frontend(1, 8);
    let t = admit_wire(&mut fe);
    fe.open_stream(t, StreamPolicy::throughput(3)).unwrap();
    for _ in 0..3 {
        offer_ok(&mut fe, t, true, None);
    }
    match fe.offer(t, &[("in0", true)], None) {
        Err(FrontendError::Backpressure {
            tenant,
            queued,
            capacity,
        }) => {
            assert_eq!(tenant, t);
            assert_eq!(queued, 3);
            assert_eq!(capacity, 3);
        }
        other => panic!("expected Backpressure, got {other:?}"),
    }
    // nothing was enqueued by the refused offer
    assert_eq!(fe.queued_requests(), 3);
    // draining the queue re-opens admission
    let done = completions(&fe.flush_all().unwrap());
    assert_eq!(done.len(), 3);
    offer_ok(&mut fe, t, true, None);
    let u = fe.frontend_usage(t).unwrap();
    assert_eq!(u.offered, 5);
    assert_eq!(u.admitted, 4);
    assert_eq!(u.rejected_backpressure, 1);
}

#[test]
fn dead_on_arrival_deadline_rejects_with_typed_error() {
    let mut fe = frontend(1, 8);
    let t = admit_wire(&mut fe);
    fe.open_stream(t, StreamPolicy::latency_sensitive(8, 10))
        .unwrap();
    fe.advance(100);
    match fe.offer(t, &[("in0", true)], Some(99)) {
        Err(FrontendError::Rejected {
            tenant,
            reason: RejectReason::DeadlinePassed { deadline, now },
        }) => {
            assert_eq!(tenant, t);
            assert_eq!(deadline, 99);
            assert_eq!(now, 100);
        }
        other => panic!("expected DeadlinePassed, got {other:?}"),
    }
    let u = fe.frontend_usage(t).unwrap();
    assert_eq!(u.rejected_deadline, 1);
    assert_eq!(u.admitted, 0);
    assert_eq!(fe.queued_requests(), 0);
}

#[test]
fn token_bucket_rejects_and_names_the_retry_time() {
    let mut fe = frontend(1, 8);
    let t = admit_wire(&mut fe);
    // 1 token per 10 cycles, burst 1
    fe.open_stream(
        t,
        StreamPolicy::throughput(8).with_rate(RateLimit::per_cycles(1, 10, 1)),
    )
    .unwrap();
    offer_ok(&mut fe, t, true, None); // spends the burst token
    match fe.offer(t, &[("in0", true)], None) {
        Err(FrontendError::Rejected {
            reason: RejectReason::RateLimited { retry_cycles },
            ..
        }) => assert_eq!(retry_cycles, 10, "a whole refill period away"),
        other => panic!("expected RateLimited, got {other:?}"),
    }
    fe.advance(10);
    offer_ok(&mut fe, t, true, None); // exactly refilled
    let u = fe.frontend_usage(t).unwrap();
    assert_eq!(u.admitted, 2);
    assert_eq!(u.rejected_rate, 1);
    assert_eq!(u.rate_tokens_spent, 2);
}

#[test]
fn fractional_refill_rates_are_integer_exact() {
    let mut fe = frontend(1, 8);
    let t = admit_wire(&mut fe);
    // 3 tokens per 10 cycles (0.3/cycle — inexpressible in integers per
    // cycle, exact in the scaled bucket), burst 1
    fe.open_stream(
        t,
        StreamPolicy::throughput(8).with_rate(RateLimit::per_cycles(3, 10, 1)),
    )
    .unwrap();
    offer_ok(&mut fe, t, true, None);
    match fe.offer(t, &[("in0", true)], None) {
        Err(FrontendError::Rejected {
            reason: RejectReason::RateLimited { retry_cycles },
            ..
        }) => assert_eq!(retry_cycles, 4, "ceil(10 scaled-deficit / 3 per cycle)"),
        other => panic!("expected RateLimited, got {other:?}"),
    }
    // 3 cycles × 3 = 9 scaled < 10: still one cycle short
    fe.advance(3);
    assert!(fe.offer(t, &[("in0", true)], None).is_err());
    fe.advance(1); // 12 scaled, capped at burst 10 — a whole token
    offer_ok(&mut fe, t, true, None);
}

#[test]
fn backpressured_offer_burns_no_token() {
    let mut fe = frontend(1, 8);
    let t = admit_wire(&mut fe);
    // capacity 1 so the second offer backpressures; burst 2 tokens
    fe.open_stream(
        t,
        StreamPolicy::throughput(1).with_rate(RateLimit::per_cycles(1, 1000, 2)),
    )
    .unwrap();
    offer_ok(&mut fe, t, true, None);
    assert!(matches!(
        fe.offer(t, &[("in0", true)], None),
        Err(FrontendError::Backpressure { .. })
    ));
    // the backpressure refusal must not have spent the second token:
    // drain, then the next offer still finds it
    fe.flush_all().unwrap();
    offer_ok(&mut fe, t, true, None);
    let u = fe.frontend_usage(t).unwrap();
    assert_eq!(u.rate_tokens_spent, 2, "only admitted offers spend");
    assert_eq!(u.rejected_backpressure, 1);
    assert_eq!(u.rejected_rate, 0);
}

#[test]
fn default_deadline_budget_applies_and_explicit_deadline_overrides() {
    let mut fe = frontend(1, 8);
    let t = admit_wire(&mut fe);
    fe.open_stream(t, StreamPolicy::latency_sensitive(8, 5))
        .unwrap();
    fe.advance(10);
    // default budget: deadline = 10 + 5 = 15 → expires once now > 15
    offer_ok(&mut fe, t, true, None);
    // explicit deadline 30 overrides the budget
    let explicit = offer_ok(&mut fe, t, false, Some(30));
    // jump past the default deadline but not the explicit one, without
    // pumping in between (so the first request is *still queued* when
    // its deadline passes — the expiry path, not the flush path)
    fe.advance(10); // now = 20
    let events = fe.pump().unwrap();
    let expired: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            FrontendEvent::Expired {
                ticket,
                deadline,
                now,
                ..
            } => Some((*ticket, *deadline, *now)),
            _ => None,
        })
        .collect();
    assert_eq!(expired.len(), 1);
    assert_eq!(expired[0].1, 15, "default budget deadline");
    assert_eq!(expired[0].2, 20);
    // the explicit-deadline request is *not* yet due (the learned
    // arrival rate says more lanes could still fill in time)…
    assert!(completions(&events).is_empty());
    // …but once its own deadline arrives, it flushes exactly on it
    fe.advance(10); // now = 30 == explicit deadline
    let done = completions(&fe.pump().unwrap());
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].0, explicit);
    assert_eq!(done[0].3, 30, "flushed precisely at its deadline");
    let u = fe.frontend_usage(t).unwrap();
    assert_eq!(u.expired, 1);
    assert_eq!(u.completed, 1);
}

// ---------------------------------------------------------------------
// expiry semantics
// ---------------------------------------------------------------------

#[test]
fn queued_requests_expire_with_typed_event_not_silence() {
    let mut fe = frontend(1, 8);
    let t = admit_wire(&mut fe);
    // throughput class: deadlines don't trigger flushes, so an unfilled
    // batch is exactly where expiry must step in
    fe.open_stream(t, StreamPolicy::throughput(8)).unwrap();
    let ticket = fe.offer(t, &[("in0", true)], Some(5)).unwrap();
    fe.advance(5);
    assert!(
        fe.pump().unwrap().is_empty(),
        "deadline == now is not yet overdue, and throughput doesn't flush partials"
    );
    fe.advance(1);
    let events = fe.pump().unwrap();
    assert_eq!(
        events,
        vec![FrontendEvent::Expired {
            ticket,
            tenant: t,
            deadline: 5,
            now: 6,
        }]
    );
    assert_eq!(fe.queued_requests(), 0);
    assert_eq!(fe.frontend_usage(t).unwrap().expired, 1);
    // the expired request never reached the service
    assert_eq!(fe.service().usage(t).unwrap().requests, 0);
}

#[test]
fn expiry_removes_overdue_requests_anywhere_in_the_queue() {
    let mut fe = frontend(1, 8);
    let t = admit_wire(&mut fe);
    fe.open_stream(t, StreamPolicy::throughput(8)).unwrap();
    // head has a far deadline, the middle one is overdue first
    let keep0 = fe.offer(t, &[("in0", true)], Some(100)).unwrap();
    let drop1 = fe.offer(t, &[("in0", false)], Some(3)).unwrap();
    let keep2 = fe.offer(t, &[("in0", true)], Some(100)).unwrap();
    fe.advance(4);
    let events = fe.pump().unwrap();
    assert_eq!(events.len(), 1);
    assert!(
        matches!(&events[0], FrontendEvent::Expired { ticket, .. } if *ticket == drop1),
        "only the overdue middle request expires: {events:?}"
    );
    // the survivors flush (in order) and complete
    let done = completions(&fe.flush_all().unwrap());
    assert_eq!(
        done.iter().map(|c| c.0).collect::<Vec<_>>(),
        vec![keep0, keep2]
    );
}

#[test]
fn completed_deadlined_requests_always_flush_by_their_deadline() {
    // the acceptance invariant: an admitted request either flushes at or
    // before its deadline, or expires with a typed event — never a
    // silent late completion. Stress it with a mixed scripted load.
    let mut fe = frontend(1, 4);
    let t = admit_wire(&mut fe);
    fe.open_stream(t, StreamPolicy::latency_sensitive(32, 7))
        .unwrap();
    let mut events = Vec::new();
    for step in 0u64..200 {
        // irregular arrivals: bursts of 2 every 3 cycles, a lull every 13
        if step % 3 == 0 && step % 13 != 0 {
            for _ in 0..2 {
                let _ = fe.offer(t, &[("in0", step % 2 == 0)], None);
            }
        }
        events.extend(fe.pump().unwrap());
        fe.advance(1);
    }
    events.extend(fe.flush_all().unwrap());
    let mut completed = 0;
    for e in &events {
        match e {
            FrontendEvent::Completed { latency, .. } => {
                completed += 1;
                // flush and completion share a pump, so the flush cycle
                // is arrival + latency; with deadline = arrival + 7,
                // flush-by-deadline is exactly latency <= 7
                assert!(*latency <= 7, "completed past its deadline: {e:?}");
            }
            FrontendEvent::Expired { deadline, now, .. } => {
                assert!(deadline < now, "expiry is strictly past-deadline");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert!(completed > 50, "the load actually served: {completed}");
    let u = fe.frontend_usage(t).unwrap();
    assert_eq!(u.resolved(), u.admitted, "every admitted request resolved");
}

// ---------------------------------------------------------------------
// faults, retries, and pass-through
// ---------------------------------------------------------------------

#[test]
fn faulted_slot_requests_complete_after_repair() {
    let mut fe = frontend(1, 4);
    let t = admit_wire(&mut fe);
    fe.open_stream(t, StreamPolicy::latency_sensitive(8, 50))
        .unwrap();
    let ticket = offer_ok(&mut fe, t, true, None);
    fe.service_mut().inject_plane_fault(t).unwrap();
    let events = fe.pump().unwrap();
    assert!(
        completions(&events).is_empty(),
        "a faulted slot completes nothing: {events:?}"
    );
    let faults = fe.take_faults();
    assert_eq!(faults.len(), 1, "the fault is surfaced, not swallowed");
    // the request stays in the service's queue (in flight from the
    // front-end's point of view), retried every pump until repair
    assert_eq!(fe.inflight_requests(), 1);
    fe.advance(1);
    assert!(completions(&fe.pump().unwrap()).is_empty());
    assert!(
        !fe.take_faults().is_empty(),
        "still faulted, still reported"
    );
    fe.service_mut().repair_plane(t).unwrap();
    fe.advance(1);
    let done = completions(&fe.pump().unwrap());
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].0, ticket);
    assert!(done[0].1);
    assert_eq!(fe.inflight_requests(), 0);
    assert!(fe.take_faults().is_empty());
}

#[test]
fn submit_refusal_surfaces_as_failed_event() {
    // lane width 2: the two offers below fill the batch, so the pump
    // flushes regardless of the learned arrival rate
    let mut fe = frontend(1, 2);
    // a 2-input design so an under-driven request is refusable
    let t = fe
        .admit("parity", &generators::parity_tree(2).unwrap())
        .unwrap();
    fe.open_stream(t, StreamPolicy::latency_sensitive(8, 10))
        .unwrap();
    // x1 missing: admission doesn't inspect payloads (the service owns
    // input binding), so this is admitted and fails at flush time
    let ticket = fe.offer(t, &[("x0", true)], None).unwrap();
    let good = fe.offer(t, &[("x0", true), ("x1", true)], None).unwrap();
    let events = fe.pump().unwrap();
    let failed: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            FrontendEvent::Failed { ticket, error, .. } => Some((*ticket, error.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].0, ticket);
    assert!(matches!(
        failed[0].1,
        ServiceError::MissingInput { ref name } if name == "x1"
    ));
    // the well-formed request behind it still completed this pump
    let done = completions(&events);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].0, good);
    let u = fe.frontend_usage(t).unwrap();
    assert_eq!(u.failed, 1);
    assert_eq!(u.completed, 1);
}

#[test]
fn direct_service_submissions_surface_as_pass_through() {
    let mut fe = frontend(1, 4);
    let t = admit_wire(&mut fe);
    fe.open_stream(t, StreamPolicy::latency_sensitive(8, 10))
        .unwrap();
    // one request through the front-end, one directly on the service
    let ticket = offer_ok(&mut fe, t, true, None);
    let direct = fe.service_mut().submit(t, &[("in0", false)]).unwrap();
    let events = fe.pump().unwrap();
    assert_eq!(events.len(), 2);
    let done = completions(&events);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].0, ticket);
    let pass: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            FrontendEvent::PassThrough { response } => Some(response),
            _ => None,
        })
        .collect();
    assert_eq!(pass.len(), 1);
    assert_eq!(pass[0].request, direct);
    assert!(!pass[0].outputs[0].1, "the direct request's own payload");
}

#[test]
fn flush_all_drains_direct_submissions_without_any_stream() {
    let mut fe = frontend(1, 4);
    let t = admit_wire(&mut fe);
    // no stream at all: the front-end is also usable as a plain driver
    let direct = fe.service_mut().submit(t, &[("in0", true)]).unwrap();
    let events = fe.flush_all().unwrap();
    assert_eq!(events.len(), 1);
    assert!(matches!(
        &events[0],
        FrontendEvent::PassThrough { response } if response.request == direct
    ));
}

// ---------------------------------------------------------------------
// pump/flush mechanics
// ---------------------------------------------------------------------

#[test]
fn empty_pump_is_a_pure_no_op() {
    let mut fe = frontend(2, 8);
    let t = admit_wire(&mut fe);
    fe.open_stream(t, StreamPolicy::latency_sensitive(8, 10))
        .unwrap();
    let passes_before = fe.service().usage(t).unwrap().passes;
    let billing_before = fe.service().billing_report();
    for _ in 0..5 {
        assert!(fe.pump().unwrap().is_empty());
        assert!(fe.flush_all().unwrap().is_empty());
        fe.advance(3);
    }
    assert_eq!(fe.service().usage(t).unwrap().passes, passes_before);
    assert_eq!(fe.service().billing_report(), billing_before);
    assert_eq!(fe.queued_requests(), 0);
    assert_eq!(fe.inflight_requests(), 0);
}

#[test]
fn flush_all_serves_every_queued_request_regardless_of_class() {
    let mut fe = frontend(1, 64);
    let lat = fe
        .admit("wire", &generators::wire_lanes(1).unwrap())
        .unwrap();
    let thr = fe
        .admit("parity", &generators::parity_tree(2).unwrap())
        .unwrap();
    fe.open_stream(lat, StreamPolicy::latency_sensitive(8, 1000))
        .unwrap();
    fe.open_stream(thr, StreamPolicy::throughput(8)).unwrap();
    // teach lat's estimator a slow rate so it would normally wait
    for now in [0u64, 20] {
        let _ = now;
        offer_ok(&mut fe, lat, true, None);
        fe.advance(20);
    }
    fe.offer(thr, &[("x0", true), ("x1", false)], None).unwrap();
    fe.offer(thr, &[("x0", true), ("x1", true)], None).unwrap();
    assert!(fe.queued_requests() > 0);
    let events = fe.flush_all().unwrap();
    assert_eq!(fe.queued_requests(), 0, "flush_all leaves nothing queued");
    assert_eq!(fe.inflight_requests(), 0);
    let done = completions(&events);
    assert_eq!(done.len(), 4);
    // responses carry correct per-tenant payloads: parity(1,0)=1, parity(1,1)=0
    let parity_vals: Vec<bool> = events
        .iter()
        .filter_map(|e| match e {
            FrontendEvent::Completed {
                tenant, outputs, ..
            } if *tenant == thr => Some(outputs[0].1),
            _ => None,
        })
        .collect();
    assert_eq!(parity_vals, vec![true, false]);
}

#[test]
fn set_lane_width_refused_while_streams_hold_requests() {
    let mut fe = frontend(1, 8);
    let t = admit_wire(&mut fe);
    fe.open_stream(t, StreamPolicy::throughput(8)).unwrap();
    offer_ok(&mut fe, t, true, None);
    match fe.set_lane_width(16) {
        Err(FrontendError::QueuesNotEmpty { queued }) => assert_eq!(queued, 1),
        other => panic!("expected QueuesNotEmpty, got {other:?}"),
    }
    assert_eq!(fe.service().lane_width(), 8, "width unchanged on refusal");
    fe.flush_all().unwrap();
    fe.set_lane_width(16)
        .expect("empty queues allow the change");
    assert_eq!(fe.service().lane_width(), 16);
}

#[test]
fn multi_shard_multi_tenant_interleave_demuxes_correctly() {
    let mut fe = frontend(2, 4);
    let wire = fe
        .admit("wire", &generators::wire_lanes(1).unwrap())
        .unwrap();
    let parity = fe
        .admit("parity", &generators::parity_tree(3).unwrap())
        .unwrap();
    let cmp = fe
        .admit("cmp", &generators::equality_comparator(2).unwrap())
        .unwrap();
    fe.open_stream(wire, StreamPolicy::latency_sensitive(8, 100))
        .unwrap();
    fe.open_stream(parity, StreamPolicy::throughput(4)).unwrap();
    fe.open_stream(cmp, StreamPolicy::latency_sensitive(8, 100))
        .unwrap();
    // interleave offers across tenants living on different shards
    offer_ok(&mut fe, wire, true, None);
    for k in 0..4u64 {
        fe.offer(
            parity,
            &[("x0", k & 1 == 1), ("x1", k & 2 == 2), ("x2", false)],
            None,
        )
        .unwrap();
    }
    fe.offer(
        cmp,
        &[("a0", true), ("a1", false), ("b0", true), ("b1", false)],
        None,
    )
    .unwrap();
    let events = fe.flush_all().unwrap();
    let by_tenant = |t: TenantId| -> Vec<Vec<(String, bool)>> {
        events
            .iter()
            .filter_map(|e| match e {
                FrontendEvent::Completed {
                    tenant, outputs, ..
                } if *tenant == t => Some(
                    outputs
                        .iter()
                        .map(|(n, v)| (n.to_string(), *v))
                        .collect::<Vec<_>>(),
                ),
                _ => None,
            })
            .collect()
    };
    assert_eq!(by_tenant(wire), vec![vec![("out0".to_string(), true)]]);
    // parity of (k&1, k&2, 0) for k = 0..4: 0, 1, 1, 0
    let parity_out: Vec<bool> = by_tenant(parity).iter().map(|o| o[0].1).collect();
    assert_eq!(parity_out, vec![false, true, true, false]);
    assert_eq!(by_tenant(cmp), vec![vec![("eq".to_string(), true)]]);
}

// ---------------------------------------------------------------------
// billing
// ---------------------------------------------------------------------

#[test]
fn frontend_billing_report_renders_streams_and_counters() {
    let mut fe = frontend(1, 4);
    let t = admit_wire(&mut fe);
    fe.open_stream(
        t,
        StreamPolicy::latency_sensitive(2, 50).with_rate(RateLimit::per_cycles(1, 2, 4)),
    )
    .unwrap();
    // 2 admitted, 1 backpressured (queue of 2 full)
    offer_ok(&mut fe, t, true, None);
    offer_ok(&mut fe, t, false, None);
    let _ = fe.offer(t, &[("in0", true)], None);
    fe.flush_all().unwrap();
    let report = fe.frontend_billing_report();
    assert!(report.contains("wire"), "tenant name present:\n{report}");
    assert!(report.contains("latency-sensitive"), "class:\n{report}");
    assert!(report.contains("adm rate"), "rate columns:\n{report}");
    assert!(report.contains("goodput"), "goodput column:\n{report}");
    let u = fe.frontend_usage(t).unwrap();
    assert_eq!(u.offered, 3);
    assert_eq!(u.admitted, 2);
    assert_eq!(u.completed, 2);
    assert_eq!(u.rejected_backpressure, 1);
    assert_eq!(u.rejected(), 1);
    // service-side billing is untouched by front-end accounting
    assert_eq!(fe.service().usage(t).unwrap().requests, 2);
}

#[test]
fn frontend_usage_of_unknown_stream_is_typed() {
    let mut fe = frontend(1, 4);
    let t = admit_wire(&mut fe);
    assert_eq!(fe.frontend_usage(t), Err(FrontendError::NoStream(t)));
    // error display strings are stable and informative
    assert!(FrontendError::NoStream(t)
        .to_string()
        .contains("no open stream"));
    assert!(FrontendError::QueuesNotEmpty { queued: 3 }
        .to_string()
        .contains("3 requests"));
    let bp = FrontendError::Backpressure {
        tenant: t,
        queued: 2,
        capacity: 2,
    };
    assert!(bp.to_string().contains("2/2"));
    // tickets number admissions from 0 and render as tkt#n
    fe.open_stream(t, StreamPolicy::throughput(1)).unwrap();
    let tk = fe.offer(t, &[("in0", true)], None).unwrap();
    assert_eq!(tk.value(), 0);
    assert_eq!(tk.to_string(), "tkt#0");
}

// ---------------------------------------------------------------------
// QoS separation: latency-sensitive p99 beats throughput p99
// ---------------------------------------------------------------------

#[test]
fn latency_sensitive_p99_beats_throughput_p99_under_skew() {
    // a miniature of the bench harness's adversarial-skew gate: one
    // latency-sensitive stream and one hot throughput stream share a
    // shard; the LS class must see strictly lower tail latency.
    let mut fe = frontend(1, 16);
    let lat = fe
        .admit("video", &generators::wire_lanes(1).unwrap())
        .unwrap();
    let thr = fe
        .admit("batch", &generators::parity_tree(2).unwrap())
        .unwrap();
    fe.open_stream(lat, StreamPolicy::latency_sensitive(32, 24))
        .unwrap();
    fe.open_stream(thr, StreamPolicy::throughput(32)).unwrap();
    let mut lat_samples = Vec::new();
    let mut thr_samples = Vec::new();
    let mut harvest = |events: &[FrontendEvent]| {
        for e in events {
            if let FrontendEvent::Completed {
                tenant, latency, ..
            } = e
            {
                if *tenant == lat {
                    lat_samples.push(*latency);
                } else {
                    thr_samples.push(*latency);
                }
            }
        }
    };
    for step in 0u64..600 {
        if step % 3 == 0 {
            let _ = fe.offer(lat, &[("in0", step % 2 == 0)], None);
        }
        // the hot tenant offers every cycle (adversarial skew)
        let _ = fe.offer(thr, &[("x0", step % 2 == 0), ("x1", step % 4 < 2)], None);
        let events = fe.pump().unwrap();
        harvest(&events);
        fe.advance(1);
    }
    let events = fe.flush_all().unwrap();
    harvest(&events);
    assert!(lat_samples.len() > 100, "LS load served");
    assert!(thr_samples.len() > 300, "TP load served");
    let lat_p99 = percentile(&mut lat_samples, 99.0);
    let thr_p99 = percentile(&mut thr_samples, 99.0);
    assert!(
        lat_p99 < thr_p99,
        "QoS separation: LS p99 {lat_p99} must beat TP p99 {thr_p99}"
    );
    // and LS never blew a deadline silently: nothing expired, so every
    // latency is within the 24-cycle budget
    assert!(
        lat_samples.iter().all(|&l| l <= 24),
        "every LS completion within budget"
    );
}

// ---------------------------------------------------------------------
// determinism: the whole event stream is identical at any thread width
// ---------------------------------------------------------------------

/// Runs a fixed mixed-class script at `threads` executor threads and
/// returns the full observable state: every event (debug-formatted),
/// both billing tables, and all faults.
fn run_scripted(threads: usize) -> (Vec<String>, String, String, usize) {
    let mut fe = frontend(2, 8);
    fe.service_mut().set_threads(threads);
    let wire = fe
        .admit("wire", &generators::wire_lanes(1).unwrap())
        .unwrap();
    let parity = fe
        .admit("parity", &generators::parity_tree(3).unwrap())
        .unwrap();
    let pop = fe.admit("pop", &generators::popcount4().unwrap()).unwrap();
    fe.open_stream(wire, StreamPolicy::latency_sensitive(16, 6))
        .unwrap();
    fe.open_stream(parity, StreamPolicy::throughput(8)).unwrap();
    fe.open_stream(
        pop,
        StreamPolicy::latency_sensitive(4, 9).with_rate(RateLimit::per_cycles(1, 2, 3)),
    )
    .unwrap();
    let mut log = Vec::new();
    let mut faults = 0;
    for step in 0u64..120 {
        if step % 2 == 0 {
            match fe.offer(wire, &[("in0", step % 4 == 0)], None) {
                Ok(tk) => log.push(format!("wire+{tk}")),
                Err(e) => log.push(format!("wire!{e}")),
            }
        }
        match fe.offer(
            parity,
            &[
                ("x0", step & 1 == 1),
                ("x1", step & 2 == 2),
                ("x2", step & 4 == 4),
            ],
            None,
        ) {
            Ok(tk) => log.push(format!("par+{tk}")),
            Err(e) => log.push(format!("par!{e}")),
        }
        if step % 3 == 0 {
            match fe.offer(
                pop,
                &[
                    ("x0", step & 1 == 1),
                    ("x1", step & 2 == 2),
                    ("x2", step & 8 == 8),
                    ("x3", true),
                ],
                Some(fe.now() + (step % 5)),
            ) {
                Ok(tk) => log.push(format!("pop+{tk}")),
                Err(e) => log.push(format!("pop!{e}")),
            }
        }
        // mid-run chaos at fixed script points
        // the parity batch (width 8, offers 1/cycle) flushes on steps
        // 7, 15, …: fault through two flush attempts, repair after
        if step == 40 {
            fe.service_mut().inject_plane_fault(parity).unwrap();
        }
        if step == 56 {
            fe.service_mut().repair_plane(parity).unwrap();
        }
        if step == 70 {
            fe.service_mut().migrate_tenant(wire, 1).unwrap();
        }
        for e in fe.pump().unwrap() {
            log.push(format!("{e:?}"));
        }
        faults += fe.take_faults().len();
        fe.advance(1);
    }
    for e in fe.flush_all().unwrap() {
        log.push(format!("{e:?}"));
    }
    (
        log,
        fe.service().billing_report(),
        fe.frontend_billing_report(),
        faults,
    )
}

#[test]
fn event_stream_and_billing_identical_across_thread_widths() {
    let (log1, bill1, febill1, faults1) = run_scripted(1);
    assert!(!log1.is_empty());
    assert!(faults1 > 0, "the scripted fault produced slot faults");
    for threads in [8, 16] {
        let (log, bill, febill, faults) = run_scripted(threads);
        assert_eq!(log, log1, "event stream differs at {threads} threads");
        assert_eq!(bill, bill1, "billing differs at {threads} threads");
        assert_eq!(
            febill, febill1,
            "frontend billing differs at {threads} threads"
        );
        assert_eq!(faults, faults1, "fault count differs at {threads} threads");
    }
}

#[test]
fn event_stream_identical_across_lane_widths_for_forced_flushes() {
    // lane width changes flush *timing* for throughput streams, but a
    // force-flushed (flush_all) script must produce identical responses
    // at any width — the lane-width half of the determinism contract.
    let run = |lanes: usize| -> Vec<String> {
        let mut fe = frontend(1, lanes);
        let t = fe
            .admit("parity", &generators::parity_tree(3).unwrap())
            .unwrap();
        fe.open_stream(t, StreamPolicy::throughput(64)).unwrap();
        for k in 0u64..40 {
            fe.offer(
                t,
                &[("x0", k & 1 == 1), ("x1", k & 2 == 2), ("x2", k & 4 == 4)],
                None,
            )
            .unwrap();
        }
        fe.flush_all()
            .unwrap()
            .iter()
            .map(|e| match e {
                FrontendEvent::Completed {
                    ticket, outputs, ..
                } => format!("{ticket}={}", outputs[0].1),
                other => format!("{other:?}"),
            })
            .collect()
    };
    let at8 = run(8);
    assert_eq!(at8.len(), 40);
    assert_eq!(at8, run(64), "8-lane vs 64-lane responses");
    assert_eq!(at8, run(256), "8-lane vs 256-lane responses");
}

// ---------------------------------------------------------------------
// ticket conservation (small-scale; the property test generalizes it)
// ---------------------------------------------------------------------

#[test]
fn every_admitted_ticket_resolves_exactly_once() {
    let mut fe = frontend(1, 4);
    let t = admit_wire(&mut fe);
    fe.open_stream(t, StreamPolicy::latency_sensitive(4, 3))
        .unwrap();
    let mut admitted = Vec::new();
    for step in 0u64..60 {
        // over-offer on purpose: capacity 4 forces backpressure
        for _ in 0..2 {
            if let Ok(tk) = fe.offer(t, &[("in0", step % 2 == 0)], None) {
                admitted.push(tk);
            }
        }
        // only pump every 5th cycle so some deadlines lapse in-queue
        if step % 5 == 0 {
            fe.pump().unwrap();
        }
        fe.advance(1);
    }
    let final_events = fe.flush_all().unwrap();
    let _ = final_events;
    let u = fe.frontend_usage(t).unwrap();
    assert_eq!(u.admitted, admitted.len());
    assert_eq!(
        u.resolved(),
        u.admitted,
        "admitted = completed + expired + failed, none queued or in flight"
    );
    assert_eq!(fe.queued_requests(), 0);
    assert_eq!(fe.inflight_requests(), 0);
    assert!(u.expired > 0, "the sparse pumping let some expire");
    assert!(u.completed > 0, "and the rest were served");
    assert!(u.rejected_backpressure > 0, "over-offering backpressured");
}
