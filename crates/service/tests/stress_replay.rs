//! Deterministic workload-replay stress test: hundreds of interleaved
//! submit / drain / fault-inject / repair / discard cycles across many
//! tenants on a sharded service, asserting **queue conservation** — every
//! issued request is either answered exactly once or explicitly discarded,
//! none invented, none lost — and that [`ShardedService::take_faults`]
//! drains exactly once.
//!
//! The replay is seeded (`compat/rand` `StdRng`), so a failure reproduces
//! bit-for-bit. Faults are injected with the service's chaos hooks
//! ([`ShardedService::inject_plane_fault`] /
//! [`ShardedService::repair_plane`]), the same failure class a corrupted
//! compiled plane would produce in production.

use mcfpga_device::TechParams;
use mcfpga_fabric::netlist_ir::{generators, LogicNetlist, Node};
use mcfpga_fabric::FabricParams;
use mcfpga_service::frontend::{FrontendDriver, RateLimit, StreamPolicy};
use mcfpga_service::{
    MigrateError, OptimizeMode, PlacementPolicy, RequestId, ServiceError, ShardedService, TenantId,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{HashMap, HashSet};

const CYCLES: usize = 600;
const SEED: u64 = 0xC0FF_EE00_5EED;

fn input_names(nl: &LogicNetlist) -> Vec<String> {
    nl.input_ids()
        .into_iter()
        .map(|id| match nl.node(id) {
            Node::Input { name } => name.clone(),
            _ => unreachable!(),
        })
        .collect()
}

/// One fully materialized response: `(request, tenant, demuxed outputs)`.
type LoggedResponse = (RequestId, TenantId, Vec<(String, bool)>);

/// One stringified fault record: `(tenant, shard, ctx, error)`.
type LoggedFault = (TenantId, usize, usize, String);

struct Harness {
    svc: ShardedService,
    tenants: Vec<(TenantId, Vec<String>)>,
    rng: StdRng,
    /// Requests issued but not yet answered, per tenant.
    pending: HashMap<TenantId, Vec<RequestId>>,
    /// Every id ever issued (uniqueness check).
    issued: HashSet<RequestId>,
    answered: HashSet<RequestId>,
    discarded: usize,
    submitted: usize,
    /// Tenants whose plane is currently poisoned.
    poisoned: HashSet<TenantId>,
    /// Tenants that were poisoned at any point since the last
    /// `take_faults` — the only legitimate sources of fault records (a
    /// repair does not erase a fault already recorded).
    fault_candidates: HashSet<TenantId>,
    faults_seen: usize,
    /// Successful live migrations and evacuation moves performed.
    migrations: usize,
    /// Every response in arrival order, fully materialized — the
    /// bit-for-bit artifact the parallel-determinism replay compares.
    resp_log: Vec<LoggedResponse>,
    /// Every fault record in arrival order (error stringified).
    fault_log: Vec<LoggedFault>,
}

/// Everything externally observable about one replay run. Two runs that
/// differ only in executor width must produce equal artifacts.
#[derive(Debug, PartialEq)]
struct ReplayArtifacts {
    responses: Vec<LoggedResponse>,
    faults: Vec<LoggedFault>,
    billing: String,
    migrations: usize,
    /// The deterministic-class metrics snapshot (JSON). Wall-clock
    /// metrics — executor counters, phase timings — are excluded by
    /// construction; everything here must be bit-identical at any
    /// thread count × lane width.
    metrics: String,
    /// The full span ring, rendered. Spans are recorded only from the
    /// sequential plan/apply phases, so the log is as deterministic as
    /// the response stream itself.
    trace: String,
}

impl Harness {
    fn new(optimize: OptimizeMode, placement: PlacementPolicy) -> Self {
        Self::with_shards(2, optimize, placement)
    }

    fn with_shards(shards: usize, optimize: OptimizeMode, placement: PlacementPolicy) -> Self {
        let mut svc = ShardedService::with_policies(
            shards,
            FabricParams {
                width: 5,
                height: 5,
                channel_width: 3,
                ..FabricParams::default()
            },
            TechParams::default(),
            optimize,
            placement,
        )
        .expect("service");
        let designs = [
            ("wire", generators::wire_lanes(1).unwrap()),
            ("parity3", generators::parity_tree(3).unwrap()),
            ("parity4", generators::parity_tree(4).unwrap()),
            ("cmp2", generators::equality_comparator(2).unwrap()),
            ("pop4", generators::popcount4().unwrap()),
            ("wire2", generators::wire_lanes(1).unwrap()),
        ];
        let tenants = designs
            .iter()
            .map(|(name, nl)| (svc.admit(name, nl).expect("admit"), input_names(nl)))
            .collect();
        Harness {
            svc,
            tenants,
            rng: StdRng::seed_from_u64(SEED),
            pending: HashMap::new(),
            issued: HashSet::new(),
            answered: HashSet::new(),
            discarded: 0,
            submitted: 0,
            poisoned: HashSet::new(),
            fault_candidates: HashSet::new(),
            faults_seen: 0,
            migrations: 0,
            resp_log: Vec::new(),
            fault_log: Vec::new(),
        }
    }

    fn random_tenant(&mut self) -> (TenantId, Vec<String>) {
        let i = self.rng.random_range(0..self.tenants.len());
        self.tenants[i].clone()
    }

    fn submit_one(&mut self) {
        let (tenant, names) = self.random_tenant();
        let vector: Vec<(String, bool)> = names
            .iter()
            .map(|n| (n.clone(), self.rng.random_range(0..2u32) == 1))
            .collect();
        let refs: Vec<(&str, bool)> = vector.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        match self.svc.submit(tenant, &refs) {
            Ok(id) => {
                assert!(self.issued.insert(id), "request id {id} issued twice");
                self.pending.entry(tenant).or_default().push(id);
                self.submitted += 1;
            }
            Err(ServiceError::SlotBacklogged { .. }) => {
                // only a poisoned slot can back up behind a full batch
                assert!(
                    self.poisoned.contains(&tenant),
                    "healthy tenant {tenant} reported a backlogged slot"
                );
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }

    fn drain(&mut self) {
        let responses = self.svc.drain().expect("drain");
        for resp in responses {
            self.resp_log.push((
                resp.request,
                resp.tenant,
                resp.outputs
                    .iter()
                    .map(|(n, v)| (n.to_string(), *v))
                    .collect(),
            ));
            assert!(
                self.answered.insert(resp.request),
                "request {} answered twice",
                resp.request
            );
            let queue = self
                .pending
                .get_mut(&resp.tenant)
                .expect("response for tenant with no pending requests");
            let pos = queue
                .iter()
                .position(|&id| id == resp.request)
                .expect("response for a request not pending");
            queue.remove(pos);
        }
    }

    fn inject(&mut self) {
        let (tenant, _) = self.random_tenant();
        self.svc.inject_plane_fault(tenant).expect("inject");
        self.poisoned.insert(tenant);
        self.fault_candidates.insert(tenant);
    }

    fn repair(&mut self) {
        let (tenant, _) = self.random_tenant();
        self.svc.repair_plane(tenant).expect("repair");
        self.poisoned.remove(&tenant);
    }

    /// Live-migrates a random tenant toward a random shard. A full
    /// destination is a legitimate refusal; anything else is a bug. The
    /// move must conserve the queue exactly (checked by the global
    /// accounting: migrated requests keep their ids).
    fn migrate(&mut self) {
        let (tenant, _) = self.random_tenant();
        let pending_before = self.svc.pending_requests();
        let dst = self.rng.random_range(0..self.svc.shard_count() as u32) as usize;
        match self.svc.migrate_tenant(tenant, dst) {
            Ok(_) => {
                self.migrations += 1;
                assert_eq!(
                    self.svc.pending_requests(),
                    pending_before,
                    "migration dropped or duplicated queued requests"
                );
            }
            Err(ServiceError::Migrate(MigrateError::NoFreeSlot { .. })) => {}
            Err(e) => panic!("unexpected migrate error: {e}"),
        }
    }

    /// Evacuates a random shard wholesale; a pool too full to absorb the
    /// tenants refuses atomically.
    fn evacuate(&mut self) {
        let shard = self.rng.random_range(0..self.svc.shard_count() as u32) as usize;
        let pending_before = self.svc.pending_requests();
        match self.svc.evacuate_shard(shard) {
            Ok(moved) => {
                self.migrations += moved.len();
                assert!(
                    self.svc.registry().occupied_contexts(shard).is_empty(),
                    "evacuated shard must be empty"
                );
                assert_eq!(self.svc.pending_requests(), pending_before);
            }
            Err(ServiceError::Migrate(MigrateError::EvacuationBlocked { .. })) => {}
            Err(e) => panic!("unexpected evacuate error: {e}"),
        }
    }

    fn discard(&mut self) {
        let (tenant, _) = self.random_tenant();
        let queued = self.pending.remove(&tenant).unwrap_or_default();
        let dropped = self.svc.discard_pending(tenant).expect("discard");
        assert_eq!(
            dropped,
            queued.len(),
            "discard count must equal the tenant's pending requests"
        );
        self.discarded += dropped;
    }

    fn take_faults_drains_once(&mut self) {
        let faults = self.svc.take_faults();
        self.faults_seen += faults.len();
        for f in &faults {
            self.fault_log
                .push((f.tenant, f.shard, f.ctx, f.error.to_string()));
        }
        for f in &faults {
            // fault tenants must have been poisoned when their pass ran
            assert!(
                self.fault_candidates.contains(&f.tenant),
                "fault on never-poisoned tenant {}",
                f.tenant
            );
        }
        assert!(
            self.svc.take_faults().is_empty(),
            "take_faults must drain exactly once"
        );
        // records are gone now; only still-poisoned tenants can fault again
        self.fault_candidates = self.poisoned.clone();
    }

    fn settle(&mut self) {
        // heal everything, flush everything: all still-pending requests
        // must now be answered
        let tenants: Vec<TenantId> = self.tenants.iter().map(|(t, _)| *t).collect();
        for t in tenants {
            self.svc.repair_plane(t).expect("final repair");
        }
        self.poisoned.clear();
        self.drain();
        self.take_faults_drains_once();
        assert_eq!(self.svc.pending_requests(), 0, "queue fully drained");
        assert!(
            self.pending.values().all(Vec::is_empty),
            "all tracked requests resolved"
        );
    }
}

fn run_replay(optimize: OptimizeMode, placement: PlacementPolicy) -> (usize, usize, usize) {
    let mut h = Harness::new(optimize, placement);
    for _ in 0..CYCLES {
        match h.rng.random_range(0..100u32) {
            0..=54 => h.submit_one(),
            55..=74 => h.drain(),
            75..=81 => h.inject(),
            82..=88 => h.repair(),
            89..=93 => h.discard(),
            _ => h.take_faults_drains_once(),
        }
    }
    h.settle();
    conservation(&h)
}

/// One cycle of the migration-chaos interleaving: the plain chaos mix
/// plus random live migrations and whole-shard evacuations. Shared by
/// the conservation replay and the parallel-determinism replay so the
/// two gates always exercise the *same* workload distribution.
fn migration_chaos_cycle(h: &mut Harness) {
    match h.rng.random_range(0..100u32) {
        0..=49 => h.submit_one(),
        50..=69 => h.drain(),
        70..=75 => h.inject(),
        76..=81 => h.repair(),
        82..=85 => h.discard(),
        86..=91 => h.migrate(),
        92..=93 => h.evacuate(),
        _ => h.take_faults_drains_once(),
    }
}

/// The migration chaos replay: the plain interleaving plus random live
/// migrations and whole-shard evacuations (on a 3-shard pool so there is
/// somewhere to go), still under injected faults — asserting queue
/// conservation end to end: every pending request is answered exactly
/// once, never dropped or duplicated by a migration.
fn run_migration_replay() -> (usize, usize, usize, usize) {
    let mut h = Harness::with_shards(3, OptimizeMode::Optimized, PlacementPolicy::RoundRobin);
    for _ in 0..CYCLES {
        migration_chaos_cycle(&mut h);
    }
    h.settle();
    let migrations = h.migrations;
    let (submitted, answered, faults) = conservation(&h);
    (submitted, answered, faults, migrations)
}

fn conservation(h: &Harness) -> (usize, usize, usize) {
    // conservation: every issued request was answered xor discarded
    assert_eq!(
        h.answered.len() + h.discarded,
        h.submitted,
        "requests lost or invented"
    );
    assert_eq!(h.issued.len(), h.submitted);
    assert!(
        h.answered.iter().all(|id| h.issued.contains(id)),
        "answered an id that was never issued"
    );
    (h.submitted, h.answered.len(), h.faults_seen)
}

/// The migration chaos replay at an explicit executor width and lane
/// width, returning the **full** observable artifact set: every
/// response's demuxed output bits in arrival order, every fault record,
/// the final billing table, and the move count.
fn run_artifact_replay(threads: usize, lane_width: usize) -> ReplayArtifacts {
    let mut h = Harness::with_shards(3, OptimizeMode::Optimized, PlacementPolicy::RoundRobin);
    h.svc.set_threads(threads);
    assert_eq!(h.svc.threads(), threads);
    h.svc.set_lane_width(lane_width).expect("lane width");
    assert_eq!(h.svc.lane_width(), lane_width);
    for _ in 0..CYCLES {
        migration_chaos_cycle(&mut h);
    }
    h.settle();
    conservation(&h);
    ReplayArtifacts {
        billing: h.svc.billing_report(),
        metrics: h.svc.telemetry().registry().deterministic_json(),
        trace: h.svc.telemetry().trace_buffer().render(),
        responses: h.resp_log,
        faults: h.fault_log,
        migrations: h.migrations,
    }
}

/// The headline determinism gate of the worker-pool refactor: the seeded
/// 600-cycle chaos run (submit / drain / inject / repair / migrate /
/// evacuate / discard) must produce **identical responses, faults and
/// billing tables** at every executor width × lane width. Thread count 1
/// *is* the sequential execution path (the executor spawns nothing at
/// width 1), so this also pins the pooled paths to the sequential
/// baseline — bit-for-bit, including response arrival order and every
/// demuxed output bit. Lane widths 64 and 256 agree because this
/// workload never parks 64 lanes in one slot between drains, so the
/// narrow width's earlier auto-flush threshold is never reached.
#[test]
fn parallel_replay_is_bitwise_identical_at_threads_1_to_16_lanes_64_and_256() {
    let baseline = run_artifact_replay(1, 64);
    assert!(
        baseline.responses.len() > 100,
        "replay answered only {} requests",
        baseline.responses.len()
    );
    assert!(!baseline.faults.is_empty(), "replay never faulted");
    assert!(baseline.migrations > 10, "replay barely migrated");
    // the hot-path eval counters are deterministic-class: they must be
    // stamped into the replay's metric snapshot (and therefore gated
    // bit-for-bit across every width below)
    for counter in [
        "fabric_ops_total",
        "fabric_ops_skipped",
        "fabric_kernel_evals",
    ] {
        assert!(
            baseline.metrics.contains(counter),
            "deterministic snapshot missing {counter}"
        );
    }
    assert!(
        !baseline.metrics.contains("\"fabric_ops_total\": 0"),
        "chaos replay swept planes without counting fabric ops"
    );
    for (threads, lanes) in [
        (1usize, 256usize),
        (2, 64),
        (2, 256),
        (4, 64),
        (4, 256),
        (8, 64),
        (8, 256),
        (16, 64),
        (16, 256),
    ] {
        let run = run_artifact_replay(threads, lanes);
        assert_eq!(
            run.responses, baseline.responses,
            "responses diverged at {threads} threads × {lanes} lanes"
        );
        assert_eq!(
            run.faults, baseline.faults,
            "fault log diverged at {threads} threads × {lanes} lanes"
        );
        assert_eq!(
            run.billing, baseline.billing,
            "billing table diverged at {threads} threads × {lanes} lanes"
        );
        assert_eq!(
            run.metrics, baseline.metrics,
            "deterministic metrics snapshot diverged at {threads} threads × {lanes} lanes"
        );
        assert_eq!(
            run.trace, baseline.trace,
            "span log diverged at {threads} threads × {lanes} lanes"
        );
        assert_eq!(run.migrations, baseline.migrations);
    }
}

#[test]
fn replay_conserves_every_request_under_migration_chaos() {
    let (submitted, answered, faults, migrations) = run_migration_replay();
    assert!(submitted > 200, "replay submitted only {submitted}");
    assert!(answered > 0);
    assert!(faults > 0, "replay never drove a pass through a fault");
    assert!(migrations > 10, "replay performed only {migrations} moves");
}

/// The migration replay is deterministic too: a failure reproduces.
#[test]
fn migration_replay_is_deterministic() {
    assert_eq!(run_migration_replay(), run_migration_replay());
}

#[test]
fn replay_conserves_every_request_optimized() {
    let (submitted, answered, faults) =
        run_replay(OptimizeMode::Optimized, PlacementPolicy::RoundRobin);
    // the seeded replay must actually exercise the interesting paths
    assert!(submitted > 200, "replay submitted only {submitted}");
    assert!(answered > 0);
    assert!(faults > 0, "replay never drove a pass through a fault");
}

#[test]
fn replay_conserves_every_request_naive() {
    let (submitted, ..) = run_replay(OptimizeMode::Naive, PlacementPolicy::RoundRobin);
    assert!(submitted > 200);
}

#[test]
fn replay_conserves_under_energy_aware_placement() {
    let (submitted, ..) = run_replay(OptimizeMode::Optimized, PlacementPolicy::EnergyAware);
    assert!(submitted > 200);
}

/// The replay is deterministic: two runs with the same seed agree on every
/// counter — a failure elsewhere in this file reproduces exactly.
#[test]
fn replay_is_deterministic() {
    let a = run_replay(OptimizeMode::Optimized, PlacementPolicy::RoundRobin);
    let b = run_replay(OptimizeMode::Optimized, PlacementPolicy::RoundRobin);
    assert_eq!(a, b);
}

// ---------------------------------------------------------------------
// QoS front-end chaos replay: open-loop arrivals through the streaming
// front-end, with injects / repairs / migrations / evacuations landing
// mid-stream, asserting the full event log is bit-identical at every
// thread width × lane width.
// ---------------------------------------------------------------------

/// Everything externally observable about one front-end chaos run.
#[derive(Debug, PartialEq)]
struct FrontendReplayArtifacts {
    /// Every front-end event, debug-formatted, in arrival order —
    /// tickets, request ids, demuxed outputs, latencies, flush cycles,
    /// expiries, and typed failures all participate in the comparison.
    events: Vec<String>,
    /// Every admission refusal, stringified, in offer order.
    refusals: Vec<String>,
    /// Every slot fault record, in arrival order.
    faults: Vec<String>,
    /// The service-side billing table.
    billing: String,
    /// The front-end admission/QoS billing table.
    frontend_billing: String,
    migrations: usize,
    /// Deterministic-class metrics snapshot (JSON): `frontend_*` and
    /// `service_*` counters, gauges and virtual-cycle histograms.
    metrics: String,
    /// The full span ring, rendered — the request lifecycle log with
    /// virtual-clock stamps.
    trace: String,
}

/// One seeded open-loop chaos run through the front-end at an explicit
/// executor width and lane width.
///
/// Stream capacities stay well under the narrower lane width (64) so the
/// effective batch width — `min(lane width, capacity)` — is identical at
/// 64 and 256 lanes, which is what makes the *event timing* (not just
/// the payloads) lane-width-independent. Arrival rates are low enough
/// that a poisoned slot's service-side backlog stays under 64 requests,
/// so neither width ever reaches its backlog threshold.
fn run_frontend_chaos_replay(threads: usize, lane_width: usize) -> FrontendReplayArtifacts {
    let mut svc = ShardedService::with_policies(
        3,
        FabricParams {
            width: 5,
            height: 5,
            channel_width: 3,
            ..FabricParams::default()
        },
        TechParams::default(),
        OptimizeMode::Optimized,
        PlacementPolicy::RoundRobin,
    )
    .expect("service");
    svc.set_threads(threads);
    svc.set_lane_width(lane_width).expect("lane width");
    let mut fe = FrontendDriver::new(svc);
    let designs = [
        ("wire", generators::wire_lanes(1).unwrap()),
        ("parity3", generators::parity_tree(3).unwrap()),
        ("cmp2", generators::equality_comparator(2).unwrap()),
        ("pop4", generators::popcount4().unwrap()),
    ];
    let tenants: Vec<(TenantId, Vec<String>)> = designs
        .iter()
        .map(|(name, nl)| (fe.admit(name, nl).expect("admit"), input_names(nl)))
        .collect();
    let policies = [
        StreamPolicy::latency_sensitive(16, 10),
        StreamPolicy::throughput(16),
        // refill (1 per 6 cycles) below the ~1/3-per-cycle arrival rate:
        // the token bucket must actually reject
        StreamPolicy::latency_sensitive(8, 25).with_rate(RateLimit::per_cycles(1, 6, 2)),
        // the hot tenant (below) hammers a 3-deep queue: backpressure
        StreamPolicy::throughput(3),
    ];
    for (i, (t, _)) in tenants.iter().enumerate() {
        fe.open_stream(*t, policies[i]).expect("open stream");
    }

    let mut rng = StdRng::seed_from_u64(SEED ^ 0xF0E1_D2C3);
    let mut art = FrontendReplayArtifacts {
        events: Vec::new(),
        refusals: Vec::new(),
        faults: Vec::new(),
        billing: String::new(),
        frontend_billing: String::new(),
        migrations: 0,
        metrics: String::new(),
        trace: String::new(),
    };
    let mut poisoned: HashSet<TenantId> = HashSet::new();
    for _ in 0..CYCLES {
        // open-loop arrivals: streams 0–2 get an offer with probability
        // ~1/3 per cycle; stream 3 is the adversarially hot tenant with
        // 1–2 offers *every* cycle — open-loop means nobody slows down
        // for the service, which is exactly what backpressure is for
        for (which, (tenant, names)) in tenants.iter().enumerate() {
            let offers = if which == 3 {
                1 + rng.random_range(0..2u32)
            } else {
                u32::from(rng.random_range(0..3u32) == 0)
            };
            for _ in 0..offers {
                let scalar: Vec<(String, bool)> = names
                    .iter()
                    .map(|n| (n.clone(), rng.random_range(0..2u32) == 1))
                    .collect();
                let refs: Vec<(&str, bool)> =
                    scalar.iter().map(|(n, v)| (n.as_str(), *v)).collect();
                // occasional tight explicit deadlines on the *throughput*
                // stream: it never early-flushes, so a deadline shorter
                // than the batch-fill time must travel the expiry path
                let deadline = if which == 1 && rng.random_range(0..4u32) == 0 {
                    Some(fe.now() + rng.random_range(0..8u64))
                } else {
                    None
                };
                if let Err(e) = fe.offer(*tenant, &refs, deadline) {
                    art.refusals.push(e.to_string());
                }
            }
        }
        // chaos hooks land directly on the wrapped service, mid-stream
        match rng.random_range(0..100u32) {
            0..=2 => {
                let (t, _) = tenants[rng.random_range(0..tenants.len())].clone();
                fe.service_mut().inject_plane_fault(t).expect("inject");
                poisoned.insert(t);
            }
            3..=7 => {
                let (t, _) = tenants[rng.random_range(0..tenants.len())].clone();
                fe.service_mut().repair_plane(t).expect("repair");
                poisoned.remove(&t);
            }
            8..=11 => {
                let (t, _) = tenants[rng.random_range(0..tenants.len())].clone();
                let dst = rng.random_range(0..fe.service().shard_count() as u32) as usize;
                match fe.service_mut().migrate_tenant(t, dst) {
                    Ok(_) => art.migrations += 1,
                    Err(ServiceError::Migrate(MigrateError::NoFreeSlot { .. })) => {}
                    Err(e) => panic!("unexpected migrate error: {e}"),
                }
            }
            12..=13 => {
                let shard = rng.random_range(0..fe.service().shard_count() as u32) as usize;
                match fe.service_mut().evacuate_shard(shard) {
                    Ok(moved) => art.migrations += moved.len(),
                    Err(ServiceError::Migrate(MigrateError::EvacuationBlocked { .. })) => {}
                    Err(e) => panic!("unexpected evacuate error: {e}"),
                }
            }
            _ => {}
        }
        for e in fe.pump().expect("pump") {
            art.events.push(format!("{e:?}"));
        }
        for f in fe.take_faults() {
            art.faults.push(format!(
                "{} ({}, {}): {}",
                f.tenant, f.shard, f.ctx, f.error
            ));
        }
        fe.advance(1);
    }
    // settle: heal every plane, flush every queue — nothing may linger
    for (t, _) in &tenants {
        fe.service_mut().repair_plane(*t).expect("final repair");
    }
    for e in fe.flush_all().expect("flush_all") {
        art.events.push(format!("{e:?}"));
    }
    fe.take_faults();
    assert_eq!(fe.queued_requests(), 0, "settled front-end queues");
    assert_eq!(fe.inflight_requests(), 0, "settled in-flight set");
    // per-stream conservation: every admitted request resolved
    for (t, _) in &tenants {
        let u = fe.frontend_usage(*t).expect("usage");
        assert_eq!(
            u.resolved(),
            u.admitted,
            "stream {t}: admitted {} but resolved {}",
            u.admitted,
            u.resolved()
        );
        assert_eq!(u.offered, u.admitted + u.rejected());
    }
    art.billing = fe.service().billing_report();
    art.frontend_billing = fe.frontend_billing_report();
    art.metrics = fe.telemetry().registry().deterministic_json();
    art.trace = fe.telemetry().trace_buffer().render();
    art
}

/// The QoS front-end under the full chaos mix is as deterministic as the
/// raw service: the complete event log — completions with latencies and
/// flush cycles, expiries, refusals, faults, both billing tables — is
/// bit-identical at thread widths {1, 8, 16} × lane widths {64, 256}.
#[test]
fn frontend_chaos_replay_is_bitwise_identical_across_threads_and_lanes() {
    let baseline = run_frontend_chaos_replay(1, 64);
    assert!(
        baseline.events.len() > 200,
        "replay produced only {} events",
        baseline.events.len()
    );
    assert!(!baseline.faults.is_empty(), "replay never faulted");
    assert!(
        !baseline.refusals.is_empty(),
        "replay never exercised admission control"
    );
    assert!(baseline.migrations > 5, "replay barely migrated");
    assert!(
        baseline.events.iter().any(|e| e.starts_with("Expired")),
        "replay never expired a deadline"
    );
    for (threads, lanes) in [(1usize, 256usize), (8, 64), (8, 256), (16, 64), (16, 256)] {
        let run = run_frontend_chaos_replay(threads, lanes);
        if run.events != baseline.events {
            for (i, (a, b)) in baseline.events.iter().zip(run.events.iter()).enumerate() {
                if a != b {
                    eprintln!("first diff at event {i}:\n  base: {a}\n  run:  {b}");
                    break;
                }
            }
            eprintln!(
                "lens: base {} run {}",
                baseline.events.len(),
                run.events.len()
            );
            panic!("event log diverged at {threads} threads x {lanes} lanes");
        }
        assert_eq!(
            run.refusals, baseline.refusals,
            "refusals diverged at {threads} threads × {lanes} lanes"
        );
        assert_eq!(
            run.faults, baseline.faults,
            "fault log diverged at {threads} threads × {lanes} lanes"
        );
        assert_eq!(
            run.billing, baseline.billing,
            "billing diverged at {threads} threads × {lanes} lanes"
        );
        assert_eq!(
            run.frontend_billing, baseline.frontend_billing,
            "frontend billing diverged at {threads} threads × {lanes} lanes"
        );
        assert_eq!(
            run.metrics, baseline.metrics,
            "deterministic metrics snapshot diverged at {threads} threads × {lanes} lanes"
        );
        assert_eq!(
            run.trace, baseline.trace,
            "span log diverged at {threads} threads × {lanes} lanes"
        );
        assert_eq!(run.migrations, baseline.migrations);
    }
}
